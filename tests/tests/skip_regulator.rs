//! Regression suite for the §VI.A skip-cycle regulator under lossy
//! links.
//!
//! The server must settle a straggler's skip counters against the round
//! *outcome*, not the mask issuance: a cycle whose update never arrives
//! (dropped or past the deadline) trained nothing, so every unit —
//! scheduled or not — skipped it. The original implementation observed
//! the mask optimistically at configure time, which reset the scheduled
//! units' counters on cycles the straggler actually missed and let the
//! regulator starve units indefinitely behind a bad link.

use helios_core::{HeliosConfig, HeliosStrategy, VolumePolicy};
use helios_data::{partition, Dataset, SyntheticVision};
use helios_device::presets;
use helios_fl::{FlConfig, FlEnv, LinkProfile, NetConfig, Strategy};
use helios_nn::models::ModelKind;
use helios_tensor::TensorRng;

const SEED: u64 = 4242;
const CYCLES: usize = 6;
const STRAGGLER: usize = 2;

/// Two capable clients on ideal links plus one straggler whose link is
/// so slow that its exchange alone blows the 20 s round deadline every
/// cycle.
fn lossy_env() -> FlEnv {
    let clients = 3;
    let mut rng = TensorRng::seed_from(SEED);
    let (train, test) = SyntheticVision::mnist_like()
        .generate(30 * clients, 30, &mut rng)
        .expect("dataset");
    let shards: Vec<Dataset> = partition::iid(train.len(), clients, &mut rng)
        .into_iter()
        .map(|idx| train.subset(&idx).expect("subset"))
        .collect();
    let mut env = FlEnv::new(
        ModelKind::LeNet,
        presets::mixed_fleet(2, 1),
        shards,
        test,
        FlConfig {
            seed: SEED,
            net: NetConfig {
                enabled: true,
                round_timeout_s: Some(20.0),
                ..NetConfig::default()
            },
            ..FlConfig::default()
        },
    )
    .expect("env");
    env.set_link(STRAGGLER, LinkProfile::constrained(1e3, 1.0))
        .expect("link");
    env
}

/// A straggler that misses every cycle accumulates one skip per cycle on
/// *every* unit (including the scheduled ones that never delivered), and
/// once the counters cross the §VI.A threshold the regulator forces the
/// whole starved set back into the next mask.
#[test]
fn missed_cycles_increment_skip_counters_and_force_rejoins() {
    let mut env = lossy_env();
    // A fixed volume keeps the skip threshold 1 + m/Σp·n = 3 constant
    // for the whole run (dynamic adjustment would shrink the volume and
    // move the bar mid-test).
    let mut strategy = HeliosStrategy::new(HeliosConfig {
        volume: VolumePolicy::Predefined(vec![0.5]),
        dynamic_volume_cycles: 0,
        ..HeliosConfig::default()
    });
    let metrics = strategy.run(&mut env, CYCLES).expect("lossy helios run");

    // The constrained link really did cut the straggler out of every
    // round: only the two capable clients ever aggregated.
    let transport = env.transport().expect("transport");
    assert!(transport.stats().timeouts > 0, "deadline must trip");
    let missed = transport.device_stats(STRAGGLER).missed_cycles;
    assert_eq!(missed, CYCLES as u64, "straggler must miss every cycle");
    for r in metrics.records() {
        assert_eq!(r.participants, 2, "only on-time clients aggregate");
    }

    // The regression: every skip counter — scheduled units included —
    // equals the number of missed cycles. Observing the issued mask
    // optimistically would have reset the scheduled units to zero.
    let trainer = strategy.trainer(STRAGGLER).expect("straggler trainer");
    for (layer, counts) in trainer.skip_cycles().iter().enumerate() {
        for (unit, &c) in counts.iter().enumerate() {
            assert_eq!(
                c, CYCLES as u32,
                "layer {layer} unit {unit}: counter must match missed cycles"
            );
        }
    }

    // All counters sit above the threshold, so the regulator demands
    // every starved unit rejoin...
    let threshold = trainer.skip_threshold();
    assert!(
        (CYCLES as f64) > threshold,
        "test must run past the threshold ({threshold})"
    );
    let total_units: usize = trainer.skip_cycles().iter().map(Vec::len).sum();
    assert_eq!(trainer.forced_rejoins().len(), total_units);

    // ...and the masks honour that, within the straggler's capacity
    // (forced entries are capped at the per-layer keep count). After one
    // delivered cycle resets the trained half, the still-starved
    // complement is forced into the very next mask.
    let mut probe = trainer.clone();
    let units = helios_nn::MaskableUnits(trainer.skip_cycles().iter().map(Vec::len).collect());
    let first = probe.next_mask(None);
    probe.observe(&first);
    let second = probe.next_mask(None);
    for (layer, &n) in units.0.iter().enumerate() {
        for unit in 0..n {
            if !first.is_active(layer, unit) {
                assert!(
                    second.is_active(layer, unit),
                    "regulator must force starved layer {layer} unit {unit} back in"
                );
            }
        }
    }
}

/// Counter settlement is outcome-driven, so a lossless rerun of the same
/// fleet (no timeout, ideal links) resets scheduled units as before —
/// the deferral changes nothing when every update arrives.
#[test]
fn delivered_cycles_still_reset_scheduled_units() {
    let clients = 3;
    let mut rng = TensorRng::seed_from(SEED + 1);
    let (train, test) = SyntheticVision::mnist_like()
        .generate(30 * clients, 30, &mut rng)
        .expect("dataset");
    let shards: Vec<Dataset> = partition::iid(train.len(), clients, &mut rng)
        .into_iter()
        .map(|idx| train.subset(&idx).expect("subset"))
        .collect();
    let mut env = FlEnv::new(
        ModelKind::LeNet,
        presets::mixed_fleet(2, 1),
        shards,
        test,
        FlConfig {
            seed: SEED + 1,
            ..FlConfig::default()
        },
    )
    .expect("env");
    let mut strategy = HeliosStrategy::new(HeliosConfig {
        volume: VolumePolicy::Predefined(vec![0.5]),
        dynamic_volume_cycles: 0,
        ..HeliosConfig::default()
    });
    strategy.run(&mut env, CYCLES).expect("lossless helios run");
    let trainer = strategy.trainer(STRAGGLER).expect("straggler trainer");
    // Half the units trained in the final delivered cycle, so their
    // counters are zero; nobody can have skipped more cycles than ran.
    let zeros: usize = trainer
        .skip_cycles()
        .iter()
        .flatten()
        .filter(|&&c| c == 0)
        .count();
    assert!(zeros > 0, "delivered cycles must reset scheduled units");
    for counts in trainer.skip_cycles() {
        for &c in counts {
            assert!(c <= CYCLES as u32);
        }
    }
}
