//! Packed-vs-zeroing execution parity suite.
//!
//! Masked layers have two execution strategies: the legacy *zeroing*
//! path (full-width kernels, masked outputs/gradients zeroed) and the
//! *packed* path (gather active units, run compact kernels, scatter
//! back). The packed path must be **bitwise identical** — same logits,
//! same loss, same post-SGD parameters — because the full-width matmul
//! kernel skips zero operands term-by-term, so packing removes exactly
//! the terms the zeroing path never accumulated, in the same order.
//!
//! These tests flip the process-wide `set_packed_execution` switch, so
//! every test in this binary serializes on one lock and restores the
//! default (packed on) before releasing it.

use helios_nn::{
    models, set_packed_execution, Conv2d, CrossEntropyLoss, Dense, Flatten, Layer, MaxPool2d,
    ModelMask, Network, ParallelismConfig, Relu, Sgd,
};
use helios_tensor::{kernel_counters, uniform_init, ConvSpec, Tensor, TensorRng};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes tests in this binary around the global packed-execution
/// flag (and the global kernel counters), restoring the packed default
/// on drop even if an assertion fails mid-test.
struct ExecGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl ExecGuard {
    fn lock() -> Self {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let guard = match LOCK.get_or_init(|| Mutex::new(())).lock() {
            Ok(g) => g,
            // A previous test panicked while holding the lock; the flag
            // is restored by that test's ExecGuard drop, so the state
            // is still clean.
            Err(poisoned) => poisoned.into_inner(),
        };
        ExecGuard(guard)
    }
}

impl Drop for ExecGuard {
    fn drop(&mut self) {
        set_packed_execution(true);
    }
}

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let _guard = ParallelismConfig::with_threads(n).scoped();
    f()
}

/// Runs two SGD-with-momentum training steps and captures every
/// observable bit: per-step logits, per-step loss, and the final
/// parameter vector.
fn train_twice(net: &mut Network, x: &Tensor, labels: &[usize]) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let loss = CrossEntropyLoss::new();
    let mut opt = Sgd::with_momentum(0.05, 0.9);
    let mut logit_bits = Vec::new();
    let mut loss_bits = Vec::new();
    for _ in 0..2 {
        net.zero_grad();
        let logits = net.forward(x).expect("forward");
        let (l, grad) = loss.forward_backward(&logits, labels).expect("loss");
        net.backward(&grad).expect("backward");
        opt.step(net).expect("step");
        logit_bits.extend(logits.as_slice().iter().map(|v| v.to_bits()));
        loss_bits.push(l.to_bits());
    }
    let params = net.param_vector().iter().map(|v| v.to_bits()).collect();
    (logit_bits, loss_bits, params)
}

fn mlp(in_features: usize, hidden: usize, classes: usize, seed: u64) -> Network {
    let mut rng = TensorRng::seed_from(seed);
    let layers = vec![
        Layer::Dense(Dense::new(in_features, hidden, &mut rng)),
        Layer::Relu(Relu::new()),
        Layer::Dense(Dense::new(hidden, hidden, &mut rng)),
        Layer::Relu(Relu::new()),
        Layer::Dense(Dense::new(hidden, classes, &mut rng).non_maskable()),
    ];
    Network::new("mlp", layers, &[in_features], classes)
}

fn conv_net(channels: usize, conv_out: usize, hidden: usize, classes: usize, seed: u64) -> Network {
    let mut rng = TensorRng::seed_from(seed);
    // 8×8 input → conv(3, pad 1) → pool 2 → flatten: conv_out·4·4.
    let layers = vec![
        Layer::Conv2d(Conv2d::new(
            ConvSpec::new(channels, conv_out, 3, 1, 1),
            &mut rng,
        )),
        Layer::Relu(Relu::new()),
        Layer::MaxPool2d(MaxPool2d::new(2, 2)),
        Layer::Flatten(Flatten::new()),
        Layer::Dense(Dense::new(conv_out * 4 * 4, hidden, &mut rng)),
        Layer::Relu(Relu::new()),
        Layer::Dense(Dense::new(hidden, classes, &mut rng).non_maskable()),
    ];
    Network::new("convnet", layers, &[channels, 8, 8], classes)
}

/// Asserts packed and zeroing runs of `net` agree bit-for-bit, and
/// returns the (packed, zeroing) train-step flop counts.
fn assert_packed_parity(
    net: &Network,
    mask: &ModelMask,
    x: &Tensor,
    labels: &[usize],
) -> (u64, u64) {
    let mut packed = net.clone();
    packed.set_masks(mask).expect("set masks (packed)");
    set_packed_execution(true);
    let before = kernel_counters();
    let got_packed = train_twice(&mut packed, x, labels);
    let packed_flops = kernel_counters().since(&before).flops;

    let mut zeroing = net.clone();
    zeroing.set_masks(mask).expect("set masks (zeroing)");
    set_packed_execution(false);
    let before = kernel_counters();
    let got_zeroing = train_twice(&mut zeroing, x, labels);
    let zeroing_flops = kernel_counters().since(&before).flops;
    set_packed_execution(true);

    assert_eq!(got_packed.0, got_zeroing.0, "logit bits diverged");
    assert_eq!(got_packed.1, got_zeroing.1, "loss bits diverged");
    assert_eq!(got_packed.2, got_zeroing.2, "parameter bits diverged");
    (packed_flops, zeroing_flops)
}

/// First-⌈keep·n⌉-units-active mask over every maskable layer.
fn leading_units_mask(net: &mut Network, keep: f64) -> ModelMask {
    let units = net.maskable_units();
    let mut mask = ModelMask::all_active(&units);
    for (i, &n) in units.0.iter().enumerate() {
        let k = ((keep * n as f64).ceil() as usize).clamp(1, n);
        mask.set_layer(i, Some((0..n).map(|j| j < k).collect()));
    }
    mask
}

proptest! {
    /// Forward, backward, and two SGD steps of a masked MLP agree
    /// bit-for-bit between packed and zeroing execution, for arbitrary
    /// shapes, batch sizes, and masks (including all-true / all-false
    /// layers, which exercise the legacy fallback).
    #[test]
    fn dense_parity_over_random_shapes_and_masks(
        in_features in 2usize..16,
        hidden in 3usize..20,
        batch in 1usize..6,
        seed in 0u64..500,
        mask_seed in 0u64..500,
    ) {
        let _exec = ExecGuard::lock();
        let net = mlp(in_features, hidden, 4, seed);
        let mut mask_rng = TensorRng::seed_from(mask_seed);
        let bits = uniform_init(&[2 * hidden], 0.0, 1.0, &mut mask_rng);
        let layer_mask = |off: usize| -> Vec<bool> {
            (0..hidden).map(|j| bits.as_slice()[off + j] < 0.6).collect()
        };
        let mask = ModelMask::from_layers(vec![Some(layer_mask(0)), Some(layer_mask(hidden))]);
        let mut rng = TensorRng::seed_from(seed ^ 0x9e37);
        let x = uniform_init(&[batch, in_features], -1.0, 1.0, &mut rng);
        let labels: Vec<usize> = (0..batch).map(|i| i % 4).collect();
        assert_packed_parity(&net, &mask, &x, &labels);
    }

    /// Same bitwise parity over a conv → pool → flatten → dense
    /// pipeline, which additionally exercises channel gather/scatter
    /// and the input-mask propagation across pooling and flatten.
    #[test]
    fn conv_parity_over_random_shapes_and_masks(
        channels in 1usize..4,
        conv_out in 2usize..7,
        hidden in 4usize..14,
        batch in 1usize..4,
        seed in 0u64..500,
        mask_seed in 0u64..500,
    ) {
        let _exec = ExecGuard::lock();
        let net = conv_net(channels, conv_out, hidden, 3, seed);
        let mut mask_rng = TensorRng::seed_from(mask_seed);
        let bits = uniform_init(&[conv_out + hidden], 0.0, 1.0, &mut mask_rng);
        let conv_mask: Vec<bool> = (0..conv_out).map(|j| bits.as_slice()[j] < 0.6).collect();
        let dense_mask: Vec<bool> =
            (0..hidden).map(|j| bits.as_slice()[conv_out + j] < 0.6).collect();
        let mask = ModelMask::from_layers(vec![Some(conv_mask), Some(dense_mask)]);
        let mut rng = TensorRng::seed_from(seed ^ 0x51f3);
        let x = uniform_init(&[batch, channels, 8, 8], -1.0, 1.0, &mut rng);
        let labels: Vec<usize> = (0..batch).map(|i| i % 3).collect();
        assert_packed_parity(&net, &mask, &x, &labels);
    }
}

/// Packed execution stays bitwise identical to the serial zeroing
/// baseline at every thread width — the packed kernels partition work
/// the same way the full-width ones do.
#[test]
fn packed_parity_holds_at_every_thread_width() {
    let _exec = ExecGuard::lock();
    let net = conv_net(3, 6, 12, 3, 77);
    let mut probe = net.clone();
    let mask = leading_units_mask(&mut probe, 0.5);
    let mut rng = TensorRng::seed_from(78);
    let x = uniform_init(&[4, 3, 8, 8], -1.0, 1.0, &mut rng);
    let labels = vec![0, 1, 2, 0];

    set_packed_execution(false);
    let mut baseline_net = net.clone();
    baseline_net.set_masks(&mask).expect("masks");
    let baseline = with_threads(1, || train_twice(&mut baseline_net, &x, &labels));
    set_packed_execution(true);

    for threads in [1, 2, 4, 8] {
        let mut packed = net.clone();
        packed.set_masks(&mask).expect("masks");
        let got = with_threads(threads, || train_twice(&mut packed, &x, &labels));
        assert_eq!(got, baseline, "packed run at {threads} threads diverged");
    }
}

/// Recorded kernel flops are strictly monotone in the keep ratio: the
/// packed path does proportionally less work, which is the entire point
/// of sub-model soft-training.
#[test]
fn packed_flops_are_monotone_in_keep_ratio() {
    let _exec = ExecGuard::lock();
    let mut rng = TensorRng::seed_from(5);
    let net = models::lenet(10, &mut rng);
    let x = uniform_init(&[8, 1, 16, 16], -1.0, 1.0, &mut rng);
    let labels: Vec<usize> = (0..8).map(|i| i % 10).collect();

    let mut flops = Vec::new();
    for keep in [0.25, 0.5, 1.0] {
        let mut run = net.clone();
        let mask = leading_units_mask(&mut run, keep);
        run.set_masks(&mask).expect("masks");
        let before = kernel_counters();
        train_twice(&mut run, &x, &labels);
        flops.push(kernel_counters().since(&before).flops);
    }
    assert!(
        flops[0] < flops[1] && flops[1] < flops[2],
        "flops must grow with keep ratio: {flops:?}"
    );
    assert!(
        (flops[0] as f64) < 0.4 * flops[2] as f64,
        "keep=0.25 must cost well under 40% of the full model ({} vs {})",
        flops[0],
        flops[2]
    );
}
