//! Serial-vs-parallel parity suite: the parallel execution engine must
//! produce **bitwise identical** `f32` results at every thread count.
//!
//! Each kernel partitions its output structurally (rows / batch items /
//! pooling planes), so every element is computed by exactly one thread
//! in exactly the serial per-element order — these tests pin that
//! property down for each kernel and for whole federated rounds.

use helios_core::{HeliosConfig, HeliosStrategy};
use helios_data::{partition, Dataset, SyntheticVision};
use helios_device::presets;
use helios_fl::{FlConfig, FlEnv, RandomPartial, Strategy, SyncFedAvg};
use helios_nn::models::ModelKind;
use helios_tensor::{
    avg_pool2d, avg_pool2d_backward, conv2d, conv2d_backward, max_pool2d, max_pool2d_backward,
    uniform_init, ConvSpec, ParallelismConfig, PoolSpec, Tensor, TensorRng,
};

/// Thread counts compared against the serial baseline.
const WIDTHS: [usize; 3] = [2, 4, 8];

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let _guard = ParallelismConfig::with_threads(n).scoped();
    f()
}

/// Bitwise tensor comparison: `f32::eq` would conflate `0.0` / `-0.0`
/// and miss NaN payloads, so compare raw bit patterns.
fn assert_bitwise(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.dims(), b.dims(), "{what}: dims");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs ({x} vs {y})"
        );
    }
}

#[test]
fn matmul_parity_across_shapes_and_threads() {
    // Shapes straddle the engine's small-work cutoff: tiny products stay
    // serial, the larger ones genuinely fan out.
    for (m, k, n) in [
        (1, 1, 1),
        (3, 5, 2),
        (17, 9, 13),
        (64, 96, 80),
        (128, 64, 50),
    ] {
        for seed in [0u64, 7, 99] {
            let mut rng = TensorRng::seed_from(seed);
            let a = uniform_init(&[m, k], -1.0, 1.0, &mut rng);
            let b = uniform_init(&[k, n], -1.0, 1.0, &mut rng);
            let serial = with_threads(1, || a.matmul(&b).unwrap());
            for w in WIDTHS {
                let parallel = with_threads(w, || a.matmul(&b).unwrap());
                assert_bitwise(&serial, &parallel, &format!("matmul {m}x{k}x{n} w={w}"));
            }
        }
    }
}

#[test]
fn conv2d_parity_across_shapes_and_threads() {
    for (n, c, h, o, kernel, stride, padding) in [
        (1, 1, 5, 1, 3, 1, 0),
        (2, 3, 9, 4, 3, 1, 1),
        (8, 3, 16, 8, 3, 2, 1),
        (4, 8, 12, 16, 5, 1, 2),
    ] {
        for seed in [1u64, 42] {
            let spec = ConvSpec::new(c, o, kernel, stride, padding);
            let mut rng = TensorRng::seed_from(seed);
            let x = uniform_init(&[n, c, h, h], -1.0, 1.0, &mut rng);
            let wgt = uniform_init(&spec.weight_dims(), -0.5, 0.5, &mut rng);
            let bias = uniform_init(&[o], -0.1, 0.1, &mut rng);
            let serial = with_threads(1, || conv2d(&x, &wgt, &bias, &spec).unwrap());
            for w in WIDTHS {
                let parallel = with_threads(w, || conv2d(&x, &wgt, &bias, &spec).unwrap());
                assert_bitwise(
                    &serial,
                    &parallel,
                    &format!("conv2d n={n} c={c} h={h} w={w}"),
                );
            }
        }
    }
}

#[test]
fn conv2d_backward_parity_across_shapes_and_threads() {
    for (n, c, h, o, kernel, stride, padding) in [
        (1, 1, 5, 1, 3, 1, 0),
        (2, 3, 9, 4, 3, 1, 1),
        (8, 3, 16, 8, 3, 2, 1),
    ] {
        for seed in [2u64, 77] {
            let spec = ConvSpec::new(c, o, kernel, stride, padding);
            let (oh, ow) = spec.output_hw(h, h);
            let mut rng = TensorRng::seed_from(seed);
            let x = uniform_init(&[n, c, h, h], -1.0, 1.0, &mut rng);
            let wgt = uniform_init(&spec.weight_dims(), -0.5, 0.5, &mut rng);
            let gout = uniform_init(&[n, o, oh, ow], -1.0, 1.0, &mut rng);
            let serial = with_threads(1, || conv2d_backward(&x, &wgt, &gout, &spec).unwrap());
            for w in WIDTHS {
                let parallel = with_threads(w, || conv2d_backward(&x, &wgt, &gout, &spec).unwrap());
                let tag = format!("conv2d_backward n={n} c={c} h={h} w={w}");
                assert_bitwise(
                    &serial.grad_input,
                    &parallel.grad_input,
                    &format!("{tag} dX"),
                );
                assert_bitwise(
                    &serial.grad_weight,
                    &parallel.grad_weight,
                    &format!("{tag} dW"),
                );
                assert_bitwise(&serial.grad_bias, &parallel.grad_bias, &format!("{tag} db"));
            }
        }
    }
}

#[test]
fn pooling_parity_across_shapes_and_threads() {
    for (n, c, h, kernel, stride) in [(1, 1, 4, 2, 2), (2, 3, 9, 3, 2), (6, 8, 16, 2, 2)] {
        for seed in [3u64, 55] {
            let spec = PoolSpec::new(kernel, stride);
            let (oh, ow) = spec.output_hw(h, h);
            let mut rng = TensorRng::seed_from(seed);
            let x = uniform_init(&[n, c, h, h], -1.0, 1.0, &mut rng);
            let gout = uniform_init(&[n, c, oh, ow], -1.0, 1.0, &mut rng);
            let (max_s, idx_s) = with_threads(1, || max_pool2d(&x, &spec).unwrap());
            let max_back_s = with_threads(1, || max_pool2d_backward(&gout, &idx_s).unwrap());
            let avg_s = with_threads(1, || avg_pool2d(&x, &spec).unwrap());
            let avg_back_s =
                with_threads(1, || avg_pool2d_backward(&gout, &spec, x.dims()).unwrap());
            for w in WIDTHS {
                let tag = format!("pool n={n} c={c} h={h} w={w}");
                let (max_p, idx_p) = with_threads(w, || max_pool2d(&x, &spec).unwrap());
                assert_bitwise(&max_s, &max_p, &format!("{tag} max fwd"));
                let max_back_p = with_threads(w, || max_pool2d_backward(&gout, &idx_p).unwrap());
                assert_bitwise(&max_back_s, &max_back_p, &format!("{tag} max bwd"));
                let avg_p = with_threads(w, || avg_pool2d(&x, &spec).unwrap());
                assert_bitwise(&avg_s, &avg_p, &format!("{tag} avg fwd"));
                let avg_back_p =
                    with_threads(w, || avg_pool2d_backward(&gout, &spec, x.dims()).unwrap());
                assert_bitwise(&avg_back_s, &avg_back_p, &format!("{tag} avg bwd"));
            }
        }
    }
}

/// Builds the standard two-client mixed fleet with an explicit thread
/// budget in its config.
fn env_with_threads(seed: u64, threads: usize) -> FlEnv {
    let mut rng = TensorRng::seed_from(seed);
    let clients = 2;
    let (train, test) = SyntheticVision::mnist_like()
        .generate(30 * clients, 30, &mut rng)
        .expect("generate");
    let shards: Vec<Dataset> = partition::iid(train.len(), clients, &mut rng)
        .into_iter()
        .map(|idx| train.subset(&idx).expect("subset"))
        .collect();
    FlEnv::new(
        ModelKind::LeNet,
        presets::mixed_fleet(1, 1),
        shards,
        test,
        FlConfig {
            seed,
            parallelism: ParallelismConfig::with_threads(threads),
            ..FlConfig::default()
        },
    )
    .expect("env")
}

fn assert_global_bitwise(a: &FlEnv, b: &FlEnv, what: &str) {
    assert_eq!(a.global().len(), b.global().len(), "{what}: global length");
    for (i, (x, y)) in a.global().iter().zip(b.global()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: global[{i}] ({x} vs {y})");
    }
}

#[test]
fn sync_fedavg_round_parity() {
    let mut serial_env = env_with_threads(201, 1);
    let serial = SyncFedAvg::new()
        .run(&mut serial_env, 2)
        .expect("serial run");
    for threads in WIDTHS {
        let mut env = env_with_threads(201, threads);
        let metrics = SyncFedAvg::new().run(&mut env, 2).expect("parallel run");
        assert_eq!(serial.records(), metrics.records(), "threads={threads}");
        assert_global_bitwise(&serial_env, &env, &format!("sync threads={threads}"));
    }
}

#[test]
fn random_partial_round_parity() {
    let ratios = vec![None, Some(0.4)];
    let mut serial_env = env_with_threads(202, 1);
    let serial = RandomPartial::new(ratios.clone())
        .run(&mut serial_env, 2)
        .expect("serial run");
    for threads in WIDTHS {
        let mut env = env_with_threads(202, threads);
        let metrics = RandomPartial::new(ratios.clone())
            .run(&mut env, 2)
            .expect("parallel run");
        assert_eq!(serial.records(), metrics.records(), "threads={threads}");
        assert_global_bitwise(&serial_env, &env, &format!("random threads={threads}"));
    }
}

#[test]
fn helios_round_parity() {
    let mut serial_env = env_with_threads(203, 1);
    let serial = HeliosStrategy::new(HeliosConfig::default())
        .run(&mut serial_env, 2)
        .expect("serial run");
    for threads in WIDTHS {
        let mut env = env_with_threads(203, threads);
        let metrics = HeliosStrategy::new(HeliosConfig::default())
            .run(&mut env, 2)
            .expect("parallel run");
        assert_eq!(serial.records(), metrics.records(), "threads={threads}");
        assert_global_bitwise(&serial_env, &env, &format!("helios threads={threads}"));
    }
}
