//! Scenario-engine contract: every dynamics axis — churn, diurnal
//! availability, throttling, drift — is driven purely from the
//! declarative [`ScenarioConfig`] timeline, replays bitwise at any
//! thread width, and leaves empty-scenario runs untouched.
//!
//! The obs bus is process-global, so the trace-recording tests hold
//! [`OBS_LOCK`] for their full body.

use helios_core::{HeliosConfig, HeliosStrategy};
use helios_data::{partition, Dataset, ShardSynthesizer, SyntheticVision};
use helios_device::{presets, ProfileSynthesizer};
use helios_fl::{
    AvailabilityModel, FlConfig, FlEnv, FleetSpec, NetConfig, SamplerConfig, Strategy, SyncFedAvg,
};
use helios_nn::models::ModelKind;
use helios_obs::TraceEvent;
use helios_scenario::{
    ChurnAction, ChurnEvent, DiurnalWave, DriftEvent, DriftKind, EventKind, OutageWindow,
    ScenarioConfig, ThrottleRule,
};
use helios_tensor::{ParallelismConfig, TensorRng};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::{Mutex, PoisonError};

/// Serializes the trace-recording tests around the process-global bus.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Thread widths every axis must replay bitwise across.
const WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// A lazy fleet whose devices (initial population *and* scenario
/// joiners) come from the same pure per-device generators.
fn lazy_env(
    population: usize,
    seed: u64,
    threads: usize,
    sampling: SamplerConfig,
    scenario: ScenarioConfig,
    availability: AvailabilityModel,
) -> FlEnv {
    let spec = FleetSpec::new(
        population,
        ProfileSynthesizer::new(seed, 0.3),
        ShardSynthesizer::new(SyntheticVision::mnist_like(), 8, seed).expect("shards"),
    )
    .with_availability(availability);
    let test = spec.shards.test_set(24).expect("test set");
    FlEnv::new_lazy(
        ModelKind::LeNet,
        spec,
        test,
        FlConfig {
            seed,
            sampling,
            scenario,
            parallelism: ParallelismConfig::with_threads(threads),
            ..FlConfig::default()
        },
    )
    .expect("lazy env")
}

/// A two-device eager environment (one capable, one straggler-class).
fn eager_env(seed: u64, threads: usize, scenario: ScenarioConfig) -> FlEnv {
    let clients = 2;
    let mut rng = TensorRng::seed_from(seed);
    let (train, test) = SyntheticVision::mnist_like()
        .generate(30 * clients, 30, &mut rng)
        .expect("dataset");
    let shards: Vec<Dataset> = partition::iid(train.len(), clients, &mut rng)
        .into_iter()
        .map(|idx| train.subset(&idx).expect("subset"))
        .collect();
    FlEnv::new(
        ModelKind::LeNet,
        presets::mixed_fleet(1, 1),
        shards,
        test,
        FlConfig {
            seed,
            scenario,
            parallelism: ParallelismConfig::with_threads(threads),
            ..FlConfig::default()
        },
    )
    .expect("eager env")
}

/// A two-device eager environment routed through the simulated
/// transport (ideal links, a generous per-round deadline).
fn netted_env(seed: u64, threads: usize, scenario: ScenarioConfig) -> FlEnv {
    let clients = 2;
    let mut rng = TensorRng::seed_from(seed);
    let (train, test) = SyntheticVision::mnist_like()
        .generate(30 * clients, 30, &mut rng)
        .expect("dataset");
    let shards: Vec<Dataset> = partition::iid(train.len(), clients, &mut rng)
        .into_iter()
        .map(|idx| train.subset(&idx).expect("subset"))
        .collect();
    FlEnv::new(
        ModelKind::LeNet,
        presets::mixed_fleet(1, 1),
        shards,
        test,
        FlConfig {
            seed,
            scenario,
            parallelism: ParallelismConfig::with_threads(threads),
            net: NetConfig {
                enabled: true,
                // Generous against any compute span, hopeless against
                // an outage's microbit-per-second trickle link.
                round_timeout_s: Some(1e9),
                ..NetConfig::default()
            },
            ..FlConfig::default()
        },
    )
    .expect("netted env")
}

/// A scheduled link outage blacks out the targeted device for exactly
/// the half-open window — it misses those cycles at the round deadline,
/// emits an `outage` trace event per blacked-out cycle, and gets its
/// configured link back the first cycle after the window closes. The
/// whole run replays byte-identically at every thread width.
#[test]
fn link_outage_window_blacks_out_device_then_restores() {
    let _serial = OBS_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let scenario = ScenarioConfig {
        outages: vec![OutageWindow {
            from_cycle: 1,
            until_cycle: 3,
            device: Some(1),
        }],
        ..ScenarioConfig::default()
    };
    let run = |threads: usize| -> (Vec<u8>, Vec<u64>, Option<f64>) {
        use std::io::Write;
        use std::sync::Arc;
        #[derive(Clone, Default)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = SharedBuf::default();
        let handle =
            helios_obs::install(Box::new(helios_obs::JsonlSink::new(Box::new(buf.clone()))));
        let mut env = netted_env(41, threads, scenario.clone());
        SyncFedAvg::new().run(&mut env, 5).expect("outage run");
        drop(handle);
        let transport = env.transport().expect("transport");
        let missed = (0..2).map(|d| transport.device_stats(d).missed_cycles);
        let restored = transport.link(1).expect("link 1").bandwidth_bps;
        let mut captured = buf.0.lock().unwrap_or_else(PoisonError::into_inner);
        (std::mem::take(&mut *captured), missed.collect(), restored)
    };
    let (reference, missed, restored) = run(1);
    assert_eq!(
        missed,
        vec![0, 2],
        "device 1 misses exactly the two windowed cycles, device 0 none"
    );
    assert_eq!(
        restored, None,
        "after the window the device is back on its configured (ideal) link"
    );
    // The trace carries one targeted `outage` event per blacked-out
    // cycle — at cycles 1 and 2 and nowhere else.
    let text = String::from_utf8(reference.clone()).expect("utf8");
    let outage_cycles: Vec<u64> = helios_obs::parse_jsonl(&text)
        .expect("trace parses")
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::ScenarioEvent {
                cycle,
                kind,
                device,
                value,
            } if kind == "outage" => {
                assert_eq!(*device, Some(1), "the window targets device 1");
                assert_eq!(*value, 0.0);
                Some(*cycle)
            }
            _ => None,
        })
        .collect();
    assert_eq!(outage_cycles, vec![1, 2], "one event per windowed cycle");
    for threads in &WIDTHS[1..] {
        let (bytes, m, r) = run(*threads);
        assert_eq!(m, missed);
        assert_eq!(r, restored);
        assert_eq!(
            bytes, reference,
            "outage run must replay byte-identically at {threads} threads"
        );
    }
}

fn churn_scenario() -> ScenarioConfig {
    ScenarioConfig {
        churn: vec![
            ChurnEvent {
                cycle: 1,
                action: ChurnAction::Join,
                device: 0,
                count: 1,
            },
            ChurnEvent {
                cycle: 2,
                action: ChurnAction::Leave,
                device: 0,
                count: 1,
            },
            ChurnEvent {
                cycle: 4,
                action: ChurnAction::Return,
                device: 0,
                count: 1,
            },
        ],
        ..ScenarioConfig::default()
    }
}

#[test]
fn churn_timeline_drives_population_and_replays_bitwise() {
    let run = |threads: usize| {
        let mut env = lazy_env(
            4,
            91,
            threads,
            SamplerConfig::default(),
            churn_scenario(),
            AvailabilityModel::always_on(),
        );
        let m = SyncFedAvg::new().run(&mut env, 5).expect("churn run");
        (m, env.num_clients(), env.offline_devices())
    };
    let (reference, population, offline) = run(1);
    assert_eq!(population, 5, "the join grew the enrolled population");
    assert_eq!(offline, 0, "the departed device returned");
    let participants: Vec<usize> = reference.records().iter().map(|r| r.participants).collect();
    assert_eq!(
        participants,
        vec![4, 5, 4, 4, 5],
        "join at 1, leave at 2, return at 4 shape each cycle's cohort"
    );
    for threads in &WIDTHS[1..] {
        let (m, p, o) = run(*threads);
        assert_eq!((p, o), (population, offline));
        assert_eq!(
            m.records(),
            reference.records(),
            "churn run must replay bitwise at {threads} threads"
        );
    }
}

#[test]
fn helios_classifies_scenario_joiners_mid_run() {
    let mut env = lazy_env(
        4,
        91,
        2,
        SamplerConfig::default(),
        churn_scenario(),
        AvailabilityModel::always_on(),
    );
    let mut helios = HeliosStrategy::new(HeliosConfig::default());
    let m = helios.run(&mut env, 5).expect("helios churn run");
    assert_eq!(env.num_clients(), 5);
    assert_eq!(
        m.records().last().expect("records").participants,
        5,
        "the returned device and the joiner both train in the last cycle"
    );
    // The joiner (id 4) was classified when it first appeared: it either
    // carries a fitted volume (straggler) or explicitly none (capable) —
    // never an unclassified full model racing the deadline.
    let keep = helios.keep_ratio(4);
    if helios.stragglers().contains(&4) {
        assert!(keep.expect("straggler volume") < 1.0);
    } else {
        assert!(keep.is_none());
    }
}

#[test]
fn diurnal_wave_biases_weighted_cohorts_and_replays_bitwise() {
    let wave = DiurnalWave {
        period_cycles: 4,
        min_scale: 0.05,
        phase_spread: 1.0,
    };
    let scenario = ScenarioConfig {
        diurnal: Some(wave),
        ..ScenarioConfig::default()
    };
    let avail = AvailabilityModel::new(17, 0.25);
    let cohorts = |scenario: ScenarioConfig| -> Vec<Vec<usize>> {
        let mut env = lazy_env(40, 17, 1, SamplerConfig::weighted(6), scenario, avail);
        (0..8)
            .map(|c| env.select_cohort(c).expect("cohort"))
            .collect()
    };
    let waved = cohorts(scenario.clone());
    assert_eq!(waved, cohorts(scenario.clone()), "cohort draws are pure");
    assert_ne!(
        waved,
        cohorts(ScenarioConfig::default()),
        "the wave must bias the weighted draw"
    );
    // Every selected device is awake (positive weight) that cycle.
    let model = avail.with_wave(wave);
    for (cycle, cohort) in waved.iter().enumerate() {
        for &d in cohort {
            assert!(model.availability(d, cycle) > 0.0);
        }
    }
    // Full runs replay bitwise at every width.
    let run = |threads: usize| {
        let mut env = lazy_env(
            40,
            17,
            threads,
            SamplerConfig::weighted(6),
            scenario.clone(),
            avail,
        );
        SyncFedAvg::new().run(&mut env, 4).expect("diurnal run")
    };
    let reference = run(1);
    for threads in &WIDTHS[1..] {
        assert_eq!(
            run(*threads).records(),
            reference.records(),
            "diurnal run must replay bitwise at {threads} threads"
        );
    }
}

#[test]
fn throttle_ramp_slows_rounds_and_replays_bitwise() {
    let scenario = ScenarioConfig {
        throttle: vec![ThrottleRule {
            start_cycle: 1,
            device: Some(1),
            compute_decay: 0.25,
            bandwidth_decay: 0.0,
            floor: 0.2,
        }],
        ..ScenarioConfig::default()
    };
    let run = |threads: usize, scenario: ScenarioConfig| {
        let mut env = eager_env(23, threads, scenario);
        let m = SyncFedAvg::new().run(&mut env, 4).expect("throttle run");
        let scale = env.client(1).expect("client 1").compute_scale();
        (m, scale)
    };
    let (reference, scale) = run(1, scenario.clone());
    let (plain, plain_scale) = run(1, ScenarioConfig::default());
    assert!(scale < 1.0, "the ramp reduced device 1's compute scale");
    assert_eq!(plain_scale, 1.0, "no scenario, no throttling");
    assert!(
        reference.total_time() > plain.total_time(),
        "a throttled straggler extends the simulated rounds"
    );
    // The decay is monotone: each post-onset cycle is no faster than
    // the last, and the final cycle is strictly slower than the first.
    let spans: Vec<f64> = reference
        .records()
        .iter()
        .map(|r| r.phases.train_s + r.phases.comm_s)
        .collect();
    assert!(spans.windows(2).all(|w| w[1] >= w[0] - 1e-12));
    assert!(spans[3] > spans[0], "the ramp must bite within the run");
    for threads in &WIDTHS[1..] {
        let (m, s) = run(*threads, scenario.clone());
        assert_eq!(s.to_bits(), scale.to_bits());
        assert_eq!(
            m.records(),
            reference.records(),
            "throttle run must replay bitwise at {threads} threads"
        );
    }
}

#[test]
fn drift_timeline_shifts_data_and_replays_bitwise() {
    let scenario = ScenarioConfig {
        drift: vec![
            DriftEvent {
                cycle: 1,
                kind: DriftKind::LabelRotate,
                amount: 3.0,
            },
            DriftEvent {
                cycle: 2,
                kind: DriftKind::InputShift,
                amount: 0.4,
            },
        ],
        ..ScenarioConfig::default()
    };
    let run = |threads: usize, scenario: ScenarioConfig| {
        let mut env = eager_env(29, threads, scenario);
        let m = SyncFedAvg::new().run(&mut env, 4).expect("drift run");
        let applied: Vec<usize> = env.clients().map(|c| c.drift_applied()).collect();
        (m, applied)
    };
    let (reference, applied) = run(1, scenario.clone());
    assert_eq!(
        applied,
        vec![2, 2],
        "every participant replayed both drift events"
    );
    let (plain, plain_applied) = run(1, ScenarioConfig::default());
    assert_eq!(plain_applied, vec![0, 0]);
    assert_ne!(
        reference.records(),
        plain.records(),
        "drift must change the learning trajectory"
    );
    // Pre-drift cycles are untouched: the divergence starts at cycle 1.
    assert_eq!(reference.records()[0], plain.records()[0]);
    for threads in &WIDTHS[1..] {
        let (m, a) = run(*threads, scenario.clone());
        assert_eq!(a, applied);
        assert_eq!(
            m.records(),
            reference.records(),
            "drift run must replay bitwise at {threads} threads"
        );
    }
}

/// A combined multi-axis timeline for the trace tests.
fn combined_scenario() -> ScenarioConfig {
    ScenarioConfig {
        churn: vec![
            ChurnEvent {
                cycle: 1,
                action: ChurnAction::Join,
                device: 0,
                count: 1,
            },
            ChurnEvent {
                cycle: 2,
                action: ChurnAction::Leave,
                device: 1,
                count: 1,
            },
            ChurnEvent {
                cycle: 3,
                action: ChurnAction::Return,
                device: 1,
                count: 1,
            },
        ],
        throttle: vec![ThrottleRule {
            start_cycle: 1,
            device: None,
            compute_decay: 0.1,
            bandwidth_decay: 0.0,
            floor: 0.5,
        }],
        drift: vec![DriftEvent {
            cycle: 2,
            kind: DriftKind::LabelRotate,
            amount: 2.0,
        }],
        ..ScenarioConfig::default()
    }
}

/// Runs the combined scenario at `threads` and returns the raw JSONL
/// trace bytes.
fn traced_scenario_bytes(threads: usize, scenario: ScenarioConfig) -> Vec<u8> {
    use std::io::Write;
    use std::sync::Arc;
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            self.0
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .extend_from_slice(data);
            Ok(data.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let buf = SharedBuf::default();
    let sink = helios_obs::JsonlSink::new(Box::new(buf.clone()));
    let handle = helios_obs::install(Box::new(sink));
    let mut env = lazy_env(
        4,
        37,
        threads,
        SamplerConfig::default(),
        scenario,
        AvailabilityModel::always_on(),
    );
    SyncFedAvg::new().run(&mut env, 4).expect("traced run");
    drop(handle); // detach + flush
    let mut captured = buf.0.lock().unwrap_or_else(PoisonError::into_inner);
    std::mem::take(&mut *captured)
}

#[test]
fn scenario_traces_are_byte_identical_across_widths() {
    let _serial = OBS_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let reference = traced_scenario_bytes(1, combined_scenario());
    assert!(!reference.is_empty());
    for threads in &WIDTHS[1..] {
        assert_eq!(
            traced_scenario_bytes(*threads, combined_scenario()),
            reference,
            "scenario trace must be byte-identical at {threads} threads"
        );
    }
    let text = String::from_utf8(reference).expect("utf8");
    let records = helios_obs::parse_jsonl(&text).expect("trace parses");
    let mut kinds = BTreeSet::new();
    for r in &records {
        if let TraceEvent::ScenarioEvent { kind, .. } = &r.event {
            kinds.insert(kind.clone());
        }
    }
    for expected in ["join", "leave", "return", "throttle", "drift_label_rotate"] {
        assert!(kinds.contains(expected), "missing scenario kind {expected}");
    }
}

#[test]
fn empty_scenario_is_bitwise_inert_and_emits_no_events() {
    let _serial = OBS_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let mut env = lazy_env(
        4,
        37,
        1,
        SamplerConfig::default(),
        ScenarioConfig::default(),
        AvailabilityModel::always_on(),
    );
    assert!(!env.scenario_active(), "empty scenario installs no runtime");
    let bytes = traced_scenario_bytes(1, ScenarioConfig::default());
    let text = String::from_utf8(bytes).expect("utf8");
    let records = helios_obs::parse_jsonl(&text).expect("trace parses");
    assert!(
        !records
            .iter()
            .any(|r| matches!(r.event, TraceEvent::ScenarioEvent { .. })),
        "an empty scenario must emit no scenario events"
    );
    // And explicitly: the hooks are no-ops on the metrics too.
    let mut a = lazy_env(
        4,
        37,
        1,
        SamplerConfig::default(),
        ScenarioConfig::default(),
        AvailabilityModel::always_on(),
    );
    let ma = SyncFedAvg::new().run(&mut a, 3).expect("run a");
    let mb = SyncFedAvg::new().run(&mut env, 3).expect("run b");
    assert_eq!(ma.records(), mb.records());
}

proptest! {
    /// Valid-by-construction timelines always validate, compile
    /// deterministically into a schedule sorted by simulated time, and
    /// every compiled churn event references a device enrolled at (and
    /// live for the action at) its fire time.
    #[test]
    fn compiled_schedules_are_deterministic_sorted_and_reference_live_devices(
        initial in 1usize..6,
        ops in proptest::collection::vec(
            (0u8..4, 0usize..4, 1usize..3, 0usize..64),
            0..16,
        ),
    ) {
        let mut cycle = 0usize;
        let mut population = initial;
        let mut offline: BTreeSet<usize> = BTreeSet::new();
        let mut churn = Vec::new();
        let mut drift = Vec::new();
        for (op, delta, count, pick) in ops {
            cycle += delta;
            match op {
                0 => {
                    churn.push(ChurnEvent {
                        cycle,
                        action: ChurnAction::Join,
                        device: 0,
                        count,
                    });
                    population += count;
                }
                1 => {
                    let online: Vec<usize> =
                        (0..population).filter(|d| !offline.contains(d)).collect();
                    if online.is_empty() {
                        continue;
                    }
                    let device = online[pick % online.len()];
                    churn.push(ChurnEvent {
                        cycle,
                        action: ChurnAction::Leave,
                        device,
                        count: 1,
                    });
                    offline.insert(device);
                }
                2 => {
                    let offs: Vec<usize> = offline.iter().copied().collect();
                    if offs.is_empty() {
                        continue;
                    }
                    let device = offs[pick % offs.len()];
                    churn.push(ChurnEvent {
                        cycle,
                        action: ChurnAction::Return,
                        device,
                        count: 1,
                    });
                    offline.remove(&device);
                }
                _ => drift.push(DriftEvent {
                    cycle,
                    kind: if pick % 2 == 0 {
                        DriftKind::LabelRotate
                    } else {
                        DriftKind::InputShift
                    },
                    amount: (pick % 5) as f64,
                }),
            }
        }
        let cfg = ScenarioConfig {
            churn,
            drift,
            ..ScenarioConfig::default()
        };
        prop_assert!(cfg.validate(initial).is_ok(), "constructed timeline must validate");
        let a = cfg.compile();
        let b = cfg.compile();
        prop_assert_eq!(a.events(), b.events(), "compilation is deterministic");
        prop_assert!(
            a.events()
                .windows(2)
                .all(|w| (w[0].cycle, w[0].seq) <= (w[1].cycle, w[1].seq)),
            "schedule must be sorted by simulated time"
        );
        // Replaying the compiled schedule only ever touches devices that
        // exist (and are in the right liveness state) at event time.
        let mut pop = initial;
        let mut off: BTreeSet<usize> = BTreeSet::new();
        for e in a.events() {
            match e.kind {
                EventKind::Join { count } => pop += count,
                EventKind::Leave { device } => {
                    prop_assert!(device < pop, "leave of unenrolled device {}", device);
                    prop_assert!(off.insert(device), "double leave of {}", device);
                }
                EventKind::Return { device } => {
                    prop_assert!(device < pop);
                    prop_assert!(off.remove(&device), "return of online device {}", device);
                }
                EventKind::Drift { .. } => {}
            }
        }
    }
}
