//! Golden-metrics regression suite for the round-lifecycle engine.
//!
//! The constants below were captured from fixed-seed runs of the five
//! strategies *before* the strategies were re-expressed as
//! [`helios_fl::RoundPolicy`] hooks on the shared
//! [`helios_fl::RoundDriver`]. Every tuple is the exact bit pattern of
//! `(sim_time, accuracy, loss, participants, comm_bytes)` for one cycle:
//! the refactored engine must reproduce the historical per-strategy
//! loops bit-for-bit, not approximately.
//!
//! On top of the frozen curves, the suite checks the engine's new
//! per-phase instrumentation: the phase timings of every record must sum
//! to that cycle's clock advance (also verified as a property over
//! random fleets/strategies), and the breakdown must be populated
//! identically for every strategy.

use helios_core::{HeliosConfig, HeliosStrategy};
use helios_data::{partition, Dataset, SyntheticVision};
use helios_device::presets;
use helios_fl::{Afo, AsyncFl, FlConfig, FlEnv, RandomPartial, RunMetrics, Strategy, SyncFedAvg};
use helios_nn::models::ModelKind;
use helios_tensor::TensorRng;
use proptest::prelude::*;

const SEED: u64 = 9099;
const CYCLES: usize = 3;

/// `(sim_time bits, accuracy bits, loss bits, participants, comm_bytes
/// bits)` per cycle, captured from the pre-refactor strategy loops.
type GoldenCycle = (u64, u64, u64, usize, u64);

const GOLDEN: &[(&str, &[GoldenCycle])] = &[
    (
        "sync_fedavg",
        &[
            (
                0x401b147a3b1b0d32,
                0x3fcdddddddddddde,
                0x4001d8e540000000,
                3,
                0x411adfc000000000,
            ),
            (
                0x402b147a3b1b0d32,
                0x3fd3333333333333,
                0x3ffec0ee80000000,
                3,
                0x411adfc000000000,
            ),
            (
                0x40344f5bac5449e6,
                0x3fe0000000000000,
                0x3ff9f1ea00000000,
                3,
                0x411adfc000000000,
            ),
        ],
    ),
    (
        "random_partial",
        &[
            (
                0x400115bfc5525a15,
                0x3fcdddddddddddde,
                0x4001c8b060000000,
                3,
                0x411851d000000000,
            ),
            (
                0x401115bfc5525a15,
                0x3fd3333333333333,
                0x400020e5a0000000,
                3,
                0x411851d000000000,
            ),
            (
                0x4019a09fa7fb8720,
                0x3fd7777777777777,
                0x3ffc1d89e0000000,
                3,
                0x411851d000000000,
            ),
        ],
    ),
    (
        "async_fl",
        &[
            (
                0x400115bfc5525a15,
                0x3fd1111111111111,
                0x4001a649a0000000,
                2,
                0x4111ea8000000000,
            ),
            (
                0x401115bfc5525a15,
                0x3fd7777777777777,
                0x3fff121900000000,
                2,
                0x4111ea8000000000,
            ),
            (
                0x4019a09fa7fb8720,
                0x3fddddddddddddde,
                0x3ff9e06b80000000,
                2,
                0x4111ea8000000000,
            ),
        ],
    ),
    (
        "afo",
        &[
            (
                0x400115bfc5525a15,
                0x3fb999999999999a,
                0x4002191dc0000000,
                2,
                0x4111ea8000000000,
            ),
            (
                0x401115bfc5525a15,
                0x3fc5555555555555,
                0x4000e0b880000000,
                2,
                0x4111ea8000000000,
            ),
            (
                0x4019a09fa7fb8720,
                0x3fd7777777777777,
                0x3fff130ba0000000,
                2,
                0x4111ea8000000000,
            ),
        ],
    ),
    (
        "helios",
        &[
            (
                0x400115bfc5525a15,
                0x3fc5555555555555,
                0x4001ba7100000000,
                3,
                0x4118b6c000000000,
            ),
            (
                0x401115bfc5525a15,
                0x3fd5555555555555,
                0x4000149340000000,
                3,
                0x4118b6c000000000,
            ),
            (
                0x4019a09fa7fb8720,
                0x3fd999999999999a,
                0x3ffc788320000000,
                3,
                0x4118b6c000000000,
            ),
        ],
    ),
];

fn build_env(seed: u64, clients: usize, per_client: usize, test_n: usize) -> FlEnv {
    let mut rng = TensorRng::seed_from(seed);
    let (train, test) = SyntheticVision::mnist_like()
        .generate(per_client * clients, test_n, &mut rng)
        .expect("dataset");
    let shards: Vec<Dataset> = partition::iid(train.len(), clients, &mut rng)
        .into_iter()
        .map(|idx| train.subset(&idx).expect("subset"))
        .collect();
    FlEnv::new(
        ModelKind::LeNet,
        presets::mixed_fleet(clients - 1, 1),
        shards,
        test,
        FlConfig {
            seed,
            ..FlConfig::default()
        },
    )
    .expect("env")
}

fn golden_strategy(name: &str) -> Box<dyn Strategy> {
    match name {
        "sync_fedavg" => Box::new(SyncFedAvg::new()),
        "random_partial" => Box::new(RandomPartial::new(vec![None, None, Some(0.4)])),
        "async_fl" => Box::new(AsyncFl::new(vec![2])),
        "afo" => Box::new(Afo::new(vec![2])),
        "helios" => Box::new(HeliosStrategy::new(HeliosConfig::default())),
        other => panic!("no golden strategy named {other}"),
    }
}

/// Asserts the per-phase invariants the driver guarantees for every
/// strategy: timings partition each cycle's clock advance, participation
/// counts agree, and (networking disabled here) the wire counters stay
/// zero while the flop counters prove the instrumentation is live.
fn assert_phases_consistent(m: &RunMetrics) {
    let mut prev = 0.0f64;
    for r in m.records() {
        let span = r.sim_time.as_secs_f64() - prev;
        prev = r.sim_time.as_secs_f64();
        let sum = r.phases.train_s + r.phases.comm_s;
        assert!(
            (sum - span).abs() <= 1e-9 * span.max(1.0),
            "{}: cycle {} phases {sum} != span {span}",
            m.strategy(),
            r.cycle
        );
        assert!(r.phases.train_s >= 0.0 && r.phases.comm_s >= 0.0);
        assert_eq!(r.phases.aggregated_updates, r.participants);
        assert_eq!(r.phases.wire_bytes, 0, "networking is disabled");
        assert_eq!(r.phases.retries, 0);
        assert_eq!(r.phases.missed, 0);
        assert!(r.phases.train_flops > 0, "training ran kernels");
        assert!(r.phases.eval_flops > 0, "evaluation ran kernels");
    }
}

/// The tentpole regression: every strategy's fixed-seed curve is
/// bit-identical to its pre-refactor capture, and the serialized form
/// (accuracy/time intact, new fields populated) round-trips.
#[test]
fn fixed_seed_runs_match_pre_refactor_golden_metrics() {
    for (name, golden) in GOLDEN {
        let mut env = build_env(SEED, 3, 30, 30);
        let mut strategy = golden_strategy(name);
        let m = strategy.run(&mut env, CYCLES).expect("golden run");
        assert_eq!(m.strategy(), *name);
        assert_eq!(m.records().len(), golden.len());
        for (r, &(time_bits, acc_bits, loss_bits, participants, bytes_bits)) in
            m.records().iter().zip(*golden)
        {
            assert_eq!(
                r.sim_time.as_secs_f64().to_bits(),
                time_bits,
                "{name}: cycle {} sim_time drifted",
                r.cycle
            );
            assert_eq!(
                r.test_accuracy.to_bits(),
                acc_bits,
                "{name}: cycle {} accuracy drifted",
                r.cycle
            );
            assert_eq!(
                r.test_loss.to_bits(),
                loss_bits,
                "{name}: cycle {} loss drifted",
                r.cycle
            );
            assert_eq!(r.participants, participants, "{name}: cycle {}", r.cycle);
            assert_eq!(
                r.comm_bytes.to_bits(),
                bytes_bits,
                "{name}: cycle {} comm_bytes drifted",
                r.cycle
            );
        }
        assert_phases_consistent(&m);
        // The engine profiled the run: host phase timers and the nn/kernel
        // instrumentation all saw work.
        let p = m.profile();
        assert!(p.train_s > 0.0 && p.eval_s > 0.0);
        assert!(p.nn_forward_s > 0.0 && p.nn_backward_s > 0.0 && p.nn_step_s > 0.0);
        assert!(p.kernel_flops > 0 && p.kernel_elements > 0);
        // And the records survive a serialization round-trip unchanged.
        let json = serde_json::to_string(&m).expect("serialize");
        let back: RunMetrics = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, m, "{name}: JSON round-trip drifted");
    }
}

proptest! {
    /// For arbitrary small fleets, strategies, and cycle counts, the
    /// per-phase timings of every cycle sum to exactly that cycle's
    /// clock advance — the driver's accounting invariant.
    #[test]
    fn phase_timings_sum_to_cycle_time(
        strategy_idx in 0usize..5,
        cycles in 1usize..3,
        seed in 0u64..1000,
    ) {
        let (name, _) = GOLDEN[strategy_idx];
        let mut env = build_env(seed, 3, 8, 8);
        let mut strategy = golden_strategy(name);
        let m = strategy.run(&mut env, cycles).expect("run");
        prop_assert_eq!(m.records().len(), cycles);
        assert_phases_consistent(&m);
    }
}
