//! Property-based tests over cross-crate invariants.

use helios_core::softtrain::{select_layer_mask, SoftTrainer};
use helios_core::target::{keep_counts, probe_mask};
use helios_data::{partition, Dataset, SyntheticVision};
use helios_device::presets;
use helios_fl::{aggregate, FlConfig, FlEnv, MaskedUpdate, Strategy, SyncFedAvg};
use helios_nn::models::ModelKind;
use helios_nn::{models, MaskableUnits, ModelMask, NeuronId};
use helios_tensor::{
    conv2d, conv2d_backward, uniform_init, ConvSpec, ParallelismConfig, Tensor, TensorRng,
};
use proptest::prelude::*;

/// Runs `f` under a fixed ambient kernel thread budget.
fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let _guard = ParallelismConfig::with_threads(n).scoped();
    f()
}

/// Bitwise equality of two tensors (catches even sign-of-zero drift).
fn bitwise_equal(a: &Tensor, b: &Tensor) -> bool {
    a.dims() == b.dims()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    /// Aggregating identical replicas is the identity, regardless of
    /// weights and masks.
    #[test]
    fn aggregation_of_identical_replicas_is_identity(
        n in 1usize..64,
        clients in 1usize..5,
        seed in 0u64..500,
    ) {
        let mut rng = TensorRng::seed_from(seed);
        let base: Vec<f32> = (0..n).map(|_| rng.uniform(-2.0, 2.0)).collect();
        let masks: Vec<Vec<bool>> = (0..clients)
            .map(|_| (0..n).map(|_| rng.uniform(0.0, 1.0) > 0.3).collect())
            .collect();
        let weights: Vec<f64> = (0..clients).map(|_| rng.uniform(0.1, 3.0) as f64).collect();
        let updates: Vec<MaskedUpdate<'_>> = masks
            .iter()
            .zip(&weights)
            .map(|(m, &w)| MaskedUpdate {
                params: &base,
                param_mask: Some(m),
                weight: w,
            })
            .collect();
        let mut global = base.clone();
        aggregate(&mut global, &updates);
        for (g, b) in global.iter().zip(&base) {
            prop_assert!((g - b).abs() < 1e-5);
        }
    }

    /// The aggregate lies within the per-parameter min/max envelope of
    /// the previous global and all covering updates (convexity).
    #[test]
    fn aggregation_is_convex(
        n in 1usize..32,
        clients in 1usize..4,
        seed in 0u64..500,
    ) {
        let mut rng = TensorRng::seed_from(seed);
        let prev: Vec<f32> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let params: Vec<Vec<f32>> = (0..clients)
            .map(|_| (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect())
            .collect();
        let updates: Vec<MaskedUpdate<'_>> = params
            .iter()
            .map(|p| MaskedUpdate {
                params: p,
                param_mask: None,
                weight: 1.0,
            })
            .collect();
        let mut global = prev.clone();
        aggregate(&mut global, &updates);
        for i in 0..n {
            let mut lo = prev[i];
            let mut hi = prev[i];
            for p in &params {
                lo = lo.min(p[i]);
                hi = hi.max(p[i]);
            }
            prop_assert!(global[i] >= lo - 1e-5 && global[i] <= hi + 1e-5);
        }
    }

    /// keep_counts always yields between 1 and n_i active units and is
    /// monotone in the keep ratio.
    #[test]
    fn keep_counts_bounds_and_monotonicity(
        widths in proptest::collection::vec(1usize..128, 1..6),
        a in 0.01f64..1.0,
        b in 0.01f64..1.0,
    ) {
        let units = MaskableUnits(widths.clone());
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let ca = keep_counts(&units, lo);
        let cb = keep_counts(&units, hi);
        for ((&n, &x), &y) in widths.iter().zip(&ca).zip(&cb) {
            prop_assert!(x >= 1 && x <= n);
            prop_assert!(y >= x, "monotone: keep {lo} gives {x}, {hi} gives {y}");
        }
        let mask = probe_mask(&units, lo);
        prop_assert_eq!(mask.active_counts(&units), ca);
    }

    /// select_layer_mask returns exactly k active units and always
    /// includes the requested top contributors when unforced.
    #[test]
    fn selection_cardinality_and_top_inclusion(
        n in 4usize..256,
        seed in 0u64..500,
    ) {
        let mut rng = TensorRng::seed_from(seed);
        let contributions: Vec<f32> = (0..n).map(|_| rng.uniform(0.0, 10.0)).collect();
        let k = (n / 3).max(2);
        let top = (k / 5).max(1);
        let mask = select_layer_mask(&contributions, k, top, &[], &mut rng);
        prop_assert_eq!(mask.iter().filter(|&&b| b).count(), k);
        // The single largest contributor is always selected.
        let argmax = (0..n)
            .max_by(|&a, &b| contributions[a].partial_cmp(&contributions[b]).unwrap())
            .unwrap();
        prop_assert!(mask[argmax]);
    }

    /// A SoftTrainer mask always has the planned active counts, whatever
    /// the contribution history.
    #[test]
    fn soft_trainer_mask_counts_are_stable(
        widths in proptest::collection::vec(2usize..64, 1..4),
        keep in 0.05f64..1.0,
        p_s in 0.0f64..1.0,
        seed in 0u64..200,
    ) {
        let units = MaskableUnits(widths.clone());
        let mut trainer = SoftTrainer::new(
            units.clone(),
            keep,
            p_s,
            true,
            TensorRng::seed_from(seed),
        ).expect("valid parameters");
        let expected = keep_counts(&units, keep);
        let mut contributions: Vec<Vec<f32>> =
            widths.iter().map(|&n| vec![0.0; n]).collect();
        let mut rng = TensorRng::seed_from(seed ^ 1);
        for round in 0..6 {
            let mask = if round == 0 {
                trainer.next_mask(None)
            } else {
                trainer.next_mask(Some(&contributions))
            };
            trainer.observe(&mask);
            prop_assert_eq!(mask.active_counts(&units), expected.clone());
            for layer in &mut contributions {
                for u in layer.iter_mut() {
                    *u = rng.uniform(0.0, 1.0);
                }
            }
        }
    }

    /// Parameter-vector round trips preserve every model in the zoo.
    #[test]
    fn param_vector_round_trip_all_models(seed in 0u64..50) {
        let mut rng = TensorRng::seed_from(seed);
        for net in [
            models::lenet(10, &mut rng),
            models::alexnet(10, &mut rng),
            models::resnet18(20, &mut rng),
        ] {
            let mut copy = net.clone();
            let v = net.param_vector();
            prop_assert_eq!(v.len(), net.param_len());
            copy.set_param_vector(&v).expect("round trip");
            prop_assert_eq!(copy.param_vector(), v);
        }
    }

    /// Every neuron's parameter indices are disjoint and in-bounds across
    /// the whole layout, for every architecture.
    #[test]
    fn neuron_indices_partition_is_disjoint(seed in 0u64..20) {
        let mut rng = TensorRng::seed_from(seed);
        for net in [
            models::lenet(4, &mut rng),
            models::alexnet(4, &mut rng),
            models::resnet18(4, &mut rng),
        ] {
            let layout = net.layout();
            let mut claimed = vec![false; layout.total_params()];
            for id in layout.neuron_ids() {
                for idx in layout.neuron_param_indices(id) {
                    prop_assert!(idx < claimed.len());
                    prop_assert!(!claimed[idx], "index {idx} claimed twice");
                    claimed[idx] = true;
                }
            }
            // Every parameter belongs to exactly one neuron.
            prop_assert!(claimed.iter().all(|&c| c));
        }
    }

    /// A probe mask's active counts survive a trip through the network's
    /// param_mask expansion: inactive parameter count equals the sum of
    /// masked-out units' parameters.
    #[test]
    fn param_mask_size_is_consistent(keep in 0.1f64..0.9) {
        let mut rng = TensorRng::seed_from(3);
        let mut net = models::lenet(10, &mut rng);
        let units = net.maskable_units();
        let layout = net.layout();
        let mask: ModelMask = probe_mask(&units, keep);
        let pm = layout.param_mask(&mask);
        let inactive = pm.iter().filter(|&&b| !b).count();
        let mut expected = 0usize;
        for (gi, group) in layout.groups().iter().enumerate() {
            let Some(mid) = group.maskable_id() else { continue };
            for unit in 0..group.units() {
                if !mask.is_active(mid, unit) {
                    expected += layout
                        .neuron_param_indices(NeuronId { group: gi, unit })
                        .len();
                }
            }
        }
        prop_assert_eq!(inactive, expected);
    }

    /// Matmul output is bitwise identical at every thread width, for
    /// random shapes straddling the engine's small-work cutoff.
    #[test]
    fn matmul_parity_random_shapes_and_widths(
        m in 1usize..48,
        k in 1usize..48,
        n in 1usize..48,
        threads in 2usize..9,
        seed in 0u64..500,
    ) {
        let mut rng = TensorRng::seed_from(seed);
        let a = uniform_init(&[m, k], -1.0, 1.0, &mut rng);
        let b = uniform_init(&[k, n], -1.0, 1.0, &mut rng);
        let serial = with_threads(1, || a.matmul(&b)).expect("matmul");
        let parallel = with_threads(threads, || a.matmul(&b)).expect("matmul");
        prop_assert!(
            bitwise_equal(&serial, &parallel),
            "matmul [{m},{k}]x[{k},{n}] diverges at {threads} threads"
        );
    }

    /// conv2d forward and backward are bitwise identical at every thread
    /// width, for random geometry.
    #[test]
    fn conv_parity_random_shapes_and_widths(
        batch in 1usize..5,
        c in 1usize..4,
        h in 5usize..14,
        o in 1usize..6,
        threads in 2usize..9,
        seed in 0u64..500,
    ) {
        let spec = ConvSpec::new(c, o, 3, 1, 1);
        let (oh, ow) = spec.output_hw(h, h);
        let mut rng = TensorRng::seed_from(seed);
        let x = uniform_init(&[batch, c, h, h], -1.0, 1.0, &mut rng);
        let w = uniform_init(&spec.weight_dims(), -0.5, 0.5, &mut rng);
        let bias = uniform_init(&[o], -0.1, 0.1, &mut rng);
        let gout = uniform_init(&[batch, o, oh, ow], -1.0, 1.0, &mut rng);
        let fwd_s = with_threads(1, || conv2d(&x, &w, &bias, &spec)).expect("fwd");
        let bwd_s = with_threads(1, || conv2d_backward(&x, &w, &gout, &spec)).expect("bwd");
        let fwd_p = with_threads(threads, || conv2d(&x, &w, &bias, &spec)).expect("fwd");
        let bwd_p =
            with_threads(threads, || conv2d_backward(&x, &w, &gout, &spec)).expect("bwd");
        prop_assert!(bitwise_equal(&fwd_s, &fwd_p), "conv2d forward diverges");
        prop_assert!(bitwise_equal(&bwd_s.grad_input, &bwd_p.grad_input), "dX diverges");
        prop_assert!(bitwise_equal(&bwd_s.grad_weight, &bwd_p.grad_weight), "dW diverges");
        prop_assert!(bitwise_equal(&bwd_s.grad_bias, &bwd_p.grad_bias), "db diverges");
    }

    /// Determinism regression: a federated run with the same seed yields
    /// identical metrics records and a bitwise-identical global model
    /// whatever the thread budget.
    #[test]
    fn run_metrics_independent_of_thread_budget(
        threads in 2usize..9,
        seed in 0u64..40,
    ) {
        let build = |budget: usize| -> FlEnv {
            let mut rng = TensorRng::seed_from(seed);
            let (train, test) = SyntheticVision::mnist_like()
                .generate(24, 12, &mut rng)
                .expect("generate");
            let shards: Vec<Dataset> = partition::iid(train.len(), 2, &mut rng)
                .into_iter()
                .map(|idx| train.subset(&idx).expect("subset"))
                .collect();
            FlEnv::new(
                ModelKind::LeNet,
                presets::mixed_fleet(1, 1),
                shards,
                test,
                FlConfig {
                    seed,
                    batch_size: 8,
                    parallelism: ParallelismConfig::with_threads(budget),
                    ..FlConfig::default()
                },
            )
            .expect("env")
        };
        let mut serial_env = build(1);
        let mut parallel_env = build(threads);
        let serial = SyncFedAvg::new().run(&mut serial_env, 1).expect("run");
        let parallel = SyncFedAvg::new().run(&mut parallel_env, 1).expect("run");
        prop_assert_eq!(serial.records(), parallel.records());
        for (x, y) in serial_env.global().iter().zip(parallel_env.global()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
