//! Blocked-vs-naive GEMM parity: the cache-blocked kernel behind
//! `matmul` / `matmul_tn` / `matmul_nt` must be **bitwise identical**
//! to the pinned naive reference at every thread width, for any
//! operand contents — including the adversarial ones (zero-heavy
//! matrices that exercise the `a_ik == 0.0` skip, negative zeros that
//! must *not* be skipped, and subnormals that would flush under FTZ
//! arithmetic but not under the scalar chain the contract pins).
//!
//! Also pins the workspace arena's contract: a second identically
//! shaped conv cycle checks its im2col / pack scratch back out of the
//! thread-local pool without a single fresh allocation.

use helios_tensor::{
    conv2d, conv2d_backward, naive_matmul, reset_workspace_stats, uniform_init, workspace_stats,
    ConvSpec, ParallelismConfig, Tensor, TensorRng,
};
use proptest::prelude::*;

/// Thread widths the blocked kernel must agree across.
const WIDTHS: [usize; 4] = [1, 2, 4, 8];

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let _guard = ParallelismConfig::with_threads(n).scoped();
    f()
}

/// Bitwise comparison — `f32::eq` would conflate `0.0` with `-0.0` and
/// miss NaN payloads.
fn assert_bitwise(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.dims(), b.dims(), "{what}: dims");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs ({x} vs {y})"
        );
    }
}

/// One matrix element, biased toward the values that break blocked
/// kernels: exact zeros (the skip path), negative zeros (must NOT take
/// the skip path), subnormals of both signs, and ordinary finite
/// values.
fn element() -> impl Strategy<Value = f32> {
    (0u64..u64::MAX).prop_map(|r| {
        let payload = (r >> 8) as u32;
        match r % 12 {
            0..=2 => 0.0,
            3 => -0.0,
            4 => f32::from_bits(payload % 0x007f_ffff + 1),
            5 => f32::from_bits((payload % 0x007f_ffff + 1) | 0x8000_0000),
            _ => (f64::from(payload) / f64::from(u32::MAX) * 4.0 - 2.0) as f32,
        }
    })
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(element(), rows * cols)
        .prop_map(move |v| Tensor::from_vec(v, &[rows, cols]).expect("matrix"))
}

/// An (A, B) operand pair with shapes that straddle the microkernel
/// tile edges: MR=4 rows, panel widths 16/48/64 columns, partial-panel
/// and tail-tile paths.
fn operand_pair(
    m_max: usize,
    k_max: usize,
    n_max: usize,
) -> impl Strategy<Value = (Tensor, Tensor)> {
    (1..m_max, 1..k_max, 1..n_max).prop_flat_map(|(m, k, n)| (matrix(m, k), matrix(k, n)))
}

proptest! {

    /// `matmul` (blocked, any width) ≡ `naive_matmul` bitwise under
    /// adversarial operand contents.
    #[test]
    fn blocked_matmul_is_bitwise_naive(pair in operand_pair(40, 40, 80)) {
        let (a, b) = pair;
        let (m, k, n) = (a.dims()[0], a.dims()[1], b.dims()[1]);
        let reference = with_threads(1, || naive_matmul(&a, &b).expect("naive"));
        for w in WIDTHS {
            let blocked = with_threads(w, || a.matmul(&b).expect("blocked"));
            assert_bitwise(&reference, &blocked, &format!("matmul {m}x{k}x{n} w={w}"));
        }
    }
}

proptest! {

    /// The transpose-free variants — `matmul_tn` (Aᵀ·B) and `matmul_nt`
    /// (A·Bᵀ) — agree bitwise with the naive product of materialized
    /// transposes, at every width, under the same adversarial operands.
    #[test]
    fn layout_variants_are_bitwise_naive(pair in operand_pair(24, 24, 70)) {
        let (a, b) = pair;
        let (m, k, n) = (a.dims()[0], a.dims()[1], b.dims()[1]);
        let at = a.transpose().expect("a^T");
        let bt = b.transpose().expect("b^T");
        let reference = with_threads(1, || naive_matmul(&a, &b).expect("naive"));
        for w in WIDTHS {
            let tag = format!("{m}x{k}x{n} w={w}");
            let tn = with_threads(w, || at.matmul_tn(&b).expect("tn"));
            assert_bitwise(&reference, &tn, &format!("tn {tag}"));
            let nt = with_threads(w, || a.matmul_nt(&bt).expect("nt"));
            assert_bitwise(&reference, &nt, &format!("nt {tag}"));
        }
    }
}

/// The k axis crossing the KC slab boundary (and landing on the
/// balanced-split path) stays bitwise-naive — proptest dims stay small
/// for speed, so pin the big-k cases deterministically.
#[test]
fn multi_slab_k_is_bitwise_naive() {
    for (m, k, n) in [(7, 300, 33), (4, 512, 64), (9, 257, 17)] {
        let mut rng = TensorRng::seed_from(k as u64);
        let a = uniform_init(&[m, k], -1.0, 1.0, &mut rng);
        let b = uniform_init(&[k, n], -1.0, 1.0, &mut rng);
        let at = a.transpose().expect("a^T");
        let bt = b.transpose().expect("b^T");
        let reference = with_threads(1, || naive_matmul(&a, &b).expect("naive"));
        for w in WIDTHS {
            let tag = format!("{m}x{k}x{n} w={w}");
            for (name, out) in [
                ("nn", with_threads(w, || a.matmul(&b).expect("nn"))),
                ("tn", with_threads(w, || at.matmul_tn(&b).expect("tn"))),
                ("nt", with_threads(w, || a.matmul_nt(&bt).expect("nt"))),
            ] {
                assert_eq!(reference.dims(), out.dims());
                for (i, (x, y)) in reference.as_slice().iter().zip(out.as_slice()).enumerate() {
                    assert_eq!(x.to_bits(), y.to_bits(), "{name} {tag}: element {i}");
                }
            }
        }
    }
}

/// Second identically shaped conv cycle reuses the thread-local
/// workspace: the arena reports fresh allocations for the first
/// forward/backward pass and **zero** for the repeat.
#[test]
fn conv_workspace_is_reused_across_cycles() {
    let _guard = ParallelismConfig::serial().scoped();
    let spec = ConvSpec::new(3, 8, 3, 1, 1);
    let mut rng = TensorRng::seed_from(11);
    let x = uniform_init(&[2, 3, 12, 12], -1.0, 1.0, &mut rng);
    let w = uniform_init(&spec.weight_dims(), -0.5, 0.5, &mut rng);
    let bias = uniform_init(&[8], -0.1, 0.1, &mut rng);
    let (oh, ow) = spec.output_hw(12, 12);
    let gout = uniform_init(&[2, 8, oh, ow], -1.0, 1.0, &mut rng);

    reset_workspace_stats();
    let first = conv2d(&x, &w, &bias, &spec).expect("fwd 1");
    conv2d_backward(&x, &w, &gout, &spec).expect("bwd 1");
    let after_first = workspace_stats();
    assert!(
        after_first.acquires > 0,
        "conv must route its scratch through the arena"
    );

    let second = conv2d(&x, &w, &bias, &spec).expect("fwd 2");
    conv2d_backward(&x, &w, &gout, &spec).expect("bwd 2");
    let after_second = workspace_stats();
    assert_eq!(
        after_second.reallocs, after_first.reallocs,
        "an identically shaped second cycle must not allocate scratch"
    );
    assert!(after_second.acquires > after_first.acquires);
    for (a, b) in first.as_slice().iter().zip(second.as_slice()) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "scratch reuse must not leak state"
        );
    }
}
