//! Cross-crate integration tests: the full pipeline, every strategy, one
//! roof.

use helios_core::{HeliosConfig, HeliosStrategy, Identification, VolumePolicy};
use helios_data::{partition, Dataset, SyntheticVision};
use helios_device::presets;
use helios_fl::{Afo, AsyncFl, FlConfig, FlEnv, RandomPartial, Strategy, SyncFedAvg};
use helios_nn::models::ModelKind;
use helios_tensor::TensorRng;

fn build_env(model: ModelKind, capable: usize, stragglers: usize, seed: u64) -> FlEnv {
    let clients = capable + stragglers;
    let mut rng = TensorRng::seed_from(seed);
    let spec = match model {
        ModelKind::LeNet => SyntheticVision::mnist_like(),
        ModelKind::AlexNet => SyntheticVision::cifar10_like(),
        ModelKind::ResNet18 => SyntheticVision::cifar100_like(),
    };
    let (train, test) = spec.generate(40 * clients, 40, &mut rng).expect("generate");
    let shards: Vec<Dataset> = partition::iid(train.len(), clients, &mut rng)
        .into_iter()
        .map(|idx| train.subset(&idx).expect("subset"))
        .collect();
    FlEnv::new(
        model,
        presets::mixed_fleet(capable, stragglers),
        shards,
        test,
        FlConfig {
            seed,
            batch_size: 8,
            ..FlConfig::default()
        },
    )
    .expect("env builds")
}

#[test]
fn every_strategy_completes_on_every_architecture() {
    for model in [ModelKind::LeNet, ModelKind::AlexNet, ModelKind::ResNet18] {
        let strategies: Vec<Box<dyn Strategy>> = vec![
            Box::new(SyncFedAvg::new()),
            Box::new(AsyncFl::new(vec![1])),
            Box::new(Afo::new(vec![1])),
            Box::new(RandomPartial::new(vec![None, Some(0.4)])),
            Box::new(HeliosStrategy::new(HeliosConfig::default())),
        ];
        for mut s in strategies {
            let mut env = build_env(model, 1, 1, 5);
            let m = s.run(&mut env, 2).expect("strategy completes");
            assert_eq!(m.records().len(), 2, "{model:?}/{}", s.name());
            for r in m.records() {
                assert!((0.0..=1.0).contains(&r.test_accuracy));
                assert!(r.test_loss.is_finite());
                assert!(r.participants >= 1);
            }
            assert!(m.total_time().as_secs_f64() > 0.0);
        }
    }
}

#[test]
fn helios_matches_sync_pace_of_capable_devices() {
    // The core promise: with soft-training, the fleet cycles at roughly
    // the capable pace, not the straggler pace.
    let mut helios_env = build_env(ModelKind::LeNet, 2, 2, 6);
    let capable_cycle = helios_env
        .client(0)
        .expect("client 0")
        .cycle_time()
        .as_secs_f64();
    let straggler_cycle = helios_env
        .client(3)
        .expect("client 3")
        .cycle_time()
        .as_secs_f64();
    assert!(
        straggler_cycle > 2.0 * capable_cycle,
        "fleet is heterogeneous"
    );
    let m = HeliosStrategy::new(HeliosConfig::default())
        .run(&mut helios_env, 3)
        .expect("helios runs");
    let per_cycle = m.total_time().as_secs_f64() / 3.0;
    assert!(
        per_cycle < 1.35 * capable_cycle,
        "helios cycle {per_cycle:.1}s should track capable {capable_cycle:.1}s, \
         not straggler {straggler_cycle:.1}s"
    );
}

#[test]
fn helios_strategies_agree_across_identification_modes() {
    let configs = [
        HeliosConfig {
            identification: Identification::ResourceBased {
                slowdown_threshold: 1.5,
            },
            ..HeliosConfig::default()
        },
        HeliosConfig {
            identification: Identification::TimeBased {
                iterations: 2,
                top_k: 2,
            },
            ..HeliosConfig::default()
        },
    ];
    let mut straggler_sets = Vec::new();
    for config in configs {
        let mut env = build_env(ModelKind::LeNet, 2, 2, 7);
        let mut s = HeliosStrategy::new(config);
        s.initialize(&mut env).expect("init");
        straggler_sets.push(s.stragglers().to_vec());
    }
    assert_eq!(straggler_sets[0], straggler_sets[1]);
    assert_eq!(straggler_sets[0], vec![2, 3]);
}

#[test]
fn predefined_and_fitted_volumes_both_run() {
    for volume in [
        VolumePolicy::Predefined(vec![0.3, 0.5]),
        VolumePolicy::ResourceFitted,
    ] {
        let mut env = build_env(ModelKind::LeNet, 1, 1, 8);
        let mut s = HeliosStrategy::new(HeliosConfig {
            volume,
            ..HeliosConfig::default()
        });
        let m = s.run(&mut env, 2).expect("runs");
        assert_eq!(m.records().len(), 2);
        assert!(s.keep_ratio(1).expect("straggler has volume") <= 1.0);
    }
}

#[test]
fn global_model_changes_only_through_aggregation() {
    let mut env = build_env(ModelKind::LeNet, 1, 1, 9);
    let before = env.global().to_vec();
    // Client-side training must not mutate the server's global vector.
    let _ = env
        .client_mut(0)
        .expect("client")
        .train_local()
        .expect("train");
    assert_eq!(env.global(), &before[..]);
    let mut s = SyncFedAvg::new();
    let _ = s.run(&mut env, 1).expect("runs");
    assert_ne!(env.global(), &before[..], "aggregation updates the global");
}

#[test]
fn full_runs_are_bit_reproducible_across_strategies() {
    for build in [0usize, 1] {
        let run = |seed: u64| -> Vec<f32> {
            let mut env = build_env(ModelKind::LeNet, 1, 1, seed);
            match build {
                0 => {
                    let _ = SyncFedAvg::new().run(&mut env, 2).expect("sync");
                }
                _ => {
                    let _ = HeliosStrategy::new(HeliosConfig::default())
                        .run(&mut env, 2)
                        .expect("helios");
                }
            }
            env.global().to_vec()
        };
        assert_eq!(run(11), run(11), "same seed, same final model");
        assert_ne!(run(11), run(12), "different seed, different model");
    }
}

#[test]
fn skip_regulator_bounds_neuron_starvation_end_to_end() {
    // Over a real multi-cycle run, no neuron may be skipped for more than
    // the §VI.A threshold plus one cycle.
    let mut env = build_env(ModelKind::LeNet, 1, 1, 13);
    let mut s = HeliosStrategy::new(HeliosConfig::default());
    s.initialize(&mut env).expect("init");
    let keep = s.keep_ratio(1).expect("straggler volume");
    let units = env
        .client_mut(1)
        .expect("client")
        .network_mut()
        .maskable_units();
    let total: usize = units.total();
    let selected: usize = units
        .0
        .iter()
        .map(|&n| ((keep * n as f64).ceil() as usize).clamp(1, n))
        .sum();
    let threshold = 1.0 + total as f64 / selected as f64;
    let cycles = 12;
    // Track per-unit skip streaks from the straggler's masks.
    let mut streaks = vec![0u32; total];
    let mut max_streak = 0u32;
    for cycle in 0..cycles {
        let m = s.run(&mut env, 1).expect("one cycle");
        assert_eq!(m.records().len(), 1);
        let _ = cycle;
        let mask = env
            .client(1)
            .expect("client")
            .current_mask()
            .expect("straggler is masked")
            .clone();
        let mut flat = 0usize;
        for (layer, &n) in units.0.iter().enumerate() {
            for unit in 0..n {
                if mask.is_active(layer, unit) {
                    streaks[flat] = 0;
                } else {
                    streaks[flat] += 1;
                    max_streak = max_streak.max(streaks[flat]);
                }
                flat += 1;
            }
        }
    }
    assert!(
        (max_streak as f64) <= threshold + 1.0,
        "skip streak {max_streak} exceeded threshold {threshold:.1}"
    );
}
