//! Fleet-scale contracts: lazy-vs-eager bitwise equivalence, sampling
//! determinism and statistics, streaming-aggregation parity, and Helios
//! straggler identification on sampled cohorts.
//!
//! The lazy population ([`helios_fl::FleetSpec`] behind
//! `FlEnv::new_lazy`) promises to be an *implementation detail*: a run
//! over lazily materialized devices must be bit-identical to the same
//! run over an eagerly constructed fleet built from the same pure
//! generators, for every strategy and at every thread width. The
//! per-round [`helios_fl::ClientSampler`] promises deterministic replay
//! (same seed ⇒ same cohort sequence, regardless of threads or process
//! restarts) and sane statistics (uniform coverage, no offline
//! selections). The streaming [`helios_fl::OnlineAggregator`] promises
//! to equal collect-then-average bitwise on the real update streams of
//! all five strategies, dropped updates included.

use helios_core::{HeliosConfig, HeliosStrategy};
use helios_data::{partition, Dataset, ShardSynthesizer, SyntheticVision};
use helios_device::{presets, ProfileSynthesizer};
use helios_fl::{
    Afo, AsyncFl, AvailabilityModel, ClientSampler, FaultConfig, FlConfig, FlEnv, FleetSpec,
    LinkProfile, MaskedUpdate, NetConfig, OnlineAggregator, RandomPartial, Result, RoundPolicy,
    RoutedCycle, RunMetrics, SamplerConfig, Strategy, SyncFedAvg,
};
use helios_nn::models::ModelKind;
use helios_tensor::{ParallelismConfig, TensorRng};
use proptest::prelude::*;

const THREAD_WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Bit patterns of a parameter vector, for exact comparison with a
/// readable failure.
fn bits(params: &[f32]) -> Vec<u32> {
    params.iter().map(|x| x.to_bits()).collect()
}

/// The pure generators of a test fleet: `population` devices, ~30%
/// stragglers, 6-sample shards.
fn fleet_spec(population: usize, seed: u64) -> FleetSpec {
    FleetSpec::new(
        population,
        ProfileSynthesizer::new(seed, 0.3),
        ShardSynthesizer::new(SyntheticVision::mnist_like(), 6, seed).expect("shards"),
    )
}

fn fl_config(seed: u64, threads: usize, sampling: SamplerConfig) -> FlConfig {
    FlConfig {
        seed,
        parallelism: ParallelismConfig::with_threads(threads),
        sampling,
        ..FlConfig::default()
    }
}

/// Builds the lazy environment and its eager twin from the *same* pure
/// generators, so any observable difference between the two is a bug in
/// the lazy path.
fn lazy_and_eager_twin(spec: &FleetSpec, config: FlConfig) -> (FlEnv, FlEnv) {
    let test = spec.shards.test_set(20).expect("test set");
    let fleet: Vec<_> = (0..spec.population)
        .map(|i| spec.profiles.profile(i))
        .collect();
    let shards: Vec<Dataset> = (0..spec.population)
        .map(|i| spec.shards.shard(i).expect("shard"))
        .collect();
    let eager = FlEnv::new(
        ModelKind::LeNet,
        fleet,
        shards,
        test.clone(),
        config.clone(),
    )
    .expect("eager");
    let lazy = FlEnv::new_lazy(ModelKind::LeNet, spec.clone(), test, config).expect("lazy");
    (lazy, eager)
}

/// A fresh instance of the `which`-th of the five collaboration
/// strategies, sized for an `n`-device fleet.
fn make_strategy(which: usize, n: usize) -> Box<dyn Strategy> {
    let ratios = (0..n)
        .map(|i| if i % 2 == 1 { Some(0.5) } else { None })
        .collect();
    match which {
        0 => Box::new(SyncFedAvg::new()),
        1 => Box::new(RandomPartial::new(ratios)),
        2 => Box::new(AsyncFl::new(vec![n - 1])),
        3 => Box::new(Afo::new(vec![n - 1])),
        _ => Box::new(HeliosStrategy::new(HeliosConfig::default())),
    }
}

/// The tentpole guarantee: for every strategy, a lazy fleet replays the
/// eager fleet bit-for-bit — metrics and final global parameters — at
/// 1/2/4/8 worker threads (the eager reference runs serially).
#[test]
fn lazy_fleet_matches_eager_twin_bitwise_for_every_strategy() {
    const SEED: u64 = 4207;
    const N: usize = 6;
    const CYCLES: usize = 3;
    let spec = fleet_spec(N, SEED);
    for which in 0..5 {
        let (_, mut eager) =
            lazy_and_eager_twin(&spec, fl_config(SEED, 1, SamplerConfig::default()));
        let reference = make_strategy(which, N)
            .run(&mut eager, CYCLES)
            .expect("eager reference run");
        for threads in THREAD_WIDTHS {
            let mut strategy = make_strategy(which, N);
            let (mut lazy, _) =
                lazy_and_eager_twin(&spec, fl_config(SEED, threads, SamplerConfig::default()));
            let metrics = strategy.run(&mut lazy, CYCLES).expect("lazy run");
            assert_eq!(
                metrics,
                reference,
                "{}: lazy metrics diverged from eager at {threads} threads",
                strategy.name()
            );
            assert_eq!(
                bits(lazy.global()),
                bits(eager.global()),
                "{}: lazy global parameters diverged at {threads} threads",
                strategy.name()
            );
        }
    }
}

proptest! {
    /// Lazy-vs-eager equivalence holds with sampling enabled too, over
    /// random seeds, fleet sizes, cohort sizes, and thread widths.
    #[test]
    fn sampled_lazy_matches_sampled_eager(
        seed in 0u64..1_000,
        n in 2usize..4,
        k in 1usize..3,
        width_idx in 0usize..4,
    ) {
        let spec = fleet_spec(n, seed);
        let sampling = SamplerConfig::uniform(k.min(n));
        let threads = THREAD_WIDTHS[width_idx];
        let (mut lazy, mut eager) =
            lazy_and_eager_twin(&spec, fl_config(seed, threads, sampling));
        let a = SyncFedAvg::new().run(&mut lazy, 2).expect("lazy run");
        let b = SyncFedAvg::new().run(&mut eager, 2).expect("eager run");
        prop_assert_eq!(a, b);
        prop_assert_eq!(bits(lazy.global()), bits(eager.global()));
        prop_assert!(lazy.materialized_clients() <= n);
    }
}

/// Same seed ⇒ identical cohort sequence, across independent
/// environments and thread widths, for both sampling strategies; and
/// consecutive cycles draw different cohorts.
#[test]
fn cohort_sequence_replays_bitwise_across_runs_and_thread_widths() {
    const SEED: u64 = 611;
    const POPULATION: usize = 64;
    const CYCLES: usize = 6;
    for sampling in [SamplerConfig::uniform(8), SamplerConfig::weighted(8)] {
        let spec =
            fleet_spec(POPULATION, SEED).with_availability(AvailabilityModel::new(SEED, 0.25));
        let draw_sequence = |threads: usize| -> Vec<Vec<usize>> {
            let test = spec.shards.test_set(10).expect("test set");
            let mut env = FlEnv::new_lazy(
                ModelKind::LeNet,
                spec.clone(),
                test,
                fl_config(SEED, threads, sampling),
            )
            .expect("lazy env");
            (0..CYCLES)
                .map(|c| env.select_cohort(c).expect("cohort"))
                .collect()
        };
        let reference = draw_sequence(1);
        assert_eq!(reference.len(), CYCLES);
        for cohort in &reference {
            assert_eq!(cohort.len(), 8, "exact cohort size");
            assert!(cohort.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
        }
        assert!(
            (1..CYCLES).any(|c| reference[c] != reference[0]),
            "cycles must not all draw the same cohort"
        );
        for threads in [2usize, 4, 8] {
            assert_eq!(
                draw_sequence(threads),
                reference,
                "cohort sequence changed at {threads} threads"
            );
        }
    }
}

/// Uniform sampling covers a 10k-device population evenly over 200
/// rounds of 500: no device is starved or favored, and the dispersion
/// of per-device selection counts is consistent with a uniform draw.
#[test]
fn uniform_sampling_covers_the_population_evenly() {
    const POPULATION: usize = 10_000;
    const ROUNDS: usize = 200;
    const K: usize = 500;
    let sampler = ClientSampler::new(SamplerConfig::uniform(K), 9_241);
    let always_on = AvailabilityModel::always_on();
    let mut counts = vec![0u32; POPULATION];
    for cycle in 0..ROUNDS {
        let cohort = sampler.cohort(POPULATION, cycle, &always_on);
        assert_eq!(cohort.len(), K);
        for &d in &cohort {
            counts[d] += 1;
        }
    }
    // Expected selections per device: 200 * 500 / 10_000 = 10.
    let expected = (ROUNDS * K) as f64 / POPULATION as f64;
    let never = counts.iter().filter(|&&c| c == 0).count();
    assert!(
        never <= 5,
        "{never} devices never sampled (expected ~0.35 under uniformity)"
    );
    let max = counts.iter().copied().max().unwrap_or(0);
    assert!(
        max <= 35,
        "some device sampled {max} times (expected ~10 under uniformity)"
    );
    // Pearson dispersion statistic, sum((observed - expected)^2 /
    // expected). Per-round sampling is without replacement, so the
    // per-device variance is rounds * (k/n) * (1 - k/n) = 9.5 and the
    // statistic concentrates near cells * 9.5/10 = 9_500 with a
    // standard deviation of ~134; the window below is ~±7 sigma.
    let chi2: f64 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    assert!(
        (8_500.0..=10_500.0).contains(&chi2),
        "dispersion statistic {chi2:.1} outside the uniform window"
    );
}

/// Weighted sampling on a population with permanently offline devices:
/// offline devices are never drawn into a cohort, end to end through
/// `FlEnv::select_cohort`, and a full training run over the weighted
/// cohorts completes with exactly the configured participation.
#[test]
fn weighted_sampling_never_selects_offline_devices_end_to_end() {
    const SEED: u64 = 355;
    const POPULATION: usize = 60;
    let availability = AvailabilityModel::new(SEED, 0.4);
    let spec = fleet_spec(POPULATION, SEED).with_availability(availability);
    let test = spec.shards.test_set(10).expect("test set");
    let mut env = FlEnv::new_lazy(
        ModelKind::LeNet,
        spec,
        test,
        fl_config(SEED, 2, SamplerConfig::weighted(10)),
    )
    .expect("lazy env");
    for cycle in 0..6 {
        let cohort = env.select_cohort(cycle).expect("cohort");
        assert_eq!(cohort.len(), 10);
        for &d in &cohort {
            assert!(
                availability.availability(d, cycle) > 0.0,
                "cycle {cycle} drew permanently offline device {d}"
            );
        }
    }
    let metrics = SyncFedAvg::new().run(&mut env, 2).expect("weighted run");
    assert!(metrics.records().iter().all(|r| r.participants == 10));
}

/// Wraps a policy and checks, at every aggregation, that the streaming
/// [`OnlineAggregator`] fold over the cycle's *real* routed updates is
/// bitwise identical to an independently implemented
/// collect-then-average; for the plain-FedAvg policies it additionally
/// checks the policy's own aggregation equals that reference.
struct StreamParity<P> {
    inner: P,
    /// Whether `inner` aggregates with plain sample-count FedAvg (so
    /// the reference must equal the post-aggregate global exactly).
    plain_fedavg: bool,
    cycles_checked: usize,
    missed_updates: usize,
}

impl<P> StreamParity<P> {
    fn new(inner: P, plain_fedavg: bool) -> Self {
        StreamParity {
            inner,
            plain_fedavg,
            cycles_checked: 0,
            missed_updates: 0,
        }
    }
}

/// Reference collect-then-average, written out from the aggregation
/// rule itself (per-index weighted mean over covering updates, in
/// update order; uncovered indices keep the old global value) — it
/// shares no code with [`OnlineAggregator`].
fn collect_then_average(global: &[f32], routed: &RoutedCycle) -> Vec<f32> {
    let n = global.len();
    let mut num = vec![0.0f64; n];
    let mut den = vec![0.0f64; n];
    for u in &routed.updates {
        let w = u.num_samples as f64;
        for i in 0..n {
            if u.param_mask.as_ref().is_none_or(|m| m[i]) {
                num[i] += w * f64::from(u.params[i]);
                den[i] += w;
            }
        }
    }
    (0..n)
        .map(|i| {
            if den[i] > 0.0 {
                (num[i] / den[i]) as f32
            } else {
                global[i]
            }
        })
        .collect()
}

impl<P: RoundPolicy> RoundPolicy for StreamParity<P> {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn begin_run(&mut self, env: &mut FlEnv) -> Result<()> {
        self.inner.begin_run(env)
    }
    fn select(&mut self, env: &mut FlEnv, cycle: usize) -> Result<Vec<usize>> {
        self.inner.select(env, cycle)
    }
    fn broadcast(&mut self, env: &mut FlEnv, cycle: usize, participants: &[usize]) -> Result<()> {
        self.inner.broadcast(env, cycle, participants)
    }
    fn configure_client(&mut self, env: &mut FlEnv, cycle: usize, client: usize) -> Result<()> {
        self.inner.configure_client(env, cycle, client)
    }
    fn aggregate(&mut self, env: &mut FlEnv, cycle: usize, routed: &RoutedCycle) -> Result<()> {
        let before = env.global().to_vec();
        let mut acc = OnlineAggregator::new(before.len());
        for u in &routed.updates {
            acc.push(&MaskedUpdate {
                params: &u.params,
                param_mask: u.param_mask.as_deref(),
                weight: u.num_samples as f64,
            });
        }
        let mut streamed = before.clone();
        acc.finish_into(&mut streamed);
        let reference = collect_then_average(&before, routed);
        assert_eq!(
            bits(&streamed),
            bits(&reference),
            "{}: streaming fold diverged from collect-then-average at cycle {cycle}",
            self.inner.name()
        );
        self.cycles_checked += 1;
        self.missed_updates += routed.missed.len();
        self.inner.aggregate(env, cycle, routed)?;
        if self.plain_fedavg {
            assert_eq!(
                bits(env.global()),
                bits(&reference),
                "{}: policy aggregation diverged from the reference at cycle {cycle}",
                self.inner.name()
            );
        }
        Ok(())
    }
    fn cycle_span(
        &mut self,
        env: &FlEnv,
        cycle: usize,
        routed: &RoutedCycle,
    ) -> Result<helios_device::SimTime> {
        self.inner.cycle_span(env, cycle, routed)
    }
    fn post_cycle(&mut self, env: &mut FlEnv, cycle: usize) -> Result<()> {
        self.inner.post_cycle(env, cycle)
    }
}

/// A lossy networked environment: drops and corruption frequent enough
/// that updates genuinely go missing during the parity runs.
fn lossy_env(seed: u64, clients: usize) -> FlEnv {
    let mut rng = TensorRng::seed_from(seed);
    let (train, test) = SyntheticVision::mnist_like()
        .generate(24 * clients, 20, &mut rng)
        .expect("dataset");
    let shards: Vec<Dataset> = partition::iid(train.len(), clients, &mut rng)
        .into_iter()
        .map(|idx| train.subset(&idx).expect("subset"))
        .collect();
    FlEnv::new(
        ModelKind::LeNet,
        presets::mixed_fleet(clients - 1, 1),
        shards,
        test,
        FlConfig {
            seed,
            net: NetConfig {
                enabled: true,
                link: LinkProfile::constrained(2e6, 0.05),
                faults: FaultConfig {
                    drop_prob: 0.5,
                    corrupt_prob: 0.2,
                    delay_prob: 0.2,
                    max_extra_delay_s: 0.5,
                },
                max_retries: 1,
                ..NetConfig::default()
            },
            ..FlConfig::default()
        },
    )
    .expect("env")
}

/// Streaming aggregation equals collect-then-average bitwise on the
/// live update streams of all five strategies under a lossy network —
/// masked sub-model updates and dropped updates included.
#[test]
fn streaming_aggregation_matches_collect_then_average_for_every_strategy() {
    const SEED: u64 = 7788;
    const N: usize = 4;
    const CYCLES: usize = 3;
    let ratios = (0..N)
        .map(|i| if i % 2 == 1 { Some(0.5) } else { None })
        .collect();
    let wrapped: Vec<(Box<dyn Strategy>, &str)> = vec![
        (
            Box::new(StreamParity::new(SyncFedAvg::new(), true)),
            "sync_fedavg",
        ),
        (
            Box::new(StreamParity::new(RandomPartial::new(ratios), true)),
            "random_partial",
        ),
        (
            Box::new(StreamParity::new(AsyncFl::new(vec![N - 1]), true)),
            "async_fl",
        ),
        (
            Box::new(StreamParity::new(Afo::new(vec![N - 1]), false)),
            "afo",
        ),
        (
            Box::new(StreamParity::new(
                HeliosStrategy::new(HeliosConfig::default()),
                false,
            )),
            "helios",
        ),
    ];
    let mut total_missed = 0usize;
    for (mut strategy, label) in wrapped {
        let mut env = lossy_env(SEED, N);
        let metrics = strategy.run(&mut env, CYCLES).expect("lossy parity run");
        assert_eq!(metrics.records().len(), CYCLES, "{label} completed");
        total_missed += metrics
            .records()
            .iter()
            .map(|r| r.phases.missed)
            .sum::<usize>();
    }
    // The fault mix is aggressive enough that the parity claim was
    // genuinely exercised on incomplete update sets.
    assert!(
        total_missed > 0,
        "lossy runs delivered everything — parity never saw a dropped update"
    );
}

/// Helios straggler identification works cohort-relatively on a sampled
/// lazy fleet: a 16-device population trains 5-device cohorts, the run
/// replays bitwise across thread widths, stragglers get soft-trained,
/// and unsampled devices stay unmaterialized.
#[test]
fn helios_identifies_stragglers_on_sampled_cohorts() {
    const SEED: u64 = 1931;
    const POPULATION: usize = 16;
    const CYCLES: usize = 3;
    let spec = FleetSpec::new(
        POPULATION,
        ProfileSynthesizer::new(SEED, 0.5),
        ShardSynthesizer::new(SyntheticVision::mnist_like(), 6, SEED).expect("shards"),
    );
    let run_at = |threads: usize| -> (RunMetrics, usize, Vec<u32>) {
        let test = spec.shards.test_set(16).expect("test set");
        let mut env = FlEnv::new_lazy(
            ModelKind::LeNet,
            spec.clone(),
            test,
            fl_config(SEED, threads, SamplerConfig::uniform(5)),
        )
        .expect("lazy env");
        let metrics = HeliosStrategy::new(HeliosConfig::default())
            .run(&mut env, CYCLES)
            .expect("sampled helios run");
        (metrics, env.materialized_clients(), bits(env.global()))
    };
    let (reference, materialized, global) = run_at(1);
    assert!(reference.records().iter().all(|r| r.participants <= 5));
    assert!(
        materialized < POPULATION,
        "unsampled devices must stay unmaterialized ({materialized} of {POPULATION})"
    );
    for threads in [2usize, 4, 8] {
        let (metrics, _, g) = run_at(threads);
        assert_eq!(
            metrics, reference,
            "sampled Helios run diverged at {threads} threads"
        );
        assert_eq!(g, global, "global parameters diverged at {threads} threads");
    }
}
