//! Wire-protocol v2 integration suite: the tolerance-based golden
//! harness plus adversarial roundtrip/robustness properties.
//!
//! The harness runs the same fixed-seed `SyncFedAvg` workload once per
//! compression mode and pins each run to the uncompressed reference:
//!
//! - **lossless modes** (delta, top-k at ratio 1.0) must stay on the
//!   *bitwise* pins — identical accuracy/loss/sim-time bits and identical
//!   global parameter bits, exactly like the v1 transparency contract;
//! - **lossy modes** (top-k below 1.0, f16/int8 quantization) must land
//!   within the explicit per-metric tolerances below — the repo's first
//!   non-bitwise golden, deliberately loose enough to survive unrelated
//!   refactors and tight enough to catch a broken dequantizer.
//!
//! The proptests drive every v2 layout over adversarial payloads (NaN
//! payload bits, infinities, signed zeros, subnormals, arbitrary bit
//! patterns) and check the documented reconstruction guarantees; a
//! robustness property feeds the decoder garbage, truncations, and
//! bit-flips and demands a typed error every time, never a panic.

use helios_data::{partition, Dataset, SyntheticVision};
use helios_device::presets;
use helios_fl::{
    CompressionConfig, CompressionMode, FlConfig, FlEnv, NetConfig, RunMetrics, Strategy as _,
    SyncFedAvg,
};
use helios_net::codec::{self, Payload};
use helios_nn::models::ModelKind;
use helios_tensor::{ParallelismConfig, TensorRng};
use proptest::prelude::*;

const SEED: u64 = 7401;
const CYCLES: usize = 3;

// ---- per-metric tolerances for the lossy modes ----
//
// The workload is tiny (3 clients, 30 test samples), so accuracy moves
// in 1/30 steps; the tolerances admit a couple of steps of drift from
// quantization noise while rejecting anything structurally wrong.
const TOPK_ACC_TOL: f64 = 0.20;
const TOPK_LOSS_TOL: f64 = 0.60;
const QF16_ACC_TOL: f64 = 0.10;
const QF16_LOSS_TOL: f64 = 0.30;
const QI8_ACC_TOL: f64 = 0.20;
const QI8_LOSS_TOL: f64 = 0.60;

fn make_env(seed: u64, compression: CompressionConfig) -> FlEnv {
    let clients = 3;
    let mut rng = TensorRng::seed_from(seed);
    let (train, test) = SyntheticVision::mnist_like()
        .generate(30 * clients, 30, &mut rng)
        .expect("dataset");
    let shards: Vec<Dataset> = partition::iid(train.len(), clients, &mut rng)
        .into_iter()
        .map(|idx| train.subset(&idx).expect("subset"))
        .collect();
    FlEnv::new(
        ModelKind::LeNet,
        presets::mixed_fleet(2, 1),
        shards,
        test,
        FlConfig {
            seed,
            parallelism: ParallelismConfig::with_threads(1),
            net: NetConfig {
                enabled: true,
                compression,
                ..NetConfig::default()
            },
            ..FlConfig::default()
        },
    )
    .expect("env")
}

fn run_mode(compression: CompressionConfig) -> (RunMetrics, Vec<u32>, u64) {
    let mut env = make_env(SEED, compression);
    let metrics = SyncFedAvg::new().run(&mut env, CYCLES).expect("run");
    let bits = env.global().iter().map(|p| p.to_bits()).collect();
    let wire = env.transport().expect("transport").stats().bytes_on_wire;
    (metrics, bits, wire)
}

fn mode_cfg(mode: CompressionMode, topk_ratio: f64) -> CompressionConfig {
    CompressionConfig { mode, topk_ratio }
}

/// Lossless v2 modes reproduce the uncompressed reference bit-for-bit:
/// same per-cycle accuracy/loss/sim-time bits, same global parameters.
#[test]
fn lossless_modes_stay_on_the_bitwise_pins() {
    let (reference, ref_bits, _) = run_mode(CompressionConfig::default());
    for cfg in [
        mode_cfg(CompressionMode::Delta, 0.1),
        mode_cfg(CompressionMode::TopK, 1.0),
    ] {
        let (m, bits, _) = run_mode(cfg);
        assert_eq!(m.records().len(), reference.records().len());
        for (r, g) in m.records().iter().zip(reference.records()) {
            assert_eq!(
                r.test_accuracy.to_bits(),
                g.test_accuracy.to_bits(),
                "{:?}: cycle {} accuracy drifted off the bitwise pin",
                cfg.mode,
                r.cycle
            );
            assert_eq!(
                r.test_loss.to_bits(),
                g.test_loss.to_bits(),
                "{:?}: cycle {} loss drifted off the bitwise pin",
                cfg.mode,
                r.cycle
            );
            assert_eq!(
                r.sim_time.as_secs_f64().to_bits(),
                g.sim_time.as_secs_f64().to_bits(),
                "{:?}: cycle {} sim-time drifted",
                cfg.mode,
                r.cycle
            );
            assert_eq!(r.participants, g.participants);
        }
        assert_eq!(
            bits, ref_bits,
            "{:?}: global parameters must be bitwise identical",
            cfg.mode
        );
    }
}

/// Lossy v2 modes land within the explicit per-metric tolerances of the
/// reference run while genuinely shrinking the bytes on the wire.
#[test]
fn lossy_modes_stay_within_tolerance_of_the_reference() {
    let (reference, _, ref_wire) = run_mode(CompressionConfig::default());
    let ref_final = reference.records().last().expect("reference record");
    let cases = [
        (
            mode_cfg(CompressionMode::TopK, 0.25),
            TOPK_ACC_TOL,
            TOPK_LOSS_TOL,
        ),
        (
            mode_cfg(CompressionMode::QuantF16, 0.1),
            QF16_ACC_TOL,
            QF16_LOSS_TOL,
        ),
        (
            mode_cfg(CompressionMode::QuantInt8, 0.1),
            QI8_ACC_TOL,
            QI8_LOSS_TOL,
        ),
    ];
    for (cfg, acc_tol, loss_tol) in cases {
        let (m, _, wire) = run_mode(cfg);
        let last = m.records().last().expect("record");
        let acc_delta = (last.test_accuracy - ref_final.test_accuracy).abs();
        let loss_delta = (last.test_loss - ref_final.test_loss).abs();
        assert!(
            acc_delta <= acc_tol,
            "{:?}: final accuracy {} vs reference {} (|Δ| {acc_delta} > {acc_tol})",
            cfg.mode,
            last.test_accuracy,
            ref_final.test_accuracy
        );
        assert!(
            loss_delta <= loss_tol,
            "{:?}: final loss {} vs reference {} (|Δ| {loss_delta} > {loss_tol})",
            cfg.mode,
            last.test_loss,
            ref_final.test_loss
        );
        assert!(
            wire < ref_wire,
            "{:?}: {wire} wire bytes must undercut the reference's {ref_wire}",
            cfg.mode
        );
        assert!(
            last.test_loss.is_finite(),
            "{:?}: loss must stay finite",
            cfg.mode
        );
    }
}

/// Strategy producing adversarial f32 values: a dense finite band plus
/// every special shape the codec must survive (NaN payload bits, ±inf,
/// signed zeros, subnormals, arbitrary bit patterns).
fn adversarial_f32() -> impl proptest::strategy::Strategy<Value = f32> {
    (0u32..12, 0u32..=u32::MAX).prop_map(|(shape, bits)| match shape {
        0 => f32::NAN,
        1 => f32::from_bits(0x7fc0_0000 | (bits & 0x003f_ffff) | 1),
        2 => f32::INFINITY,
        3 => f32::NEG_INFINITY,
        4 => 0.0,
        5 => -0.0,
        6 => f32::from_bits(bits % 0x0080_0000),
        7 => f32::from_bits(bits),
        _ => ((bits as f64 / u32::MAX as f64) as f32 - 0.5) * 2e4,
    })
}

/// `(base, update, active)` triples; the update equals the base on
/// masked-out entries (the soft-training invariant the fl layer upholds).
fn update_vs_base() -> impl proptest::strategy::Strategy<Value = Vec<(f32, f32, bool)>> {
    proptest::collection::vec((adversarial_f32(), adversarial_f32(), 0u32..2), 0..64).prop_map(
        |entries| {
            entries
                .into_iter()
                .map(|(b, u, on)| {
                    let on = on == 1;
                    (b, if on { u } else { b }, on)
                })
                .collect()
        },
    )
}

fn split(entries: &[(f32, f32, bool)]) -> (Vec<f32>, Vec<f32>, Vec<bool>) {
    let base = entries.iter().map(|e| e.0).collect();
    let update = entries.iter().map(|e| e.1).collect();
    let mask = entries.iter().map(|e| e.2).collect();
    (base, update, mask)
}

proptest! {
    /// Delta frames are lossless by construction for *any* payload: the
    /// receiver gets the sender's bits back exactly, masked or not.
    #[test]
    fn delta_roundtrip_is_bitwise_for_adversarial_payloads(entries in update_vs_base()) {
        let (base, update, _) = split(&entries);
        let frame = codec::encode_delta(1, 0, &update, &base).unwrap();
        prop_assert!(codec::verify(&frame));
        let out = codec::decode(&frame).unwrap().into_params(&base).unwrap();
        for (o, u) in out.iter().zip(&update) {
            prop_assert_eq!(o.to_bits(), u.to_bits());
        }
    }

    /// Top-k keeps its selected entries bit-exact and reverts everything
    /// else to the broadcast base — for any k and any payload.
    #[test]
    fn topk_partitions_entries_into_exact_and_reverted(
        entries in update_vs_base(),
        k in 0usize..96,
    ) {
        let (base, update, _) = split(&entries);
        let frame = codec::encode_topk(1, 0, &update, &base, k).unwrap();
        let decoded = codec::decode(&frame).unwrap();
        let Payload::TopK { ref indices, .. } = decoded.payload else {
            panic!("expected top-k payload");
        };
        let kept: Vec<usize> = indices.iter().map(|&i| i as usize).collect();
        let out = decoded.into_params(&base).unwrap();
        for (i, o) in out.iter().enumerate() {
            if kept.contains(&i) {
                prop_assert_eq!(o.to_bits(), update[i].to_bits(), "kept entry {}", i);
            } else {
                prop_assert_eq!(o.to_bits(), base[i].to_bits(), "reverted entry {}", i);
            }
        }
        // With k at least the changed count, top-k is lossless.
        let changed = base
            .iter()
            .zip(&update)
            .filter(|(b, u)| b.to_bits() != u.to_bits())
            .count();
        if k >= changed {
            for (o, u) in out.iter().zip(&update) {
                prop_assert_eq!(o.to_bits(), u.to_bits());
            }
        }
    }

    /// f16 quantization respects its documented error bound on finite
    /// deltas, preserves non-finite deltas, and never rewrites bit-equal
    /// or masked-out entries.
    #[test]
    fn quant_f16_respects_documented_bounds(entries in update_vs_base()) {
        let (base, update, mask) = split(&entries);
        let frame = codec::encode_quant_f16(1, 0, &update, Some(&mask), &base).unwrap();
        let out = codec::decode(&frame).unwrap().into_params(&base).unwrap();
        for i in 0..entries.len() {
            let (b, u, active) = entries[i];
            let o = out[i];
            if !active || u.to_bits() == b.to_bits() {
                prop_assert_eq!(o.to_bits(), b.to_bits(), "untouched entry {} moved", i);
                continue;
            }
            let d = u - b;
            if d.is_nan() {
                prop_assert!(o.is_nan(), "NaN delta at {} decoded to {}", i, o);
            } else if !b.is_finite() {
                // inf − inf style arithmetic has no meaningful bound;
                // the entry must still decode without panicking.
            } else if d.is_infinite() {
                prop_assert_eq!(o, b + d, "infinite delta at {}", i);
            } else if d.abs() <= 32768.0 {
                // Relative f16 error ≤ 2⁻¹¹, plus f32 rounding of b + d̂
                // and a subnormal floor.
                let bound = d.abs() / 1024.0 + (b.abs() + u.abs()) * 1e-6 + 1e-6;
                prop_assert!(
                    (o - u).abs() <= bound,
                    "entry {}: {} vs {} (bound {})", i, o, u, bound
                );
            } else {
                // Finite overflow saturates to ±F16_MAX instead of inf.
                prop_assert!(o.is_finite(), "saturated entry {} became {}", i, o);
                prop_assert!((o - b).abs() <= 65504.0 * (1.0 + 1e-6) + b.abs() * 1e-6);
            }
        }
    }

    /// int8 quantization stays within half a quantization step on finite
    /// deltas and reverts non-finite deltas to the base bits.
    #[test]
    fn quant_i8_respects_documented_bounds(entries in update_vs_base()) {
        let (base, update, mask) = split(&entries);
        let frame = codec::encode_quant_i8(1, 0, &update, Some(&mask), &base).unwrap();
        let decoded = codec::decode(&frame).unwrap();
        let Payload::QuantInt8 { scale, .. } = decoded.payload else {
            panic!("expected int8 payload");
        };
        let out = decoded.into_params(&base).unwrap();
        for i in 0..entries.len() {
            let (b, u, active) = entries[i];
            let o = out[i];
            if !active || u.to_bits() == b.to_bits() {
                prop_assert_eq!(o.to_bits(), b.to_bits(), "untouched entry {} moved", i);
                continue;
            }
            let d = u - b;
            if !d.is_finite() {
                prop_assert_eq!(o.to_bits(), b.to_bits(), "non-finite delta at {}", i);
            } else if !b.is_finite() {
                // NaN base with a finite-but-nonzero q lands on NaN.
            } else {
                // Half a step, the step's own f32 rounding, f32 rounding
                // of b + q·s, and a floor for underflowed scales.
                let bound = scale * 0.5 + scale * 1e-5
                    + (b.abs() + u.abs()) * 1e-6
                    + 1e-38;
                prop_assert!(
                    (o - u).abs() <= bound,
                    "entry {}: {} vs {} (scale {}, bound {})", i, o, u, scale, bound
                );
            }
        }
    }

    /// All-masked updates of any payload produce decodable frames that
    /// change nothing.
    #[test]
    fn all_masked_updates_are_identity(values in proptest::collection::vec(adversarial_f32(), 1..48)) {
        let mask = vec![false; values.len()];
        for frame in [
            codec::encode_quant_f16(0, 0, &values, Some(&mask), &values).unwrap(),
            codec::encode_quant_i8(0, 0, &values, Some(&mask), &values).unwrap(),
            codec::encode_delta(0, 0, &values, &values).unwrap(),
            codec::encode_topk(0, 0, &values, &values, 8).unwrap(),
        ] {
            let out = codec::decode(&frame).unwrap().into_params(&values).unwrap();
            for (o, v) in out.iter().zip(&values) {
                prop_assert_eq!(o.to_bits(), v.to_bits());
            }
        }
    }

    /// The decoder never panics: arbitrary garbage comes back as a typed
    /// error (or, vanishingly rarely, a valid frame — never a crash).
    #[test]
    fn decoder_survives_arbitrary_bytes(bytes in proptest::collection::vec(0u8..=u8::MAX, 0..160)) {
        let _ = codec::decode(&bytes);
        let _ = codec::verify(&bytes);
        let _ = codec::frame_mode(&bytes);
    }

    /// Every truncation and every single-byte flip of a valid frame (of
    /// any v1/v2 kind) decodes to a typed error, never a panic and never
    /// a silently wrong frame.
    #[test]
    fn truncations_and_bitflips_always_yield_typed_errors(
        entries in update_vs_base(),
        kind in 0usize..6,
        flip_bit in 0u8..8,
    ) {
        let (base, update, mask) = split(&entries);
        let frame = match kind {
            0 => codec::encode_full(1, 2, &update),
            1 => codec::encode_masked(1, 2, &update, &mask),
            2 => codec::encode_delta(1, 2, &update, &base),
            3 => codec::encode_topk(1, 2, &update, &base, 5),
            4 => codec::encode_quant_f16(1, 2, &update, Some(&mask), &base),
            _ => codec::encode_quant_i8(1, 2, &update, Some(&mask), &base),
        }
        .unwrap();
        for len in 0..frame.len() {
            prop_assert!(codec::decode(&frame[..len]).is_err(), "truncation at {} decoded", len);
        }
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 1 << flip_bit;
            prop_assert!(codec::decode(&bad).is_err(), "flip at byte {} decoded", i);
        }
    }
}
