//! Simulated-network integration suite: transport transparency, lossy
//! degradation, and codec/checkpoint roundtrip properties.
//!
//! The headline invariant: with faults disabled and ideal links, routing
//! every round through `helios_net` is **bitwise identical** — same
//! global parameters, same metrics — to the direct in-memory exchange,
//! at every thread width. Lossy links must degrade gracefully (missed
//! cycles, never panics or corrupted aggregates).

use helios_core::{HeliosConfig, HeliosStrategy};
use helios_data::{partition, Dataset, SyntheticVision};
use helios_device::presets;
use helios_fl::{
    FaultConfig, FlConfig, FlEnv, LinkProfile, NetConfig, RunMetrics, Strategy, SyncFedAvg,
};
use helios_net::codec;
use helios_nn::models::ModelKind;
use helios_nn::{checkpoint, models};
use helios_tensor::{ParallelismConfig, TensorRng};
use proptest::prelude::*;

const SEED: u64 = 2024;
const CYCLES: usize = 3;

fn make_env(seed: u64, threads: usize, net: NetConfig) -> FlEnv {
    let clients = 3;
    let mut rng = TensorRng::seed_from(seed);
    let (train, test) = SyntheticVision::mnist_like()
        .generate(30 * clients, 30, &mut rng)
        .expect("dataset");
    let shards: Vec<Dataset> = partition::iid(train.len(), clients, &mut rng)
        .into_iter()
        .map(|idx| train.subset(&idx).expect("subset"))
        .collect();
    FlEnv::new(
        ModelKind::LeNet,
        presets::mixed_fleet(2, 1),
        shards,
        test,
        FlConfig {
            seed,
            parallelism: ParallelismConfig::with_threads(threads),
            net,
            ..FlConfig::default()
        },
    )
    .expect("env")
}

fn run_helios(env: &mut FlEnv) -> RunMetrics {
    HeliosStrategy::new(HeliosConfig::default())
        .run(env, CYCLES)
        .expect("helios run")
}

fn global_bits(env: &FlEnv) -> Vec<u32> {
    env.global().iter().map(|p| p.to_bits()).collect()
}

/// Fault-free Helios through the transport is bitwise identical to the
/// direct path — parameters and metrics — at 1/2/4/8 threads.
#[test]
fn faultless_routed_helios_matches_direct_bitwise() {
    let mut direct = make_env(SEED, 1, NetConfig::default());
    let direct_metrics = run_helios(&mut direct);
    let direct_bits = global_bits(&direct);
    for threads in [1usize, 2, 4, 8] {
        let routed_cfg = NetConfig {
            enabled: true,
            ..NetConfig::default()
        };
        let mut routed = make_env(SEED, threads, routed_cfg);
        let routed_metrics = run_helios(&mut routed);
        assert_eq!(
            direct_metrics.records(),
            routed_metrics.records(),
            "metrics must match at {threads} threads"
        );
        assert_eq!(
            direct_bits,
            global_bits(&routed),
            "global parameters must be bitwise identical at {threads} threads"
        );
        // The exchange genuinely went over the wire.
        let stats = routed.transport().expect("transport").stats();
        assert!(stats.bytes_on_wire > 0);
        assert_eq!(stats.failures, 0);
        assert_eq!(stats.timeouts, 0);
    }
}

/// Same-seed lossy runs replay identically (determinism contract), and
/// a fleet behind a lossy, constrained link completes without panicking
/// while the transport logs its retries.
#[test]
fn lossy_links_degrade_gracefully_and_deterministically() {
    let lossy = NetConfig {
        enabled: true,
        link: LinkProfile::constrained(2e6, 0.05).with_jitter(0.02),
        faults: FaultConfig {
            drop_prob: 0.25,
            corrupt_prob: 0.15,
            delay_prob: 0.2,
            max_extra_delay_s: 0.5,
        },
        max_retries: 2,
        ..NetConfig::default()
    };
    let mut a = make_env(SEED + 1, 2, lossy);
    let mut b = make_env(SEED + 1, 2, lossy);
    let ma = SyncFedAvg::new().run(&mut a, CYCLES).expect("lossy run");
    let mb = SyncFedAvg::new().run(&mut b, CYCLES).expect("lossy run");
    assert_eq!(ma.records(), mb.records(), "same seed ⇒ same lossy run");
    assert_eq!(global_bits(&a), global_bits(&b));
    let stats = a.transport().expect("transport").stats();
    assert!(
        stats.retries > 0 || stats.drops > 0 || stats.corruptions_detected > 0,
        "these fault rates must trip at least once: {stats:?}"
    );
    println!(
        "lossy run: retries {} drops {} corrupt {} failures {} timeouts {}",
        stats.retries, stats.drops, stats.corruptions_detected, stats.failures, stats.timeouts
    );
    // Every cycle still produced a record, even if someone missed it.
    assert_eq!(ma.records().len(), CYCLES);
    for r in ma.records() {
        assert!(r.participants <= 3);
    }
}

/// A deadline tight enough to cut off the constrained device marks it as
/// having missed the cycle (a timeout, not an error) and the round still
/// aggregates the on-time participants.
#[test]
fn round_timeout_drops_slow_participant_without_error() {
    let cfg = NetConfig {
        enabled: true,
        round_timeout_s: Some(20.0),
        ..NetConfig::default()
    };
    let mut env = make_env(SEED + 2, 1, cfg);
    // The straggler (client 2) gets a link so slow its exchange alone
    // blows the deadline; capable clients keep ideal links.
    env.set_link(2, LinkProfile::constrained(1e4, 1.0)).unwrap();
    let metrics = SyncFedAvg::new().run(&mut env, 2).expect("timeout run");
    let stats = env.transport().expect("transport").stats();
    assert!(stats.timeouts > 0, "deadline must trip: {stats:?}");
    for r in metrics.records() {
        assert_eq!(r.participants, 2, "only the on-time clients aggregate");
    }
    let missed = env
        .transport()
        .expect("transport")
        .device_stats(2)
        .missed_cycles;
    assert_eq!(missed, 2);
}

/// Special values guaranteed present in every codec/checkpoint case, on
/// top of the randomly drawn bit patterns.
const SPECIAL_BITS: [u32; 6] = [
    0x7fc0_0000, // quiet NaN
    0x7f80_0000, // +inf
    0xff80_0000, // -inf
    0x8000_0000, // -0.0
    0x0000_0001, // smallest subnormal
    0x7f7f_ffff, // f32::MAX
];

proptest! {
    /// Full-frame wire roundtrip is bitwise exact for arbitrary bit
    /// patterns — NaN payloads, infinities, subnormals included.
    #[test]
    fn wire_codec_full_roundtrip_is_bitwise(
        bits in proptest::collection::vec(0u32..u32::MAX, 0..96),
        sender in 0u32..1000,
        cycle in 0u32..1000,
    ) {
        let mut all = SPECIAL_BITS.to_vec();
        all.extend(bits);
        let params: Vec<f32> = all.iter().map(|&b| f32::from_bits(b)).collect();
        let frame = codec::encode_full(sender, cycle, &params).unwrap();
        prop_assert!(codec::verify(&frame));
        let decoded = codec::decode(&frame).unwrap();
        prop_assert_eq!(decoded.sender, sender);
        prop_assert_eq!(decoded.cycle, cycle);
        let base = vec![0.0f32; params.len()];
        let out = decoded.into_params(&base).unwrap();
        let out_bits: Vec<u32> = out.iter().map(|p| p.to_bits()).collect();
        prop_assert_eq!(out_bits, all);
    }

    /// Masked-frame roundtrip: reconstructing against the receiver's
    /// base restores the sender's full vector bit-for-bit, and the
    /// masked frame is never larger than the full one.
    #[test]
    fn wire_codec_masked_roundtrip_is_bitwise(
        entries in proptest::collection::vec((0u32..u32::MAX, 0u32..u32::MAX, 0u32..100), 1..96),
        seed in 0u64..1000,
    ) {
        let mut rng = TensorRng::seed_from(seed);
        let base: Vec<f32> = entries.iter().map(|&(b, _, _)| f32::from_bits(b)).collect();
        let mask: Vec<bool> = entries.iter().map(|&(_, _, m)| m < 40).collect();
        // The soft-training invariant: masked-out entries of the upload
        // still hold the broadcast base values.
        let params: Vec<f32> = entries
            .iter()
            .zip(&mask)
            .map(|(&(b, a, _), &on)| if on { f32::from_bits(a) } else { f32::from_bits(b) })
            .collect();
        let frame = codec::encode_masked(7, 3, &params, &mask).unwrap();
        let full = codec::encode_full(7, 3, &params).unwrap();
        prop_assert!(frame.len() <= full.len());
        let decoded = codec::decode(&frame).unwrap();
        let out = decoded.into_params(&base).unwrap();
        for (o, p) in out.iter().zip(&params) {
            prop_assert_eq!(o.to_bits(), p.to_bits());
        }
        // Unrelated: the RNG draw keeps seeds exercised for shuffles.
        let _ = rng.unit_f64();
    }

    /// Checkpoint save/load restores the parameter vector exactly.
    #[test]
    fn checkpoint_roundtrip_restores_params_exactly(
        seed in 0u64..1000,
        bits in proptest::collection::vec(0u32..u32::MAX, 1..48),
    ) {
        let mut rng = TensorRng::seed_from(seed);
        let mut net = models::lenet(10, &mut rng);
        // Overwrite a prefix of the parameters with arbitrary bit
        // patterns (plus the guaranteed specials) to stress the format.
        let mut params = net.param_vector();
        for (slot, &b) in params
            .iter_mut()
            .zip(SPECIAL_BITS.iter().chain(bits.iter()))
        {
            *slot = f32::from_bits(b);
        }
        net.set_param_vector(&params).unwrap();
        let mut buf = Vec::new();
        checkpoint::save(&net, &mut buf).unwrap();
        let restored = checkpoint::load(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(restored.architecture, "lenet");
        prop_assert_eq!(restored.params.len(), params.len());
        for (r, p) in restored.params.iter().zip(&params) {
            prop_assert_eq!(r.to_bits(), p.to_bits());
        }
    }
}
