//! The paper's qualitative claims, encoded as integration tests.
//!
//! These use small fleets and seeds averaged where variance demands it;
//! thresholds are deliberately tolerant — they pin the *direction* of
//! each effect, the benches measure the magnitude.

use helios_core::{HeliosConfig, HeliosStrategy};
use helios_data::{partition, Dataset, SyntheticVision};
use helios_device::presets;
use helios_fl::{AsyncFl, FlConfig, FlEnv, Strategy, SyncFedAvg};
use helios_nn::models::ModelKind;
use helios_tensor::TensorRng;

fn build_env(non_iid: bool, seed: u64) -> FlEnv {
    let clients = 4;
    let mut rng = TensorRng::seed_from(seed);
    let mut spec = SyntheticVision::mnist_like();
    spec.noise_std = 1.0;
    let (train, test) = spec
        .generate(80 * clients, 120, &mut rng)
        .expect("generate");
    let idx = if non_iid {
        partition::label_shards(train.labels(), clients, 2, &mut rng).expect("shards")
    } else {
        partition::iid(train.len(), clients, &mut rng)
    };
    let shards: Vec<Dataset> = idx
        .into_iter()
        .map(|i| train.subset(&i).expect("subset"))
        .collect();
    FlEnv::new(
        ModelKind::LeNet,
        presets::mixed_fleet(2, 2),
        shards,
        test,
        FlConfig {
            seed,
            learning_rate: 0.04,
            ..FlConfig::default()
        },
    )
    .expect("env builds")
}

/// Fig 1: synchronized FL's cycle time is set by the slowest device.
#[test]
fn sync_cycle_is_straggler_bound() {
    let mut env = build_env(false, 1);
    let slowest = (0..env.num_clients())
        .map(|i| env.client(i).expect("client").cycle_time().as_secs_f64())
        .fold(0.0f64, f64::max);
    let m = SyncFedAvg::new().run(&mut env, 2).expect("sync runs");
    let per_cycle = m.total_time().as_secs_f64() / 2.0;
    assert!((per_cycle - slowest).abs() < 1e-6);
}

/// Fig 2 / §II.B: under Non-IID data, widening the straggler's
/// aggregation period degrades converged accuracy.
#[test]
fn staleness_hurts_under_non_iid() {
    let mut sync_acc = 0.0;
    let mut async3_acc = 0.0;
    let seeds = [2u64, 3, 4];
    for &seed in &seeds {
        let mut env = build_env(true, seed);
        sync_acc += SyncFedAvg::new()
            .run(&mut env, 14)
            .expect("sync")
            .tail_accuracy(3);
        let mut env = build_env(true, seed);
        async3_acc += AsyncFl::with_fixed_period(vec![2, 3], 3)
            .run(&mut env, 14)
            .expect("async")
            .tail_accuracy(3);
    }
    let n = seeds.len() as f64;
    assert!(
        sync_acc / n > async3_acc / n + 0.02,
        "sync {:.3} must clearly beat async-3 {:.3} under non-IID",
        sync_acc / n,
        async3_acc / n
    );
}

/// §V headline: Helios reaches a common accuracy target in far less
/// simulated time than synchronized FL (the paper's speedup metric).
#[test]
fn helios_speedup_over_sync_at_target() {
    let target = 0.6;
    let mut speedups = Vec::new();
    for seed in [5u64, 6] {
        let mut env = build_env(false, seed);
        let sync = SyncFedAvg::new().run(&mut env, 14).expect("sync");
        let mut env = build_env(false, seed);
        let helios = HeliosStrategy::new(HeliosConfig::default())
            .run(&mut env, 14)
            .expect("helios");
        if let Some(s) = helios.speedup_over(&sync, target) {
            speedups.push(s);
        }
    }
    assert!(!speedups.is_empty(), "at least one seed reaches the target");
    let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
    assert!(
        mean > 1.8,
        "helios should be roughly 2x+ faster to target, got {mean:.2}x"
    );
}

/// §V.A model integrity: across a Helios run, every maskable neuron of
/// the straggler participates in at least one training cycle.
#[test]
fn soft_training_covers_every_neuron() {
    let mut env = build_env(false, 7);
    let mut s = HeliosStrategy::new(HeliosConfig::default());
    s.initialize(&mut env).expect("init");
    let units = env
        .client_mut(2)
        .expect("straggler")
        .network_mut()
        .maskable_units();
    let mut seen: Vec<Vec<bool>> = units.0.iter().map(|&n| vec![false; n]).collect();
    for _ in 0..14 {
        let _ = s.run(&mut env, 1).expect("cycle");
        let mask = env
            .client(2)
            .expect("straggler")
            .current_mask()
            .expect("masked")
            .clone();
        for (layer, row) in seen.iter_mut().enumerate() {
            for (unit, done) in row.iter_mut().enumerate() {
                *done |= mask.is_active(layer, unit);
            }
        }
    }
    for (layer, row) in seen.iter().enumerate() {
        let missing = row.iter().filter(|&&b| !b).count();
        assert_eq!(
            missing, 0,
            "layer {layer}: {missing} neurons never trained in 14 cycles"
        );
    }
}

/// §IV.C: fitted volumes shrink with device weakness — a weaker straggler
/// receives a smaller expected model volume.
#[test]
fn weaker_devices_get_smaller_volumes() {
    let mut env = build_env(false, 8);
    let mut s = HeliosStrategy::new(HeliosConfig::default());
    s.initialize(&mut env).expect("init");
    // mixed_fleet(2, 2) appoints jetson-nano-cpu (7 GFLOPS) and
    // raspberry-pi (6 GFLOPS) as stragglers 2 and 3.
    let k2 = s.keep_ratio(2).expect("straggler 2");
    let k3 = s.keep_ratio(3).expect("straggler 3");
    assert!(
        k3 <= k2 + 1e-9,
        "raspberry ({k3:.3}) should get no more volume than nano-cpu ({k2:.3})"
    );
}

/// Eq 10: the heterogeneity weights divert aggregation mass toward fuller
/// models without discarding partial ones.
#[test]
fn heterogeneity_weights_order_matches_volumes() {
    let w = helios_core::aggregation::heterogeneity_weights(&[1.0, 1.0, 0.5, 0.35]);
    assert!(w[0] > w[2] && w[2] > w[3]);
    assert!(w[3] > 0.0, "partial models still contribute");
    assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
}

/// §VI.C: a straggler-class device joining mid-run is admitted at reduced
/// volume and the fleet keeps the capable pace.
#[test]
fn dynamic_join_preserves_pace() {
    let mut env = build_env(false, 9);
    let mut s = HeliosStrategy::new(HeliosConfig::default());
    let m1 = s.run(&mut env, 2).expect("phase 1");
    let pace_before = m1.total_time().as_secs_f64() / 2.0;
    let mut rng = TensorRng::seed_from(99);
    let (extra, _) = SyntheticVision::mnist_like()
        .generate(60, 0, &mut rng)
        .expect("generate");
    let id = s
        .admit_device(&mut env, presets::deeplens_cpu(), extra)
        .expect("admitted");
    assert!(s.stragglers().contains(&id));
    let m2 = s.run(&mut env, 2).expect("phase 2");
    let pace_after = (m2.total_time().as_secs_f64() - m1.total_time().as_secs_f64()) / 2.0;
    assert!(
        pace_after < 1.5 * pace_before,
        "pace {pace_after:.1}s should stay near {pace_before:.1}s after the join"
    );
}
