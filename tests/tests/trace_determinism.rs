//! Determinism contract of the observability layer: a fixed-seed lossy
//! Helios run emits a **byte-identical** JSONL trace at every thread
//! width, pinned by content digest, and every frame-level fault event
//! is eventually settled by a terminal outcome.
//!
//! The obs bus is process-global, so every test in this binary holds
//! [`OBS_LOCK`] for its full body — a sink installed by one test must
//! never observe another test's run.

use helios_core::{HeliosConfig, HeliosStrategy};
use helios_data::{partition, Dataset, SyntheticVision};
use helios_device::presets;
use helios_fl::{FaultConfig, FlConfig, FlEnv, LinkProfile, NetConfig, Strategy};
use helios_net::transport::Direction;
use helios_net::{codec, SimTransport};
use helios_nn::models::ModelKind;
use helios_obs::{chrome_trace, RingBufferSink, TraceEvent};
use helios_tensor::{ParallelismConfig, TensorRng};
use proptest::prelude::*;
use std::io::Write;
use std::sync::{Arc, Mutex, PoisonError};

const SEED: u64 = 2024;
const CYCLES: usize = 3;

/// Serializes every test in this binary around the process-global bus.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// The pinned FNV-1a digest of the lossy reference trace. Any change to
/// the event taxonomy, serializer, or simulated outcome moves this
/// constant — bump it deliberately, never to paper over a thread-width
/// divergence (the cross-width equality assertion catches those first).
/// Last bump: fleet-scaling PR — `RoundStart` gained `population` and
/// `DeviceSelected` gained `cohort`.
const PINNED_TRACE_DIGEST: u64 = 0xd81d_f18e_ab35_4978;

/// Shared byte buffer standing in for a trace file.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn take(&self) -> Vec<u8> {
        std::mem::take(&mut self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

impl Write for SharedBuf {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .extend_from_slice(data);
        Ok(data.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn lossy_net() -> NetConfig {
    NetConfig {
        enabled: true,
        link: LinkProfile::constrained(2e6, 0.05).with_jitter(0.02),
        faults: FaultConfig {
            drop_prob: 0.25,
            corrupt_prob: 0.15,
            delay_prob: 0.2,
            max_extra_delay_s: 0.5,
        },
        max_retries: 2,
        ..NetConfig::default()
    }
}

fn make_env(seed: u64, threads: usize, net: NetConfig) -> FlEnv {
    let clients = 3;
    let mut rng = TensorRng::seed_from(seed);
    let (train, test) = SyntheticVision::mnist_like()
        .generate(30 * clients, 30, &mut rng)
        .expect("dataset");
    let shards: Vec<Dataset> = partition::iid(train.len(), clients, &mut rng)
        .into_iter()
        .map(|idx| train.subset(&idx).expect("subset"))
        .collect();
    FlEnv::new(
        ModelKind::LeNet,
        presets::mixed_fleet(2, 1),
        shards,
        test,
        FlConfig {
            seed,
            parallelism: ParallelismConfig::with_threads(threads),
            net,
            ..FlConfig::default()
        },
    )
    .expect("env")
}

/// Runs the lossy reference workload at `threads` and returns the raw
/// JSONL trace bytes.
fn traced_run_bytes(threads: usize) -> Vec<u8> {
    let buf = SharedBuf::default();
    let sink = helios_obs::JsonlSink::new(Box::new(buf.clone()));
    let handle = helios_obs::install(Box::new(sink));
    let mut env = make_env(SEED, threads, lossy_net());
    HeliosStrategy::new(HeliosConfig::default())
        .run(&mut env, CYCLES)
        .expect("helios run");
    drop(handle); // detach + flush
    buf.take()
}

/// Asserts the frame-settlement invariant on an event stream: every
/// `FrameSent` / `FrameDropped` / `FrameCorrupted` / `Retry` for a
/// device is eventually followed by a terminal `Delivered`,
/// `SendFailed`, or `Timeout` for that device.
fn assert_faults_settle(records: &[helios_obs::TraceRecord]) {
    let mut pending: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for rec in records {
        match &rec.event {
            TraceEvent::FrameSent { device, .. }
            | TraceEvent::FrameDropped { device, .. }
            | TraceEvent::FrameCorrupted { device, .. }
            | TraceEvent::Retry { device, .. } => {
                pending.insert(*device);
            }
            TraceEvent::Delivered { device, .. }
            | TraceEvent::SendFailed { device, .. }
            | TraceEvent::Timeout { device } => {
                pending.remove(device);
            }
            _ => {}
        }
    }
    assert!(
        pending.is_empty(),
        "devices with unsettled frame events: {pending:?}"
    );
}

/// The tentpole guarantee: byte-identical JSONL at 1/2/4/8 threads,
/// pinned by content digest so a silent serializer or outcome change
/// cannot slip through.
#[test]
fn lossy_trace_is_byte_identical_across_thread_widths() {
    let _serial = OBS_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let reference = traced_run_bytes(1);
    assert!(!reference.is_empty(), "traced run must emit events");
    for threads in [2usize, 4, 8] {
        let bytes = traced_run_bytes(threads);
        assert_eq!(
            bytes, reference,
            "JSONL trace must be byte-identical at {threads} threads"
        );
    }
    assert_eq!(
        helios_obs::content_digest(&reference),
        PINNED_TRACE_DIGEST,
        "reference trace digest moved — the event stream changed"
    );
    // The trace parses, carries the expected fault traffic, and every
    // fault settles.
    let text = String::from_utf8(reference).expect("utf8");
    let records = helios_obs::parse_jsonl(&text).expect("trace parses");
    assert!(records
        .iter()
        .any(|r| matches!(r.event, TraceEvent::FrameDropped { .. })));
    assert!(records
        .iter()
        .any(|r| matches!(r.event, TraceEvent::Retry { .. })));
    assert_faults_settle(&records);
}

/// The Chrome exporter produces valid JSON with a `traceEvents` array
/// and one named track per device.
#[test]
fn chrome_export_is_valid_json_with_device_tracks() {
    let _serial = OBS_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let ring = RingBufferSink::with_capacity(1 << 20);
    let handle = helios_obs::install(Box::new(ring.clone()));
    let mut env = make_env(SEED, 2, lossy_net());
    HeliosStrategy::new(HeliosConfig::default())
        .run(&mut env, CYCLES)
        .expect("helios run");
    drop(handle);

    let json = chrome_trace(&ring.records());
    let value: serde::value::Value = serde_json::from_str(&json).expect("chrome JSON parses");
    let serde::value::Value::Map(pairs) = &value else {
        panic!("chrome trace must be a JSON object");
    };
    let Some(serde::value::Value::Seq(events)) = serde::value::find(pairs, "traceEvents") else {
        panic!("chrome trace must contain a traceEvents array");
    };
    assert!(!events.is_empty());
    // Per-device tracks appear as thread_name metadata events.
    let device_tracks = events
        .iter()
        .filter(|e| {
            let serde::value::Value::Map(ev) = e else {
                return false;
            };
            serde::value::find(ev, "name")
                == Some(&serde::value::Value::Str("thread_name".to_string()))
                && matches!(
                    serde::value::find(ev, "tid"),
                    Some(serde::value::Value::UInt(tid)) if *tid >= 1
                )
        })
        .count();
    assert!(
        device_tracks >= 3,
        "expected one named track per device, saw {device_tracks}"
    );
}

proptest! {
    /// Transport-level settlement: whatever the fault mix, every frame
    /// attempt sequence terminates in `Delivered` or `SendFailed`.
    #[test]
    fn every_fault_event_reaches_a_terminal_outcome(
        seed in 0u64..1_000,
        drop_prob in 0.0f64..0.9,
        corrupt_prob in 0.0f64..0.9,
        max_retries in 0u32..4,
        frames in 1usize..6,
    ) {
        let _serial = OBS_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let cfg = NetConfig {
            enabled: true,
            link: LinkProfile::constrained(1e6, 0.01),
            faults: FaultConfig {
                drop_prob,
                corrupt_prob,
                delay_prob: 0.1,
                max_extra_delay_s: 0.2,
            },
            max_retries,
            ..NetConfig::default()
        };
        let ring = RingBufferSink::with_capacity(1 << 16);
        let handle = helios_obs::install(Box::new(ring.clone()));
        let mut transport = SimTransport::new(2, &cfg, seed).expect("transport");
        let frame = codec::encode_full(0, 0, &[1.0, 2.0, 3.0, 4.0]).expect("frame");
        for i in 0..frames {
            let dir = if i % 2 == 0 { Direction::Upload } else { Direction::Download };
            transport.transmit(i % 2, &frame, dir).expect("transmit");
        }
        drop(handle);
        let records = ring.records();
        prop_assert!(!records.is_empty());
        assert_faults_settle(&records);
    }
}
