#!/usr/bin/env bash
# CI gate for the Helios workspace: formatting, lints (including an
# unwrap/expect deny gate for crates/fl and crates/net non-test code),
# docs, build, tests, the kernel-throughput + thread-scaling microbench
# (emits results/BENCH_parallel.json and self-checks that the blocked
# GEMM beats the naive reference >= 3x geomean on alexnet-class
# shapes), the network-simulation bench (emits
# results/BENCH_net.json and self-checks that a soft-trained straggler's
# upload frame is smaller than the full-model frame), and the
# round-engine phase bench (emits results/BENCH_engine.json and
# self-checks that Helios shrinks the straggler train-phase share
# versus synchronous FedAvg), the fleet-scaling bench (emits
# results/BENCH_fleet.json and self-checks that peak memory stays
# near-flat from 1k to 100k enrolled devices), the packed-execution bench (emits
# results/BENCH_masked.json and self-checks that masked training
# flops scale with the live parameter fraction), and the observability
# bench (emits results/BENCH_obs.json plus a JSONL + Chrome trace and
# self-checks that disabled-mode tracing costs under 3%; the trace is
# then re-validated with trace_report --validate), and the scenario
# dynamics bench (emits results/BENCH_scenarios.json plus
# results/trace_scenario.jsonl and self-checks that throttling raises
# straggler skip counts and Helios beats synchronous FedAvg under
# churn + throttle + drift).
#
# Usage: ./ci.sh [--skip-bench]
set -euo pipefail
cd "$(dirname "$0")"

SKIP_BENCH=0
for arg in "$@"; do
    case "$arg" in
        --skip-bench) SKIP_BENCH=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

step "clippy unwrap/expect deny gate (crates/fl, crates/net, crates/obs, crates/scenario)"
# These crates carry `#![cfg_attr(not(test), deny(clippy::unwrap_used,
# clippy::expect_used))]`, locking in the PR 3 typed-error migration for
# non-test code; this step compiles them standalone so a violation fails
# CI even if the workspace pass above is ever narrowed.
cargo clippy -p helios-fl -p helios-net -p helios-obs -p helios-scenario --all-targets

step "cargo doc (warnings are errors)"
# Scoped to first-party crates: the vendored deps are workspace members
# but their docs are upstream's, not ours to lint.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet \
    -p helios-tensor -p helios-nn -p helios-data -p helios-device \
    -p helios-net -p helios-fl -p helios-core -p helios-bench \
    -p helios-obs -p helios-scenario -p helios-examples -p helios-integration

step "cargo build --release"
cargo build --release --workspace

step "cargo test -q"
cargo test -q --workspace

if [ "$SKIP_BENCH" -eq 0 ]; then
    step "kernel-throughput + thread-scaling microbench (results/BENCH_parallel.json)"
    # bench_parallel self-checks and exits nonzero unless the blocked
    # GEMM kernel's single-core flops/s beats the pinned naive reference
    # by >= 3x geomean (1.8x per shape) on the alexnet-class shapes.
    cargo run --release -p helios-bench --bin bench_parallel

    step "network-simulation bench (results/BENCH_net.json)"
    # bench_net re-parses its own JSON and exits nonzero unless every
    # soft-trained straggler's wire frame is smaller than a full one,
    # and unless the wire-v2 accuracy-vs-bytes curve holds: lossless
    # modes match the reference run exactly, lossy modes shrink the
    # frame and stay within their per-mode accuracy tolerance.
    cargo run --release -p helios-bench --bin bench_net
    [ -s results/BENCH_net.json ] || { echo "BENCH_net.json missing or empty" >&2; exit 1; }

    step "round-engine phase bench (results/BENCH_engine.json)"
    # bench_engine re-parses its own JSON and exits nonzero unless Helios
    # shrinks both total train time and the straggler's train-phase share
    # of the round versus synchronous FedAvg.
    cargo run --release -p helios-bench --bin bench_engine
    [ -s results/BENCH_engine.json ] || { echo "BENCH_engine.json missing or empty" >&2; exit 1; }

    step "fleet-scaling bench (results/BENCH_fleet.json)"
    # bench_fleet re-parses its own JSON and exits nonzero unless every
    # cycle aggregates exactly the 500-device cohort, live clients stay
    # capped at the cohort, peak memory is near-flat across the
    # 1k/10k/100k population sweep, and a repeated run replays bitwise.
    cargo run --release -p helios-bench --bin bench_fleet
    [ -s results/BENCH_fleet.json ] || { echo "BENCH_fleet.json missing or empty" >&2; exit 1; }

    step "packed sub-model execution bench (results/BENCH_masked.json)"
    # bench_masked re-parses its own JSON and exits nonzero unless packed
    # train flops shrink monotonically with the keep ratio and the
    # keep=0.25 sub-model costs at most 40% of the full model.
    cargo run --release -p helios-bench --bin bench_masked
    [ -s results/BENCH_masked.json ] || { echo "BENCH_masked.json missing or empty" >&2; exit 1; }

    step "observability bench (results/BENCH_obs.json + traces)"
    # bench_obs re-parses its own JSON and exits nonzero unless the
    # estimated disabled-mode tracing overhead stays under its budget
    # and the host gauges are bridged into the metrics registry.
    cargo run --release -p helios-bench --bin bench_obs
    [ -s results/BENCH_obs.json ] || { echo "BENCH_obs.json missing or empty" >&2; exit 1; }

    step "trace_report --validate (results/trace_obs.jsonl)"
    # Structural validation of the trace bench_obs just wrote: monotone
    # sim time, balanced phase spans, every fault event settled.
    cargo run --release -p helios-obs --bin trace_report -- --validate results/trace_obs.jsonl

    step "scenario dynamics bench (results/BENCH_scenarios.json + trace)"
    # bench_scenarios re-parses its own JSON and exits nonzero unless
    # throttling raises the accumulated straggler skip mass, the churn
    # timeline never starves a cycle, Helios beats synchronous FedAvg
    # under churn + throttle + drift, and the recorded trace carries
    # every scheduled scenario event kind.
    cargo run --release -p helios-bench --bin bench_scenarios
    [ -s results/BENCH_scenarios.json ] || { echo "BENCH_scenarios.json missing or empty" >&2; exit 1; }

    step "trace_report --validate (results/trace_scenario.jsonl)"
    # The combined churn + drift walkthrough trace must pass the same
    # structural validation, including the scenario-event kind check.
    cargo run --release -p helios-obs --bin trace_report -- --validate results/trace_scenario.jsonl
else
    step "skipping microbench (--skip-bench)"
fi

step "CI green"
