#!/usr/bin/env bash
# CI gate for the Helios workspace: formatting, lints, build, tests, and
# the thread-scaling microbench (emits results/BENCH_parallel.json).
#
# Usage: ./ci.sh [--skip-bench]
set -euo pipefail
cd "$(dirname "$0")"

SKIP_BENCH=0
for arg in "$@"; do
    case "$arg" in
        --skip-bench) SKIP_BENCH=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo build --release"
cargo build --release --workspace

step "cargo test -q"
cargo test -q --workspace

if [ "$SKIP_BENCH" -eq 0 ]; then
    step "thread-scaling microbench (results/BENCH_parallel.json)"
    cargo run --release -p helios-bench --bin bench_parallel
else
    step "skipping microbench (--skip-bench)"
fi

step "CI green"
