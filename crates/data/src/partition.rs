//! Federated data partitioners: IID and two Non-IID constructions.

use crate::{DataError, Result};
use helios_tensor::TensorRng;

/// Uniform IID partition: shuffles `0..n` and deals it into `clients`
/// near-equal shards.
///
/// # Panics
///
/// Panics if `clients == 0`.
///
/// # Example
///
/// ```
/// use helios_data::partition;
/// use helios_tensor::TensorRng;
///
/// let shards = partition::iid(10, 3, &mut TensorRng::seed_from(0));
/// let total: usize = shards.iter().map(|s| s.len()).sum();
/// assert_eq!(total, 10);
/// assert_eq!(shards.len(), 3);
/// ```
pub fn iid(n: usize, clients: usize, rng: &mut TensorRng) -> Vec<Vec<usize>> {
    assert!(clients > 0, "need at least one client");
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    let mut shards = vec![Vec::new(); clients];
    for (i, idx) in order.into_iter().enumerate() {
        shards[i % clients].push(idx);
    }
    shards
}

/// Sort-by-label shard partition — the Non-IID construction of Zhao et
/// al. ("Federated Learning with Non-IID Data"), which the Helios paper
/// uses for its §VII.D evaluation.
///
/// All sample indices are sorted by label, cut into
/// `clients × shards_per_client` contiguous shards, and each client is
/// dealt `shards_per_client` random shards. With few shards per client,
/// each client sees only a couple of classes — the classic pathological
/// Non-IID split.
///
/// # Errors
///
/// Returns [`DataError::InvalidArgument`] when there are fewer samples
/// than shards, or `clients`/`shards_per_client` is zero.
pub fn label_shards(
    labels: &[usize],
    clients: usize,
    shards_per_client: usize,
    rng: &mut TensorRng,
) -> Result<Vec<Vec<usize>>> {
    if clients == 0 || shards_per_client == 0 {
        return Err(DataError::InvalidArgument {
            what: "clients and shards_per_client must be nonzero".into(),
        });
    }
    let total_shards = clients * shards_per_client;
    if labels.len() < total_shards {
        return Err(DataError::InvalidArgument {
            what: format!("{} samples cannot fill {total_shards} shards", labels.len()),
        });
    }
    let mut by_label: Vec<usize> = (0..labels.len()).collect();
    by_label.sort_by_key(|&i| labels[i]);
    // Cut into contiguous shards.
    let base = labels.len() / total_shards;
    let remainder = labels.len() % total_shards;
    let mut shards: Vec<Vec<usize>> = Vec::with_capacity(total_shards);
    let mut cursor = 0;
    for s in 0..total_shards {
        let extra = usize::from(s < remainder);
        let end = cursor + base + extra;
        shards.push(by_label[cursor..end].to_vec());
        cursor = end;
    }
    // Deal shards randomly to clients.
    let mut shard_order: Vec<usize> = (0..total_shards).collect();
    rng.shuffle(&mut shard_order);
    let mut out = vec![Vec::new(); clients];
    for (pos, &shard) in shard_order.iter().enumerate() {
        out[pos % clients].extend_from_slice(&shards[shard]);
    }
    Ok(out)
}

/// Dirichlet(α) label-skew partition: for each class, the class's samples
/// are split across clients with proportions drawn from `Dirichlet(α)`.
///
/// Small `α` (≈0.1) gives extreme skew; large `α` (≥10) approaches IID.
/// Standard in the heterogeneous-FL literature (HeteroFL, FedRolex);
/// provided here for ablations beyond the paper's shard split.
///
/// # Errors
///
/// Returns [`DataError::InvalidArgument`] when `clients == 0`, `alpha`
/// is not finite-positive, or a label exceeds `num_classes`.
pub fn dirichlet(
    labels: &[usize],
    num_classes: usize,
    clients: usize,
    alpha: f64,
    rng: &mut TensorRng,
) -> Result<Vec<Vec<usize>>> {
    if clients == 0 {
        return Err(DataError::InvalidArgument {
            what: "clients must be nonzero".into(),
        });
    }
    if !(alpha.is_finite() && alpha > 0.0) {
        return Err(DataError::InvalidArgument {
            what: format!("alpha must be positive and finite, got {alpha}"),
        });
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
        return Err(DataError::LabelOutOfRange {
            label: bad,
            classes: num_classes,
        });
    }
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
    for (i, &l) in labels.iter().enumerate() {
        per_class[l].push(i);
    }
    let mut out = vec![Vec::new(); clients];
    for class_indices in per_class {
        if class_indices.is_empty() {
            continue;
        }
        let props = dirichlet_sample(alpha, clients, rng);
        // Convert proportions into cumulative cut points over the class.
        let n = class_indices.len();
        let mut cuts = Vec::with_capacity(clients);
        let mut acc = 0.0;
        for &p in &props {
            acc += p;
            cuts.push(((acc * n as f64).round() as usize).min(n));
        }
        let mut start = 0;
        for (client, &end) in cuts.iter().enumerate() {
            if end > start {
                out[client].extend_from_slice(&class_indices[start..end]);
            }
            start = start.max(end);
        }
    }
    Ok(out)
}

/// Samples a point from the `Dirichlet(alpha)` simplex via normalized
/// Gamma(alpha, 1) draws (Marsaglia–Tsang for α ≥ 1, boost for α < 1).
fn dirichlet_sample(alpha: f64, k: usize, rng: &mut TensorRng) -> Vec<f64> {
    let mut draws: Vec<f64> = (0..k).map(|_| gamma_sample(alpha, rng)).collect();
    let sum: f64 = draws.iter().sum();
    if sum <= 0.0 {
        // Degenerate fallback: uniform.
        return vec![1.0 / k as f64; k];
    }
    for d in &mut draws {
        *d /= sum;
    }
    draws
}

fn gamma_sample(alpha: f64, rng: &mut TensorRng) -> f64 {
    if alpha < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
        let u = rng.unit_f64().max(f64::MIN_POSITIVE);
        return gamma_sample(alpha + 1.0, rng) * u.powf(1.0 / alpha);
    }
    // Marsaglia–Tsang squeeze method.
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal_f64(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u = rng.unit_f64();
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

fn standard_normal_f64(rng: &mut TensorRng) -> f64 {
    let u1 = rng.unit_f64().max(f64::MIN_POSITIVE);
    let u2 = rng.unit_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels_10_classes(n: usize) -> Vec<usize> {
        (0..n).map(|i| i % 10).collect()
    }

    fn assert_partition_is_exact(shards: &[Vec<usize>], n: usize) {
        let mut all: Vec<usize> = shards.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(
            all,
            (0..n).collect::<Vec<_>>(),
            "must cover 0..n exactly once"
        );
    }

    #[test]
    fn iid_partition_is_balanced_and_exact() {
        let mut rng = TensorRng::seed_from(0);
        let shards = iid(103, 4, &mut rng);
        assert_partition_is_exact(&shards, 103);
        for s in &shards {
            assert!(s.len() == 25 || s.len() == 26);
        }
    }

    #[test]
    fn iid_is_seeded_deterministic() {
        let a = iid(50, 3, &mut TensorRng::seed_from(1));
        let b = iid(50, 3, &mut TensorRng::seed_from(1));
        assert_eq!(a, b);
    }

    #[test]
    fn label_shards_partition_is_exact_and_skewed() {
        let labels = labels_10_classes(400);
        let mut rng = TensorRng::seed_from(2);
        let shards = label_shards(&labels, 4, 2, &mut rng).unwrap();
        assert_partition_is_exact(&shards, 400);
        // With 8 shards over 10 sorted classes, each client sees few
        // classes: count distinct labels per client.
        for client in &shards {
            let mut classes: Vec<usize> = client.iter().map(|&i| labels[i]).collect();
            classes.sort_unstable();
            classes.dedup();
            assert!(
                classes.len() <= 4,
                "shard client saw {} classes, expected heavy skew",
                classes.len()
            );
        }
    }

    #[test]
    fn label_shards_rejects_bad_arguments() {
        let labels = labels_10_classes(10);
        let mut rng = TensorRng::seed_from(0);
        assert!(label_shards(&labels, 0, 2, &mut rng).is_err());
        assert!(label_shards(&labels, 4, 0, &mut rng).is_err());
        assert!(label_shards(&labels, 20, 2, &mut rng).is_err());
    }

    #[test]
    fn dirichlet_partition_is_exact() {
        let labels = labels_10_classes(500);
        let mut rng = TensorRng::seed_from(3);
        let shards = dirichlet(&labels, 10, 5, 0.5, &mut rng).unwrap();
        assert_partition_is_exact(&shards, 500);
    }

    #[test]
    fn dirichlet_small_alpha_is_more_skewed_than_large() {
        let labels = labels_10_classes(1000);
        let skew = |alpha: f64, seed: u64| -> f64 {
            let mut rng = TensorRng::seed_from(seed);
            let shards = dirichlet(&labels, 10, 5, alpha, &mut rng).unwrap();
            // Mean over clients of (max class share).
            shards
                .iter()
                .filter(|s| !s.is_empty())
                .map(|s| {
                    let mut counts = [0usize; 10];
                    for &i in s.iter() {
                        counts[labels[i]] += 1;
                    }
                    *counts.iter().max().unwrap() as f64 / s.len() as f64
                })
                .sum::<f64>()
                / shards.len() as f64
        };
        // Average over several seeds to avoid flakiness.
        let small: f64 = (0..5).map(|s| skew(0.1, s)).sum::<f64>() / 5.0;
        let large: f64 = (0..5).map(|s| skew(100.0, s)).sum::<f64>() / 5.0;
        assert!(
            small > large + 0.1,
            "alpha=0.1 skew {small} should exceed alpha=100 skew {large}"
        );
    }

    #[test]
    fn dirichlet_rejects_bad_arguments() {
        let labels = labels_10_classes(10);
        let mut rng = TensorRng::seed_from(0);
        assert!(dirichlet(&labels, 10, 0, 1.0, &mut rng).is_err());
        assert!(dirichlet(&labels, 10, 2, 0.0, &mut rng).is_err());
        assert!(dirichlet(&labels, 10, 2, f64::NAN, &mut rng).is_err());
        assert!(
            dirichlet(&labels, 5, 2, 1.0, &mut rng).is_err(),
            "label 9 out of range"
        );
    }

    #[test]
    fn gamma_sampler_has_plausible_mean() {
        // Gamma(k, 1) has mean k.
        let mut rng = TensorRng::seed_from(7);
        for &alpha in &[0.5f64, 1.0, 3.0] {
            let n = 4000;
            let mean: f64 = (0..n).map(|_| gamma_sample(alpha, &mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - alpha).abs() < 0.15 * alpha.max(1.0),
                "gamma({alpha}) mean {mean}"
            );
        }
    }
}
