//! Labelled image dataset and mini-batch iteration.

use crate::{DataError, Result};
use helios_tensor::{Tensor, TensorRng};

/// A labelled image dataset stored as one `[N, C, H, W]` tensor.
///
/// Datasets are immutable after construction; federated clients receive
/// [`Dataset::subset`] views copied out by index.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// use helios_data::Dataset;
/// use helios_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn Error>> {
/// let images = Tensor::zeros(&[4, 1, 2, 2]);
/// let ds = Dataset::new(images, vec![0, 1, 0, 1], 2)?;
/// assert_eq!(ds.len(), 4);
/// assert_eq!(ds.class_counts(), vec![2, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset from an image tensor and parallel labels.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::LengthMismatch`] when counts disagree and
    /// [`DataError::LabelOutOfRange`] for an invalid label.
    pub fn new(images: Tensor, labels: Vec<usize>, num_classes: usize) -> Result<Self> {
        let n = images.dims().first().copied().unwrap_or(0);
        if n != labels.len() {
            return Err(DataError::LengthMismatch {
                images: n,
                labels: labels.len(),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(DataError::LabelOutOfRange {
                label: bad,
                classes: num_classes,
            });
        }
        Ok(Dataset {
            images,
            labels,
            num_classes,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The full image tensor, `[N, C, H, W]`.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Per-sample dimensions (`[C, H, W]`).
    pub fn sample_dims(&self) -> Vec<usize> {
        self.images.dims()[1..].to_vec()
    }

    /// Number of samples per class.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Copies out the samples at `indices`, in the given order.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::IndexOutOfRange`] for an invalid index.
    pub fn subset(&self, indices: &[usize]) -> Result<Dataset> {
        let sample_len: usize = self.sample_dims().iter().product();
        let src = self.images.as_slice();
        let mut data = Vec::with_capacity(indices.len() * sample_len);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            if i >= self.len() {
                return Err(DataError::IndexOutOfRange {
                    index: i,
                    len: self.len(),
                });
            }
            data.extend_from_slice(&src[i * sample_len..(i + 1) * sample_len]);
            labels.push(self.labels[i]);
        }
        let mut dims = vec![indices.len()];
        dims.extend(self.sample_dims());
        Ok(Dataset {
            images: Tensor::from_vec(data, &dims)?,
            labels,
            num_classes: self.num_classes,
        })
    }

    /// Concatenates two datasets with identical sample dimensions and
    /// class counts (e.g. merging shards when devices leave and their
    /// data is redistributed).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidArgument`] when geometries differ.
    pub fn merge(&self, other: &Dataset) -> Result<Dataset> {
        if self.sample_dims() != other.sample_dims() || self.num_classes != other.num_classes {
            return Err(DataError::InvalidArgument {
                what: format!(
                    "cannot merge {:?}/{} classes with {:?}/{} classes",
                    self.sample_dims(),
                    self.num_classes,
                    other.sample_dims(),
                    other.num_classes
                ),
            });
        }
        let mut data = self.images.as_slice().to_vec();
        data.extend_from_slice(other.images.as_slice());
        let mut labels = self.labels.clone();
        labels.extend_from_slice(&other.labels);
        let mut dims = vec![self.len() + other.len()];
        dims.extend(self.sample_dims());
        Ok(Dataset {
            images: Tensor::from_vec(data, &dims)?,
            labels,
            num_classes: self.num_classes,
        })
    }

    /// The samples belonging to one class, in dataset order.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::LabelOutOfRange`] for an invalid class.
    pub fn class_subset(&self, class: usize) -> Result<Dataset> {
        if class >= self.num_classes {
            return Err(DataError::LabelOutOfRange {
                label: class,
                classes: self.num_classes,
            });
        }
        let indices: Vec<usize> = self
            .labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == class)
            .map(|(i, _)| i)
            .collect();
        self.subset(&indices)
    }

    /// Returns a copy with every label rotated `by` class positions
    /// (modulo the class count) — the scenario engine's abrupt concept
    /// drift. Rotation is exact and composable: rotating by `a` then `b`
    /// equals rotating by `a + b`.
    pub fn rotate_labels(&self, by: usize) -> Dataset {
        if self.num_classes == 0 {
            return self.clone();
        }
        let labels = self
            .labels
            .iter()
            .map(|&l| (l + by) % self.num_classes)
            .collect();
        Dataset {
            images: self.images.clone(),
            labels,
            num_classes: self.num_classes,
        }
    }

    /// Returns a copy with `offset` added to every input value — the
    /// scenario engine's gradual covariate shift. Note f32 addition is
    /// not associative: callers composing several shifts must apply them
    /// one at a time, in timeline order, to stay bit-reproducible.
    ///
    /// # Errors
    ///
    /// Returns a tensor construction error (impossible for a finite
    /// offset — the geometry is unchanged).
    pub fn shift_inputs(&self, offset: f32) -> Result<Dataset> {
        let data: Vec<f32> = self.images.as_slice().iter().map(|&v| v + offset).collect();
        Ok(Dataset {
            images: Tensor::from_vec(data, self.images.dims())?,
            labels: self.labels.clone(),
            num_classes: self.num_classes,
        })
    }

    /// Iterates the dataset in fixed order as mini-batches of at most
    /// `batch_size` samples (the final batch may be smaller).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn batches(&self, batch_size: usize) -> Batches<'_> {
        assert!(batch_size > 0, "batch size must be nonzero");
        Batches {
            dataset: self,
            order: (0..self.len()).collect(),
            batch_size,
            cursor: 0,
        }
    }

    /// Iterates the dataset as mini-batches in a seeded random order.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn shuffled_batches(&self, batch_size: usize, rng: &mut TensorRng) -> Batches<'_> {
        assert!(batch_size > 0, "batch size must be nonzero");
        let mut order: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut order);
        Batches {
            dataset: self,
            order,
            batch_size,
            cursor: 0,
        }
    }
}

/// Iterator of `(images, labels)` mini-batches produced by
/// [`Dataset::batches`] / [`Dataset::shuffled_batches`].
#[derive(Debug)]
pub struct Batches<'a> {
    dataset: &'a Dataset,
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl Iterator for Batches<'_> {
    type Item = (Tensor, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let idx = &self.order[self.cursor..end];
        self.cursor = end;
        let batch = self
            .dataset
            .subset(idx)
            .expect("indices come from 0..len and are always valid");
        Some((batch.images.clone(), batch.labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn four_sample_dataset() -> Dataset {
        let data: Vec<f32> = (0..16).map(|i| i as f32).collect();
        Dataset::new(
            Tensor::from_vec(data, &[4, 1, 2, 2]).unwrap(),
            vec![0, 1, 2, 0],
            3,
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        let images = Tensor::zeros(&[3, 1, 2, 2]);
        assert!(matches!(
            Dataset::new(images.clone(), vec![0, 1], 2),
            Err(DataError::LengthMismatch { .. })
        ));
        assert!(matches!(
            Dataset::new(images, vec![0, 1, 5], 2),
            Err(DataError::LabelOutOfRange { .. })
        ));
    }

    #[test]
    fn subset_copies_in_order() {
        let ds = four_sample_dataset();
        let sub = ds.subset(&[2, 0]).unwrap();
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.labels(), &[2, 0]);
        // Sample 2 occupies flat range 8..12.
        assert_eq!(&sub.images().as_slice()[0..4], &[8.0, 9.0, 10.0, 11.0]);
        assert!(ds.subset(&[9]).is_err());
    }

    #[test]
    fn batches_cover_everything_once() {
        let ds = four_sample_dataset();
        let collected: Vec<_> = ds.batches(3).collect();
        assert_eq!(collected.len(), 2);
        assert_eq!(collected[0].1.len(), 3);
        assert_eq!(collected[1].1.len(), 1, "final partial batch");
        let total: usize = collected.iter().map(|(_, l)| l.len()).sum();
        assert_eq!(total, ds.len());
    }

    #[test]
    fn shuffled_batches_are_a_permutation_and_seeded() {
        let ds = four_sample_dataset();
        let mut rng1 = TensorRng::seed_from(5);
        let mut rng2 = TensorRng::seed_from(5);
        let a: Vec<usize> = ds
            .shuffled_batches(2, &mut rng1)
            .flat_map(|(_, l)| l)
            .collect();
        let b: Vec<usize> = ds
            .shuffled_batches(2, &mut rng2)
            .flat_map(|(_, l)| l)
            .collect();
        assert_eq!(a, b, "same seed, same order");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 0, 1, 2], "labels are a permutation");
    }

    #[test]
    fn class_counts_tally_labels() {
        let ds = four_sample_dataset();
        assert_eq!(ds.class_counts(), vec![2, 1, 1]);
    }

    #[test]
    fn merge_concatenates_compatible_datasets() {
        let a = four_sample_dataset();
        let b = four_sample_dataset();
        let m = a.merge(&b).unwrap();
        assert_eq!(m.len(), 8);
        assert_eq!(m.class_counts(), vec![4, 2, 2]);
        assert_eq!(&m.images().as_slice()[16..20], &[0.0, 1.0, 2.0, 3.0]);
        // Geometry mismatch is rejected.
        let other = Dataset::new(Tensor::zeros(&[1, 1, 3, 3]), vec![0], 3).unwrap();
        assert!(a.merge(&other).is_err());
    }

    #[test]
    fn class_subset_selects_one_label() {
        let ds = four_sample_dataset();
        let zeros = ds.class_subset(0).unwrap();
        assert_eq!(zeros.len(), 2);
        assert!(zeros.labels().iter().all(|&l| l == 0));
        let empty = ds.class_subset(1).unwrap();
        assert_eq!(empty.len(), 1);
        assert!(ds.class_subset(9).is_err());
    }

    #[test]
    fn rotate_labels_wraps_and_composes() {
        let ds = four_sample_dataset();
        let r = ds.rotate_labels(2);
        assert_eq!(r.labels(), &[2, 0, 1, 2]);
        assert_eq!(r.images().as_slice(), ds.images().as_slice());
        // Composition equals a single combined rotation.
        let twice = ds.rotate_labels(1).rotate_labels(1);
        assert_eq!(twice.labels(), r.labels());
        // A full-cycle rotation is the identity.
        assert_eq!(ds.rotate_labels(3).labels(), ds.labels());
    }

    #[test]
    fn shift_inputs_offsets_every_pixel() {
        let ds = four_sample_dataset();
        let s = ds.shift_inputs(0.5).unwrap();
        for (a, b) in ds.images().as_slice().iter().zip(s.images().as_slice()) {
            assert_eq!(*b, *a + 0.5);
        }
        assert_eq!(s.labels(), ds.labels());
        assert_eq!(s.num_classes(), ds.num_classes());
    }

    #[test]
    fn empty_dataset_is_ok() {
        let ds = Dataset::new(Tensor::zeros(&[0, 1, 2, 2]), vec![], 3).unwrap();
        assert!(ds.is_empty());
        assert_eq!(ds.batches(4).count(), 0);
    }
}
