//! Synthetic class-conditional image generators.
//!
//! Each class owns a smooth random **prototype** image (a coarse random
//! grid bilinearly upsampled to the target resolution). A sample is its
//! class prototype plus white noise. Difficulty is controlled by two
//! knobs: the noise level and the class count — more classes pack the
//! prototype space more densely, so CIFAR-100-like generation is genuinely
//! harder than MNIST-like, mirroring the paper's dataset ladder.

use crate::{Dataset, Result};
use helios_tensor::{Tensor, TensorRng};
use serde::{Deserialize, Serialize};

/// Configuration of a synthetic vision dataset.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// use helios_data::SyntheticVision;
/// use helios_tensor::TensorRng;
///
/// # fn main() -> Result<(), Box<dyn Error>> {
/// let spec = SyntheticVision::cifar10_like();
/// let (train, test) = spec.generate(200, 50, &mut TensorRng::seed_from(1))?;
/// assert_eq!(train.sample_dims(), vec![3, 16, 16]);
/// assert_eq!(test.len(), 50);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticVision {
    /// Number of classes.
    pub num_classes: usize,
    /// Image channels.
    pub channels: usize,
    /// Image side length (square images).
    pub side: usize,
    /// Standard deviation of the per-pixel sample noise.
    pub noise_std: f32,
    /// Side length of the coarse grid the prototypes are upsampled from.
    /// Smaller grids give smoother, more overlapping prototypes.
    pub prototype_grid: usize,
}

impl SyntheticVision {
    /// MNIST-like: 10 classes, 1×16×16, mild noise.
    pub fn mnist_like() -> Self {
        SyntheticVision {
            num_classes: 10,
            channels: 1,
            side: 16,
            noise_std: 0.45,
            prototype_grid: 4,
        }
    }

    /// CIFAR-10-like: 10 classes, 3×16×16, heavier noise.
    pub fn cifar10_like() -> Self {
        SyntheticVision {
            num_classes: 10,
            channels: 3,
            side: 16,
            noise_std: 0.75,
            prototype_grid: 4,
        }
    }

    /// CIFAR-100-like: 100 classes, 3×16×16, heavy noise and densely
    /// packed prototypes.
    pub fn cifar100_like() -> Self {
        SyntheticVision {
            num_classes: 100,
            channels: 3,
            side: 16,
            noise_std: 0.75,
            prototype_grid: 4,
        }
    }

    /// Generates `(train, test)` datasets with balanced classes.
    ///
    /// Sample `i` gets label `i % num_classes`, so any contiguous slice is
    /// approximately balanced. Prototypes are drawn first from `rng`, so
    /// two calls with identically seeded generators produce identical
    /// datasets.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DataError::InvalidArgument`] for a zero-sized
    /// configuration.
    pub fn generate(
        &self,
        train_samples: usize,
        test_samples: usize,
        rng: &mut TensorRng,
    ) -> Result<(Dataset, Dataset)> {
        self.validate()?;
        let prototypes = self.make_prototypes(rng);
        let train = self.sample_dataset(train_samples, &prototypes, rng)?;
        let test = self.sample_dataset(test_samples, &prototypes, rng)?;
        Ok((train, test))
    }

    fn validate(&self) -> Result<()> {
        if self.num_classes == 0 || self.channels == 0 || self.side == 0 {
            return Err(crate::DataError::InvalidArgument {
                what: "classes, channels and side must be nonzero".into(),
            });
        }
        if self.prototype_grid == 0 || self.prototype_grid > self.side {
            return Err(crate::DataError::InvalidArgument {
                what: format!(
                    "prototype grid {} must be in 1..={}",
                    self.prototype_grid, self.side
                ),
            });
        }
        Ok(())
    }

    /// Per-class prototypes: coarse uniform grids upsampled bilinearly.
    fn make_prototypes(&self, rng: &mut TensorRng) -> Vec<Vec<f32>> {
        let g = self.prototype_grid;
        let side = self.side;
        let plane = side * side;
        (0..self.num_classes)
            .map(|_| {
                let mut proto = vec![0.0f32; self.channels * plane];
                for c in 0..self.channels {
                    // Coarse grid in [-1, 1].
                    let coarse: Vec<f32> = (0..g * g).map(|_| rng.uniform(-1.0, 1.0)).collect();
                    for y in 0..side {
                        for x in 0..side {
                            // Bilinear sample of the coarse grid.
                            let fy = y as f32 / (side - 1).max(1) as f32 * (g - 1) as f32;
                            let fx = x as f32 / (side - 1).max(1) as f32 * (g - 1) as f32;
                            let (y0, x0) = (fy.floor() as usize, fx.floor() as usize);
                            let (y1, x1) = ((y0 + 1).min(g - 1), (x0 + 1).min(g - 1));
                            let (dy, dx) = (fy - y0 as f32, fx - x0 as f32);
                            let v00 = coarse[y0 * g + x0];
                            let v01 = coarse[y0 * g + x1];
                            let v10 = coarse[y1 * g + x0];
                            let v11 = coarse[y1 * g + x1];
                            let v = v00 * (1.0 - dy) * (1.0 - dx)
                                + v01 * (1.0 - dy) * dx
                                + v10 * dy * (1.0 - dx)
                                + v11 * dy * dx;
                            proto[c * plane + y * side + x] = v;
                        }
                    }
                }
                proto
            })
            .collect()
    }

    fn sample_dataset(
        &self,
        n: usize,
        prototypes: &[Vec<f32>],
        rng: &mut TensorRng,
    ) -> Result<Dataset> {
        let sample_len = self.channels * self.side * self.side;
        let mut data = Vec::with_capacity(n * sample_len);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % self.num_classes;
            labels.push(class);
            let proto = &prototypes[class];
            for &p in proto {
                data.push(p + rng.standard_normal() * self.noise_std);
            }
        }
        let images = Tensor::from_vec(data, &[n, self.channels, self.side, self.side])?;
        Dataset::new(images, labels, self.num_classes)
    }
}

/// Golden-ratio multiplier used across the workspace for index mixing.
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;
/// Domain-separation tag for per-shard sample streams ("SHRD").
const SHARD_STREAM: u64 = 0x5348_5244;
/// Domain-separation tag for the shared prototype stream ("PRTO").
const PROTO_STREAM: u64 = 0x5052_544f;
/// Domain-separation tag for the held-out test stream ("TEST").
const TEST_STREAM: u64 = 0x5445_5354;

/// On-demand generator of per-device data shards.
///
/// A fleet-scale population cannot pre-partition one giant dataset: at
/// 100k devices the training corpus would dwarf memory while almost all
/// of it belongs to devices that are never sampled. Instead, every shard
/// is synthesized lazily from a seed that is a pure function of
/// `(base_seed, shard_index)`, against one shared set of class
/// prototypes drawn once at construction — so all shards describe the
/// *same* underlying task, shard `i` is bit-for-bit reproducible in any
/// access order, and unsampled shards cost nothing.
///
/// # Example
///
/// ```
/// use helios_data::{ShardSynthesizer, SyntheticVision};
///
/// let synth = ShardSynthesizer::new(SyntheticVision::mnist_like(), 12, 42).unwrap();
/// let a = synth.shard(70_000).unwrap();
/// let b = synth.shard(70_000).unwrap();
/// assert_eq!(a.images().as_slice(), b.images().as_slice());
/// ```
#[derive(Debug, Clone)]
pub struct ShardSynthesizer {
    spec: SyntheticVision,
    prototypes: Vec<Vec<f32>>,
    samples_per_shard: usize,
    base_seed: u64,
}

impl ShardSynthesizer {
    /// Creates a synthesizer: validates `spec` and draws the shared class
    /// prototypes from a dedicated stream of `base_seed`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DataError::InvalidArgument`] for a zero-sized
    /// spec or an empty shard size.
    pub fn new(spec: SyntheticVision, samples_per_shard: usize, base_seed: u64) -> Result<Self> {
        spec.validate()?;
        if samples_per_shard == 0 {
            return Err(crate::DataError::InvalidArgument {
                what: "samples_per_shard must be nonzero".into(),
            });
        }
        let mut proto_rng = TensorRng::seed_from(base_seed ^ PROTO_STREAM);
        let prototypes = spec.make_prototypes(&mut proto_rng);
        Ok(ShardSynthesizer {
            spec,
            prototypes,
            samples_per_shard,
            base_seed,
        })
    }

    /// The dataset specification shared by every shard.
    pub fn spec(&self) -> &SyntheticVision {
        &self.spec
    }

    /// Number of samples in each synthesized shard.
    pub fn samples_per_shard(&self) -> usize {
        self.samples_per_shard
    }

    /// The seed every per-shard stream is derived from.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// Synthesizes the shard of device `index`.
    ///
    /// Pure in `(base_seed, index)`: the shard's noise stream is seeded
    /// from `base_seed ^ SHRD ^ GOLDEN·(index+1)` and never touches any
    /// other device's stream.
    ///
    /// # Errors
    ///
    /// Propagates tensor-construction failures from the sampler.
    pub fn shard(&self, index: usize) -> Result<Dataset> {
        let seed = self.base_seed ^ SHARD_STREAM ^ GOLDEN.wrapping_mul(index as u64 + 1);
        let mut rng = TensorRng::seed_from(seed);
        self.spec
            .sample_dataset(self.samples_per_shard, &self.prototypes, &mut rng)
    }

    /// Synthesizes a held-out test set of `n` samples against the same
    /// prototypes, from a stream disjoint from every shard.
    ///
    /// # Errors
    ///
    /// Propagates tensor-construction failures from the sampler.
    pub fn test_set(&self, n: usize) -> Result<Dataset> {
        let mut rng = TensorRng::seed_from(self.base_seed ^ TEST_STREAM);
        self.spec.sample_dataset(n, &self.prototypes, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_class_counts() {
        assert_eq!(SyntheticVision::mnist_like().num_classes, 10);
        assert_eq!(SyntheticVision::mnist_like().channels, 1);
        assert_eq!(SyntheticVision::cifar10_like().num_classes, 10);
        assert_eq!(SyntheticVision::cifar10_like().channels, 3);
        assert_eq!(SyntheticVision::cifar100_like().num_classes, 100);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = SyntheticVision::mnist_like();
        let (a, _) = spec.generate(50, 10, &mut TensorRng::seed_from(3)).unwrap();
        let (b, _) = spec.generate(50, 10, &mut TensorRng::seed_from(3)).unwrap();
        assert_eq!(a.images().as_slice(), b.images().as_slice());
        assert_eq!(a.labels(), b.labels());
        let (c, _) = spec.generate(50, 10, &mut TensorRng::seed_from(4)).unwrap();
        assert_ne!(a.images().as_slice(), c.images().as_slice());
    }

    #[test]
    fn labels_are_balanced_round_robin() {
        let spec = SyntheticVision::mnist_like();
        let (train, _) = spec.generate(100, 0, &mut TensorRng::seed_from(0)).unwrap();
        assert!(train.class_counts().iter().all(|&c| c == 10));
    }

    #[test]
    fn same_class_samples_are_closer_than_cross_class() {
        // The defining property of the generator: intra-class distance is
        // smaller than inter-class distance on average.
        let spec = SyntheticVision::mnist_like();
        let (train, _) = spec.generate(200, 0, &mut TensorRng::seed_from(9)).unwrap();
        let sample_len: usize = train.sample_dims().iter().product();
        let img = train.images().as_slice();
        let dist = |i: usize, j: usize| -> f32 {
            (0..sample_len)
                .map(|k| {
                    let d = img[i * sample_len + k] - img[j * sample_len + k];
                    d * d
                })
                .sum::<f32>()
        };
        // Samples i and i+10 share a class; i and i+1 do not.
        let mut intra = 0.0;
        let mut inter = 0.0;
        let mut count = 0;
        for i in 0..100 {
            intra += dist(i, i + 10);
            inter += dist(i, i + 1);
            count += 1;
        }
        assert!(
            (intra / count as f32) < (inter / count as f32),
            "intra-class distance must beat inter-class"
        );
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut spec = SyntheticVision::mnist_like();
        spec.num_classes = 0;
        assert!(spec.generate(10, 0, &mut TensorRng::seed_from(0)).is_err());
        let mut spec = SyntheticVision::mnist_like();
        spec.prototype_grid = 99;
        assert!(spec.generate(10, 0, &mut TensorRng::seed_from(0)).is_err());
    }

    #[test]
    fn shards_are_pure_in_seed_and_index() {
        let a = ShardSynthesizer::new(SyntheticVision::mnist_like(), 8, 5).unwrap();
        let b = ShardSynthesizer::new(SyntheticVision::mnist_like(), 8, 5).unwrap();
        // Access in different orders; bits must match.
        let a9 = a.shard(9).unwrap();
        let _ = a.shard(0).unwrap();
        let _ = b.shard(3).unwrap();
        let b9 = b.shard(9).unwrap();
        assert_eq!(a9.images().as_slice(), b9.images().as_slice());
        assert_eq!(a9.labels(), b9.labels());
        // Distinct shards carry distinct noise.
        let a10 = a.shard(10).unwrap();
        assert_ne!(a9.images().as_slice(), a10.images().as_slice());
    }

    #[test]
    fn shards_share_one_prototype_task() {
        // Same class in two different shards must be closer than different
        // classes in one shard — all shards describe the same task.
        let synth = ShardSynthesizer::new(SyntheticVision::mnist_like(), 20, 6).unwrap();
        let s0 = synth.shard(0).unwrap();
        let s1 = synth.shard(1).unwrap();
        let len: usize = s0.sample_dims().iter().product();
        let dist =
            |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum() };
        let img0 = s0.images().as_slice();
        let img1 = s1.images().as_slice();
        // Samples are labeled round-robin, so index i has class i % 10.
        let same = dist(&img0[..len], &img1[..len]);
        let cross = dist(&img0[..len], &img0[len..2 * len]);
        assert!(
            same < cross,
            "cross-shard same-class {same} vs cross-class {cross}"
        );
    }

    #[test]
    fn test_set_stream_is_disjoint_from_shards() {
        let synth = ShardSynthesizer::new(SyntheticVision::mnist_like(), 8, 7).unwrap();
        let test = synth.test_set(8).unwrap();
        let s0 = synth.shard(0).unwrap();
        assert_ne!(test.images().as_slice(), s0.images().as_slice());
        // And reproducible.
        let again = synth.test_set(8).unwrap();
        assert_eq!(test.images().as_slice(), again.images().as_slice());
    }

    #[test]
    fn shard_synthesizer_rejects_bad_specs() {
        let mut spec = SyntheticVision::mnist_like();
        spec.num_classes = 0;
        assert!(ShardSynthesizer::new(spec, 8, 0).is_err());
        assert!(ShardSynthesizer::new(SyntheticVision::mnist_like(), 0, 0).is_err());
    }

    #[test]
    fn cifar100_labels_cover_many_classes() {
        let spec = SyntheticVision::cifar100_like();
        let (train, _) = spec.generate(300, 0, &mut TensorRng::seed_from(0)).unwrap();
        let covered = train.class_counts().iter().filter(|&&c| c > 0).count();
        assert_eq!(covered, 100);
    }
}
