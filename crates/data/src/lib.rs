//! Synthetic vision datasets and federated data partitioners for the
//! Helios reproduction.
//!
//! The paper trains LeNet/AlexNet/ResNet-18 on MNIST/CIFAR-10/CIFAR-100.
//! Those datasets are not available offline, so this crate generates
//! **synthetic class-conditional image datasets** with matching class
//! counts and graded difficulty (see `DESIGN.md` §5): each class gets a
//! smooth random prototype image and samples are noisy draws around it.
//! What the Helios experiments measure — the *relative* convergence of FL
//! strategies — only needs separable-but-noisy multi-class data, which
//! these generators provide under full experimental control.
//!
//! The crate also implements the federated data splits:
//!
//! - [`partition::iid`] — uniform random shards;
//! - [`partition::label_shards`] — the sort-by-label shard method of
//!   Zhao et al., the Non-IID construction the paper cites in §VII.D;
//! - [`partition::dirichlet`] — Dirichlet(α) label skew, the other
//!   standard Non-IID benchmark, used for ablations.
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! use helios_data::{partition, SyntheticVision};
//! use helios_tensor::TensorRng;
//!
//! # fn main() -> Result<(), Box<dyn Error>> {
//! let mut rng = TensorRng::seed_from(7);
//! let spec = SyntheticVision::mnist_like();
//! let (train, test) = spec.generate(400, 100, &mut rng)?;
//! assert_eq!(train.num_classes(), 10);
//! let shards = partition::iid(train.len(), 4, &mut rng);
//! let client0 = train.subset(&shards[0])?;
//! assert_eq!(client0.len(), 100);
//! # let _ = test;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod error;
pub mod partition;
mod synthetic;

pub use dataset::{Batches, Dataset};
pub use error::DataError;
pub use synthetic::{ShardSynthesizer, SyntheticVision};

/// Crate-wide result alias carrying a [`DataError`].
pub type Result<T> = std::result::Result<T, DataError>;
