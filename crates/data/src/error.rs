//! Error type for dataset construction and slicing.

use helios_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Error returned by fallible dataset operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DataError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// Image count and label count disagree.
    LengthMismatch {
        /// Number of images.
        images: usize,
        /// Number of labels.
        labels: usize,
    },
    /// A label exceeds the declared class count.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Declared class count.
        classes: usize,
    },
    /// A subset index exceeds the dataset length.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Dataset length.
        len: usize,
    },
    /// A generator or partitioner parameter was invalid.
    InvalidArgument {
        /// Description of the problem.
        what: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Tensor(e) => write!(f, "tensor operation failed: {e}"),
            DataError::LengthMismatch { images, labels } => {
                write!(f, "{images} images but {labels} labels")
            }
            DataError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            DataError::IndexOutOfRange { index, len } => {
                write!(f, "index {index} out of range for dataset of {len}")
            }
            DataError::InvalidArgument { what } => write!(f, "invalid argument: {what}"),
        }
    }
}

impl Error for DataError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DataError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for DataError {
    fn from(e: TensorError) -> Self {
        DataError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty_and_source_chain() {
        let e = DataError::from(TensorError::SizeMismatch {
            elements: 1,
            expected: 2,
        });
        assert!(e.source().is_some());
        let variants = [
            DataError::LengthMismatch {
                images: 1,
                labels: 2,
            },
            DataError::LabelOutOfRange {
                label: 9,
                classes: 3,
            },
            DataError::IndexOutOfRange { index: 5, len: 3 },
            DataError::InvalidArgument {
                what: "zero clients".into(),
            },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
            assert!(v.source().is_none());
        }
    }
}
