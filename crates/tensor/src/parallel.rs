//! Scoped-thread parallel execution engine for the tensor kernels.
//!
//! Everything here is std-only (`std::thread::scope` + `split_at_mut`)
//! and safe: output buffers are partitioned into disjoint per-thread
//! chunks along an "item" axis (rows for matmul, batch entries for the
//! convolution relayouts, `N*C` planes for pooling), and every element
//! is computed by exactly one thread in exactly the order the serial
//! loop would use. That structural property is what makes parallel
//! results **bitwise identical** to serial ones — no atomics, no
//! reductions across threads, no reordered float accumulation.
//!
//! The thread count is ambient: kernels consult [`current_threads`],
//! which reads a thread-local override installed by
//! [`ParallelismConfig::scoped`] (falling back to the hardware count).
//! This keeps kernel signatures unchanged and lets callers — tests,
//! trainers, the FL strategies — force serial or fixed-width execution
//! for any region of code without plumbing a parameter through every
//! call site. The override is thread-local, so concurrently running
//! tests (or FL client workers) cannot race on each other's setting.

use serde::{Deserialize, Serialize};
use std::cell::Cell;

/// How many worker threads the tensor kernels and FL client rounds may
/// use.
///
/// `threads: None` means "auto": use every hardware thread the OS
/// reports. `Some(1)` forces serial execution; `Some(n)` caps the
/// worker count at `n`. Results are bitwise identical for every
/// setting — the knob trades wall-clock time only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ParallelismConfig {
    /// Worker-thread cap; `None` = auto-detect from the hardware.
    pub threads: Option<usize>,
}

impl ParallelismConfig {
    /// Auto-detect: one worker per hardware thread.
    pub const fn auto() -> Self {
        ParallelismConfig { threads: None }
    }

    /// Force single-threaded execution.
    pub const fn serial() -> Self {
        ParallelismConfig { threads: Some(1) }
    }

    /// Cap workers at `n` (0 is treated as 1).
    pub const fn with_threads(n: usize) -> Self {
        ParallelismConfig { threads: Some(n) }
    }

    /// The concrete thread count this config resolves to.
    pub fn resolve(&self) -> usize {
        self.threads.unwrap_or_else(hardware_threads).max(1)
    }

    /// Installs this config as the calling thread's ambient setting
    /// until the returned guard drops. Guards nest; the previous
    /// setting is restored on drop.
    #[must_use = "the setting is reverted when the guard drops"]
    pub fn scoped(&self) -> ParallelismGuard {
        let prev = OVERRIDE.with(|o| o.replace(Some(self.resolve())));
        ParallelismGuard { prev }
    }
}

thread_local! {
    /// Per-thread override of the kernel worker count.
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Reverts the ambient thread-count override installed by
/// [`ParallelismConfig::scoped`] when dropped.
#[derive(Debug)]
pub struct ParallelismGuard {
    prev: Option<usize>,
}

impl Drop for ParallelismGuard {
    fn drop(&mut self) {
        OVERRIDE.with(|o| o.set(self.prev));
    }
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The worker count kernels on this thread currently use.
pub fn current_threads() -> usize {
    OVERRIDE
        .with(Cell::get)
        .unwrap_or_else(hardware_threads)
        .max(1)
}

/// Minimum per-thread share of work (in elementary operations) below
/// which spawning a thread costs more than it saves.
const MIN_WORK_PER_THREAD: usize = 16 * 1024;

/// Number of worker threads for `items` items of `item_work` operations
/// each, under the ambient setting.
fn plan_threads(items: usize, item_work: usize) -> usize {
    let by_work = (items.saturating_mul(item_work.max(1)) / MIN_WORK_PER_THREAD).max(1);
    current_threads().min(items.max(1)).min(by_work)
}

/// Runs `f` over disjoint chunks of `data`, partitioned on an item axis.
///
/// `data` is treated as `data.len() / item_len` contiguous items of
/// `item_len` elements; items are split into one contiguous block per
/// worker and `f(first_item, chunk)` runs on each block (`first_item`
/// is the index of the block's first item). With one worker this
/// degenerates to `f(0, data)` on the calling thread, so parallel and
/// serial execution perform identical per-element computations.
///
/// `item_work` estimates the elementary operations per item and only
/// gates how many threads are worth spawning.
pub fn for_each_block<T, F>(data: &mut [T], item_len: usize, item_work: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if item_len == 0 || data.is_empty() {
        return;
    }
    debug_assert_eq!(data.len() % item_len, 0, "data must be whole items");
    let items = data.len() / item_len;
    let threads = plan_threads(items, item_work);
    if threads <= 1 {
        f(0, data);
        return;
    }
    let per_thread = items.div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = data;
        let mut first_item = 0usize;
        while !rest.is_empty() {
            let take_items = per_thread.min(rest.len() / item_len);
            let (chunk, tail) = rest.split_at_mut(take_items * item_len);
            rest = tail;
            let start = first_item;
            scope.spawn(move || f(start, chunk));
            first_item += take_items;
        }
    });
}

/// Like [`for_each_block`], but rounds each worker's item share up to a
/// multiple of `align`, so worker blocks start and end on tile
/// boundaries (the blocked GEMM passes its microkernel height so no
/// worker splits a register tile). Alignment only moves the partition
/// points *between* workers; every element is still computed by exactly
/// one thread in serial order, so results remain bitwise identical at
/// any width. The final block absorbs the remainder.
pub fn for_each_block_aligned<T, F>(
    data: &mut [T],
    item_len: usize,
    item_work: usize,
    align: usize,
    f: F,
) where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if item_len == 0 || data.is_empty() {
        return;
    }
    debug_assert_eq!(data.len() % item_len, 0, "data must be whole items");
    let items = data.len() / item_len;
    let threads = plan_threads(items, item_work);
    if threads <= 1 {
        f(0, data);
        return;
    }
    let per_thread = items.div_ceil(threads).next_multiple_of(align.max(1));
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = data;
        let mut first_item = 0usize;
        while !rest.is_empty() {
            let take_items = per_thread.min(rest.len() / item_len);
            let (chunk, tail) = rest.split_at_mut(take_items * item_len);
            rest = tail;
            let start = first_item;
            scope.spawn(move || f(start, chunk));
            first_item += take_items;
        }
    });
}

/// Like [`for_each_block`], but partitions two output buffers in
/// lockstep (e.g. max-pool values and argmax indices): item `i` spans
/// `a[i*a_len..]` and `b[i*b_len..]`, and both chunks for a block go to
/// the same worker.
pub fn for_each_block2<A, B, F>(
    a: &mut [A],
    a_len: usize,
    b: &mut [B],
    b_len: usize,
    item_work: usize,
    f: F,
) where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    if a_len == 0 || b_len == 0 || a.is_empty() {
        return;
    }
    debug_assert_eq!(a.len() % a_len, 0, "a must be whole items");
    debug_assert_eq!(a.len() / a_len, b.len() / b_len, "item counts must match");
    let items = a.len() / a_len;
    let threads = plan_threads(items, item_work);
    if threads <= 1 {
        f(0, a, b);
        return;
    }
    let per_thread = items.div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let (mut rest_a, mut rest_b) = (a, b);
        let mut first_item = 0usize;
        while !rest_a.is_empty() {
            let take_items = per_thread.min(rest_a.len() / a_len);
            let (chunk_a, tail_a) = rest_a.split_at_mut(take_items * a_len);
            let (chunk_b, tail_b) = rest_b.split_at_mut(take_items * b_len);
            rest_a = tail_a;
            rest_b = tail_b;
            let start = first_item;
            scope.spawn(move || f(start, chunk_a, chunk_b));
            first_item += take_items;
        }
    });
}

/// Splits a total thread budget between a fan-out of `count` items and
/// the kernels running inside each item: the fan-out width is capped at
/// the budget, and whatever budget is left over per worker is granted
/// to that worker's kernels. `budget = 1` therefore means fully serial;
/// `budget = 8` over 2 items means 2 workers running 4-thread kernels.
fn split_budget(count: usize, budget: usize) -> (usize, ParallelismConfig) {
    let budget = budget.max(1);
    let width = budget.min(count.max(1));
    (width, ParallelismConfig::with_threads(budget / width))
}

/// Runs one closure per item of `out` on worker threads, writing each
/// item's result into its slot. Used for coarse-grained fan-out (FL
/// clients training in parallel): item order in `out` matches input
/// order regardless of which worker ran which item. `threads` is the
/// *total* budget — it caps the fan-out width, and any surplus per
/// worker is granted to that worker's kernels (the budget split).
/// Results are bitwise identical for every budget because the kernels
/// themselves are deterministic at any width.
pub fn map_indexed<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<Option<T>> = (0..count).map(|_| None).collect();
    let (width, per_worker) = split_budget(count, threads);
    if width <= 1 || count <= 1 {
        for (i, slot) in out.iter_mut().enumerate() {
            // Match the multi-threaded path: kernels get the budget the
            // single "worker" (this thread) is entitled to.
            let _guard = per_worker.scoped();
            *slot = Some(f(i));
        }
    } else {
        let per_thread = count.div_ceil(width);
        std::thread::scope(|scope| {
            let f = &f;
            let mut rest: &mut [Option<T>] = &mut out;
            let mut first = 0usize;
            while !rest.is_empty() {
                let take = per_thread.min(rest.len());
                let (chunk, tail) = rest.split_at_mut(take);
                rest = tail;
                let start = first;
                scope.spawn(move || {
                    // Workers only get the budget left after the
                    // fan-out, so nested kernels never oversubscribe.
                    let _guard = per_worker.scoped();
                    for (off, slot) in chunk.iter_mut().enumerate() {
                        *slot = Some(f(start + off));
                    }
                });
                first += take;
            }
        });
    }
    out.into_iter()
        .map(|slot| slot.expect("every item filled"))
        .collect()
}

/// Like [`map_indexed`], but each closure call also receives exclusive
/// mutable access to its item of `items` — the primitive behind the FL
/// layer's parallel client rounds, where item `i` is client `i` and the
/// closure runs its local training. Output order matches item order and
/// the thread budget is split exactly as in [`map_indexed`].
pub fn map_items_mut<T, U, F>(items: &mut [T], threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, &mut T) -> U + Sync,
{
    let count = items.len();
    let mut out: Vec<Option<U>> = (0..count).map(|_| None).collect();
    let (width, per_worker) = split_budget(count, threads);
    if width <= 1 || count <= 1 {
        for (i, (slot, item)) in out.iter_mut().zip(items.iter_mut()).enumerate() {
            let _guard = per_worker.scoped();
            *slot = Some(f(i, item));
        }
    } else {
        let per_thread = count.div_ceil(width);
        std::thread::scope(|scope| {
            let f = &f;
            let mut rest_out: &mut [Option<U>] = &mut out;
            let mut rest_items: &mut [T] = items;
            let mut first = 0usize;
            while !rest_out.is_empty() {
                let take = per_thread.min(rest_out.len());
                let (chunk_out, tail_out) = rest_out.split_at_mut(take);
                let (chunk_items, tail_items) = rest_items.split_at_mut(take);
                rest_out = tail_out;
                rest_items = tail_items;
                let start = first;
                scope.spawn(move || {
                    let _guard = per_worker.scoped();
                    for (off, (slot, item)) in
                        chunk_out.iter_mut().zip(chunk_items.iter_mut()).enumerate()
                    {
                        *slot = Some(f(start + off, item));
                    }
                });
                first += take;
            }
        });
    }
    out.into_iter()
        .map(|slot| slot.expect("every item filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_resolution() {
        assert_eq!(ParallelismConfig::serial().resolve(), 1);
        assert_eq!(ParallelismConfig::with_threads(3).resolve(), 3);
        assert_eq!(ParallelismConfig::with_threads(0).resolve(), 1);
        assert!(ParallelismConfig::auto().resolve() >= 1);
    }

    #[test]
    fn scoped_override_nests_and_restores() {
        let outer = current_threads();
        {
            let _g = ParallelismConfig::with_threads(5).scoped();
            assert_eq!(current_threads(), 5);
            {
                let _g2 = ParallelismConfig::serial().scoped();
                assert_eq!(current_threads(), 1);
            }
            assert_eq!(current_threads(), 5);
        }
        assert_eq!(current_threads(), outer);
    }

    #[test]
    fn for_each_block_covers_every_item_once() {
        let _g = ParallelismConfig::with_threads(4).scoped();
        let mut data = vec![0u32; 24];
        // Large item_work defeats the small-work cutoff.
        for_each_block(&mut data, 3, usize::MAX / 64, |first, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v += (first * 3 + i) as u32 + 1;
            }
        });
        let expected: Vec<u32> = (1..=24).collect();
        assert_eq!(data, expected);
    }

    #[test]
    fn for_each_block2_keeps_buffers_in_lockstep() {
        let _g = ParallelismConfig::with_threads(3).scoped();
        let mut a = vec![0usize; 10];
        let mut b = vec![0usize; 20];
        for_each_block2(&mut a, 1, &mut b, 2, usize::MAX / 64, |first, ca, cb| {
            for i in 0..ca.len() {
                ca[i] = first + i;
                cb[2 * i] = 10 * (first + i);
                cb[2 * i + 1] = 10 * (first + i) + 1;
            }
        });
        for i in 0..10 {
            assert_eq!(a[i], i);
            assert_eq!(b[2 * i], 10 * i);
            assert_eq!(b[2 * i + 1], 10 * i + 1);
        }
    }

    #[test]
    fn map_indexed_preserves_order() {
        for threads in [1, 2, 5, 16] {
            let out = map_indexed(11, threads, |i| i * i);
            assert_eq!(out, (0..11).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(map_indexed(0, 4, |i| i).is_empty());
    }

    #[test]
    fn map_indexed_workers_run_kernels_serial() {
        let flags = map_indexed(4, 2, |_| current_threads());
        assert!(flags.iter().all(|&t| t == 1));
    }

    #[test]
    fn surplus_budget_flows_to_kernels() {
        // 8-thread budget over 2 items: 2 workers × 4 kernel threads.
        let flags = map_indexed(2, 8, |_| current_threads());
        assert_eq!(flags, vec![4, 4]);
        // Serial budget stays serial all the way down.
        let flags = map_indexed(2, 1, |_| current_threads());
        assert_eq!(flags, vec![1, 1]);
    }

    #[test]
    fn map_items_mut_mutates_in_place_and_preserves_order() {
        for threads in [1, 2, 5, 16] {
            let mut items: Vec<usize> = (0..9).collect();
            let out = map_items_mut(&mut items, threads, |i, v| {
                *v += 100;
                i * 10
            });
            assert_eq!(items, (100..109).collect::<Vec<_>>());
            assert_eq!(out, (0..9).map(|i| i * 10).collect::<Vec<_>>());
        }
        let mut empty: Vec<usize> = Vec::new();
        assert!(map_items_mut(&mut empty, 4, |_, _| 0).is_empty());
    }
}
