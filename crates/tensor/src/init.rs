//! Seeded random tensor initialization.
//!
//! Every stochastic component of the Helios workspace draws from an
//! explicitly seeded [`TensorRng`], so whole federated-learning runs are
//! bit-for-bit reproducible.

use crate::Tensor;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Deterministic random number generator used for all tensor initialization.
///
/// A thin newtype over ChaCha8 seeded from a `u64`; cheap to fork via
/// [`TensorRng::split`] so that sub-components get independent but still
/// reproducible streams.
///
/// # Example
///
/// ```
/// use helios_tensor::{xavier_uniform, TensorRng};
///
/// let mut rng = TensorRng::seed_from(42);
/// let w = xavier_uniform(&[4, 4], 4, 4, &mut rng);
/// let w2 = xavier_uniform(&[4, 4], 4, 4, &mut TensorRng::seed_from(42));
/// assert_eq!(w, w2); // same seed, same weights
/// ```
#[derive(Debug, Clone)]
pub struct TensorRng {
    inner: ChaCha8Rng,
}

impl TensorRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        TensorRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator.
    ///
    /// The child stream is a deterministic function of the parent state, so
    /// splitting preserves reproducibility while decoupling consumers.
    pub fn split(&mut self) -> Self {
        TensorRng::seed_from(self.next_seed())
    }

    /// Draws the raw 64-bit seed a [`TensorRng::split`] call would use.
    ///
    /// Lets callers record the split chain (one `u64` per child) and
    /// reconstruct each child later with [`TensorRng::seed_from`] —
    /// `seed_from(next_seed())` is bitwise identical to `split()`. The
    /// lazily instantiated fleet uses this to defer per-client generator
    /// construction without perturbing the eager stream.
    pub fn next_seed(&mut self) -> u64 {
        self.inner.gen::<u64>()
    }

    /// Uniform sample in `[low, high)`.
    pub fn uniform(&mut self, low: f32, high: f32) -> f32 {
        self.inner.gen_range(low..high)
    }

    /// Standard normal sample (Box–Muller transform).
    pub fn standard_normal(&mut self) -> f32 {
        // Box–Muller needs u1 strictly positive.
        let u1: f32 = self.inner.gen_range(f32::EPSILON..1.0);
        let u2: f32 = self.inner.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        self.inner.gen_range(0..bound)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices uniformly from `0..n` (partial
    /// Fisher–Yates).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct items from {n}");
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.inner.gen_range(i..n);
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }
}

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. Suited to layers followed by
/// symmetric activations.
pub fn xavier_uniform(
    dims: &[usize],
    fan_in: usize,
    fan_out: usize,
    rng: &mut TensorRng,
) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let mut t = Tensor::zeros(dims);
    for x in t.as_mut_slice() {
        *x = rng.uniform(-a, a);
    }
    t
}

/// He/Kaiming normal initialization: `N(0, sqrt(2 / fan_in))`. Suited to
/// layers followed by ReLU.
pub fn he_normal(dims: &[usize], fan_in: usize, rng: &mut TensorRng) -> Tensor {
    let std = (2.0 / fan_in as f32).sqrt();
    let mut t = Tensor::zeros(dims);
    for x in t.as_mut_slice() {
        *x = rng.standard_normal() * std;
    }
    t
}

/// Plain uniform initialization over `[low, high)`.
pub fn uniform_init(dims: &[usize], low: f32, high: f32, rng: &mut TensorRng) -> Tensor {
    let mut t = Tensor::zeros(dims);
    for x in t.as_mut_slice() {
        *x = rng.uniform(low, high);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = TensorRng::seed_from(7);
        let mut b = TensorRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = TensorRng::seed_from(1);
        let mut b = TensorRng::seed_from(2);
        let va: Vec<f32> = (0..8).map(|_| a.uniform(0.0, 1.0)).collect();
        let vb: Vec<f32> = (0..8).map(|_| b.uniform(0.0, 1.0)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let mut parent1 = TensorRng::seed_from(9);
        let mut parent2 = TensorRng::seed_from(9);
        let mut c1 = parent1.split();
        let mut c2 = parent2.split();
        assert_eq!(c1.uniform(0.0, 1.0), c2.uniform(0.0, 1.0));
        // Child and parent produce different streams.
        assert_ne!(parent1.uniform(0.0, 1.0), c1.uniform(0.0, 1.0));
    }

    #[test]
    fn next_seed_replays_split_exactly() {
        let mut parent1 = TensorRng::seed_from(11);
        let mut parent2 = TensorRng::seed_from(11);
        let recorded = parent1.next_seed();
        let mut via_seed = TensorRng::seed_from(recorded);
        let mut via_split = parent2.split();
        for _ in 0..32 {
            assert_eq!(via_seed.uniform(0.0, 1.0), via_split.uniform(0.0, 1.0));
        }
        // The parents stay in lockstep afterwards.
        assert_eq!(parent1.uniform(0.0, 1.0), parent2.uniform(0.0, 1.0));
    }

    #[test]
    fn xavier_bounds_hold() {
        let mut rng = TensorRng::seed_from(3);
        let t = xavier_uniform(&[64, 64], 64, 64, &mut rng);
        let a = (6.0f32 / 128.0).sqrt();
        assert!(t.as_slice().iter().all(|&x| x >= -a && x < a));
        // Not all identical.
        assert!(t.max() > t.min());
    }

    #[test]
    fn he_normal_has_plausible_spread() {
        let mut rng = TensorRng::seed_from(4);
        let t = he_normal(&[4096], 128, &mut rng);
        let mean = t.mean();
        let std = (t.map(|x| (x - mean) * (x - mean)).mean()).sqrt();
        let expected = (2.0f32 / 128.0).sqrt();
        assert!(mean.abs() < 0.01, "mean {mean} too far from 0");
        assert!(
            (std - expected).abs() < 0.2 * expected,
            "std {std} vs expected {expected}"
        );
    }

    #[test]
    fn standard_normal_is_finite() {
        let mut rng = TensorRng::seed_from(5);
        for _ in 0..10_000 {
            assert!(rng.standard_normal().is_finite());
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = TensorRng::seed_from(6);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_are_distinct_and_in_range() {
        let mut rng = TensorRng::seed_from(8);
        let s = rng.sample_indices(20, 10);
        assert_eq!(s.len(), 10);
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
        assert!(s.iter().all(|&i| i < 20));
        // Edge cases.
        assert!(rng.sample_indices(5, 0).is_empty());
        assert_eq!(rng.sample_indices(5, 5).len(), 5);
    }
}
