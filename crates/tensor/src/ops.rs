//! Linear-algebra and reduction operations on [`Tensor`].

use crate::gemm::{gemm_into, Layout};
use crate::{Result, Tensor, TensorError};

fn check_rank2(op: &'static str, t: &Tensor) -> Result<()> {
    if t.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: t.shape().rank(),
        });
    }
    Ok(())
}

impl Tensor {
    /// Matrix product of two rank-2 tensors: `[m, k] × [k, n] → [m, n]`.
    ///
    /// Runs on the blocked, cache-aware kernel in `crate::gemm`: packed
    /// operand panels, a register microkernel, and row-parallel workers.
    /// Results are bitwise identical to [`crate::naive_matmul`] at every
    /// thread width — accumulation stays in strictly ascending-`k` order
    /// with the `a_ik == 0.0` skip — see the module docs for why that
    /// invariant is load-bearing.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when either operand is not
    /// rank 2 and [`TensorError::ShapeMismatch`] when the inner dimensions
    /// disagree.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        check_rank2("matmul", self)?;
        check_rank2("matmul", other)?;
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        gemm_into(
            &mut out,
            m,
            k,
            n,
            self.as_slice(),
            Layout::Normal,
            other.as_slice(),
            Layout::Normal,
        );
        Tensor::from_vec(out, &[m, n])
    }

    /// Transposed-A matrix product: `selfᵀ × other` for `self` of shape
    /// `[k, m]` and `other` of shape `[k, n]`, producing `[m, n]`.
    ///
    /// Bitwise identical to `self.transpose()?.matmul(other)` — the GEMM
    /// packs `self` with swapped indices instead of materializing the
    /// transposed copy, so backward passes (`dW = xᵀ·g`) stay off the
    /// allocator. Work is recorded exactly as the two-step form did
    /// (`transpose` records nothing).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices and
    /// [`TensorError::ShapeMismatch`] when the shared `k` axes disagree.
    pub fn matmul_tn(&self, other: &Tensor) -> Result<Tensor> {
        check_rank2("matmul_tn", self)?;
        check_rank2("matmul_tn", other)?;
        let (k, m) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_tn",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        gemm_into(
            &mut out,
            m,
            k,
            n,
            self.as_slice(),
            Layout::Transposed,
            other.as_slice(),
            Layout::Normal,
        );
        Tensor::from_vec(out, &[m, n])
    }

    /// Transposed-B matrix product: `self × otherᵀ` for `self` of shape
    /// `[m, k]` and `other` of shape `[n, k]`, producing `[m, n]`.
    ///
    /// Bitwise identical to `self.matmul(&other.transpose()?)` without
    /// materializing the transposed copy; used by `grad_input = g·Wᵀ`
    /// and the conv forward's `cols × Wᵀ`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices and
    /// [`TensorError::ShapeMismatch`] when the shared `k` axes disagree.
    pub fn matmul_nt(&self, other: &Tensor) -> Result<Tensor> {
        check_rank2("matmul_nt", self)?;
        check_rank2("matmul_nt", other)?;
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (n, k2) = (other.dims()[0], other.dims()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_nt",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        gemm_into(
            &mut out,
            m,
            k,
            n,
            self.as_slice(),
            Layout::Normal,
            other.as_slice(),
            Layout::Transposed,
        );
        Tensor::from_vec(out, &[m, n])
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when the tensor is not rank 2.
    pub fn transpose(&self) -> Result<Tensor> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "transpose",
                expected: 2,
                actual: self.shape().rank(),
            });
        }
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let a = self.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = a[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Adds a `[n]` bias vector to every row of a `[m, n]` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`]
    /// when the operands are not a matrix and a matching vector.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Result<Tensor> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "add_row_broadcast",
                expected: 2,
                actual: self.shape().rank(),
            });
        }
        if bias.shape().rank() != 1 || bias.dims()[0] != self.dims()[1] {
            return Err(TensorError::ShapeMismatch {
                op: "add_row_broadcast",
                lhs: self.dims().to_vec(),
                rhs: bias.dims().to_vec(),
            });
        }
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let a = self.as_slice();
        let b = bias.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[i * n + j] = a[i * n + j] + b[j];
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Sums a `[m, n]` matrix along rows, producing `[n]` column totals.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when the tensor is not rank 2.
    pub fn sum_rows(&self) -> Result<Tensor> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "sum_rows",
                expected: 2,
                actual: self.shape().rank(),
            });
        }
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let a = self.as_slice();
        let mut out = vec![0.0f32; n];
        for i in 0..m {
            for j in 0..n {
                out[j] += a[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n])
    }

    /// Index of the maximum element in each row of a `[m, n]` matrix.
    ///
    /// Ties resolve to the lowest index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when the tensor is not rank 2.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "argmax_rows",
                expected: 2,
                actual: self.shape().rank(),
            });
        }
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let a = self.as_slice();
        let mut out = Vec::with_capacity(m);
        for i in 0..m {
            let row = &a[i * n..(i + 1) * n];
            let mut best = 0;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Row-wise numerically stable softmax of a `[m, n]` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when the tensor is not rank 2.
    pub fn softmax_rows(&self) -> Result<Tensor> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "softmax_rows",
                expected: 2,
                actual: self.shape().rank(),
            });
        }
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let a = self.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let row = &a[i * n..(i + 1) * n];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0;
            for j in 0..n {
                let e = (row[j] - max).exp();
                out[i * n + j] = e;
                denom += e;
            }
            for j in 0..n {
                out[i * n + j] /= denom;
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Extracts row `i` of a `[m, n]` matrix as a `[n]` vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices and
    /// [`TensorError::IndexOutOfBounds`] for an invalid row.
    pub fn row(&self, i: usize) -> Result<Tensor> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "row",
                expected: 2,
                actual: self.shape().rank(),
            });
        }
        let (m, n) = (self.dims()[0], self.dims()[1]);
        if i >= m {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![i],
                shape: self.dims().to_vec(),
            });
        }
        Tensor::from_vec(self.as_slice()[i * n..(i + 1) * n].to_vec(), &[n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).unwrap()
    }

    #[test]
    fn matmul_small_known_values() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let c = a.matmul(&Tensor::eye(2)).unwrap();
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(a.matmul(&b).is_err());
        let v = Tensor::zeros(&[3]);
        assert!(a.matmul(&v).is_err());
        assert!(v.matmul(&a).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let at = a.transpose().unwrap();
        assert_eq!(at.dims(), &[3, 2]);
        assert_eq!(at.get(&[2, 1]).unwrap(), 6.0);
        assert_eq!(at.transpose().unwrap(), a);
    }

    #[test]
    fn row_broadcast_adds_bias() {
        let a = Tensor::zeros(&[2, 3]);
        let b = t(&[1.0, 2.0, 3.0], &[3]);
        let c = a.add_row_broadcast(&b).unwrap();
        assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        assert!(a.add_row_broadcast(&Tensor::zeros(&[2])).is_err());
    }

    #[test]
    fn sum_rows_produces_column_totals() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let s = a.sum_rows().unwrap();
        assert_eq!(s.as_slice(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn argmax_rows_resolves_ties_low() {
        let a = t(&[1.0, 3.0, 3.0, 0.0, -1.0, -2.0], &[2, 3]);
        assert_eq!(a.argmax_rows().unwrap(), vec![1, 0]);
    }

    #[test]
    fn softmax_rows_sums_to_one_and_is_stable() {
        let a = t(&[1000.0, 1001.0, 999.0, 0.0, 0.0, 0.0], &[2, 3]);
        let s = a.softmax_rows().unwrap();
        for i in 0..2 {
            let row_sum: f32 = (0..3).map(|j| s.get(&[i, j]).unwrap()).sum();
            assert!((row_sum - 1.0).abs() < 1e-5);
        }
        assert!(s.as_slice().iter().all(|x| x.is_finite()));
        // Uniform logits produce uniform probabilities.
        assert!((s.get(&[1, 0]).unwrap() - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn row_extraction() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(a.row(1).unwrap().as_slice(), &[3.0, 4.0]);
        assert!(a.row(2).is_err());
    }
}
