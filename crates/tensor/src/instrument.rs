//! Process-wide kernel counters feeding the per-phase instrumentation in
//! the federated-learning engine.
//!
//! Every leaf compute kernel ([`Tensor::matmul`](crate::Tensor::matmul)
//! and the pooling family; convolution inherits its counts from the GEMM
//! it lowers to) records the floating-point operations and output
//! elements it produced. The counts are derived from the operand
//! *shapes*, once per kernel entry on the calling thread, so they are
//! identical at every parallelism width — unlike wall-clock time they
//! measure the work itself, not how it was scheduled.
//!
//! The counters are global atomics: cheap, lock-free, and visible from
//! any thread. The trade-off is that concurrent runs in one process
//! (e.g. tests sharing a binary) interleave their counts, so consumers
//! take snapshot *deltas* around the region they care about and treat
//! the numbers as observability data, not as values to compare bitwise.
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! use helios_tensor::{kernel_counters, Tensor};
//!
//! # fn main() -> Result<(), Box<dyn Error>> {
//! let before = kernel_counters();
//! let a = Tensor::from_vec(vec![1.0; 6], &[2, 3])?;
//! let b = Tensor::from_vec(vec![1.0; 12], &[3, 4])?;
//! let _ = a.matmul(&b)?;
//! let spent = kernel_counters().since(&before);
//! assert_eq!(spent.flops, 2 * 2 * 3 * 4);
//! assert_eq!(spent.elements, 2 * 4);
//! # Ok(())
//! # }
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

static FLOPS: AtomicU64 = AtomicU64::new(0);
static ELEMENTS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the process-wide kernel counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Floating-point operations executed by the counted kernels
    /// (a fused multiply-add counts as two).
    pub flops: u64,
    /// Output elements produced by the counted kernels.
    pub elements: u64,
}

impl KernelCounters {
    /// The counters accumulated since an `earlier` snapshot.
    ///
    /// Saturating: a snapshot taken from another process epoch (or
    /// swapped arguments) yields zero rather than wrapping.
    pub fn since(&self, earlier: &KernelCounters) -> KernelCounters {
        KernelCounters {
            flops: self.flops.saturating_sub(earlier.flops),
            elements: self.elements.saturating_sub(earlier.elements),
        }
    }
}

/// Reads the current process-wide counter totals.
pub fn kernel_counters() -> KernelCounters {
    KernelCounters {
        flops: FLOPS.load(Ordering::Relaxed),
        elements: ELEMENTS.load(Ordering::Relaxed),
    }
}

/// Records one kernel invocation. Called by the kernels themselves with
/// shape-derived counts; relaxed ordering is enough because the counters
/// carry no synchronization meaning.
pub(crate) fn record_kernel(flops: u64, elements: u64) {
    FLOPS.fetch_add(flops, Ordering::Relaxed);
    ELEMENTS.fetch_add(elements, Ordering::Relaxed);
}

/// Zeroes the process-wide kernel counters.
///
/// Consecutive runs in one process (bench bins, demo loops) bleed
/// totals into each other through these global atomics; resetting
/// between runs restores per-run attribution. Callers that share the
/// process with *concurrent* counter consumers (tests in one binary)
/// must not call this — take snapshot deltas instead. The `bench_*`
/// bins route through `helios_nn::profiler::HostMetricsScope`, which
/// calls this on entry.
pub fn reset_kernel_counters() {
    FLOPS.store(0, Ordering::Relaxed);
    ELEMENTS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, PoisonError};

    /// The counters are process-global and `reset_kernel_counters`
    /// would race the delta assertions, so these tests serialize.
    static COUNTER_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn deltas_accumulate_and_saturate() {
        let _serial = COUNTER_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let before = kernel_counters();
        record_kernel(100, 10);
        record_kernel(1, 2);
        let spent = kernel_counters().since(&before);
        assert_eq!(spent.flops, 101);
        assert_eq!(spent.elements, 12);
        // Swapped arguments saturate to zero instead of wrapping.
        assert_eq!(before.since(&kernel_counters()), KernelCounters::default());
    }

    #[test]
    fn reset_zeroes_the_totals() {
        let _serial = COUNTER_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        record_kernel(5, 5);
        assert!(kernel_counters().flops > 0);
        reset_kernel_counters();
        assert_eq!(kernel_counters(), KernelCounters::default());
    }
}
