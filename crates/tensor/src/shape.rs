//! Tensor shape: an ordered list of dimension extents.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a tensor: an ordered list of dimension extents.
///
/// A `Shape` is cheap to clone and compare; it owns a small `Vec<usize>`.
/// Rank-0 (scalar) shapes are permitted and have `num_elements() == 1`.
///
/// # Example
///
/// ```
/// use helios_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.num_elements(), 24);
/// assert_eq!(s.dim(1), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// Creates a scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Extent of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// All dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of elements (product of the extents; 1 for scalars).
    pub fn num_elements(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides for this shape.
    ///
    /// The stride of the last axis is 1; each preceding axis strides by the
    /// product of all later extents.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index into a flat row-major offset, or
    /// `None` when any coordinate is out of bounds or the rank differs.
    pub fn flat_index(&self, index: &[usize]) -> Option<usize> {
        if index.len() != self.dims.len() {
            return None;
        }
        let mut offset = 0;
        let strides = self.strides();
        for ((&i, &d), &s) in index.iter().zip(&self.dims).zip(&strides) {
            if i >= d {
                return None;
            }
            offset += i * s;
        }
        Some(offset)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.num_elements(), 1);
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn flat_index_round_trip() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.flat_index(&[0, 0]), Some(0));
        assert_eq!(s.flat_index(&[1, 2]), Some(5));
        assert_eq!(s.flat_index(&[2, 0]), None);
        assert_eq!(s.flat_index(&[0]), None);
    }

    #[test]
    fn display_lists_dims() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    fn zero_extent_dimension_yields_zero_elements() {
        assert_eq!(Shape::new(&[4, 0, 2]).num_elements(), 0);
    }
}
