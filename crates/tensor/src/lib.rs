//! Dense `f32` tensor operations for the Helios federated-learning
//! reproduction.
//!
//! This crate is the lowest substrate of the workspace: a small,
//! dependency-light tensor library providing exactly the operations the
//! neural-network layer zoo in `helios-nn` needs — shaped dense storage,
//! matrix multiplication, 2-D convolution via `im2col`, max pooling,
//! elementwise arithmetic, reductions, and seeded random initialization.
//!
//! It deliberately supports only `f32` and row-major contiguous storage:
//! the Helios experiments never need views, strides, or mixed dtypes, and
//! keeping the representation flat makes the federated parameter-vector
//! plumbing (`as_slice` / `from_vec`) trivial and copy-free.
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! use helios_tensor::Tensor;
//!
//! # fn main() -> Result<(), Box<dyn Error>> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conv;
mod error;
mod gemm;
mod init;
mod instrument;
mod ops;
mod packed;
mod parallel;
mod shape;
mod tensor;
mod workspace;

pub use conv::{
    avg_pool2d, avg_pool2d_backward, conv2d, conv2d_backward, conv2d_backward_packed, max_pool2d,
    max_pool2d_backward, Conv2dGrads, Conv2dPackedGrads, ConvSpec, PoolIndices, PoolSpec,
};
pub use error::TensorError;
pub use gemm::{naive_matmul, KC, MR, NR};
pub use init::{he_normal, uniform_init, xavier_uniform, TensorRng};
pub use instrument::{kernel_counters, reset_kernel_counters, KernelCounters};
pub use packed::{
    gather_channels, gather_elems, gather_rows_cols, scatter_add_elems, scatter_add_rows_cols,
    scatter_channels, scatter_cols,
};
pub use parallel::{
    current_threads, for_each_block, for_each_block2, for_each_block_aligned, map_indexed,
    map_items_mut, ParallelismConfig, ParallelismGuard,
};
pub use shape::Shape;
pub use tensor::Tensor;
pub use workspace::{reset_workspace_stats, workspace_stats, WorkspaceStats};

/// Crate-wide result alias carrying a [`TensorError`].
pub type Result<T> = std::result::Result<T, TensorError>;
