//! The dense row-major `f32` tensor.

use crate::{Result, Shape, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major, contiguously stored `f32` tensor.
///
/// `Tensor` is the single array type used throughout the Helios workspace:
/// model parameters, activations, gradients, and dataset samples are all
/// `Tensor`s. Storage is always contiguous, so the flat parameter-vector
/// view federated aggregation needs is just [`Tensor::as_slice`].
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// use helios_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn Error>> {
/// let t = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0], &[2, 3])?;
/// assert_eq!(t.get(&[1, 2])?, 5.0);
/// assert_eq!(t.sum(), 15.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.num_elements();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.num_elements();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a rank-0 scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// Creates a tensor from a flat `Vec` and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::SizeMismatch`] when `data.len()` differs from
    /// the product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.num_elements() {
            return Err(TensorError::SizeMismatch {
                elements: data.len(),
                expected: shape.num_elements(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// The tensor shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension extents as a slice (shorthand for `shape().dims()`).
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for an invalid index.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        self.shape
            .flat_index(index)
            .map(|i| self.data[i])
            .ok_or_else(|| TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.shape.dims().to_vec(),
            })
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for an invalid index.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        match self.shape.flat_index(index) {
            Some(i) => {
                self.data[i] = value;
                Ok(())
            }
            None => Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.shape.dims().to_vec(),
            }),
        }
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::SizeMismatch`] when the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if shape.num_elements() != self.data.len() {
            return Err(TensorError::SizeMismatch {
                elements: self.data.len(),
                expected: shape.num_elements(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise combination of two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Self> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "zip_map",
                lhs: self.shape.dims().to_vec(),
                rhs: other.shape.dims().to_vec(),
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Self> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Self> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Self> {
        self.zip_map(other, |a, b| a * b)
    }

    /// In-place `self += alpha * other` (the BLAS `axpy` primitive).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "axpy",
                lhs: self.shape.dims().to_vec(),
                rhs: other.shape.dims().to_vec(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiplies every element by `s`, producing a new tensor.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_inplace(&mut self, s: f32) {
        self.map_inplace(|x| x * s);
    }

    /// Fills the tensor with zeros.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (`f32::NEG_INFINITY` for empty tensors).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (`f32::INFINITY` for empty tensors).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Euclidean (L2) norm of the flattened tensor.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Sum of absolute values (L1 norm) of the flattened tensor.
    pub fn l1_norm(&self) -> f32 {
        self.data.iter().map(|x| x.abs()).sum()
    }
}

impl Default for Tensor {
    /// An empty rank-1 tensor.
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 8;
        write!(f, "Tensor{} [", self.shape)?;
        for (i, v) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > PREVIEW {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let o = Tensor::ones(&[4]);
        assert_eq!(o.sum(), 4.0);
    }

    #[test]
    fn from_vec_validates_size() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = Tensor::zeros(&[3, 3]);
        t.set(&[1, 2], 7.5).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 7.5);
        assert!(t.get(&[3, 0]).is_err());
        assert!(t.set(&[0, 3], 1.0).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4.0, 6.0]);
        assert_eq!(a.sub(&b).unwrap().as_slice(), &[-2.0, -2.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[3.0, 8.0]);
        let c = Tensor::zeros(&[3]);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn norms_and_reductions() {
        let t = Tensor::from_vec(vec![3.0, -4.0], &[2]).unwrap();
        assert_eq!(t.l2_norm(), 5.0);
        assert_eq!(t.l1_norm(), 7.0);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -4.0);
        assert_eq!(t.mean(), -0.5);
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        assert_eq!(i.get(&[0, 0]).unwrap(), 1.0);
        assert_eq!(i.get(&[0, 1]).unwrap(), 0.0);
        assert_eq!(i.sum(), 3.0);
    }

    #[test]
    fn display_previews_elements() {
        let t = Tensor::zeros(&[16]);
        let s = t.to_string();
        assert!(s.contains("…"));
        assert!(s.starts_with("Tensor[16]"));
    }

    #[test]
    fn scalar_tensor() {
        let s = Tensor::scalar(2.5);
        assert_eq!(s.len(), 1);
        assert_eq!(s.shape().rank(), 0);
        assert_eq!(s.sum(), 2.5);
    }
}
