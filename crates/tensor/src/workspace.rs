//! Reusable per-thread scratch buffers for kernel workspaces.
//!
//! The blocked GEMM ([`crate::gemm`]) packs operand panels, and the
//! im2col convolution unrolls patch matrices, into large temporary
//! buffers. Allocating those with `vec![0.0; len]` on every forward and
//! backward of every training cycle puts an allocator round-trip (and a
//! page-fault warmup for multi-megabyte `cols` matrices) on the hottest
//! path in the workspace. This module keeps a small per-thread pool of
//! `Vec<f32>` buffers that kernels check out with [`with_scratch`] and
//! return on exit, so steady-state training reuses the same allocations
//! cycle after cycle.
//!
//! Design notes:
//!
//! - **Zero-filled handout.** A [`with_scratch`] checkout arrives as an
//!   all-zeros slice of exactly the requested length. im2col relies on
//!   this (the padding positions of the patch matrix are never written).
//!   The `memset` is a single linear pass — negligible next to the
//!   `O(m·k·n)` work it fronts, and far cheaper than a fresh allocation.
//!   Callers that overwrite every slot anyway (GEMM panel packing) use
//!   [`with_scratch_dirty`] and skip even that pass.
//! - **Reentrancy.** Checkouts nest: `conv2d` holds its `cols` buffer
//!   while the GEMM inside it checks out pack panels. The pool is only
//!   borrowed for the instant of checkout/checkin, never across the
//!   closure, so nesting cannot double-borrow.
//! - **Thread locality.** The pool is `thread_local!`, so FL client
//!   workers and kernel worker threads never contend on a lock and never
//!   share buffers. Scoped kernel workers are short-lived and drop their
//!   pools on exit; the long-lived paths (serial training, each client
//!   worker's whole local round) are exactly the ones where reuse pays.
//! - **Bounded.** At most [`MAX_POOLED`] buffers are retained per
//!   thread; beyond that the smallest is dropped, so a burst of odd
//!   shapes cannot pin unbounded memory.
//!
//! [`workspace_stats`] exposes per-thread checkout/realloc counters so
//! tests can assert the steady-state path stops allocating.

use std::cell::RefCell;

/// Maximum number of idle buffers retained per thread.
const MAX_POOLED: usize = 8;

#[derive(Default)]
struct Pool {
    free: Vec<Vec<f32>>,
    acquires: u64,
    reallocs: u64,
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

/// Per-thread workspace counters, for observability and tests.
///
/// `acquires` counts every scratch checkout on the calling thread;
/// `reallocs` counts the checkouts that had to allocate or grow a
/// buffer. A steady-state training loop should show `acquires`
/// increasing while `reallocs` stays flat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkspaceStats {
    /// Total scratch-buffer checkouts on this thread.
    pub acquires: u64,
    /// Checkouts that had to allocate or grow (pool miss).
    pub reallocs: u64,
}

/// Returns the calling thread's workspace counters.
pub fn workspace_stats() -> WorkspaceStats {
    POOL.with(|cell| {
        let pool = cell.borrow();
        WorkspaceStats {
            acquires: pool.acquires,
            reallocs: pool.reallocs,
        }
    })
}

/// Resets the calling thread's workspace counters to zero.
///
/// The buffer pool itself is left intact — only the statistics reset,
/// so a test can measure the marginal allocations of a warm region.
pub fn reset_workspace_stats() {
    POOL.with(|cell| {
        let mut pool = cell.borrow_mut();
        pool.acquires = 0;
        pool.reallocs = 0;
    });
}

/// Runs `f` with a zero-filled scratch slice of `len` floats checked out
/// from the calling thread's buffer pool.
///
/// The buffer returns to the pool when `f` exits (also on panic-free
/// early returns; a panic simply drops it, which is safe). Checkouts
/// nest freely — each nested call pops its own buffer.
pub(crate) fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    checkout(len, true, f)
}

/// Like [`with_scratch`], but skips the zero-fill: the slice arrives
/// with arbitrary *stale float values* from earlier checkouts. Only for
/// callers that overwrite every slot before reading (e.g. GEMM operand
/// packing); anything with read-before-write or keep-if-zero semantics
/// must use [`with_scratch`].
pub(crate) fn with_scratch_dirty<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    checkout(len, false, f)
}

fn checkout<R>(len: usize, zeroed: bool, f: impl FnOnce(&mut [f32]) -> R) -> R {
    let mut buf = POOL.with(|cell| {
        let mut pool = cell.borrow_mut();
        pool.acquires += 1;
        // Best fit: the smallest pooled buffer that already covers `len`
        // (otherwise any buffer — it will grow below).
        let mut pick: Option<usize> = None;
        let mut pick_cap = usize::MAX;
        for (i, b) in pool.free.iter().enumerate() {
            let cap = b.capacity();
            if cap >= len && cap < pick_cap {
                pick = Some(i);
                pick_cap = cap;
            }
        }
        let buf = match pick {
            Some(i) => pool.free.swap_remove(i),
            None => pool.free.pop().unwrap_or_default(),
        };
        if buf.capacity() < len {
            pool.reallocs += 1;
        }
        buf
    });
    if zeroed {
        // Zero-fill handout: clear + resize touches exactly `len`
        // elements.
        buf.clear();
        buf.resize(len, 0.0);
    } else {
        // Dirty handout: only grow if needed; existing content stays.
        buf.resize(len.max(buf.len()), 0.0);
        buf.truncate(len);
    }
    let out = f(&mut buf);
    POOL.with(|cell| {
        let mut pool = cell.borrow_mut();
        pool.free.push(buf);
        if pool.free.len() > MAX_POOLED {
            // Evict the smallest buffer: the large ones are the expensive
            // ones to re-create.
            let mut drop_i = 0;
            let mut drop_cap = usize::MAX;
            for (i, b) in pool.free.iter().enumerate() {
                if b.capacity() < drop_cap {
                    drop_i = i;
                    drop_cap = b.capacity();
                }
            }
            pool.free.swap_remove(drop_i);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_arrives_zeroed_and_correctly_sized() {
        with_scratch(16, |s| {
            assert_eq!(s.len(), 16);
            assert!(s.iter().all(|&v| v == 0.0));
            s.fill(7.0);
        });
        // The dirty buffer is re-zeroed on the next checkout.
        with_scratch(16, |s| {
            assert!(s.iter().all(|&v| v == 0.0));
        });
    }

    #[test]
    fn warm_pool_stops_reallocating() {
        with_scratch(1024, |_| ());
        reset_workspace_stats();
        for _ in 0..10 {
            with_scratch(1024, |_| ());
            with_scratch(256, |_| ());
        }
        let stats = workspace_stats();
        assert_eq!(stats.acquires, 20);
        // The 1024-buffer is reused every round; only the first 256
        // checkout may need a fresh buffer (best-fit may satisfy it from
        // a larger pooled one, in which case even that is free).
        assert!(stats.reallocs <= 1, "stats: {stats:?}");
    }

    #[test]
    fn nested_checkouts_get_distinct_buffers() {
        with_scratch(8, |outer| {
            outer.fill(1.0);
            with_scratch(8, |inner| {
                assert!(inner.iter().all(|&v| v == 0.0));
                inner.fill(2.0);
            });
            assert!(outer.iter().all(|&v| v == 1.0));
        });
    }

    #[test]
    fn zero_length_checkout_is_fine() {
        with_scratch(0, |s| assert!(s.is_empty()));
    }

    #[test]
    fn dirty_checkout_skips_the_zero_fill() {
        with_scratch(32, |s| s.fill(5.0));
        with_scratch_dirty(16, |s| {
            assert_eq!(s.len(), 16);
            // Stale content from the previous checkout is visible.
            assert!(s.iter().all(|&v| v == 5.0));
        });
        // Growing a dirty checkout still yields the right length.
        with_scratch_dirty(64, |s| assert_eq!(s.len(), 64));
    }
}
