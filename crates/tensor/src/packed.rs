//! Gather/scatter primitives for mask-aware **packed execution**.
//!
//! When a soft-training unit mask is installed, the masked rows/columns
//! of a `Dense` weight (or channels of a `Conv2d`) contribute nothing:
//! their activations are definitionally zero and their gradients are
//! definitionally zeroed. Packed execution gathers the *active*
//! coordinates into compact tensors, runs the expensive GEMM/conv
//! kernels on the packed shapes, and scatters results back into
//! full-shape tensors (zeros elsewhere).
//!
//! Everything in this module is pure data movement: no arithmetic, no
//! flops recorded, and no reordering of the surviving elements. That is
//! what makes packed execution **bitwise identical** to the legacy
//! zeroing path — [`Tensor::matmul`](crate::Tensor::matmul) skips
//! zero-valued left-operand entries inside its accumulation loop, so the
//! zeroing path already omits exactly the terms packing removes, and the
//! per-element accumulation order of the remaining terms is unchanged.
//! The blocked kernel behind `matmul` (see [`crate::gemm`]) preserves
//! that `a_ik == 0.0` skip and the strictly-ascending-`k` term order in
//! every tile path — checked, unchecked, and packed-tail alike — which
//! is why cache blocking did not disturb this equivalence.
//!
//! Index lists must be strictly increasing subsets of the packed axis
//! (the layer code derives them from boolean masks, which guarantees
//! this); duplicates or out-of-range indices are rejected.

use crate::error::TensorError;
use crate::parallel::for_each_block;
use crate::tensor::Tensor;
use crate::Result;

/// Validates that `idx` is strictly increasing and within `bound`.
fn check_indices(idx: &[usize], bound: usize, what: &'static str) -> Result<()> {
    let mut prev: Option<usize> = None;
    for &i in idx {
        if i >= bound {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![i],
                shape: vec![bound],
            });
        }
        if prev.is_some_and(|p| p >= i) {
            return Err(TensorError::InvalidArgument {
                what: format!("{what}: index list must be strictly increasing"),
            });
        }
        prev = Some(i);
    }
    Ok(())
}

fn check_rank2(x: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    let d = x.dims();
    if d.len() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: d.len(),
        });
    }
    Ok((d[0], d[1]))
}

fn check_rank4(x: &Tensor, op: &'static str) -> Result<(usize, usize, usize, usize)> {
    let d = x.dims();
    if d.len() != 4 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 4,
            actual: d.len(),
        });
    }
    Ok((d[0], d[1], d[2], d[3]))
}

/// Gathers a rank-2 tensor down to `rows × cols`, where `None` keeps an
/// axis whole. The packed tensor holds the selected elements in their
/// original relative order.
pub fn gather_rows_cols(
    x: &Tensor,
    rows: Option<&[usize]>,
    cols: Option<&[usize]>,
) -> Result<Tensor> {
    let (m, n) = check_rank2(x, "gather_rows_cols")?;
    if let Some(r) = rows {
        check_indices(r, m, "gather_rows_cols rows")?;
    }
    if let Some(c) = cols {
        check_indices(c, n, "gather_rows_cols cols")?;
    }
    let mp = rows.map_or(m, <[usize]>::len);
    let np = cols.map_or(n, <[usize]>::len);
    let src = x.as_slice();
    let mut out = Tensor::zeros(&[mp, np]);
    for_each_block(out.as_mut_slice(), np, n, |first_row, chunk| {
        for (ri, dst_row) in chunk.chunks_mut(np.max(1)).enumerate() {
            let sr = rows.map_or(first_row + ri, |r| r[first_row + ri]);
            let src_row = &src[sr * n..(sr + 1) * n];
            match cols {
                Some(c) => {
                    for (dst, &sc) in dst_row.iter_mut().zip(c) {
                        *dst = src_row[sc];
                    }
                }
                None => dst_row.copy_from_slice(src_row),
            }
        }
    });
    Ok(out)
}

/// Adds a packed rank-2 tensor back into the `rows × cols` sub-grid of
/// `dst` (`None` keeps an axis whole). The inverse of
/// [`gather_rows_cols`] for gradient accumulation: untouched positions
/// of `dst` keep their exact bit patterns.
pub fn scatter_add_rows_cols(
    dst: &mut Tensor,
    src: &Tensor,
    rows: Option<&[usize]>,
    cols: Option<&[usize]>,
) -> Result<()> {
    let (m, n) = check_rank2(dst, "scatter_add_rows_cols")?;
    let (mp, np) = check_rank2(src, "scatter_add_rows_cols")?;
    if let Some(r) = rows {
        check_indices(r, m, "scatter_add_rows_cols rows")?;
    }
    if let Some(c) = cols {
        check_indices(c, n, "scatter_add_rows_cols cols")?;
    }
    if rows.map_or(m, <[usize]>::len) != mp || cols.map_or(n, <[usize]>::len) != np {
        return Err(TensorError::ShapeMismatch {
            op: "scatter_add_rows_cols",
            lhs: dst.dims().to_vec(),
            rhs: src.dims().to_vec(),
        });
    }
    let s = src.as_slice();
    let d = dst.as_mut_slice();
    for (ri, src_row) in s.chunks(np.max(1)).enumerate() {
        let dr = rows.map_or(ri, |r| r[ri]);
        let dst_row = &mut d[dr * n..(dr + 1) * n];
        match cols {
            Some(c) => {
                for (&v, &dc) in src_row.iter().zip(c) {
                    dst_row[dc] += v;
                }
            }
            None => {
                for (dv, &v) in dst_row.iter_mut().zip(src_row) {
                    *dv += v;
                }
            }
        }
    }
    Ok(())
}

/// Expands a packed rank-2 tensor of `cols.len()` columns into a
/// `rows × out_cols` tensor, placing column `j` of `src` at column
/// `cols[j]` and exact `+0.0` everywhere else.
pub fn scatter_cols(src: &Tensor, cols: &[usize], out_cols: usize) -> Result<Tensor> {
    let (m, np) = check_rank2(src, "scatter_cols")?;
    check_indices(cols, out_cols, "scatter_cols")?;
    if cols.len() != np {
        return Err(TensorError::ShapeMismatch {
            op: "scatter_cols",
            lhs: vec![m, np],
            rhs: vec![cols.len()],
        });
    }
    let s = src.as_slice();
    let mut out = Tensor::zeros(&[m, out_cols]);
    for_each_block(out.as_mut_slice(), out_cols, np, |first_row, chunk| {
        for (ri, dst_row) in chunk.chunks_mut(out_cols.max(1)).enumerate() {
            let src_row = &s[(first_row + ri) * np..(first_row + ri + 1) * np];
            for (&v, &dc) in src_row.iter().zip(cols) {
                dst_row[dc] = v;
            }
        }
    });
    Ok(out)
}

/// Gathers the selected entries of a rank-1 tensor (e.g. a bias vector).
pub fn gather_elems(x: &Tensor, idx: &[usize]) -> Result<Tensor> {
    let d = x.dims();
    if d.len() != 1 {
        return Err(TensorError::RankMismatch {
            op: "gather_elems",
            expected: 1,
            actual: d.len(),
        });
    }
    check_indices(idx, d[0], "gather_elems")?;
    let src = x.as_slice();
    Tensor::from_vec(idx.iter().map(|&i| src[i]).collect(), &[idx.len()])
}

/// Adds a packed rank-1 tensor back into the selected entries of `dst`.
pub fn scatter_add_elems(dst: &mut Tensor, src: &Tensor, idx: &[usize]) -> Result<()> {
    if dst.dims().len() != 1 || src.dims().len() != 1 {
        return Err(TensorError::RankMismatch {
            op: "scatter_add_elems",
            expected: 1,
            actual: dst.dims().len().max(src.dims().len()),
        });
    }
    check_indices(idx, dst.len(), "scatter_add_elems")?;
    if idx.len() != src.len() {
        return Err(TensorError::ShapeMismatch {
            op: "scatter_add_elems",
            lhs: vec![dst.len()],
            rhs: vec![src.len()],
        });
    }
    let d = dst.as_mut_slice();
    for (&v, &di) in src.as_slice().iter().zip(idx) {
        d[di] += v;
    }
    Ok(())
}

/// Gathers the selected channel planes of an `[N, C, H, W]` tensor into
/// `[N, channels.len(), H, W]`, preserving plane order.
pub fn gather_channels(x: &Tensor, channels: &[usize]) -> Result<Tensor> {
    let (n, c, h, w) = check_rank4(x, "gather_channels")?;
    check_indices(channels, c, "gather_channels")?;
    let plane = h * w;
    let ca = channels.len();
    let src = x.as_slice();
    let mut out = Tensor::zeros(&[n, ca, h, w]);
    for_each_block(out.as_mut_slice(), ca * plane, c * plane, |first, chunk| {
        for (ni, item) in chunk.chunks_mut((ca * plane).max(1)).enumerate() {
            let src_item = &src[(first + ni) * c * plane..(first + ni + 1) * c * plane];
            for (pi, &ci) in channels.iter().enumerate() {
                item[pi * plane..(pi + 1) * plane]
                    .copy_from_slice(&src_item[ci * plane..(ci + 1) * plane]);
            }
        }
    });
    Ok(out)
}

/// Expands an `[N, channels.len(), H, W]` tensor into `[N, out_channels,
/// H, W]`, placing plane `j` at channel `channels[j]` and exact `+0.0`
/// in every other plane.
pub fn scatter_channels(src: &Tensor, channels: &[usize], out_channels: usize) -> Result<Tensor> {
    let (n, ca, h, w) = check_rank4(src, "scatter_channels")?;
    check_indices(channels, out_channels, "scatter_channels")?;
    if channels.len() != ca {
        return Err(TensorError::ShapeMismatch {
            op: "scatter_channels",
            lhs: vec![n, ca, h, w],
            rhs: vec![channels.len()],
        });
    }
    let plane = h * w;
    let s = src.as_slice();
    let mut out = Tensor::zeros(&[n, out_channels, h, w]);
    for_each_block(
        out.as_mut_slice(),
        out_channels * plane,
        ca * plane,
        |first, chunk| {
            for (ni, item) in chunk.chunks_mut((out_channels * plane).max(1)).enumerate() {
                let src_item = &s[(first + ni) * ca * plane..(first + ni + 1) * ca * plane];
                for (pi, &ci) in channels.iter().enumerate() {
                    item[ci * plane..(ci + 1) * plane]
                        .copy_from_slice(&src_item[pi * plane..(pi + 1) * plane]);
                }
            }
        },
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{uniform_init, TensorRng};
    use crate::kernel_counters;

    #[test]
    fn gather_scatter_cols_round_trip() {
        let x = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[3, 4]).unwrap();
        let g = gather_rows_cols(&x, None, Some(&[1, 3])).unwrap();
        assert_eq!(g.dims(), &[3, 2]);
        assert_eq!(g.as_slice(), &[1.0, 3.0, 5.0, 7.0, 9.0, 11.0]);
        let s = scatter_cols(&g, &[1, 3], 4).unwrap();
        assert_eq!(
            s.as_slice(),
            &[0.0, 1.0, 0.0, 3.0, 0.0, 5.0, 0.0, 7.0, 0.0, 9.0, 0.0, 11.0]
        );
    }

    #[test]
    fn gather_rows_cols_selects_sub_grid() {
        let x = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[3, 4]).unwrap();
        let g = gather_rows_cols(&x, Some(&[0, 2]), Some(&[0, 2, 3])).unwrap();
        assert_eq!(g.dims(), &[2, 3]);
        assert_eq!(g.as_slice(), &[0.0, 2.0, 3.0, 8.0, 10.0, 11.0]);
    }

    #[test]
    fn scatter_add_targets_only_selected_cells() {
        let mut dst = Tensor::full(&[3, 4], 1.0);
        let src = Tensor::from_vec(vec![10.0, 20.0, 30.0, 40.0], &[2, 2]).unwrap();
        scatter_add_rows_cols(&mut dst, &src, Some(&[0, 2]), Some(&[1, 3])).unwrap();
        assert_eq!(
            dst.as_slice(),
            &[1.0, 11.0, 1.0, 21.0, 1.0, 1.0, 1.0, 1.0, 1.0, 31.0, 1.0, 41.0]
        );
    }

    #[test]
    fn elems_round_trip() {
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap();
        let g = gather_elems(&b, &[0, 3]).unwrap();
        assert_eq!(g.as_slice(), &[1.0, 4.0]);
        let mut dst = Tensor::zeros(&[4]);
        scatter_add_elems(&mut dst, &g, &[0, 3]).unwrap();
        assert_eq!(dst.as_slice(), &[1.0, 0.0, 0.0, 4.0]);
    }

    #[test]
    fn channels_round_trip() {
        let x = Tensor::from_vec(
            (0..2 * 3 * 2 * 2).map(|v| v as f32).collect(),
            &[2, 3, 2, 2],
        )
        .unwrap();
        let g = gather_channels(&x, &[0, 2]).unwrap();
        assert_eq!(g.dims(), &[2, 2, 2, 2]);
        assert_eq!(
            g.as_slice(),
            &[
                0.0, 1.0, 2.0, 3.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 20.0, 21.0, 22.0,
                23.0
            ]
        );
        let s = scatter_channels(&g, &[0, 2], 3).unwrap();
        for (i, &v) in s.as_slice().iter().enumerate() {
            let ci = (i / 4) % 3;
            if ci == 1 {
                assert_eq!(v, 0.0, "masked plane element {i}");
            } else {
                assert_eq!(v, x.as_slice()[i], "kept plane element {i}");
            }
        }
    }

    #[test]
    fn invalid_indices_are_rejected() {
        let x = Tensor::zeros(&[2, 3]);
        assert!(gather_rows_cols(&x, None, Some(&[3])).is_err());
        assert!(gather_rows_cols(&x, Some(&[1, 1]), None).is_err());
        assert!(gather_rows_cols(&x, Some(&[1, 0]), None).is_err());
        let b = Tensor::zeros(&[3]);
        assert!(gather_elems(&b, &[5]).is_err());
    }

    #[test]
    fn data_movement_records_no_flops() {
        let mut rng = TensorRng::seed_from(3);
        let x = uniform_init(&[8, 8], -1.0, 1.0, &mut rng);
        let before = kernel_counters();
        let g = gather_rows_cols(&x, Some(&[0, 5]), Some(&[1, 2, 7])).unwrap();
        let _ = scatter_cols(&g, &[0, 1, 2], 8).unwrap();
        let spent = kernel_counters().since(&before);
        assert_eq!(spent.flops, 0, "gather/scatter are not compute kernels");
    }
}
