//! Error type shared by every fallible tensor operation.

use std::error::Error;
use std::fmt;

/// Error returned by fallible tensor operations.
///
/// Every variant carries enough context (the offending shapes or sizes) to
/// diagnose the failure without a debugger.
///
/// # Example
///
/// ```
/// use helios_tensor::{Tensor, TensorError};
///
/// let err = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[2, 2]).unwrap_err();
/// assert!(matches!(err, TensorError::SizeMismatch { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The flat element count does not match the product of the dimensions.
    SizeMismatch {
        /// Number of elements supplied.
        elements: usize,
        /// Number of elements the requested shape implies.
        expected: usize,
    },
    /// Two operands have incompatible shapes for the attempted operation.
    ShapeMismatch {
        /// Human-readable name of the operation.
        op: &'static str,
        /// Shape of the left/first operand.
        lhs: Vec<usize>,
        /// Shape of the right/second operand.
        rhs: Vec<usize>,
    },
    /// The tensor does not have the rank the operation requires.
    RankMismatch {
        /// Human-readable name of the operation.
        op: &'static str,
        /// Rank the operation requires.
        expected: usize,
        /// Rank the tensor actually has.
        actual: usize,
    },
    /// An index was outside the tensor bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor shape.
        shape: Vec<usize>,
    },
    /// A configuration value (stride, kernel size, …) was invalid.
    InvalidArgument {
        /// Description of what was wrong.
        what: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::SizeMismatch { elements, expected } => write!(
                f,
                "element count {elements} does not match shape product {expected}"
            ),
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: lhs {lhs:?} vs rhs {rhs:?}")
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => write!(f, "{op} requires rank {expected}, tensor has rank {actual}"),
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::InvalidArgument { what } => write!(f, "invalid argument: {what}"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_every_variant() {
        let variants = vec![
            TensorError::SizeMismatch {
                elements: 3,
                expected: 4,
            },
            TensorError::ShapeMismatch {
                op: "matmul",
                lhs: vec![2, 3],
                rhs: vec![4, 5],
            },
            TensorError::RankMismatch {
                op: "conv2d",
                expected: 4,
                actual: 2,
            },
            TensorError::IndexOutOfBounds {
                index: vec![9],
                shape: vec![3],
            },
            TensorError::InvalidArgument {
                what: "stride must be nonzero".into(),
            },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
