//! Blocked, cache-aware GEMM core shared by every dense and convolution
//! layer in the workspace.
//!
//! # Architecture
//!
//! The kernel follows the classic Goto/BLIS decomposition, restricted to
//! the shapes this repro actually runs (row-major `f32`, matrices up to a
//! few megabytes):
//!
//! - **B is read where it lies whenever possible.** The microkernel
//!   addresses B as `nr`-wide column panels with a *runtime row stride*
//!   (`ldb`): for normal-layout B the stride is simply `n` and the
//!   operand is consumed in place — no packing at all. Only two cases
//!   copy B into k-major scratch panels (`ldb == nr`): a transposed
//!   operand (whose logical rows are strided gathers), and the final
//!   partial panel when `nr ∤ n` (which needs zero-padded lanes). The
//!   panel width `nr` is chosen per call from `{16, 48, 64}` ([`NR`] is
//!   the widest) to minimize tail padding: the conv shapes (`n = 16/32`)
//!   map onto 16-wide panels with zero waste, the dense shapes
//!   (`n = 128/512`) onto 64-wide panels.
//! - **A is read directly too.** Full [`MR`]-row tiles stream straight
//!   out of the operand — as `MR` row slices for normal layout, as
//!   contiguous `MR`-chunks at stride `m` for transposed layout. The
//!   low-`n` conv shapes have so few flops per A element that a classic
//!   packed-A round trip (write + re-read `m·k` floats) costs as much as
//!   the compute it feeds; only the tail tile (`m % MR` rows, which needs
//!   zero padding) is packed, into a 4 KiB stack buffer.
//! - The **register microkernel** ([`micro_tile`] and its direct-source
//!   twins [`micro_rows`] / [`micro_cols`]) computes an `MR × nr` output
//!   tile in local accumulators, iterating `k` innermost. Every compute
//!   loop has a compile-time trip count (the width is a const generic),
//!   so LLVM unrolls and autovectorizes the whole body — no unsafe, no
//!   intrinsics. Wide panels exist because four accumulator rows of one
//!   vector each leave the FP add pipeline latency-bound; twelve to
//!   sixteen independent accumulator vectors keep it saturated.
//!
//! Packing is pure data movement and records **zero flops**: the
//! instrument counters stay shape-derived (`2·m·k·n` per GEMM), exactly
//! as the naive kernel recorded them.
//!
//! # The bitwise contract
//!
//! Every repro guarantee downstream of this crate (golden metrics,
//! packed-execution parity, trace digests) rests on one invariant: for
//! each output element `(i, j)`, the accumulation is performed as
//!
//! ```text
//! acc = 0.0;
//! for kk in 0..k (strictly ascending) {
//!     if a[i][kk] == 0.0 { continue; }   // the zero-skip
//!     acc += a[i][kk] * b[kk][j];        // separate mul and add
//! }
//! ```
//!
//! The blocked kernel preserves that chain *structurally*: `KC` slabs are
//! processed in ascending-`k` order, the microkernel loads the current
//! partial sums from `out`, appends its slab's terms in ascending order,
//! and stores them back (an exact `f32` round trip). Tile padding cannot
//! perturb results — padded A lanes are `0.0` and therefore skipped by
//! the same zero-skip the real data uses, and padded B lanes only feed
//! accumulator lanes that are never stored. Parallel execution partitions
//! output *rows* across workers, which leaves each element's chain
//! untouched, so results are bitwise identical to [`naive_matmul`] at
//! every thread width. `tests/gemm_parity.rs` enforces this property over
//! random, zero-heavy, `-0.0`, and subnormal operands.
//!
//! The zero-skip is semantics, not a fast path: it makes masked
//! (soft-training) operands contribute *no term at all*, which is what
//! lets packed execution (PR 5) drop masked rows/columns without moving a
//! single bit of the result — and it keeps `0 · ∞ = NaN` out of masked
//! positions.

// Kernel entry points take the full (out, shape, operand, layout,
// stride) coordinate set as scalars: bundling them into structs costs
// register pressure exactly where the hot loops live.
#![allow(clippy::too_many_arguments)]

use crate::parallel::{for_each_block, for_each_block_aligned};
use crate::workspace::with_scratch_dirty;
use crate::{Result, Tensor, TensorError};

/// Microkernel tile height (output rows per register tile).
pub const MR: usize = 4;
/// Maximum microkernel tile width (output columns per register tile).
///
/// Each GEMM call picks its actual panel width from `PANEL_WIDTHS` to
/// minimize tail padding; `NR` is the widest choice and bounds the
/// per-panel scratch layout.
pub const NR: usize = 64;
/// k-dimension slab length: one A tile of `MR * KC` floats (4 KiB) plus
/// one B panel of at most `KC * NR` floats stay cache-resident together.
pub const KC: usize = 256;

/// Panel widths with a monomorphized microkernel. Must stay sorted
/// ascending; the widest must equal [`NR`].
const PANEL_WIDTHS: [usize; 3] = [16, 48, 64];

/// Picks the panel width that minimizes the padded output width
/// `⌈n/w⌉·w` (ties go to the wider panel, which runs closer to peak).
fn pick_nr(n: usize) -> usize {
    let mut best = PANEL_WIDTHS[0];
    let mut best_padded = usize::MAX;
    for &w in &PANEL_WIDTHS {
        let padded = n.div_ceil(w) * w;
        if padded < best_padded || (padded == best_padded && w > best) {
            best = w;
            best_padded = padded;
        }
    }
    best
}

/// Storage layout of a GEMM operand relative to its logical role.
///
/// `Normal` means the slice already has the logical `[rows, cols]`
/// row-major layout; `Transposed` means the slice stores the logical
/// matrix transposed, and the kernel reads it with a swapped index —
/// this is what makes `Aᵀ·B` and `A·Bᵀ` free of materialized
/// `transpose()` copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Layout {
    /// The slice is the logical matrix, row-major.
    Normal,
    /// The slice is the logical matrix's transpose, row-major.
    Transposed,
}

/// Where the microkernel reads B panels from.
///
/// The microkernel addresses a panel as `slice[kk * ldb ..][.. nr]` per
/// k step, which unifies in-place consumption of a row-major operand
/// (`ldb == n`) with packed k-major scratch panels (`ldb == nr`).
#[derive(Clone, Copy)]
enum BSrc<'a> {
    /// Normal-layout B, read in place at row stride `n`. `tail` holds
    /// the packed final partial panel when `nr ∤ n` (reading that panel
    /// in place would run past the row end).
    Direct {
        /// The operand itself, row-major `[k, n]`.
        b: &'a [f32],
        /// Packed `k × nr` tail panel, zero-padded past column `n`.
        tail: Option<&'a [f32]>,
    },
    /// Every panel packed `nr`-wide, k-major (transposed-layout B).
    Packed(&'a [f32]),
}

impl<'a> BSrc<'a> {
    /// Resolves panel `jp` starting at k offset `kp` to a `(slice, ldb)`
    /// pair: microkernel k step `kk` reads `slice[kk * ldb ..][.. nr_w]`.
    fn panel(&self, jp: usize, kp: usize, k: usize, n: usize, nr_w: usize) -> (&'a [f32], usize) {
        match *self {
            BSrc::Direct { b, tail } => {
                if (jp + 1) * nr_w <= n {
                    (&b[kp * n + jp * nr_w..], n)
                } else {
                    let tp = tail.expect("partial panel requires a packed tail");
                    (&tp[kp * nr_w..], nr_w)
                }
            }
            BSrc::Packed(bp) => (&bp[jp * k * nr_w + kp * nr_w..], nr_w),
        }
    }
}

/// Computes `out += A · B` for logical shapes `[m, k] × [k, n] → [m, n]`,
/// with either operand optionally stored transposed.
///
/// `out` must arrive zero-filled to compute a plain product (every caller
/// allocates via `vec![0.0; ..]` or the zeroing workspace arena). Work is
/// recorded once, shape-derived, independent of layout and thread count.
pub(crate) fn gemm_into(
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    ta: Layout,
    b: &[f32],
    tb: Layout,
) {
    debug_assert_eq!(out.len(), m * n, "out must be [m, n]");
    debug_assert_eq!(a.len(), m * k, "a must hold m*k elements");
    debug_assert_eq!(b.len(), k * n, "b must hold k*n elements");
    // Shape-derived work accounting (once per call, independent of the
    // parallel split): one multiply-add per (i, k, j) triple. Packing is
    // data movement and records nothing.
    crate::instrument::record_kernel((2 * m * k * n) as u64, (m * n) as u64);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let nr_w = pick_nr(n);
    let nb = n.div_ceil(nr_w);
    // Same row partition and work model as the naive kernel; tile
    // alignment only moves worker boundaries, never element order.
    let run = |out: &mut [f32], bsrc: BSrc| {
        for_each_block_aligned(out, n, k * n, MR, |first_row, block| {
            gemm_row_block(block, first_row, m, k, n, nr_w, a, ta, bsrc);
        });
    };
    // Scratch panels are packed serially, before the parallel region:
    // every worker reads the same panels, so packing once is both
    // cheaper and deterministic. The packers write every slot they hand
    // to the kernel, so the scratch can skip its zero-fill.
    match tb {
        Layout::Normal if n.is_multiple_of(nr_w) => run(out, BSrc::Direct { b, tail: None }),
        Layout::Normal => with_scratch_dirty(k * nr_w, |tp| {
            pack_b_tail(tp, b, k, n, nr_w);
            run(out, BSrc::Direct { b, tail: Some(tp) });
        }),
        Layout::Transposed => with_scratch_dirty(nb * k * nr_w, |bp| {
            pack_b_t(bp, b, k, n, nr_w);
            run(out, BSrc::Packed(bp));
        }),
    }
}

/// Computes one worker's contiguous block of output rows.
fn gemm_row_block(
    block: &mut [f32],
    row0: usize,
    m: usize,
    k: usize,
    n: usize,
    nr_w: usize,
    a: &[f32],
    ta: Layout,
    bsrc: BSrc,
) {
    let rows = block.len() / n;
    let nb = n.div_ceil(nr_w);
    let full_tiles = rows / MR;
    let tail = rows % MR;
    // Tail-tile pack buffer: one MR × KC slab, zero-padded lanes.
    let mut tail_buf = [0.0f32; MR * KC];
    // The k axis is cut into ⌈k/KC⌉ *balanced* slabs (e.g. 288 → 144+144
    // rather than 256+32): every slab re-loads and re-stores the output
    // tile, so a runt slab pays that round trip for almost no compute.
    // Slab boundaries never affect results — the k chain stays one
    // strictly ascending sequence regardless of where it is cut.
    let slabs = k.div_ceil(KC);
    let slab_base = k / slabs;
    let slab_extra = k % slabs;
    let mut kp = 0usize;
    for s in 0..slabs {
        // Slabs advance in ascending-k order; within a slab the
        // microkernel appends terms in ascending-k order, so each
        // output element sees one strictly increasing k chain.
        let kc = slab_base + usize::from(s < slab_extra);
        for bi in 0..full_tiles {
            let gi = row0 + bi * MR;
            // An A slab with no zeros can never trigger the zero-skip,
            // so the branch-free kernel variant is exact for it. The
            // scans fold with `&` instead of short-circuiting: the
            // reduction has no early exit, so it vectorizes.
            match ta {
                Layout::Normal => {
                    let rows_a: [&[f32]; MR] =
                        std::array::from_fn(|i| &a[(gi + i) * k + kp..(gi + i) * k + kp + kc]);
                    let clean = rows_a
                        .iter()
                        .all(|r| r.iter().fold(true, |acc, &v| acc & (v != 0.0)));
                    let kern = select_rows_kernel(nr_w, clean);
                    for jp in 0..nb {
                        let nr = nr_w.min(n - jp * nr_w);
                        let (bpan, ldb) = bsrc.panel(jp, kp, k, n, nr_w);
                        kern(block, n, bi * MR, jp * nr_w, nr, rows_a, kc, bpan, ldb);
                    }
                }
                Layout::Transposed => {
                    let a_base = &a[kp * m + gi..];
                    let clean = (0..kc).fold(true, |acc, kk| {
                        acc & a_base[kk * m..kk * m + MR]
                            .iter()
                            .fold(true, |a2, &v| a2 & (v != 0.0))
                    });
                    let kern = select_cols_kernel(nr_w, clean);
                    for jp in 0..nb {
                        let nr = nr_w.min(n - jp * nr_w);
                        let (bpan, ldb) = bsrc.panel(jp, kp, k, n, nr_w);
                        kern(block, n, bi * MR, jp * nr_w, nr, a_base, m, kc, bpan, ldb);
                    }
                }
            }
        }
        if tail > 0 {
            // The tail tile needs zero-padded lanes, so it goes through
            // the packed-A kernel; padding is 0.0, which the zero-skip
            // drops, and its accumulator lanes are never stored anyway.
            pack_a_tail(
                &mut tail_buf,
                a,
                ta,
                m,
                k,
                row0 + full_tiles * MR,
                tail,
                kp,
                kc,
            );
            let kern = select_packed_kernel(nr_w);
            for jp in 0..nb {
                let nr = nr_w.min(n - jp * nr_w);
                let (bpan, ldb) = bsrc.panel(jp, kp, k, n, nr_w);
                kern(
                    block,
                    n,
                    full_tiles * MR,
                    jp * nr_w,
                    tail,
                    nr,
                    &tail_buf[..kc * MR],
                    bpan,
                    ldb,
                );
            }
        }
        kp += kc;
    }
    debug_assert_eq!(kp, k, "balanced slabs must cover the whole k axis");
}

/// Direct-A microkernel over `MR` row slices (normal layout).
type RowsKernel = fn(&mut [f32], usize, usize, usize, usize, [&[f32]; MR], usize, &[f32], usize);
/// Direct-A microkernel over stride-`m` column chunks (transposed layout).
type ColsKernel = fn(&mut [f32], usize, usize, usize, usize, &[f32], usize, usize, &[f32], usize);
/// Packed-A microkernel (tail tiles).
type PackedKernel = fn(&mut [f32], usize, usize, usize, usize, usize, &[f32], &[f32], usize);

/// Resolves the monomorphized row-source microkernel for a panel width
/// and slab cleanliness. `clean` slabs (no zero anywhere in the A tile)
/// take the branch-free variant; dirty slabs take the one with the
/// per-lane zero-skip. Both append identical terms in identical order.
fn select_rows_kernel(nr_w: usize, clean: bool) -> RowsKernel {
    match (nr_w, clean) {
        (16, true) => micro_rows::<16, false>,
        (16, false) => micro_rows::<16, true>,
        (48, true) => micro_rows::<48, false>,
        (48, false) => micro_rows::<48, true>,
        (64, true) => micro_rows::<64, false>,
        (64, false) => micro_rows::<64, true>,
        _ => unreachable!("panel width {nr_w} has no microkernel"),
    }
}

/// Transposed-layout counterpart of [`select_rows_kernel`].
fn select_cols_kernel(nr_w: usize, clean: bool) -> ColsKernel {
    match (nr_w, clean) {
        (16, true) => micro_cols::<16, false>,
        (16, false) => micro_cols::<16, true>,
        (48, true) => micro_cols::<48, false>,
        (48, false) => micro_cols::<48, true>,
        (64, true) => micro_cols::<64, false>,
        (64, false) => micro_cols::<64, true>,
        _ => unreachable!("panel width {nr_w} has no microkernel"),
    }
}

/// Packed-A kernel for tail tiles — always the checked variant, because
/// the zero padding must be skipped.
fn select_packed_kernel(nr_w: usize) -> PackedKernel {
    match nr_w {
        16 => micro_tile::<16, true>,
        48 => micro_tile::<48, true>,
        64 => micro_tile::<64, true>,
        _ => unreachable!("panel width {nr_w} has no microkernel"),
    }
}

/// The register microkernel: `out[r0.., c0..] += a_tile · b` for an
/// `mr × nr` live sub-tile of the `MR × NR_W` register tile. `a_tile` is
/// k-major packed (`MR` lanes per k step); B's k step `kk` is read at
/// `b[kk * ldb ..][.. NR_W]`, which covers both in-place operands
/// (`ldb == n`) and packed panels (`ldb == NR_W`).
///
/// All compute loops have compile-time trip counts (`MR` and the `NR_W`
/// const generic), so the whole body unrolls and vectorizes — no unsafe,
/// no intrinsics. Padded A lanes are `0.0` and skipped by the zero-skip;
/// padded B lanes feed only accumulator lanes that are never stored.
///
/// The zero-skip is the one branch that would defeat vectorization, so it
/// is hoisted twice. Per call: slabs that [`gemm_row_block`] verified
/// zero-free dispatch to the `CHECKED = false` instantiation, whose k
/// loop is pure straight-line broadcast-multiply-add. Per k step in the
/// `CHECKED` variant: a single "any lane zero?" test guards the same
/// straight-line update, falling back to the per-lane skip only when a
/// zero is actually present. All three paths append exactly the same
/// terms in exactly the same order — the faster ones are just
/// no-skip-taken specializations — so results are bitwise unchanged.
///
/// `inline(never)`: inlined into the packing/blocking loops LLVM fails
/// to autovectorize this body (the surrounding control flow defeats the
/// loop vectorizer); as a standalone function it compiles to the
/// full-width broadcast-mul-add sequence the design calls for.
#[inline(never)]
fn micro_tile<const NR_W: usize, const CHECKED: bool>(
    out: &mut [f32],
    ldc: usize,
    r0: usize,
    c0: usize,
    mr: usize,
    nr: usize,
    a_tile: &[f32],
    b: &[f32],
    ldb: usize,
) {
    let (a_steps, _) = a_tile.as_chunks::<MR>();
    let mut acc = [[0.0f32; NR_W]; MR];
    for (i, acc_row) in acc.iter_mut().enumerate().take(mr) {
        let row = (r0 + i) * ldc + c0;
        acc_row[..nr].copy_from_slice(&out[row..row + nr]);
    }
    for (kk, a_k) in a_steps.iter().enumerate() {
        let b_k: &[f32; NR_W] = (&b[kk * ldb..kk * ldb + NR_W])
            .try_into()
            .expect("exact NR_W panel row");
        if !CHECKED || a_k.iter().all(|&v| v != 0.0) {
            for i in 0..MR {
                let a_ik = a_k[i];
                for j in 0..NR_W {
                    acc[i][j] += a_ik * b_k[j];
                }
            }
        } else {
            for i in 0..MR {
                let a_ik = a_k[i];
                if a_ik == 0.0 {
                    continue;
                }
                for j in 0..NR_W {
                    acc[i][j] += a_ik * b_k[j];
                }
            }
        }
    }
    for (i, acc_row) in acc.iter().enumerate().take(mr) {
        let row = (r0 + i) * ldc + c0;
        out[row..row + nr].copy_from_slice(&acc_row[..nr]);
    }
}

/// Direct-source twin of [`micro_tile`] for normal-layout A: the tile's
/// `MR` rows stream straight from the operand as `kc`-long slices, so
/// full tiles skip the packed-A round trip entirely. Identical
/// accumulation order and zero-skip dispatch as [`micro_tile`].
#[inline(never)]
fn micro_rows<const NR_W: usize, const CHECKED: bool>(
    out: &mut [f32],
    ldc: usize,
    r0: usize,
    c0: usize,
    nr: usize,
    rows_a: [&[f32]; MR],
    kc: usize,
    b: &[f32],
    ldb: usize,
) {
    let r = [
        &rows_a[0][..kc],
        &rows_a[1][..kc],
        &rows_a[2][..kc],
        &rows_a[3][..kc],
    ];
    let mut acc = [[0.0f32; NR_W]; MR];
    for (i, acc_row) in acc.iter_mut().enumerate() {
        let row = (r0 + i) * ldc + c0;
        acc_row[..nr].copy_from_slice(&out[row..row + nr]);
    }
    for kk in 0..kc {
        let b_k: &[f32; NR_W] = (&b[kk * ldb..kk * ldb + NR_W])
            .try_into()
            .expect("exact NR_W panel row");
        let a_k = [r[0][kk], r[1][kk], r[2][kk], r[3][kk]];
        if !CHECKED || a_k.iter().all(|&v| v != 0.0) {
            for i in 0..MR {
                let a_ik = a_k[i];
                for j in 0..NR_W {
                    acc[i][j] += a_ik * b_k[j];
                }
            }
        } else {
            for i in 0..MR {
                let a_ik = a_k[i];
                if a_ik == 0.0 {
                    continue;
                }
                for j in 0..NR_W {
                    acc[i][j] += a_ik * b_k[j];
                }
            }
        }
    }
    for (i, acc_row) in acc.iter().enumerate() {
        let row = (r0 + i) * ldc + c0;
        out[row..row + nr].copy_from_slice(&acc_row[..nr]);
    }
}

/// Direct-source twin of [`micro_tile`] for transposed-layout A: each k
/// step's `MR` lanes sit contiguously at `a_base[kk*stride..]` (`stride`
/// is the logical row count `m`), so full tiles read the operand in
/// place. Identical accumulation order and zero-skip dispatch as
/// [`micro_tile`].
#[inline(never)]
fn micro_cols<const NR_W: usize, const CHECKED: bool>(
    out: &mut [f32],
    ldc: usize,
    r0: usize,
    c0: usize,
    nr: usize,
    a_base: &[f32],
    stride: usize,
    kc: usize,
    b: &[f32],
    ldb: usize,
) {
    let mut acc = [[0.0f32; NR_W]; MR];
    for (i, acc_row) in acc.iter_mut().enumerate() {
        let row = (r0 + i) * ldc + c0;
        acc_row[..nr].copy_from_slice(&out[row..row + nr]);
    }
    for kk in 0..kc {
        let b_k: &[f32; NR_W] = (&b[kk * ldb..kk * ldb + NR_W])
            .try_into()
            .expect("exact NR_W panel row");
        let a_k: &[f32; MR] = (&a_base[kk * stride..kk * stride + MR])
            .try_into()
            .expect("exact MR chunk");
        if !CHECKED || a_k.iter().all(|&v| v != 0.0) {
            for i in 0..MR {
                let a_ik = a_k[i];
                for j in 0..NR_W {
                    acc[i][j] += a_ik * b_k[j];
                }
            }
        } else {
            for i in 0..MR {
                let a_ik = a_k[i];
                if a_ik == 0.0 {
                    continue;
                }
                for j in 0..NR_W {
                    acc[i][j] += a_ik * b_k[j];
                }
            }
        }
    }
    for (i, acc_row) in acc.iter().enumerate() {
        let row = (r0 + i) * ldc + c0;
        out[row..row + nr].copy_from_slice(&acc_row[..nr]);
    }
}

/// Packs the tail tile's `live × kc` slab of A into one `MR`-high,
/// k-major tile. Lanes at `i >= live` keep the buffer's `0.0` fill
/// (skipped terms / never-stored accumulators).
fn pack_a_tail(
    ap: &mut [f32; MR * KC],
    a: &[f32],
    ta: Layout,
    m: usize,
    k: usize,
    row0: usize,
    live: usize,
    kp: usize,
    kc: usize,
) {
    for kk in 0..kc {
        for i in 0..live {
            let gi = row0 + i;
            ap[kk * MR + i] = match ta {
                Layout::Normal => a[gi * k + kp + kk],
                Layout::Transposed => a[(kp + kk) * m + gi],
            };
        }
    }
}

/// Packs normal-layout B's final partial panel (columns `⌊n/nr⌋·nr..n`)
/// into one `k × nr_w` k-major panel, zero-padding the columns past `n`
/// (their accumulator lanes are never stored). Writes every slot.
fn pack_b_tail(tp: &mut [f32], b: &[f32], k: usize, n: usize, nr_w: usize) {
    let j0 = (n / nr_w) * nr_w;
    let live = n - j0;
    for kk in 0..k {
        let dst = &mut tp[kk * nr_w..(kk + 1) * nr_w];
        dst[..live].copy_from_slice(&b[kk * n + j0..kk * n + j0 + live]);
        dst[live..].fill(0.0);
    }
}

/// Packs transposed-layout B into `nr_w`-wide, k-major column panels.
/// Iterates source rows (contiguous reads, strided writes) rather than
/// gathering down columns; tail columns beyond `n` are padded with `0.0`.
/// Writes every slot of `bp`, so the scratch needs no pre-zeroing.
fn pack_b_t(bp: &mut [f32], b: &[f32], k: usize, n: usize, nr_w: usize) {
    let nb = n.div_ceil(nr_w);
    for jp in 0..nb {
        let base = jp * k * nr_w;
        let j0 = jp * nr_w;
        let live = nr_w.min(n - j0);
        for jj in 0..live {
            let src = &b[(j0 + jj) * k..(j0 + jj + 1) * k];
            for (kk, &v) in src.iter().enumerate() {
                bp[base + kk * nr_w + jj] = v;
            }
        }
        for jj in live..nr_w {
            for kk in 0..k {
                bp[base + kk * nr_w + jj] = 0.0;
            }
        }
    }
}

/// The original naive triple-loop matmul, kept verbatim as the pinned
/// bitwise reference for the blocked kernel.
///
/// Parity tests (`tests/gemm_parity.rs`) and the `bench_parallel`
/// throughput self-check compare [`Tensor::matmul`] against this kernel;
/// it performs and records exactly the same work the pre-blocked kernel
/// did, including the row-partitioned parallelism.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`]
/// under the same conditions as [`Tensor::matmul`].
pub fn naive_matmul(lhs: &Tensor, rhs: &Tensor) -> Result<Tensor> {
    if lhs.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "naive_matmul",
            expected: 2,
            actual: lhs.shape().rank(),
        });
    }
    if rhs.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "naive_matmul",
            expected: 2,
            actual: rhs.shape().rank(),
        });
    }
    let (m, k) = (lhs.dims()[0], lhs.dims()[1]);
    let (k2, n) = (rhs.dims()[0], rhs.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "naive_matmul",
            lhs: lhs.dims().to_vec(),
            rhs: rhs.dims().to_vec(),
        });
    }
    let a = lhs.as_slice();
    let b = rhs.as_slice();
    crate::instrument::record_kernel((2 * m * k * n) as u64, (m * n) as u64);
    let mut out = vec![0.0f32; m * n];
    for_each_block(&mut out, n, k * n, |first_row, block| {
        for (bi, o_row) in block.chunks_mut(n).enumerate() {
            let i = first_row + bi;
            let a_row = &a[i * k..(i + 1) * k];
            for (kk, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = &b[kk * n..(kk + 1) * n];
                for (o, &b_kj) in o_row.iter_mut().zip(b_row) {
                    *o += a_ik * b_kj;
                }
            }
        }
    });
    Tensor::from_vec(out, &[m, n])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: Vec<f32>, dims: &[usize]) -> Tensor {
        Tensor::from_vec(data, dims).unwrap()
    }

    fn seq(len: usize, scale: f32) -> Vec<f32> {
        (0..len)
            .map(|i| (i as f32 - len as f32 / 3.0) * scale)
            .collect()
    }

    fn assert_bitwise(a: &Tensor, b: &Tensor) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{x} != {y}");
        }
    }

    #[test]
    fn blocked_matches_naive_across_tile_edges() {
        // Shapes straddling every tile boundary: below MR and each panel
        // width, exact multiples, and one-past. `n` values cover all
        // three panel widths (16, 48, 64), the in-place direct-B path
        // (nr | n), mixed direct + packed-tail panels, and tail-only
        // panels; `seq` data contains exact zeros, so both the checked
        // and the clean-slab microkernels execute.
        for (m, k, n) in [
            (1, 1, 1),
            (3, 5, 7),
            (MR, KC, NR),
            (MR + 1, KC + 1, NR + 1),
            (2 * MR, 2 * KC + 3, 3 * NR + 1),
            (17, 300, 23),
            (9, 33, 16),
            (12, 50, 48),
            (7, 40, 49),
            (5, 20, 144),
        ] {
            let a = t(seq(m * k, 0.25), &[m, k]);
            let b = t(seq(k * n, 0.125), &[k, n]);
            assert_bitwise(&a.matmul(&b).unwrap(), &naive_matmul(&a, &b).unwrap());
        }
    }

    #[test]
    fn clean_and_dirty_slabs_agree_with_naive() {
        // All-nonzero A exercises the branch-free kernel; flipping a few
        // entries to zero forces the checked kernel onto the same tiles.
        let (m, k, n) = (11, 70, 35);
        let clean: Vec<f32> = (0..m * k).map(|i| 0.5 + (i % 9) as f32 * 0.125).collect();
        let b = t(seq(k * n, 0.0625), &[k, n]);
        let a = t(clean.clone(), &[m, k]);
        assert_bitwise(&a.matmul(&b).unwrap(), &naive_matmul(&a, &b).unwrap());

        let mut dirty = clean;
        for i in (0..m * k).step_by(7) {
            dirty[i] = 0.0;
        }
        let a = t(dirty, &[m, k]);
        assert_bitwise(&a.matmul(&b).unwrap(), &naive_matmul(&a, &b).unwrap());
    }

    #[test]
    fn transposed_variants_match_materialized_transpose() {
        let (m, k, n) = (13, 37, 11);
        let a_t = t(seq(k * m, 0.5), &[k, m]); // logical Aᵀ storage
        let b = t(seq(k * n, 0.25), &[k, n]);
        let via_transpose = a_t.transpose().unwrap().matmul(&b).unwrap();
        assert_bitwise(&a_t.matmul_tn(&b).unwrap(), &via_transpose);

        let a = t(seq(m * k, 0.5), &[m, k]);
        let b_t = t(seq(n * k, 0.25), &[n, k]); // logical Bᵀ storage
        let via_transpose = a.matmul(&b_t.transpose().unwrap()).unwrap();
        assert_bitwise(&a.matmul_nt(&b_t).unwrap(), &via_transpose);
    }

    #[test]
    fn zero_skip_blocks_nan_propagation() {
        // A zero in A must skip the term even when B holds ∞/NaN there —
        // exactly the naive kernel's semantics.
        let a = t(vec![0.0, 1.0, -0.0, 2.0], &[2, 2]);
        let b = t(vec![f32::INFINITY, f32::NAN, 3.0, 4.0], &[2, 2]);
        let c = a.matmul(&b).unwrap();
        assert_bitwise(&c, &naive_matmul(&a, &b).unwrap());
        assert_eq!(c.as_slice(), &[3.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn degenerate_dims_produce_zeros() {
        let a = Tensor::zeros(&[3, 0]);
        let b = Tensor::zeros(&[0, 4]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[3, 4]);
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn variant_shape_checks() {
        let a = Tensor::zeros(&[4, 3]);
        let b = Tensor::zeros(&[4, 5]);
        assert!(a.matmul_tn(&b).is_ok()); // [3,5]
        assert!(a.matmul_nt(&b).is_err()); // k mismatch: 3 vs 5
        let c = Tensor::zeros(&[6, 3]);
        assert!(a.matmul_nt(&c).is_ok()); // [4,6]
        assert!(a.matmul_tn(&c).is_err()); // k mismatch: 4 vs 6
    }
}
