//! 2-D convolution (via `im2col`) and pooling primitives.
//!
//! All spatial operators work on rank-4 tensors in `[N, C, H, W]` layout
//! (batch, channels, height, width). Convolution weights are stored as a
//! rank-2 `[out_channels, in_channels * kh * kw]` matrix so the forward
//! pass is a single matrix product over the unrolled patches.

use crate::gemm::{gemm_into, Layout};
use crate::parallel::{for_each_block, for_each_block2};
use crate::workspace::{with_scratch, with_scratch_dirty};
use crate::{Result, Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// Configuration of a 2-D convolution: channel counts, square kernel,
/// stride, and symmetric zero padding.
///
/// # Example
///
/// ```
/// use helios_tensor::ConvSpec;
///
/// let spec = ConvSpec::new(3, 16, 3, 1, 1);
/// assert_eq!(spec.output_hw(16, 16), (16, 16));
/// assert_eq!(spec.weight_dims(), [16, 27]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvSpec {
    /// Number of input channels.
    pub in_channels: usize,
    /// Number of output channels (feature maps / "neurons" in Helios terms).
    pub out_channels: usize,
    /// Side length of the square kernel.
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Symmetric zero padding in both spatial dimensions.
    pub padding: usize,
}

impl ConvSpec {
    /// Creates a convolution spec.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero, or either channel count is
    /// zero — these are programming errors, not runtime conditions.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        assert!(kernel > 0, "kernel must be nonzero");
        assert!(stride > 0, "stride must be nonzero");
        assert!(
            in_channels > 0 && out_channels > 0,
            "channels must be nonzero"
        );
        ConvSpec {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
        }
    }

    /// Output spatial size for an `h × w` input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding - self.kernel) / self.stride + 1;
        let ow = (w + 2 * self.padding - self.kernel) / self.stride + 1;
        (oh, ow)
    }

    /// Dimensions of the rank-2 weight matrix this spec expects.
    pub fn weight_dims(&self) -> [usize; 2] {
        [
            self.out_channels,
            self.in_channels * self.kernel * self.kernel,
        ]
    }

    /// Number of columns in the unrolled patch matrix.
    fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient with respect to the input, `[N, C, H, W]`.
    pub grad_input: Tensor,
    /// Gradient with respect to the weight matrix, `[O, C*K*K]`.
    pub grad_weight: Tensor,
    /// Gradient with respect to the bias, `[O]`.
    pub grad_bias: Tensor,
}

fn check_nchw(op: &'static str, t: &Tensor) -> Result<(usize, usize, usize, usize)> {
    if t.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 4,
            actual: t.shape().rank(),
        });
    }
    let d = t.dims();
    Ok((d[0], d[1], d[2], d[3]))
}

/// Unrolls `[N, C, H, W]` input patches into the `[N*OH*OW, C*K*K]`
/// matrix `cols`, which must arrive zero-filled — the padding positions
/// of each patch are simply never written. Callers check `cols` out of
/// the workspace arena ([`with_scratch`]), so the steady-state training
/// path reuses one buffer cycle after cycle instead of allocating a
/// multi-megabyte `Vec` per forward/backward.
fn im2col_into(cols: &mut [f32], input: &Tensor, spec: &ConvSpec) -> Result<()> {
    let (n, c, h, w) = check_nchw("im2col", input)?;
    if c != spec.in_channels {
        return Err(TensorError::ShapeMismatch {
            op: "im2col",
            lhs: input.dims().to_vec(),
            rhs: vec![spec.in_channels],
        });
    }
    let (oh, ow) = spec.output_hw(h, w);
    let k = spec.kernel;
    let pl = spec.patch_len();
    let x = input.as_slice();
    debug_assert_eq!(
        cols.len(),
        n * oh * ow * pl,
        "cols must be [N*OH*OW, C*K*K]"
    );
    // Parallel over batch items: each item's rows live in a disjoint
    // slice of `cols`, so workers never share output elements.
    for_each_block(cols, oh * ow * pl, oh * ow * pl, |first, chunk| {
        for (bi, item) in chunk.chunks_mut(oh * ow * pl).enumerate() {
            let ni = first + bi;
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = (oy * ow + ox) * pl;
                    for ci in 0..c {
                        for ky in 0..k {
                            let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            let iy = iy as usize;
                            for kx in 0..k {
                                let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                                if ix < 0 || ix as usize >= w {
                                    continue;
                                }
                                let ix = ix as usize;
                                item[row + (ci * k + ky) * k + kx] =
                                    x[((ni * c + ci) * h + iy) * w + ix];
                            }
                        }
                    }
                }
            }
        }
    });
    Ok(())
}

/// Scatter-adds a `[N*OH*OW, C*K*K]` column matrix into the
/// `[N, C, H, W]` buffer `out` (which the caller supplies zero-filled).
fn col2im_into(out: &mut [f32], cs: &[f32], spec: &ConvSpec, n: usize, h: usize, w: usize) {
    let (oh, ow) = spec.output_hw(h, w);
    let c = spec.in_channels;
    let k = spec.kernel;
    let pl = spec.patch_len();
    debug_assert_eq!(cs.len(), n * oh * ow * pl, "cols must be [N*OH*OW, C*K*K]");
    debug_assert_eq!(out.len(), n * c * h * w, "out must be [N, C, H, W]");
    // Parallel over batch items: the scatter-add for item `ni` only
    // touches `out[ni * c*h*w ..]`, so per-item chunks are disjoint and
    // the within-item accumulation order matches the serial loop.
    for_each_block(out, c * h * w, oh * ow * pl, |first, chunk| {
        for (bi, item) in chunk.chunks_mut(c * h * w).enumerate() {
            let ni = first + bi;
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = ((ni * oh + oy) * ow + ox) * pl;
                    for ci in 0..c {
                        for ky in 0..k {
                            let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            let iy = iy as usize;
                            for kx in 0..k {
                                let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                                if ix < 0 || ix as usize >= w {
                                    continue;
                                }
                                let ix = ix as usize;
                                item[(ci * h + iy) * w + ix] += cs[row + (ci * k + ky) * k + kx];
                            }
                        }
                    }
                }
            }
        }
    });
}

/// 2-D convolution forward pass.
///
/// `input` is `[N, C, H, W]`, `weight` is `[O, C*K*K]`, `bias` is `[O]`;
/// the result is `[N, O, OH, OW]`.
///
/// # Errors
///
/// Returns a [`TensorError`] when the operand shapes do not match `spec`.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// use helios_tensor::{conv2d, ConvSpec, Tensor};
///
/// # fn main() -> Result<(), Box<dyn Error>> {
/// let spec = ConvSpec::new(1, 2, 3, 1, 1);
/// let input = Tensor::ones(&[1, 1, 4, 4]);
/// let weight = Tensor::zeros(&[2, 9]);
/// let bias = Tensor::from_vec(vec![0.5, -0.5], &[2])?;
/// let out = conv2d(&input, &weight, &bias, &spec)?;
/// assert_eq!(out.dims(), &[1, 2, 4, 4]);
/// assert_eq!(out.get(&[0, 0, 0, 0])?, 0.5);
/// # Ok(())
/// # }
/// ```
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: &ConvSpec) -> Result<Tensor> {
    let (n, _c, h, w) = check_nchw("conv2d", input)?;
    if weight.dims() != spec.weight_dims() {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            lhs: weight.dims().to_vec(),
            rhs: spec.weight_dims().to_vec(),
        });
    }
    if bias.dims() != [spec.out_channels] {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            lhs: bias.dims().to_vec(),
            rhs: vec![spec.out_channels],
        });
    }
    let (oh, ow) = spec.output_hw(h, w);
    let o = spec.out_channels;
    let pl = spec.patch_len();
    let rows_n = n * oh * ow;
    let b = bias.as_slice();
    let mut out = vec![0.0f32; n * o * oh * ow];
    // Both the patch matrix and the GEMM product are transient: they
    // come from the workspace arena, so steady-state training reuses the
    // same buffers every cycle.
    with_scratch(rows_n * pl, |cols| -> Result<()> {
        im2col_into(cols, input, spec)?;
        with_scratch(rows_n * o, |prod| {
            // [N*OH*OW, CKK] × [CKK, O] → [N*OH*OW, O]. The weight is
            // stored `[O, CKK]` — the logical B transposed — and the
            // kernel reads it in place; no materialized `transpose()`.
            gemm_into(
                prod,
                rows_n,
                pl,
                o,
                cols,
                Layout::Normal,
                weight.as_slice(),
                Layout::Transposed,
            );
            // Parallel over batch items: relayout rows → NCHW plus bias.
            for_each_block(&mut out, o * oh * ow, o * oh * ow, |first, chunk| {
                for (bi, item) in chunk.chunks_mut(o * oh * ow).enumerate() {
                    let ni = first + bi;
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let row = ((ni * oh + oy) * ow + ox) * o;
                            for oc in 0..o {
                                item[(oc * oh + oy) * ow + ox] = prod[row + oc] + b[oc];
                            }
                        }
                    }
                }
            });
        });
        Ok(())
    })?;
    Tensor::from_vec(out, &[n, o, oh, ow])
}

/// 2-D convolution backward pass.
///
/// Given the forward `input`, the `weight` matrix, and `grad_output` of
/// shape `[N, O, OH, OW]`, computes gradients with respect to input,
/// weight, and bias.
///
/// # Errors
///
/// Returns a [`TensorError`] when shapes are inconsistent with `spec`.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    spec: &ConvSpec,
) -> Result<Conv2dGrads> {
    let (n, _c, h, w) = check_nchw("conv2d_backward", input)?;
    let (gn, go, goh, gow) = check_nchw("conv2d_backward", grad_output)?;
    let (oh, ow) = spec.output_hw(h, w);
    if gn != n || go != spec.out_channels || goh != oh || gow != ow {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_backward",
            lhs: grad_output.dims().to_vec(),
            rhs: vec![n, spec.out_channels, oh, ow],
        });
    }
    let o = spec.out_channels;
    let pl = spec.patch_len();
    let rows_n = n * oh * ow;
    let g = grad_output.as_slice();
    // Bias gradient, parallel over output channels. For each channel the
    // additions run in ascending (ni, oy, ox) order — the same order the
    // serial relayout loop used — so sums are bitwise stable.
    let mut grad_bias = vec![0.0f32; o];
    for_each_block(&mut grad_bias, 1, n * oh * ow, |first, chunk| {
        for (bi, acc) in chunk.iter_mut().enumerate() {
            let oc = first + bi;
            for ni in 0..n {
                for oy in 0..oh {
                    for ox in 0..ow {
                        *acc += g[((ni * o + oc) * oh + oy) * ow + ox];
                    }
                }
            }
        }
    });
    let mut grad_weight = vec![0.0f32; o * pl];
    let mut grad_input = vec![0.0f32; input.len()];
    // The relayouted gradient, the patch matrix, and `dcols` are all
    // transient workspace; `rows` is written in full by the relayout, so
    // it skips even the zero-fill.
    with_scratch_dirty(rows_n * o, |rows| -> Result<()> {
        // Re-layout grad_output from NCHW to rows [N*OH*OW, O], parallel
        // over batch items (disjoint row blocks per item).
        for_each_block(rows, oh * ow * o, oh * ow * o, |first, chunk| {
            for (bi, item) in chunk.chunks_mut(oh * ow * o).enumerate() {
                let ni = first + bi;
                for oc in 0..o {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            item[(oy * ow + ox) * o + oc] = g[((ni * o + oc) * oh + oy) * ow + ox];
                        }
                    }
                }
            }
        });
        with_scratch(rows_n * pl, |cols| -> Result<()> {
            im2col_into(cols, input, spec)?;
            // dW = gradᵀ × cols : [O, N*OH*OW] × [N*OH*OW, CKK] →
            // [O, CKK]. `rows` stores the logical Aᵀ; read in place.
            gemm_into(
                &mut grad_weight,
                o,
                rows_n,
                pl,
                rows,
                Layout::Transposed,
                cols,
                Layout::Normal,
            );
            Ok(())
        })?;
        with_scratch(rows_n * pl, |dcols| {
            // dcols = grad × W : [N*OH*OW, O] × [O, CKK] → [N*OH*OW, CKK]
            gemm_into(
                dcols,
                rows_n,
                o,
                pl,
                rows,
                Layout::Normal,
                weight.as_slice(),
                Layout::Normal,
            );
            col2im_into(&mut grad_input, dcols, spec, n, h, w);
        });
        Ok(())
    })?;
    Ok(Conv2dGrads {
        grad_input: Tensor::from_vec(grad_input, &[n, spec.in_channels, h, w])?,
        grad_weight: Tensor::from_vec(grad_weight, &[o, pl])?,
        grad_bias: Tensor::from_vec(grad_bias, &[o])?,
    })
}

/// Gradients produced by [`conv2d_backward_packed`].
///
/// Weight and bias gradients are in *packed* coordinates (active output
/// rows, active input-channel column blocks) and must be scatter-added
/// into the full gradient tensors by the caller; `grad_input` is already
/// full-shape and bitwise identical to the unpacked backward's.
#[derive(Debug, Clone)]
pub struct Conv2dPackedGrads {
    /// Gradient with respect to the full input, `[N, C, H, W]`.
    pub grad_input: Tensor,
    /// Packed weight gradient, `[Oa, Ca*K*K]` (active rows × active
    /// input-channel column blocks).
    pub grad_weight: Tensor,
    /// Packed bias gradient, `[Oa]`.
    pub grad_bias: Tensor,
}

/// 2-D convolution backward pass over a *packed* sub-model.
///
/// `input_packed` is `[N, Ca, H, W]` — the forward input gathered down
/// to its `Ca` active channels (every dropped channel must have been
/// exactly zero). `weight_rows` is `[Oa, C*K*K]` — the `Oa` active rows
/// of the full weight matrix, with the input-column axis left **whole**.
/// `grad_output_packed` is `[N, Oa, OH, OW]`. `spec` describes the full
/// (unpacked) geometry; the packed channel counts are read from the
/// operands.
///
/// The input-column axis stays whole because `grad_input` must be
/// produced at full shape with bit-exact values everywhere, including
/// the masked channels — the `dcols × col2im` scatter accumulates in the
/// same per-element order as [`conv2d_backward`], and the masked rows of
/// `weight_rows`'s column blocks contribute the same terms they would in
/// the unpacked GEMM. The weight/bias gradients, by contrast, are packed
/// on both axes: their masked entries are definitionally untouched, so
/// the caller scatter-adds only the active sub-grid.
///
/// # Errors
///
/// Returns a [`TensorError`] when operand shapes are inconsistent with
/// `spec` or with each other.
pub fn conv2d_backward_packed(
    input_packed: &Tensor,
    weight_rows: &Tensor,
    grad_output_packed: &Tensor,
    spec: &ConvSpec,
) -> Result<Conv2dPackedGrads> {
    let (n, ca, h, w) = check_nchw("conv2d_backward_packed", input_packed)?;
    let (gn, oa, goh, gow) = check_nchw("conv2d_backward_packed", grad_output_packed)?;
    let (oh, ow) = spec.output_hw(h, w);
    if gn != n || goh != oh || gow != ow {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_backward_packed",
            lhs: grad_output_packed.dims().to_vec(),
            rhs: vec![n, oa, oh, ow],
        });
    }
    if weight_rows.dims() != [oa, spec.patch_len()] {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_backward_packed",
            lhs: weight_rows.dims().to_vec(),
            rhs: vec![oa, spec.patch_len()],
        });
    }
    if ca == 0 || ca > spec.in_channels || oa == 0 || oa > spec.out_channels {
        return Err(TensorError::InvalidArgument {
            what: format!(
                "conv2d_backward_packed: packed channels ({ca} in, {oa} out) must be \
                 nonzero and within the full spec ({} in, {} out)",
                spec.in_channels, spec.out_channels
            ),
        });
    }
    // Accumulate the packed bias gradient — the same loop as
    // `conv2d_backward` with `o := oa`, so per-element order matches.
    let g = grad_output_packed.as_slice();
    let mut grad_bias = vec![0.0f32; oa];
    for_each_block(&mut grad_bias, 1, n * oh * ow, |first, chunk| {
        for (bi, acc) in chunk.iter_mut().enumerate() {
            let oc = first + bi;
            for ni in 0..n {
                for oy in 0..oh {
                    for ox in 0..ow {
                        *acc += g[((ni * oa + oc) * oh + oy) * ow + ox];
                    }
                }
            }
        }
    });
    let pl = spec.patch_len();
    let pl_p = ca * spec.kernel * spec.kernel;
    let rows_n = n * oh * ow;
    let mut grad_weight = vec![0.0f32; oa * pl_p];
    let mut grad_input = vec![0.0f32; n * spec.in_channels * h * w];
    with_scratch_dirty(rows_n * oa, |rows| -> Result<()> {
        // Re-layout the packed grad from NCHW to rows [N*OH*OW, Oa] —
        // the same loop as `conv2d_backward`, so per-element order
        // matches.
        for_each_block(rows, oh * ow * oa, oh * ow * oa, |first, chunk| {
            for (bi, item) in chunk.chunks_mut(oh * ow * oa).enumerate() {
                let ni = first + bi;
                for oc in 0..oa {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            item[(oy * ow + ox) * oa + oc] =
                                g[((ni * oa + oc) * oh + oy) * ow + ox];
                        }
                    }
                }
            }
        });
        // Patch matrix over the *active* input channels only: identical
        // entries to the active column blocks of the full im2col, in the
        // same relative order, because the column layout is channel-major.
        let packed_in_spec = ConvSpec {
            in_channels: ca,
            out_channels: oa,
            kernel: spec.kernel,
            stride: spec.stride,
            padding: spec.padding,
        };
        with_scratch(rows_n * pl_p, |cols_p| -> Result<()> {
            im2col_into(cols_p, input_packed, &packed_in_spec)?;
            // dW_p = grad_pᵀ × cols_p : [Oa, N*OH*OW] × [N*OH*OW, Ca*KK]
            gemm_into(
                &mut grad_weight,
                oa,
                rows_n,
                pl_p,
                rows,
                Layout::Transposed,
                cols_p,
                Layout::Normal,
            );
            Ok(())
        })?;
        with_scratch(rows_n * pl, |dcols| {
            // dcols = grad_p × W_rows : [N*OH*OW, Oa] × [Oa, C*KK] —
            // full input columns, so col2im reproduces the full-shape
            // grad_input exactly.
            gemm_into(
                dcols,
                rows_n,
                oa,
                pl,
                rows,
                Layout::Normal,
                weight_rows.as_slice(),
                Layout::Normal,
            );
            col2im_into(&mut grad_input, dcols, spec, n, h, w);
        });
        Ok(())
    })?;
    Ok(Conv2dPackedGrads {
        grad_input: Tensor::from_vec(grad_input, &[n, spec.in_channels, h, w])?,
        grad_weight: Tensor::from_vec(grad_weight, &[oa, pl_p])?,
        grad_bias: Tensor::from_vec(grad_bias, &[oa])?,
    })
}

/// Configuration of a 2-D pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PoolSpec {
    /// Side length of the square pooling window.
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
}

impl PoolSpec {
    /// Creates a pooling spec.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(kernel > 0, "kernel must be nonzero");
        assert!(stride > 0, "stride must be nonzero");
        PoolSpec { kernel, stride }
    }

    /// Output spatial size for an `h × w` input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h - self.kernel) / self.stride + 1;
        let ow = (w - self.kernel) / self.stride + 1;
        (oh, ow)
    }
}

/// Flat input indices of the maxima chosen by [`max_pool2d`], needed by the
/// backward pass to route gradients.
#[derive(Debug, Clone)]
pub struct PoolIndices {
    indices: Vec<usize>,
    input_dims: Vec<usize>,
}

/// Max pooling forward pass on a `[N, C, H, W]` tensor.
///
/// Returns the pooled tensor and the argmax indices consumed by
/// [`max_pool2d_backward`].
///
/// # Errors
///
/// Returns a [`TensorError`] when the input is not rank 4 or smaller than
/// the pooling window.
pub fn max_pool2d(input: &Tensor, spec: &PoolSpec) -> Result<(Tensor, PoolIndices)> {
    let (n, c, h, w) = check_nchw("max_pool2d", input)?;
    if h < spec.kernel || w < spec.kernel {
        return Err(TensorError::InvalidArgument {
            what: format!("pool kernel {} exceeds input {h}x{w}", spec.kernel),
        });
    }
    let (oh, ow) = spec.output_hw(h, w);
    let x = input.as_slice();
    let mut out = vec![0.0f32; n * c * oh * ow];
    let mut idx = vec![0usize; n * c * oh * ow];
    let window = spec.kernel * spec.kernel;
    // One comparison per window element, counted once from the shapes.
    crate::instrument::record_kernel((n * c * oh * ow * window) as u64, (n * c * oh * ow) as u64);
    // Parallel over `N*C` planes; values and argmax indices are
    // partitioned in lockstep so each worker fills both for its planes.
    for_each_block2(
        &mut out,
        oh * ow,
        &mut idx,
        oh * ow,
        oh * ow * window,
        |first, out_chunk, idx_chunk| {
            let planes = out_chunk
                .chunks_mut(oh * ow)
                .zip(idx_chunk.chunks_mut(oh * ow));
            for (bi, (out_plane, idx_plane)) in planes.enumerate() {
                let plane = first + bi; // == ni * c + ci
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best_v = f32::NEG_INFINITY;
                        let mut best_i = 0usize;
                        for ky in 0..spec.kernel {
                            for kx in 0..spec.kernel {
                                let iy = oy * spec.stride + ky;
                                let ix = ox * spec.stride + kx;
                                let fi = (plane * h + iy) * w + ix;
                                if x[fi] > best_v {
                                    best_v = x[fi];
                                    best_i = fi;
                                }
                            }
                        }
                        out_plane[oy * ow + ox] = best_v;
                        idx_plane[oy * ow + ox] = best_i;
                    }
                }
            }
        },
    );
    Ok((
        Tensor::from_vec(out, &[n, c, oh, ow])?,
        PoolIndices {
            indices: idx,
            input_dims: vec![n, c, h, w],
        },
    ))
}

/// Max pooling backward pass: routes each output gradient to the input
/// position that produced the maximum.
///
/// # Errors
///
/// Returns a [`TensorError`] when `grad_output` does not match the index
/// record from the forward pass.
pub fn max_pool2d_backward(grad_output: &Tensor, indices: &PoolIndices) -> Result<Tensor> {
    if grad_output.len() != indices.indices.len() {
        return Err(TensorError::SizeMismatch {
            elements: grad_output.len(),
            expected: indices.indices.len(),
        });
    }
    let d = &indices.input_dims;
    let (h, w) = (d[2], d[3]);
    let out_per_plane = indices.indices.len() / (d[0] * d[1]);
    let g = grad_output.as_slice();
    // One scatter-add per recorded argmax.
    crate::instrument::record_kernel(indices.indices.len() as u64, (d[0] * d[1] * h * w) as u64);
    let mut grad = Tensor::zeros(d);
    // Parallel over `N*C` planes: every argmax index recorded for a
    // plane points inside that plane of the input, so the scatter-adds
    // of different workers never collide.
    for_each_block(grad.as_mut_slice(), h * w, out_per_plane, |first, chunk| {
        for (bi, plane) in chunk.chunks_mut(h * w).enumerate() {
            let p = first + bi;
            let base = p * h * w;
            let span = p * out_per_plane..(p + 1) * out_per_plane;
            for (&src, &gv) in indices.indices[span.clone()].iter().zip(&g[span]) {
                plane[src - base] += gv;
            }
        }
    });
    Ok(grad)
}

/// Average pooling forward pass on a `[N, C, H, W]` tensor.
///
/// # Errors
///
/// Returns a [`TensorError`] when the input is not rank 4 or smaller than
/// the pooling window.
pub fn avg_pool2d(input: &Tensor, spec: &PoolSpec) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw("avg_pool2d", input)?;
    if h < spec.kernel || w < spec.kernel {
        return Err(TensorError::InvalidArgument {
            what: format!("pool kernel {} exceeds input {h}x{w}", spec.kernel),
        });
    }
    let (oh, ow) = spec.output_hw(h, w);
    let x = input.as_slice();
    let area = (spec.kernel * spec.kernel) as f32;
    // One add per window element plus the final divide, per output.
    crate::instrument::record_kernel(
        (n * c * oh * ow * (spec.kernel * spec.kernel + 1)) as u64,
        (n * c * oh * ow) as u64,
    );
    let mut out = vec![0.0f32; n * c * oh * ow];
    // Parallel over `N*C` planes.
    for_each_block(
        &mut out,
        oh * ow,
        oh * ow * spec.kernel * spec.kernel,
        |first, chunk| {
            for (bi, plane_out) in chunk.chunks_mut(oh * ow).enumerate() {
                let plane = first + bi;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for ky in 0..spec.kernel {
                            for kx in 0..spec.kernel {
                                let iy = oy * spec.stride + ky;
                                let ix = ox * spec.stride + kx;
                                acc += x[(plane * h + iy) * w + ix];
                            }
                        }
                        plane_out[oy * ow + ox] = acc / area;
                    }
                }
            }
        },
    );
    Tensor::from_vec(out, &[n, c, oh, ow])
}

/// Average pooling backward pass: spreads each output gradient uniformly
/// over its pooling window.
///
/// # Errors
///
/// Returns a [`TensorError`] when `grad_output` is inconsistent with the
/// given input geometry.
pub fn avg_pool2d_backward(
    grad_output: &Tensor,
    spec: &PoolSpec,
    input_dims: &[usize],
) -> Result<Tensor> {
    if input_dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            op: "avg_pool2d_backward",
            expected: 4,
            actual: input_dims.len(),
        });
    }
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    let (oh, ow) = spec.output_hw(h, w);
    if grad_output.dims() != [n, c, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            op: "avg_pool2d_backward",
            lhs: grad_output.dims().to_vec(),
            rhs: vec![n, c, oh, ow],
        });
    }
    let g = grad_output.as_slice();
    let area = (spec.kernel * spec.kernel) as f32;
    // One divide per window plus one add per spread entry.
    crate::instrument::record_kernel(
        (n * c * oh * ow * (spec.kernel * spec.kernel + 1)) as u64,
        (n * c * h * w) as u64,
    );
    let mut out = vec![0.0f32; n * c * h * w];
    // Parallel over `N*C` planes: each window of a plane spreads its
    // gradient only within that plane's slice.
    for_each_block(
        &mut out,
        h * w,
        oh * ow * spec.kernel * spec.kernel,
        |first, chunk| {
            for (bi, plane_out) in chunk.chunks_mut(h * w).enumerate() {
                let plane = first + bi;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let gv = g[(plane * oh + oy) * ow + ox] / area;
                        for ky in 0..spec.kernel {
                            for kx in 0..spec.kernel {
                                let iy = oy * spec.stride + ky;
                                let ix = ox * spec.stride + kx;
                                plane_out[iy * w + ix] += gv;
                            }
                        }
                    }
                }
            }
        },
    );
    Tensor::from_vec(out, &[n, c, h, w])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_spec_output_geometry() {
        let s = ConvSpec::new(3, 8, 3, 1, 1);
        assert_eq!(s.output_hw(16, 16), (16, 16));
        let s2 = ConvSpec::new(3, 8, 3, 2, 1);
        assert_eq!(s2.output_hw(16, 16), (8, 8));
        let s3 = ConvSpec::new(1, 1, 2, 2, 0);
        assert_eq!(s3.output_hw(4, 4), (2, 2));
    }

    #[test]
    fn conv2d_identity_kernel_reproduces_input() {
        // A 1x1 kernel with weight 1 and bias 0 is the identity map.
        let spec = ConvSpec::new(1, 1, 1, 1, 0);
        let input = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let weight = Tensor::ones(&[1, 1]);
        let bias = Tensor::zeros(&[1]);
        let out = conv2d(&input, &weight, &bias, &spec).unwrap();
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn conv2d_sum_kernel_known_value() {
        // 3x3 all-ones kernel, no padding: each output is the 3x3 patch sum.
        let spec = ConvSpec::new(1, 1, 3, 1, 0);
        let input = Tensor::ones(&[1, 1, 4, 4]);
        let weight = Tensor::ones(&[1, 9]);
        let bias = Tensor::zeros(&[1]);
        let out = conv2d(&input, &weight, &bias, &spec).unwrap();
        assert_eq!(out.dims(), &[1, 1, 2, 2]);
        assert!(out.as_slice().iter().all(|&v| (v - 9.0).abs() < 1e-6));
    }

    #[test]
    fn conv2d_padding_zeroes_border_contributions() {
        let spec = ConvSpec::new(1, 1, 3, 1, 1);
        let input = Tensor::ones(&[1, 1, 3, 3]);
        let weight = Tensor::ones(&[1, 9]);
        let bias = Tensor::zeros(&[1]);
        let out = conv2d(&input, &weight, &bias, &spec).unwrap();
        // Corner output sees only a 2x2 live patch.
        assert_eq!(out.get(&[0, 0, 0, 0]).unwrap(), 4.0);
        // Center output sees the full 3x3.
        assert_eq!(out.get(&[0, 0, 1, 1]).unwrap(), 9.0);
    }

    #[test]
    fn conv2d_rejects_mismatched_weight() {
        let spec = ConvSpec::new(1, 2, 3, 1, 1);
        let input = Tensor::ones(&[1, 1, 4, 4]);
        let bad_weight = Tensor::zeros(&[2, 8]);
        let bias = Tensor::zeros(&[2]);
        assert!(conv2d(&input, &bad_weight, &bias, &spec).is_err());
    }

    /// Finite-difference check of the full conv2d backward pass.
    #[test]
    fn conv2d_backward_matches_finite_differences() {
        let spec = ConvSpec::new(2, 3, 3, 1, 1);
        let n = 2;
        let (h, w) = (4, 4);
        let mk = |seed: u32, len: usize| -> Vec<f32> {
            // Small deterministic pseudo-random values.
            (0..len)
                .map(|i| {
                    let v = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
                    ((v >> 16) & 0xff) as f32 / 255.0 - 0.5
                })
                .collect()
        };
        let input = Tensor::from_vec(mk(1, n * 2 * h * w), &[n, 2, h, w]).unwrap();
        let weight = Tensor::from_vec(mk(2, 3 * 18), &[3, 18]).unwrap();
        let bias = Tensor::from_vec(mk(3, 3), &[3]).unwrap();
        // Loss = sum of outputs, so grad_output = ones.
        let out = conv2d(&input, &weight, &bias, &spec).unwrap();
        let grad_out = Tensor::ones(out.dims());
        let grads = conv2d_backward(&input, &weight, &grad_out, &spec).unwrap();

        let eps = 1e-2f32;
        let loss = |inp: &Tensor, wt: &Tensor, bs: &Tensor| -> f32 {
            conv2d(inp, wt, bs, &spec).unwrap().sum()
        };
        // Check a sample of weight gradients.
        for &i in &[0usize, 7, 20, 53] {
            let mut wp = weight.clone();
            wp.as_mut_slice()[i] += eps;
            let mut wm = weight.clone();
            wm.as_mut_slice()[i] -= eps;
            let num = (loss(&input, &wp, &bias) - loss(&input, &wm, &bias)) / (2.0 * eps);
            let ana = grads.grad_weight.as_slice()[i];
            assert!(
                (num - ana).abs() < 0.05 * (1.0 + ana.abs()),
                "weight grad {i}: numeric {num} vs analytic {ana}"
            );
        }
        // Check a sample of input gradients.
        for &i in &[0usize, 13, 31, 60] {
            let mut ip = input.clone();
            ip.as_mut_slice()[i] += eps;
            let mut im = input.clone();
            im.as_mut_slice()[i] -= eps;
            let num = (loss(&ip, &weight, &bias) - loss(&im, &weight, &bias)) / (2.0 * eps);
            let ana = grads.grad_input.as_slice()[i];
            assert!(
                (num - ana).abs() < 0.05 * (1.0 + ana.abs()),
                "input grad {i}: numeric {num} vs analytic {ana}"
            );
        }
        // Bias gradient of a sum loss is the number of output positions.
        let (oh, ow) = spec.output_hw(h, w);
        let expected_bias = (n * oh * ow) as f32;
        for &g in grads.grad_bias.as_slice() {
            assert!((g - expected_bias).abs() < 1e-3);
        }
    }

    #[test]
    fn max_pool_picks_maxima_and_routes_gradient() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 4.0, //
                3.0, 0.0, 1.0, 1.0, //
                0.0, 0.0, 9.0, 1.0, //
                0.0, 7.0, 1.0, 1.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let spec = PoolSpec::new(2, 2);
        let (out, idx) = max_pool2d(&input, &spec).unwrap();
        assert_eq!(out.dims(), &[1, 1, 2, 2]);
        assert_eq!(out.as_slice(), &[3.0, 5.0, 7.0, 9.0]);
        let grad = max_pool2d_backward(&Tensor::ones(&[1, 1, 2, 2]), &idx).unwrap();
        // Exactly the four argmax positions receive gradient 1.
        assert_eq!(grad.sum(), 4.0);
        assert_eq!(grad.get(&[0, 0, 1, 0]).unwrap(), 1.0); // 3.0
        assert_eq!(grad.get(&[0, 0, 0, 2]).unwrap(), 1.0); // 5.0
        assert_eq!(grad.get(&[0, 0, 3, 1]).unwrap(), 1.0); // 7.0
        assert_eq!(grad.get(&[0, 0, 2, 2]).unwrap(), 1.0); // 9.0
    }

    #[test]
    fn avg_pool_forward_and_backward_are_consistent() {
        let input = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let spec = PoolSpec::new(2, 2);
        let out = avg_pool2d(&input, &spec).unwrap();
        assert_eq!(out.as_slice(), &[2.5, 4.5, 10.5, 12.5]);
        let grad = avg_pool2d_backward(&Tensor::ones(&[1, 1, 2, 2]), &spec, &[1, 1, 4, 4]).unwrap();
        // Each input cell belongs to exactly one window; gradient 1/4 each.
        assert!(grad.as_slice().iter().all(|&g| (g - 0.25).abs() < 1e-6));
    }

    #[test]
    fn pool_rejects_oversized_kernel() {
        let input = Tensor::ones(&[1, 1, 2, 2]);
        let spec = PoolSpec::new(3, 1);
        assert!(max_pool2d(&input, &spec).is_err());
        assert!(avg_pool2d(&input, &spec).is_err());
    }
}
