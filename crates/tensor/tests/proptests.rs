//! Property-based tests for tensor algebra invariants.

use helios_tensor::{
    avg_pool2d, conv2d, conv2d_backward, max_pool2d, max_pool2d_backward, ConvSpec, PoolSpec,
    Tensor,
};
use proptest::prelude::*;

/// Strategy: a matrix with bounded dimensions and finite values.
fn matrix(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(m, n)| {
        proptest::collection::vec(-10.0f32..10.0, m * n)
            .prop_map(move |v| Tensor::from_vec(v, &[m, n]).expect("size matches"))
    })
}

proptest! {
    #[test]
    fn transpose_is_involutive(a in matrix(8)) {
        let att = a.transpose().unwrap().transpose().unwrap();
        prop_assert_eq!(att, a);
    }

    #[test]
    fn matmul_identity_left_and_right(a in matrix(8)) {
        let m = a.dims()[0];
        let n = a.dims()[1];
        let left = Tensor::eye(m).matmul(&a).unwrap();
        let right = a.matmul(&Tensor::eye(n)).unwrap();
        for (x, y) in left.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
        for (x, y) in right.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        dims in (1usize..=5, 1usize..=5, 1usize..=5),
        seed in 0u64..1000,
    ) {
        let (m, k, n) = dims;
        let mut rng = helios_tensor::TensorRng::seed_from(seed);
        let a = helios_tensor::uniform_init(&[m, k], -2.0, 2.0, &mut rng);
        let b = helios_tensor::uniform_init(&[k, n], -2.0, 2.0, &mut rng);
        let c = helios_tensor::uniform_init(&[k, n], -2.0, 2.0, &mut rng);
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
        }
    }

    #[test]
    fn transpose_of_product_is_reversed_product_of_transposes(
        dims in (1usize..=5, 1usize..=5, 1usize..=5),
        seed in 0u64..1000,
    ) {
        let (m, k, n) = dims;
        let mut rng = helios_tensor::TensorRng::seed_from(seed);
        let a = helios_tensor::uniform_init(&[m, k], -2.0, 2.0, &mut rng);
        let b = helios_tensor::uniform_init(&[k, n], -2.0, 2.0, &mut rng);
        let lhs = a.matmul(&b).unwrap().transpose().unwrap();
        let rhs = b.transpose().unwrap().matmul(&a.transpose().unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_rows_are_probability_distributions(a in matrix(8)) {
        let s = a.softmax_rows().unwrap();
        let (m, n) = (a.dims()[0], a.dims()[1]);
        for i in 0..m {
            let mut total = 0.0f32;
            for j in 0..n {
                let p = s.get(&[i, j]).unwrap();
                prop_assert!((0.0..=1.0 + 1e-6).contains(&p));
                total += p;
            }
            prop_assert!((total - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn argmax_row_attains_row_maximum(a in matrix(8)) {
        let idx = a.argmax_rows().unwrap();
        let n = a.dims()[1];
        for (i, &best) in idx.iter().enumerate() {
            let chosen = a.get(&[i, best]).unwrap();
            for j in 0..n {
                prop_assert!(chosen >= a.get(&[i, j]).unwrap());
            }
        }
    }

    #[test]
    fn l2_norm_triangle_inequality(
        len in 1usize..64,
        seed in 0u64..1000,
    ) {
        let mut rng = helios_tensor::TensorRng::seed_from(seed);
        let a = helios_tensor::uniform_init(&[len], -5.0, 5.0, &mut rng);
        let b = helios_tensor::uniform_init(&[len], -5.0, 5.0, &mut rng);
        let sum = a.add(&b).unwrap();
        prop_assert!(sum.l2_norm() <= a.l2_norm() + b.l2_norm() + 1e-4);
    }

    #[test]
    fn conv_linearity_in_input(
        seed in 0u64..500,
    ) {
        // conv(x + y) == conv(x) + conv(y) - conv(0) for fixed weights
        // (the bias enters each term once).
        let spec = ConvSpec::new(2, 3, 3, 1, 1);
        let mut rng = helios_tensor::TensorRng::seed_from(seed);
        let x = helios_tensor::uniform_init(&[1, 2, 5, 5], -1.0, 1.0, &mut rng);
        let y = helios_tensor::uniform_init(&[1, 2, 5, 5], -1.0, 1.0, &mut rng);
        let w = helios_tensor::uniform_init(&[3, 18], -1.0, 1.0, &mut rng);
        let b = helios_tensor::uniform_init(&[3], -1.0, 1.0, &mut rng);
        let zero = Tensor::zeros(&[1, 2, 5, 5]);
        let lhs = conv2d(&x.add(&y).unwrap(), &w, &b, &spec).unwrap();
        let rhs = conv2d(&x, &w, &b, &spec)
            .unwrap()
            .add(&conv2d(&y, &w, &b, &spec).unwrap())
            .unwrap()
            .sub(&conv2d(&zero, &w, &b, &spec).unwrap())
            .unwrap();
        for (p, q) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((p - q).abs() < 1e-3, "{} vs {}", p, q);
        }
    }

    #[test]
    fn conv_backward_input_grad_matches_directional_derivative(seed in 0u64..200) {
        let spec = ConvSpec::new(1, 2, 3, 1, 1);
        let mut rng = helios_tensor::TensorRng::seed_from(seed);
        let x = helios_tensor::uniform_init(&[1, 1, 4, 4], -1.0, 1.0, &mut rng);
        let w = helios_tensor::uniform_init(&[2, 9], -1.0, 1.0, &mut rng);
        let b = Tensor::zeros(&[2]);
        let d = helios_tensor::uniform_init(&[1, 1, 4, 4], -1.0, 1.0, &mut rng);
        let out = conv2d(&x, &w, &b, &spec).unwrap();
        let grads = conv2d_backward(&x, &w, &Tensor::ones(out.dims()), &spec).unwrap();
        // Directional derivative of sum-loss along d.
        let analytic: f32 = grads
            .grad_input
            .as_slice()
            .iter()
            .zip(d.as_slice())
            .map(|(g, dd)| g * dd)
            .sum();
        let eps = 1e-2f32;
        let mut xp = x.clone();
        xp.axpy(eps, &d).unwrap();
        let mut xm = x.clone();
        xm.axpy(-eps, &d).unwrap();
        let numeric = (conv2d(&xp, &w, &b, &spec).unwrap().sum()
            - conv2d(&xm, &w, &b, &spec).unwrap().sum())
            / (2.0 * eps);
        prop_assert!(
            (analytic - numeric).abs() < 0.05 * (1.0 + analytic.abs()),
            "analytic {} vs numeric {}",
            analytic,
            numeric
        );
    }

    #[test]
    fn max_pool_gradient_mass_is_conserved(seed in 0u64..500) {
        let mut rng = helios_tensor::TensorRng::seed_from(seed);
        let x = helios_tensor::uniform_init(&[2, 3, 4, 4], -1.0, 1.0, &mut rng);
        let spec = PoolSpec::new(2, 2);
        let (out, idx) = max_pool2d(&x, &spec).unwrap();
        let g = helios_tensor::uniform_init(out.dims(), -1.0, 1.0, &mut rng);
        let gi = max_pool2d_backward(&g, &idx).unwrap();
        prop_assert!((gi.sum() - g.sum()).abs() < 1e-3);
    }

    #[test]
    fn avg_pool_preserves_mean_for_exact_tiling(seed in 0u64..500) {
        let mut rng = helios_tensor::TensorRng::seed_from(seed);
        let x = helios_tensor::uniform_init(&[1, 2, 4, 4], -1.0, 1.0, &mut rng);
        let spec = PoolSpec::new(2, 2);
        let out = avg_pool2d(&x, &spec).unwrap();
        prop_assert!((out.mean() - x.mean()).abs() < 1e-4);
    }
}
