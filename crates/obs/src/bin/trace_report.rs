//! Summarizes a JSONL trace produced by the `helios-obs` bus.
//!
//! ```text
//! trace_report <trace.jsonl>             # human-readable report
//! trace_report --validate <trace.jsonl>  # schema + invariant check
//! ```
//!
//! The report shows a per-device timeline table (train time, transfer
//! outcomes, faults), fault/retry totals, and an ASCII Gantt of the
//! driver phases. `--validate` exits non-zero unless the trace parses,
//! sim-time is monotone, every phase span closes, and every
//! drop/corrupt/retry reaches a terminal `Delivered`/`SendFailed`/
//! `Timeout` outcome.

use std::collections::BTreeMap;
use std::process::ExitCode;

use helios_obs::{parse_jsonl, TraceEvent, TraceRecord};

#[derive(Default)]
struct DeviceStats {
    selected: u64,
    train_cycles: u64,
    train_s: f64,
    delivered: u64,
    bytes: u64,
    drops: u64,
    corrupt: u64,
    retries: u64,
    timeouts: u64,
    failed: u64,
    masks: u64,
    skips_missed: u64,
}

struct Summary {
    devices: BTreeMap<u64, DeviceStats>,
    rounds: u64,
    span_s: f64,
    /// (phase, start, end) in record order.
    phases: Vec<(String, f64, f64)>,
    last_eval: Option<(u64, f64, f64)>,
    /// Scenario-engine events by kind (churn, throttle, drift).
    scenario: BTreeMap<String, u64>,
}

fn summarize(records: &[TraceRecord]) -> Summary {
    let mut devices: BTreeMap<u64, DeviceStats> = BTreeMap::new();
    let mut rounds = 0;
    let mut span_s = 0f64;
    let mut phases = Vec::new();
    let mut open: Vec<(String, f64)> = Vec::new();
    let mut last_eval = None;
    let mut scenario: BTreeMap<String, u64> = BTreeMap::new();

    for rec in records {
        match &rec.event {
            TraceEvent::RoundEnd { span_s: s, .. } => {
                rounds += 1;
                span_s += s;
            }
            TraceEvent::PhaseStart { phase, .. } => open.push((phase.clone(), rec.t)),
            TraceEvent::PhaseEnd { phase, .. } => {
                if let Some(pos) = open.iter().rposition(|(p, _)| p == phase) {
                    let (p, start) = open.remove(pos);
                    phases.push((p, start, rec.t));
                }
            }
            TraceEvent::DeviceSelected { device, .. } => {
                devices.entry(*device).or_default().selected += 1;
            }
            TraceEvent::MaskIssued { device, .. } => {
                devices.entry(*device).or_default().masks += 1;
            }
            TraceEvent::TrainDone { device, compute_s } => {
                let d = devices.entry(*device).or_default();
                d.train_cycles += 1;
                d.train_s += compute_s;
            }
            TraceEvent::FrameDropped { device, .. } => {
                devices.entry(*device).or_default().drops += 1;
            }
            TraceEvent::FrameCorrupted { device, .. } => {
                devices.entry(*device).or_default().corrupt += 1;
            }
            TraceEvent::Retry { device, .. } => {
                devices.entry(*device).or_default().retries += 1;
            }
            TraceEvent::Delivered { device, bytes, .. } => {
                let d = devices.entry(*device).or_default();
                d.delivered += 1;
                d.bytes += bytes;
            }
            TraceEvent::SendFailed { device, .. } => {
                devices.entry(*device).or_default().failed += 1;
            }
            TraceEvent::Timeout { device } => {
                devices.entry(*device).or_default().timeouts += 1;
            }
            TraceEvent::SkipSettled {
                device,
                delivered: false,
                ..
            } => {
                devices.entry(*device).or_default().skips_missed += 1;
            }
            TraceEvent::EvalDone {
                cycle,
                loss,
                accuracy,
            } => last_eval = Some((*cycle, *loss, *accuracy)),
            TraceEvent::ScenarioEvent { kind, .. } => {
                *scenario.entry(kind.clone()).or_default() += 1;
            }
            _ => {}
        }
    }

    Summary {
        devices,
        rounds,
        span_s,
        phases,
        last_eval,
        scenario,
    }
}

fn print_report(summary: &Summary) {
    println!(
        "rounds: {}   simulated span: {:.3}s",
        summary.rounds, summary.span_s
    );
    if let Some((cycle, loss, acc)) = summary.last_eval {
        println!("final eval (cycle {cycle}): loss {loss:.4}  accuracy {acc:.4}");
    }

    println!();
    println!(
        "{:>6} {:>4} {:>6} {:>9} {:>5} {:>9} {:>5} {:>7} {:>5} {:>5} {:>4} {:>5} {:>6}",
        "device",
        "sel",
        "train",
        "train_s",
        "deliv",
        "bytes",
        "drop",
        "corrupt",
        "retry",
        "tmout",
        "fail",
        "masks",
        "missed"
    );
    for (id, d) in &summary.devices {
        println!(
            "{:>6} {:>4} {:>6} {:>9.3} {:>5} {:>9} {:>5} {:>7} {:>5} {:>5} {:>4} {:>5} {:>6}",
            id,
            d.selected,
            d.train_cycles,
            d.train_s,
            d.delivered,
            d.bytes,
            d.drops,
            d.corrupt,
            d.retries,
            d.timeouts,
            d.failed,
            d.masks,
            d.skips_missed
        );
    }

    let totals = summary
        .devices
        .values()
        .fold((0u64, 0u64, 0u64, 0u64), |acc, d| {
            (
                acc.0 + d.drops + d.corrupt,
                acc.1 + d.retries,
                acc.2 + d.timeouts,
                acc.3 + d.failed,
            )
        });
    println!();
    println!(
        "faults: {} dropped/corrupted   retries: {}   timeouts: {}   failed sends: {}",
        totals.0, totals.1, totals.2, totals.3
    );

    if !summary.scenario.is_empty() {
        let parts: Vec<String> = summary
            .scenario
            .iter()
            .map(|(k, n)| format!("{k}: {n}"))
            .collect();
        println!(
            "scenario events: {}   ({})",
            summary.scenario.values().sum::<u64>(),
            parts.join(", ")
        );
    }

    // ASCII Gantt of the driver phases, scaled to the trace's span.
    if summary.phases.is_empty() {
        return;
    }
    let t0 = summary
        .phases
        .iter()
        .map(|(_, s, _)| *s)
        .fold(f64::INFINITY, f64::min);
    let t1 = summary
        .phases
        .iter()
        .map(|(_, _, e)| *e)
        .fold(f64::NEG_INFINITY, f64::max);
    let width = 60.0;
    let scale = if t1 > t0 { width / (t1 - t0) } else { 0.0 };
    println!();
    println!("phase gantt ({t0:.3}s .. {t1:.3}s):");
    for (phase, start, end) in &summary.phases {
        let lead = (((start - t0) * scale).round() as usize).min(width as usize);
        let len = ((((end - start) * scale).round() as usize).max(1))
            .min(width as usize - lead.min(width as usize - 1));
        println!(
            "{:>10} |{}{}| {:.3}s",
            phase,
            " ".repeat(lead),
            "#".repeat(len),
            end - start
        );
    }
}

fn validate(records: &[TraceRecord]) -> Result<(), String> {
    if records.is_empty() {
        return Err("trace is empty".to_string());
    }

    // 1. Sim-time is monotone (non-decreasing) across the trace.
    let mut prev = f64::NEG_INFINITY;
    for (i, rec) in records.iter().enumerate() {
        if !rec.t.is_finite() {
            return Err(format!("record {}: non-finite timestamp {}", i + 1, rec.t));
        }
        if rec.t < prev {
            return Err(format!(
                "record {}: sim-time regressed ({} < {prev})",
                i + 1,
                rec.t
            ));
        }
        prev = rec.t;
    }

    // 2. Every phase span closes, properly nested per (cycle, phase).
    let mut open: Vec<(u64, String)> = Vec::new();
    for rec in records {
        match &rec.event {
            TraceEvent::PhaseStart { cycle, phase } => open.push((*cycle, phase.clone())),
            TraceEvent::PhaseEnd { cycle, phase } => {
                match open.iter().rposition(|(c, p)| c == cycle && p == phase) {
                    Some(pos) => {
                        open.remove(pos);
                    }
                    None => {
                        return Err(format!(
                            "PhaseEnd without matching start: cycle {cycle} phase {phase}"
                        ))
                    }
                }
            }
            _ => {}
        }
    }
    if let Some((cycle, phase)) = open.first() {
        return Err(format!("unclosed phase: cycle {cycle} phase {phase}"));
    }

    // 3. Every non-terminal frame event (sent/dropped/corrupted/retry)
    //    is followed by a terminal outcome for that device.
    let mut pending: BTreeMap<u64, usize> = BTreeMap::new();
    for (i, rec) in records.iter().enumerate() {
        match &rec.event {
            TraceEvent::FrameSent { device, .. }
            | TraceEvent::FrameDropped { device, .. }
            | TraceEvent::FrameCorrupted { device, .. }
            | TraceEvent::Retry { device, .. } => {
                pending.insert(*device, i + 1);
            }
            TraceEvent::Delivered { device, .. }
            | TraceEvent::SendFailed { device, .. }
            | TraceEvent::Timeout { device } => {
                pending.remove(device);
            }
            _ => {}
        }
    }
    if let Some((device, line)) = pending.iter().next() {
        return Err(format!(
            "device {device}: frame activity at record {line} never reached a terminal \
             Delivered/SendFailed/Timeout outcome"
        ));
    }

    // 4. FrameSent mode tags, when present, name a known wire-v2 mode
    //    (v1 frames omit the field entirely).
    const FRAME_MODES: [&str; 4] = ["delta", "topk", "qf16", "qi8"];
    for (i, rec) in records.iter().enumerate() {
        if let TraceEvent::FrameSent {
            mode: Some(mode), ..
        } = &rec.event
        {
            if !FRAME_MODES.contains(&mode.as_str()) {
                return Err(format!(
                    "record {}: unknown FrameSent compression mode `{mode}`",
                    i + 1
                ));
            }
        }
    }

    // 5. Scenario events carry a known kind and a finite value.
    const SCENARIO_KINDS: [&str; 6] = [
        "join",
        "leave",
        "return",
        "throttle",
        "drift_label_rotate",
        "drift_input_shift",
    ];
    for (i, rec) in records.iter().enumerate() {
        if let TraceEvent::ScenarioEvent { kind, value, .. } = &rec.event {
            if !SCENARIO_KINDS.contains(&kind.as_str()) {
                return Err(format!(
                    "record {}: unknown scenario event kind `{kind}`",
                    i + 1
                ));
            }
            if !value.is_finite() {
                return Err(format!(
                    "record {}: scenario event `{kind}` has non-finite value {value}",
                    i + 1
                ));
            }
        }
    }

    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (do_validate, path) = match args.as_slice() {
        [flag, path] if flag == "--validate" => (true, path.clone()),
        [path, flag] if flag == "--validate" => (true, path.clone()),
        [path] => (false, path.clone()),
        _ => {
            return Err("usage: trace_report [--validate] <trace.jsonl>".to_string());
        }
    };

    let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let records = parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;

    if do_validate {
        validate(&records).map_err(|e| format!("{path}: INVALID: {e}"))?;
        println!("{path}: OK ({} records, schema + monotone sim-time + phase nesting + terminal outcomes + frame modes + scenario kinds)", records.len());
        return Ok(());
    }

    print_report(&summarize(&records));
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("trace_report: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_obs::Dir;

    fn rec(t: f64, event: TraceEvent) -> TraceRecord {
        TraceRecord { t, event }
    }

    fn healthy_trace() -> Vec<TraceRecord> {
        vec![
            rec(
                0.0,
                TraceEvent::RoundStart {
                    cycle: 0,
                    population: 2,
                },
            ),
            rec(
                0.0,
                TraceEvent::PhaseStart {
                    cycle: 0,
                    phase: "route".into(),
                },
            ),
            rec(
                0.0,
                TraceEvent::FrameSent {
                    device: 1,
                    dir: Dir::Up,
                    bytes: 32,
                    attempt: 1,
                    mode: None,
                },
            ),
            rec(
                0.1,
                TraceEvent::FrameDropped {
                    device: 1,
                    attempt: 1,
                },
            ),
            rec(
                0.1,
                TraceEvent::Retry {
                    device: 1,
                    attempt: 1,
                    backoff_s: 0.05,
                },
            ),
            rec(
                0.4,
                TraceEvent::Delivered {
                    device: 1,
                    bytes: 32,
                    attempts: 2,
                    elapsed_s: 0.4,
                },
            ),
            rec(
                0.5,
                TraceEvent::PhaseEnd {
                    cycle: 0,
                    phase: "route".into(),
                },
            ),
            rec(
                0.5,
                TraceEvent::RoundEnd {
                    cycle: 0,
                    span_s: 0.5,
                    train_s: 0.0,
                    comm_s: 0.5,
                    aggregated: 1,
                    missed: 0,
                },
            ),
        ]
    }

    #[test]
    fn healthy_trace_validates_and_summarizes() {
        let records = healthy_trace();
        validate(&records).expect("valid");
        let summary = summarize(&records);
        assert_eq!(summary.rounds, 1);
        let d = summary.devices.get(&1).expect("device 1");
        assert_eq!(d.drops, 1);
        assert_eq!(d.retries, 1);
        assert_eq!(d.delivered, 1);
        assert_eq!(summary.phases.len(), 1);
    }

    #[test]
    fn scenario_events_summarize_and_validate() {
        let mut records = healthy_trace();
        records.insert(
            0,
            rec(
                0.0,
                TraceEvent::ScenarioEvent {
                    cycle: 0,
                    kind: "throttle".into(),
                    device: Some(1),
                    value: 0.8,
                },
            ),
        );
        validate(&records).expect("valid");
        let summary = summarize(&records);
        assert_eq!(summary.scenario.get("throttle"), Some(&1));

        // An unknown kind is rejected.
        records[0] = rec(
            0.0,
            TraceEvent::ScenarioEvent {
                cycle: 0,
                kind: "meteor_strike".into(),
                device: None,
                value: 1.0,
            },
        );
        let err = validate(&records).expect_err("unknown kind");
        assert!(err.contains("meteor_strike"), "{err}");

        // A non-finite value is rejected.
        records[0] = rec(
            0.0,
            TraceEvent::ScenarioEvent {
                cycle: 0,
                kind: "throttle".into(),
                device: None,
                value: f64::NAN,
            },
        );
        let err = validate(&records).expect_err("non-finite value");
        assert!(err.contains("non-finite"), "{err}");
    }

    #[test]
    fn validation_rejects_time_regression() {
        let mut records = healthy_trace();
        records[3].t = -1.0;
        let err = validate(&records).expect_err("regression");
        assert!(err.contains("regressed"), "{err}");
    }

    #[test]
    fn validation_rejects_unterminated_retry() {
        let mut records = healthy_trace();
        records.retain(|r| !matches!(r.event, TraceEvent::Delivered { .. }));
        let err = validate(&records).expect_err("dangling retry");
        assert!(err.contains("terminal"), "{err}");
    }

    #[test]
    fn validation_rejects_unclosed_phase() {
        let mut records = healthy_trace();
        records.retain(|r| !matches!(r.event, TraceEvent::PhaseEnd { .. }));
        let err = validate(&records).expect_err("unclosed phase");
        assert!(err.contains("unclosed"), "{err}");
    }

    #[test]
    fn validation_checks_frame_mode_tags() {
        // Every known wire-v2 mode validates.
        for mode in ["delta", "topk", "qf16", "qi8"] {
            let mut records = healthy_trace();
            let TraceEvent::FrameSent { mode: slot, .. } = &mut records[2].event else {
                panic!("record 2 should be the FrameSent");
            };
            *slot = Some(mode.into());
            validate(&records).expect("known mode");
        }
        // An unknown tag is rejected.
        let mut records = healthy_trace();
        let TraceEvent::FrameSent { mode: slot, .. } = &mut records[2].event else {
            panic!("record 2 should be the FrameSent");
        };
        *slot = Some("gzip".into());
        let err = validate(&records).expect_err("unknown mode");
        assert!(err.contains("gzip"), "{err}");
    }
}
