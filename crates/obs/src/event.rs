//! The typed event taxonomy of the round lifecycle.
//!
//! Every event is stamped with **simulated** time at emission (see
//! [`crate::set_sim_time`]); host wall-clock never appears in a trace,
//! which is what makes traces bitwise reproducible across thread widths.
//!
//! The vendored `serde` stub derives only plain structs, so the enum
//! (de)serializes through hand-written [`Serialize`]/[`Deserialize`]
//! impls building the `Value` tree directly. The JSON shape is one
//! object per event with a `"type"` discriminant:
//!
//! ```json
//! {"t":12.5,"type":"FrameSent","device":3,"dir":"up","bytes":1024,"attempt":1}
//! ```

use serde::value::{find, Value};
use serde::{de, Deserialize, Serialize};

/// Which way a frame travelled (mirrors the transport's direction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Server → device (global model broadcast).
    Down,
    /// Device → server (local update upload).
    Up,
}

impl Dir {
    fn as_str(self) -> &'static str {
        match self {
            Dir::Down => "down",
            Dir::Up => "up",
        }
    }

    fn parse(s: &str) -> Result<Self, de::Error> {
        match s {
            "down" => Ok(Dir::Down),
            "up" => Ok(Dir::Up),
            other => Err(de::Error::custom(format!("unknown direction `{other}`"))),
        }
    }
}

/// One structured event on the round-lifecycle timeline.
///
/// The taxonomy covers the whole stack: the round driver (round and
/// phase boundaries, selection, aggregation, evaluation), the
/// environment (broadcast, training completion, joins), the simulated
/// transport (per-attempt frame outcomes), and the Helios soft-training
/// regulator (mask issuance, skip settlement).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A new aggregation cycle begins.
    RoundStart {
        /// Cycle index.
        cycle: u64,
        /// Enrolled population size (may exceed the per-cycle cohort at
        /// fleet scale).
        population: u64,
    },
    /// A driver phase begins (`select`, `broadcast`, `configure`,
    /// `train`, `route`, `aggregate`, `evaluate`).
    PhaseStart {
        /// Cycle index.
        cycle: u64,
        /// Phase name.
        phase: String,
    },
    /// A driver phase ends.
    PhaseEnd {
        /// Cycle index.
        cycle: u64,
        /// Phase name.
        phase: String,
    },
    /// The policy selected a device for this cycle.
    DeviceSelected {
        /// Cycle index.
        cycle: u64,
        /// Client/device id.
        device: u64,
        /// Size of the cohort this selection belongs to.
        cohort: u64,
    },
    /// The global model went out to the fleet.
    BroadcastSent {
        /// Cycle index the broadcast is tagged with.
        cycle: u64,
        /// Number of receiving devices.
        devices: u64,
    },
    /// A soft-training mask was installed on a straggler.
    MaskIssued {
        /// Cycle index.
        cycle: u64,
        /// Client/device id.
        device: u64,
        /// Units active under the mask.
        active_units: u64,
        /// Total maskable units.
        total_units: u64,
    },
    /// A device finished its local training cycle.
    TrainDone {
        /// Client/device id.
        device: u64,
        /// Simulated compute span of the cycle (cost model, masked).
        compute_s: f64,
    },
    /// One transmission attempt was put on the wire.
    FrameSent {
        /// Transport device index.
        device: u64,
        /// Transfer direction.
        dir: Dir,
        /// Frame size in bytes.
        bytes: u64,
        /// Attempt number (1-based).
        attempt: u64,
        /// Wire-v2 compression mode tag (`"delta"`, `"topk"`, `"qf16"`,
        /// `"qi8"`). `None` — and *omitted from the serialized record* —
        /// for v1 frames, so traces captured before wire v2 (and runs
        /// with compression off) stay byte-identical.
        mode: Option<String>,
    },
    /// An attempt was lost in flight.
    FrameDropped {
        /// Transport device index.
        device: u64,
        /// Attempt number (1-based).
        attempt: u64,
    },
    /// An attempt arrived corrupted and was rejected by the CRC check.
    FrameCorrupted {
        /// Transport device index.
        device: u64,
        /// Attempt number (1-based).
        attempt: u64,
    },
    /// A retransmission was scheduled after a drop or corruption.
    Retry {
        /// Transport device index.
        device: u64,
        /// The attempt that failed (1-based); the retry is `attempt+1`.
        attempt: u64,
        /// Backoff before the retry, simulated seconds.
        backoff_s: f64,
    },
    /// A message was delivered (terminal outcome).
    Delivered {
        /// Transport device index.
        device: u64,
        /// Delivered frame size in bytes.
        bytes: u64,
        /// Attempts the message took.
        attempts: u64,
        /// Simulated send-to-delivery span, seconds.
        elapsed_s: f64,
    },
    /// A message exhausted its retries (terminal outcome).
    SendFailed {
        /// Transport device index.
        device: u64,
        /// Attempts made before giving up.
        attempts: u64,
        /// Simulated span spent trying, seconds.
        elapsed_s: f64,
    },
    /// The per-round deadline cut a device off (terminal outcome).
    Timeout {
        /// Transport device index.
        device: u64,
    },
    /// A delivered update entered the global aggregate.
    UpdateAggregated {
        /// Cycle index.
        cycle: u64,
        /// Client/device id.
        device: u64,
    },
    /// The skip-cycle regulator settled a straggler's mask issuance
    /// against the round outcome.
    SkipSettled {
        /// Cycle index.
        cycle: u64,
        /// Client/device id.
        device: u64,
        /// Whether the update was delivered (counters reset) or the
        /// cycle was missed (every counter incremented).
        delivered: bool,
    },
    /// Global-model evaluation finished.
    EvalDone {
        /// Cycle index.
        cycle: u64,
        /// Test loss.
        loss: f64,
        /// Test accuracy.
        accuracy: f64,
    },
    /// An aggregation cycle ended.
    RoundEnd {
        /// Cycle index.
        cycle: u64,
        /// The cycle's simulated span, seconds.
        span_s: f64,
        /// Training share of the span, seconds.
        train_s: f64,
        /// Communication/waiting share of the span, seconds.
        comm_s: f64,
        /// Updates folded into the global model.
        aggregated: u64,
        /// Participants that missed the cycle.
        missed: u64,
    },
    /// A device joined the fleet mid-run.
    DeviceJoined {
        /// Client/device id.
        device: u64,
    },
    /// The scenario engine applied a timeline event (churn, throttle,
    /// drift). Emitted serially at the driver's hook points, so traces
    /// stay byte-identical across thread counts.
    ScenarioEvent {
        /// Cycle index at which the event was applied.
        cycle: u64,
        /// Stable event identifier (`join`, `leave`, `return`,
        /// `throttle`, `drift_label_rotate`, `drift_input_shift`).
        kind: String,
        /// Affected device, when the event is device-scoped (`None` for
        /// fleet-wide effects such as drift or a fleet-wide throttle).
        device: Option<u64>,
        /// Event magnitude: current scale for `throttle`, drift amount
        /// for drift kinds, the device id count for `join`, else `0`.
        value: f64,
    },
}

impl TraceEvent {
    /// The `"type"` discriminant this event serializes under.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RoundStart { .. } => "RoundStart",
            TraceEvent::PhaseStart { .. } => "PhaseStart",
            TraceEvent::PhaseEnd { .. } => "PhaseEnd",
            TraceEvent::DeviceSelected { .. } => "DeviceSelected",
            TraceEvent::BroadcastSent { .. } => "BroadcastSent",
            TraceEvent::MaskIssued { .. } => "MaskIssued",
            TraceEvent::TrainDone { .. } => "TrainDone",
            TraceEvent::FrameSent { .. } => "FrameSent",
            TraceEvent::FrameDropped { .. } => "FrameDropped",
            TraceEvent::FrameCorrupted { .. } => "FrameCorrupted",
            TraceEvent::Retry { .. } => "Retry",
            TraceEvent::Delivered { .. } => "Delivered",
            TraceEvent::SendFailed { .. } => "SendFailed",
            TraceEvent::Timeout { .. } => "Timeout",
            TraceEvent::UpdateAggregated { .. } => "UpdateAggregated",
            TraceEvent::SkipSettled { .. } => "SkipSettled",
            TraceEvent::EvalDone { .. } => "EvalDone",
            TraceEvent::RoundEnd { .. } => "RoundEnd",
            TraceEvent::DeviceJoined { .. } => "DeviceJoined",
            TraceEvent::ScenarioEvent { .. } => "ScenarioEvent",
        }
    }

    /// The device this event concerns, if it is device-scoped.
    pub fn device(&self) -> Option<u64> {
        match self {
            TraceEvent::DeviceSelected { device, .. }
            | TraceEvent::MaskIssued { device, .. }
            | TraceEvent::TrainDone { device, .. }
            | TraceEvent::FrameSent { device, .. }
            | TraceEvent::FrameDropped { device, .. }
            | TraceEvent::FrameCorrupted { device, .. }
            | TraceEvent::Retry { device, .. }
            | TraceEvent::Delivered { device, .. }
            | TraceEvent::SendFailed { device, .. }
            | TraceEvent::Timeout { device }
            | TraceEvent::UpdateAggregated { device, .. }
            | TraceEvent::SkipSettled { device, .. }
            | TraceEvent::DeviceJoined { device } => Some(*device),
            TraceEvent::ScenarioEvent { device, .. } => *device,
            _ => None,
        }
    }

    /// The cycle this event belongs to, when it carries one.
    pub fn cycle(&self) -> Option<u64> {
        match self {
            TraceEvent::RoundStart { cycle, .. }
            | TraceEvent::PhaseStart { cycle, .. }
            | TraceEvent::PhaseEnd { cycle, .. }
            | TraceEvent::DeviceSelected { cycle, .. }
            | TraceEvent::BroadcastSent { cycle, .. }
            | TraceEvent::MaskIssued { cycle, .. }
            | TraceEvent::UpdateAggregated { cycle, .. }
            | TraceEvent::SkipSettled { cycle, .. }
            | TraceEvent::EvalDone { cycle, .. }
            | TraceEvent::RoundEnd { cycle, .. }
            | TraceEvent::ScenarioEvent { cycle, .. } => Some(*cycle),
            _ => None,
        }
    }
}

/// One event plus its simulated timestamp — the unit every sink
/// receives and every JSONL line encodes.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Simulated time at emission, seconds.
    pub t: f64,
    /// The event payload.
    pub event: TraceEvent,
}

fn map(pairs: Vec<(&str, Value)>) -> Value {
    Value::Map(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn u(v: u64) -> Value {
    Value::UInt(v)
}

fn f(v: f64) -> Value {
    Value::Float(v)
}

fn s(v: &str) -> Value {
    Value::Str(v.to_string())
}

impl Serialize for TraceEvent {
    fn to_value(&self) -> Value {
        let kind = ("type", s(self.kind()));
        match self {
            TraceEvent::RoundStart { cycle, population } => map(vec![
                kind,
                ("cycle", u(*cycle)),
                ("population", u(*population)),
            ]),
            TraceEvent::PhaseStart { cycle, phase } | TraceEvent::PhaseEnd { cycle, phase } => {
                map(vec![kind, ("cycle", u(*cycle)), ("phase", s(phase))])
            }
            TraceEvent::DeviceSelected {
                cycle,
                device,
                cohort,
            } => map(vec![
                kind,
                ("cycle", u(*cycle)),
                ("device", u(*device)),
                ("cohort", u(*cohort)),
            ]),
            TraceEvent::BroadcastSent { cycle, devices } => {
                map(vec![kind, ("cycle", u(*cycle)), ("devices", u(*devices))])
            }
            TraceEvent::MaskIssued {
                cycle,
                device,
                active_units,
                total_units,
            } => map(vec![
                kind,
                ("cycle", u(*cycle)),
                ("device", u(*device)),
                ("active_units", u(*active_units)),
                ("total_units", u(*total_units)),
            ]),
            TraceEvent::TrainDone { device, compute_s } => map(vec![
                kind,
                ("device", u(*device)),
                ("compute_s", f(*compute_s)),
            ]),
            TraceEvent::FrameSent {
                device,
                dir,
                bytes,
                attempt,
                mode,
            } => {
                let mut fields = vec![
                    kind,
                    ("device", u(*device)),
                    ("dir", s(dir.as_str())),
                    ("bytes", u(*bytes)),
                    ("attempt", u(*attempt)),
                ];
                // Omitted (not null) when absent: v1 records keep their
                // exact pre-wire-v2 bytes, pinning the trace digest.
                if let Some(m) = mode {
                    fields.push(("mode", s(m)));
                }
                map(fields)
            }
            TraceEvent::FrameDropped { device, attempt }
            | TraceEvent::FrameCorrupted { device, attempt } => {
                map(vec![kind, ("device", u(*device)), ("attempt", u(*attempt))])
            }
            TraceEvent::Retry {
                device,
                attempt,
                backoff_s,
            } => map(vec![
                kind,
                ("device", u(*device)),
                ("attempt", u(*attempt)),
                ("backoff_s", f(*backoff_s)),
            ]),
            TraceEvent::Delivered {
                device,
                bytes,
                attempts,
                elapsed_s,
            } => map(vec![
                kind,
                ("device", u(*device)),
                ("bytes", u(*bytes)),
                ("attempts", u(*attempts)),
                ("elapsed_s", f(*elapsed_s)),
            ]),
            TraceEvent::SendFailed {
                device,
                attempts,
                elapsed_s,
            } => map(vec![
                kind,
                ("device", u(*device)),
                ("attempts", u(*attempts)),
                ("elapsed_s", f(*elapsed_s)),
            ]),
            TraceEvent::Timeout { device } => map(vec![kind, ("device", u(*device))]),
            TraceEvent::UpdateAggregated { cycle, device } => {
                map(vec![kind, ("cycle", u(*cycle)), ("device", u(*device))])
            }
            TraceEvent::SkipSettled {
                cycle,
                device,
                delivered,
            } => map(vec![
                kind,
                ("cycle", u(*cycle)),
                ("device", u(*device)),
                ("delivered", Value::Bool(*delivered)),
            ]),
            TraceEvent::EvalDone {
                cycle,
                loss,
                accuracy,
            } => map(vec![
                kind,
                ("cycle", u(*cycle)),
                ("loss", f(*loss)),
                ("accuracy", f(*accuracy)),
            ]),
            TraceEvent::RoundEnd {
                cycle,
                span_s,
                train_s,
                comm_s,
                aggregated,
                missed,
            } => map(vec![
                kind,
                ("cycle", u(*cycle)),
                ("span_s", f(*span_s)),
                ("train_s", f(*train_s)),
                ("comm_s", f(*comm_s)),
                ("aggregated", u(*aggregated)),
                ("missed", u(*missed)),
            ]),
            TraceEvent::DeviceJoined { device } => map(vec![kind, ("device", u(*device))]),
            TraceEvent::ScenarioEvent {
                cycle,
                kind: scenario_kind,
                device,
                value,
            } => map(vec![
                kind,
                ("cycle", u(*cycle)),
                ("kind", s(scenario_kind)),
                ("device", device.map_or(Value::Null, u)),
                ("value", f(*value)),
            ]),
        }
    }
}

fn get<'a>(pairs: &'a [(String, Value)], key: &str) -> Result<&'a Value, de::Error> {
    find(pairs, key).ok_or_else(|| de::Error::custom(format!("missing field `{key}`")))
}

fn get_u64(pairs: &[(String, Value)], key: &str) -> Result<u64, de::Error> {
    match get(pairs, key)? {
        Value::UInt(v) => Ok(*v),
        Value::Int(v) if *v >= 0 => Ok(*v as u64),
        other => Err(de::Error::custom(format!(
            "field `{key}` is not an unsigned integer: {other:?}"
        ))),
    }
}

fn get_f64(pairs: &[(String, Value)], key: &str) -> Result<f64, de::Error> {
    match get(pairs, key)? {
        Value::Float(v) => Ok(*v),
        Value::UInt(v) => Ok(*v as f64),
        Value::Int(v) => Ok(*v as f64),
        other => Err(de::Error::custom(format!(
            "field `{key}` is not a number: {other:?}"
        ))),
    }
}

fn get_str<'a>(pairs: &'a [(String, Value)], key: &str) -> Result<&'a str, de::Error> {
    match get(pairs, key)? {
        Value::Str(v) => Ok(v),
        other => Err(de::Error::custom(format!(
            "field `{key}` is not a string: {other:?}"
        ))),
    }
}

/// Optional string field: absent or `null` reads as `None`.
fn get_opt_str(pairs: &[(String, Value)], key: &str) -> Result<Option<String>, de::Error> {
    match find(pairs, key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(v)) => Ok(Some(v.clone())),
        Some(other) => Err(de::Error::custom(format!(
            "field `{key}` is not a string or null: {other:?}"
        ))),
    }
}

/// Optional device field: absent or `null` reads as `None`.
fn get_opt_u64(pairs: &[(String, Value)], key: &str) -> Result<Option<u64>, de::Error> {
    match find(pairs, key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::UInt(v)) => Ok(Some(*v)),
        Some(Value::Int(v)) if *v >= 0 => Ok(Some(*v as u64)),
        Some(other) => Err(de::Error::custom(format!(
            "field `{key}` is not an unsigned integer or null: {other:?}"
        ))),
    }
}

fn get_bool(pairs: &[(String, Value)], key: &str) -> Result<bool, de::Error> {
    match get(pairs, key)? {
        Value::Bool(v) => Ok(*v),
        other => Err(de::Error::custom(format!(
            "field `{key}` is not a bool: {other:?}"
        ))),
    }
}

impl Deserialize for TraceEvent {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let Value::Map(pairs) = v else {
            return Err(de::Error::custom("trace event is not an object"));
        };
        let p = pairs.as_slice();
        Ok(match get_str(p, "type")? {
            "RoundStart" => TraceEvent::RoundStart {
                cycle: get_u64(p, "cycle")?,
                population: get_u64(p, "population")?,
            },
            "PhaseStart" => TraceEvent::PhaseStart {
                cycle: get_u64(p, "cycle")?,
                phase: get_str(p, "phase")?.to_string(),
            },
            "PhaseEnd" => TraceEvent::PhaseEnd {
                cycle: get_u64(p, "cycle")?,
                phase: get_str(p, "phase")?.to_string(),
            },
            "DeviceSelected" => TraceEvent::DeviceSelected {
                cycle: get_u64(p, "cycle")?,
                device: get_u64(p, "device")?,
                cohort: get_u64(p, "cohort")?,
            },
            "BroadcastSent" => TraceEvent::BroadcastSent {
                cycle: get_u64(p, "cycle")?,
                devices: get_u64(p, "devices")?,
            },
            "MaskIssued" => TraceEvent::MaskIssued {
                cycle: get_u64(p, "cycle")?,
                device: get_u64(p, "device")?,
                active_units: get_u64(p, "active_units")?,
                total_units: get_u64(p, "total_units")?,
            },
            "TrainDone" => TraceEvent::TrainDone {
                device: get_u64(p, "device")?,
                compute_s: get_f64(p, "compute_s")?,
            },
            "FrameSent" => TraceEvent::FrameSent {
                device: get_u64(p, "device")?,
                dir: Dir::parse(get_str(p, "dir")?)?,
                bytes: get_u64(p, "bytes")?,
                attempt: get_u64(p, "attempt")?,
                mode: get_opt_str(p, "mode")?,
            },
            "FrameDropped" => TraceEvent::FrameDropped {
                device: get_u64(p, "device")?,
                attempt: get_u64(p, "attempt")?,
            },
            "FrameCorrupted" => TraceEvent::FrameCorrupted {
                device: get_u64(p, "device")?,
                attempt: get_u64(p, "attempt")?,
            },
            "Retry" => TraceEvent::Retry {
                device: get_u64(p, "device")?,
                attempt: get_u64(p, "attempt")?,
                backoff_s: get_f64(p, "backoff_s")?,
            },
            "Delivered" => TraceEvent::Delivered {
                device: get_u64(p, "device")?,
                bytes: get_u64(p, "bytes")?,
                attempts: get_u64(p, "attempts")?,
                elapsed_s: get_f64(p, "elapsed_s")?,
            },
            "SendFailed" => TraceEvent::SendFailed {
                device: get_u64(p, "device")?,
                attempts: get_u64(p, "attempts")?,
                elapsed_s: get_f64(p, "elapsed_s")?,
            },
            "Timeout" => TraceEvent::Timeout {
                device: get_u64(p, "device")?,
            },
            "UpdateAggregated" => TraceEvent::UpdateAggregated {
                cycle: get_u64(p, "cycle")?,
                device: get_u64(p, "device")?,
            },
            "SkipSettled" => TraceEvent::SkipSettled {
                cycle: get_u64(p, "cycle")?,
                device: get_u64(p, "device")?,
                delivered: get_bool(p, "delivered")?,
            },
            "EvalDone" => TraceEvent::EvalDone {
                cycle: get_u64(p, "cycle")?,
                loss: get_f64(p, "loss")?,
                accuracy: get_f64(p, "accuracy")?,
            },
            "RoundEnd" => TraceEvent::RoundEnd {
                cycle: get_u64(p, "cycle")?,
                span_s: get_f64(p, "span_s")?,
                train_s: get_f64(p, "train_s")?,
                comm_s: get_f64(p, "comm_s")?,
                aggregated: get_u64(p, "aggregated")?,
                missed: get_u64(p, "missed")?,
            },
            "DeviceJoined" => TraceEvent::DeviceJoined {
                device: get_u64(p, "device")?,
            },
            "ScenarioEvent" => TraceEvent::ScenarioEvent {
                cycle: get_u64(p, "cycle")?,
                kind: get_str(p, "kind")?.to_string(),
                device: get_opt_u64(p, "device")?,
                value: get_f64(p, "value")?,
            },
            other => return Err(de::Error::custom(format!("unknown event type `{other}`"))),
        })
    }
}

impl Serialize for TraceRecord {
    /// Flat object: the timestamp rides first (`"t"`), then the event's
    /// own fields — `{"t":1.5,"type":"Timeout","device":2}`.
    fn to_value(&self) -> Value {
        let mut pairs = vec![("t".to_string(), Value::Float(self.t))];
        if let Value::Map(event_pairs) = self.event.to_value() {
            pairs.extend(event_pairs);
        }
        Value::Map(pairs)
    }
}

impl Deserialize for TraceRecord {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let Value::Map(pairs) = v else {
            return Err(de::Error::custom("trace record is not an object"));
        };
        let t = get_f64(pairs, "t")?;
        Ok(TraceRecord {
            t,
            event: TraceEvent::from_value(v)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RoundStart {
                cycle: 3,
                population: 100,
            },
            TraceEvent::PhaseStart {
                cycle: 3,
                phase: "train".into(),
            },
            TraceEvent::PhaseEnd {
                cycle: 3,
                phase: "train".into(),
            },
            TraceEvent::DeviceSelected {
                cycle: 3,
                device: 1,
                cohort: 2,
            },
            TraceEvent::BroadcastSent {
                cycle: 3,
                devices: 4,
            },
            TraceEvent::MaskIssued {
                cycle: 3,
                device: 2,
                active_units: 17,
                total_units: 42,
            },
            TraceEvent::TrainDone {
                device: 2,
                compute_s: 1.25,
            },
            TraceEvent::FrameSent {
                device: 0,
                dir: Dir::Up,
                bytes: 2048,
                attempt: 1,
                mode: None,
            },
            TraceEvent::FrameSent {
                device: 0,
                dir: Dir::Up,
                bytes: 512,
                attempt: 1,
                mode: Some("qi8".into()),
            },
            TraceEvent::FrameDropped {
                device: 0,
                attempt: 1,
            },
            TraceEvent::FrameCorrupted {
                device: 0,
                attempt: 2,
            },
            TraceEvent::Retry {
                device: 0,
                attempt: 2,
                backoff_s: 0.5,
            },
            TraceEvent::Delivered {
                device: 0,
                bytes: 2048,
                attempts: 3,
                elapsed_s: 2.75,
            },
            TraceEvent::SendFailed {
                device: 1,
                attempts: 4,
                elapsed_s: 9.5,
            },
            TraceEvent::Timeout { device: 1 },
            TraceEvent::UpdateAggregated {
                cycle: 3,
                device: 0,
            },
            TraceEvent::SkipSettled {
                cycle: 3,
                device: 2,
                delivered: true,
            },
            TraceEvent::EvalDone {
                cycle: 3,
                loss: 1.5,
                accuracy: 0.5,
            },
            TraceEvent::RoundEnd {
                cycle: 3,
                span_s: 10.0,
                train_s: 8.0,
                comm_s: 2.0,
                aggregated: 3,
                missed: 1,
            },
            TraceEvent::DeviceJoined { device: 4 },
            TraceEvent::ScenarioEvent {
                cycle: 3,
                kind: "throttle".into(),
                device: Some(2),
                value: 0.75,
            },
            TraceEvent::ScenarioEvent {
                cycle: 4,
                kind: "drift_label_rotate".into(),
                device: None,
                value: 1.0,
            },
        ]
    }

    #[test]
    fn frame_sent_without_mode_serializes_exactly_as_before_wire_v2() {
        // The pinned trace digest (tests/tests/trace_determinism.rs)
        // hashes these bytes: a v1 FrameSent record must not grow a
        // `mode` key.
        let event = TraceEvent::FrameSent {
            device: 3,
            dir: Dir::Up,
            bytes: 1024,
            attempt: 1,
            mode: None,
        };
        let json = serde_json::to_string(&event).expect("serialize");
        assert_eq!(
            json,
            r#"{"type":"FrameSent","device":3,"dir":"up","bytes":1024,"attempt":1}"#
        );
        // A v2 frame carries the tag.
        let event = TraceEvent::FrameSent {
            device: 3,
            dir: Dir::Up,
            bytes: 256,
            attempt: 2,
            mode: Some("topk".into()),
        };
        let json = serde_json::to_string(&event).expect("serialize");
        assert!(json.ends_with(r#""mode":"topk"}"#), "{json}");
    }

    #[test]
    fn every_variant_round_trips_through_json() {
        for (i, event) in samples().into_iter().enumerate() {
            let rec = TraceRecord {
                t: i as f64 * 0.5,
                event,
            };
            let json = serde_json::to_string(&rec).expect("serialize");
            assert!(json.starts_with("{\"t\":"), "{json}");
            let back: TraceRecord = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(back, rec, "{json}");
        }
    }

    #[test]
    fn kind_and_accessors_agree_with_serialization() {
        for event in samples() {
            let json = serde_json::to_string(&event).expect("serialize");
            assert!(json.contains(&format!("\"type\":\"{}\"", event.kind())));
            if let Some(d) = event.device() {
                assert!(json.contains(&format!("\"device\":{d}")));
            }
            if let Some(c) = event.cycle() {
                assert!(json.contains(&format!("\"cycle\":{c}")));
            }
        }
    }

    #[test]
    fn unknown_type_is_rejected() {
        let err = serde_json::from_str::<TraceEvent>(r#"{"type":"Nope"}"#);
        assert!(err.is_err());
        let err = serde_json::from_str::<TraceRecord>(r#"{"type":"Timeout","device":1}"#);
        assert!(err.is_err(), "missing timestamp must fail");
    }
}
