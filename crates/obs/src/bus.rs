//! The process-wide deterministic event bus.
//!
//! The bus is **off by default** and zero-cost when off: [`emit`] takes
//! a closure and checks one relaxed atomic before building the event,
//! so an uninstrumented run pays a single predictable branch per call
//! site. Installing a sink flips the bus on; dropping the returned
//! [`SinkHandle`] detaches it again (the bus turns back off when the
//! last sink detaches).
//!
//! ## Timestamps
//!
//! Events are stamped with **simulated** time, published by the round
//! driver via [`set_sim_time`] as the sim-clock advances. Host
//! wall-clock never enters a trace, which is the property that makes
//! traces bitwise reproducible across thread widths. There is no
//! global sequence counter either — one would differ between runs
//! sharing a process — so the record order *is* the sequence.
//!
//! ## Determinism contract
//!
//! Every emission point in the workspace sits on the serial main-thread
//! path (driver phases, post-join fan-in, transport send loop); nothing
//! emits from inside a parallel worker. That keeps the record stream
//! byte-identical regardless of `ParallelismConfig`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use helios_device::SimTime;

use crate::event::{TraceEvent, TraceRecord};
use crate::sink::TraceSink;

/// Fast-path switch: true iff at least one sink is installed.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Current simulated time, stored as raw f64 bits.
static SIM_TIME_BITS: AtomicU64 = AtomicU64::new(0);
/// Installed sinks, keyed by handle id so detach removes the right one.
static SINKS: Mutex<Vec<(u64, Box<dyn TraceSink>)>> = Mutex::new(Vec::new());
/// Monotonic id source for [`SinkHandle`]s.
static NEXT_HANDLE: AtomicU64 = AtomicU64::new(1);

fn sinks() -> std::sync::MutexGuard<'static, Vec<(u64, Box<dyn TraceSink>)>> {
    SINKS.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Whether any sink is currently installed.
///
/// Call sites may use this to skip *argument* computation that the
/// [`emit`] closure cannot capture cheaply; `emit` itself already
/// checks it.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Publishes the current simulated time for subsequent events.
///
/// The driver calls this as the sim-clock advances; emission points
/// never read the clock themselves. The value is stored raw (no
/// monotone clamping) so back-to-back runs in one process each start
/// from their own t=0; [`trace-report`'s] `--validate` checks per-trace
/// monotonicity instead.
///
/// [`trace-report`'s]: crate
#[inline]
pub fn set_sim_time(now: SimTime) {
    if enabled() {
        SIM_TIME_BITS.store(now.as_secs_f64().to_bits(), Ordering::Relaxed);
    }
}

/// The simulated timestamp events are currently stamped with.
#[inline]
pub fn sim_time_s() -> f64 {
    f64::from_bits(SIM_TIME_BITS.load(Ordering::Relaxed))
}

/// Emits an event to every installed sink.
///
/// The closure only runs when a sink is installed, so call sites can
/// pass payload construction (formatting, mask counting) without
/// penalising untraced runs.
#[inline]
pub fn emit(event: impl FnOnce() -> TraceEvent) {
    if !enabled() {
        return;
    }
    emit_record(TraceRecord {
        t: sim_time_s(),
        event: event(),
    });
}

fn emit_record(record: TraceRecord) {
    let mut guard = sinks();
    match guard.len() {
        0 => {}
        1 => guard[0].1.record(&record),
        _ => {
            for (_, sink) in guard.iter_mut() {
                sink.record(&record);
            }
        }
    }
}

/// Detaches its sink (and flushes it) when dropped.
///
/// Returned by [`install`]; hold it for the duration of the traced run.
#[must_use = "dropping the handle immediately uninstalls the sink"]
pub struct SinkHandle {
    id: u64,
}

impl Drop for SinkHandle {
    fn drop(&mut self) {
        let mut guard = sinks();
        if let Some(pos) = guard.iter().position(|(id, _)| *id == self.id) {
            let (_, mut sink) = guard.remove(pos);
            sink.flush();
        }
        if guard.is_empty() {
            ENABLED.store(false, Ordering::Relaxed);
            SIM_TIME_BITS.store(0, Ordering::Relaxed);
        }
    }
}

/// Installs a sink and switches the bus on.
///
/// Sinks receive records in emission order. The sink is detached (and
/// flushed) when the returned handle drops.
pub fn install(sink: Box<dyn TraceSink>) -> SinkHandle {
    let id = NEXT_HANDLE.fetch_add(1, Ordering::Relaxed);
    let mut guard = sinks();
    guard.push((id, sink));
    ENABLED.store(true, Ordering::Relaxed);
    drop(guard);
    SinkHandle { id }
}

/// Flushes every installed sink (e.g. before reading a trace file that
/// is still being written).
pub fn flush() {
    for (_, sink) in sinks().iter_mut() {
        sink.flush();
    }
}

/// Emits `PhaseStart` on construction and `PhaseEnd` on drop.
///
/// ```
/// # use helios_obs::PhaseGuard;
/// {
///     let _phase = PhaseGuard::new(3, "train");
///     // ... run the phase ...
/// } // PhaseEnd emitted here
/// ```
pub struct PhaseGuard {
    cycle: u64,
    phase: &'static str,
}

impl PhaseGuard {
    /// Opens a phase span for `cycle`.
    pub fn new(cycle: u64, phase: &'static str) -> Self {
        emit(|| TraceEvent::PhaseStart {
            cycle,
            phase: phase.to_string(),
        });
        PhaseGuard { cycle, phase }
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        let (cycle, phase) = (self.cycle, self.phase);
        emit(|| TraceEvent::PhaseEnd {
            cycle,
            phase: phase.to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingBufferSink;

    /// The bus is process-global, so tests touching it serialize here.
    pub(crate) static BUS_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_bus_skips_payload_construction() {
        let _serial = BUS_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let mut built = false;
        emit(|| {
            built = true;
            TraceEvent::Timeout { device: 0 }
        });
        assert!(!built, "closure must not run with no sink installed");
        assert!(!enabled());
    }

    #[test]
    fn install_emit_detach_round_trip() {
        let _serial = BUS_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let ring = RingBufferSink::with_capacity(16);
        let handle = install(Box::new(ring.clone()));
        assert!(enabled());

        set_sim_time(SimTime::from_secs(2.5));
        emit(|| TraceEvent::RoundStart {
            cycle: 1,
            population: 4,
        });
        emit(|| TraceEvent::Timeout { device: 7 });

        let records = ring.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].t, 2.5);
        assert_eq!(
            records[0].event,
            TraceEvent::RoundStart {
                cycle: 1,
                population: 4
            }
        );
        assert_eq!(records[1].event, TraceEvent::Timeout { device: 7 });

        drop(handle);
        assert!(!enabled());
        emit(|| TraceEvent::RoundStart {
            cycle: 2,
            population: 4,
        });
        assert_eq!(ring.records().len(), 2, "detached sink stays quiet");
        assert_eq!(sim_time_s(), 0.0, "time resets when the bus empties");
    }

    #[test]
    fn phase_guard_brackets_its_span() {
        let _serial = BUS_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let ring = RingBufferSink::with_capacity(16);
        let handle = install(Box::new(ring.clone()));
        {
            let _phase = PhaseGuard::new(4, "route");
            emit(|| TraceEvent::Timeout { device: 1 });
        }
        drop(handle);
        let kinds: Vec<&str> = ring.records().iter().map(|r| r.event.kind()).collect();
        assert_eq!(kinds, ["PhaseStart", "Timeout", "PhaseEnd"]);
    }

    #[test]
    fn multiple_sinks_each_receive_records() {
        let _serial = BUS_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let a = RingBufferSink::with_capacity(4);
        let b = RingBufferSink::with_capacity(4);
        let ha = install(Box::new(a.clone()));
        let hb = install(Box::new(b.clone()));
        emit(|| TraceEvent::RoundStart {
            cycle: 9,
            population: 4,
        });
        drop(ha);
        emit(|| TraceEvent::RoundEnd {
            cycle: 9,
            span_s: 1.0,
            train_s: 0.5,
            comm_s: 0.5,
            aggregated: 1,
            missed: 0,
        });
        drop(hb);
        assert_eq!(a.records().len(), 1);
        assert_eq!(b.records().len(), 2, "surviving sink keeps recording");
    }
}
