//! Pluggable trace sinks: in-memory ring buffer and JSONL file writer.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};

use crate::event::TraceRecord;

/// Receives every emitted [`TraceRecord`], in emission order.
///
/// Implementations must tolerate being called from the serial main
/// thread only (the bus guarantees this) but are `Send` so the global
/// registry can own them.
pub trait TraceSink: Send {
    /// Handles one record.
    fn record(&mut self, record: &TraceRecord);

    /// Persists any buffered output. Called on detach and by
    /// [`crate::flush`]; default is a no-op.
    fn flush(&mut self) {}
}

/// A bounded in-memory sink keeping the most recent records.
///
/// Cloning shares the underlying buffer, so keep a clone to read the
/// records after installing the original into the bus.
#[derive(Clone)]
pub struct RingBufferSink {
    buf: Arc<Mutex<VecDeque<TraceRecord>>>,
    capacity: usize,
}

impl RingBufferSink {
    /// A ring holding at most `capacity` records (oldest evicted first).
    pub fn with_capacity(capacity: usize) -> Self {
        RingBufferSink {
            buf: Arc::new(Mutex::new(VecDeque::with_capacity(capacity.min(1024)))),
            capacity: capacity.max(1),
        }
    }

    /// Snapshot of the retained records, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.buf
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.buf
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when nothing has been recorded (or everything evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, record: &TraceRecord) {
        let mut buf = self.buf.lock().unwrap_or_else(PoisonError::into_inner);
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(record.clone());
    }
}

/// Streams records as one JSON object per line.
///
/// The byte stream is deterministic: field order is fixed by the event
/// serializer and floats use shortest-roundtrip formatting, so a
/// fixed-seed run yields a byte-identical file at any thread width.
pub struct JsonlSink {
    out: BufWriter<Box<dyn Write + Send>>,
}

impl JsonlSink {
    /// Wraps an arbitrary writer (e.g. `Vec<u8>` in tests).
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out: BufWriter::new(out),
        }
    }

    /// Creates (truncates) `path` and streams the trace into it.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self::new(Box::new(File::create(path)?)))
    }
}

impl TraceSink for JsonlSink {
    fn record(&mut self, record: &TraceRecord) {
        // An I/O error mid-trace (disk full) must not abort the
        // simulation; the validate pass catches the truncated file.
        let line = serde_json::to_string(record);
        if let Ok(line) = line {
            let _ = self.out.write_all(line.as_bytes());
            let _ = self.out.write_all(b"\n");
        }
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn rec(t: f64, device: u64) -> TraceRecord {
        TraceRecord {
            t,
            event: TraceEvent::Timeout { device },
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let ring = RingBufferSink::with_capacity(2);
        let mut sink = ring.clone();
        assert!(ring.is_empty());
        for i in 0..3 {
            sink.record(&rec(i as f64, i));
        }
        let records = ring.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].event, TraceEvent::Timeout { device: 1 });
        assert_eq!(records[1].event, TraceEvent::Timeout { device: 2 });
    }

    /// Shared byte buffer standing in for a file.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            self.0
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .extend_from_slice(data);
            Ok(data.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_record() {
        let shared = SharedBuf::default();
        let mut sink = JsonlSink::new(Box::new(shared.clone()));
        sink.record(&rec(0.5, 3));
        sink.record(&rec(1.5, 4));
        sink.flush();
        let bytes = shared.0.lock().unwrap_or_else(PoisonError::into_inner);
        let text = String::from_utf8(bytes.clone()).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], r#"{"t":0.5,"type":"Timeout","device":3}"#);
        let back: TraceRecord = serde_json::from_str(lines[1]).expect("parse");
        assert_eq!(back, rec(1.5, 4));
    }

    #[test]
    fn drop_flushes_buffered_output() {
        static FLUSHES: AtomicUsize = AtomicUsize::new(0);
        struct CountingWriter;
        impl Write for CountingWriter {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                FLUSHES.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
        }
        let before = FLUSHES.load(Ordering::Relaxed);
        {
            let mut sink = JsonlSink::new(Box::new(CountingWriter));
            sink.record(&rec(0.0, 0));
        }
        assert!(FLUSHES.load(Ordering::Relaxed) > before);
    }
}
