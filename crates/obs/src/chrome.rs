//! Chrome `trace_event` exporter — traces open directly in Perfetto or
//! `chrome://tracing` with one track per device plus a driver track.
//!
//! Mapping:
//! - tid 0 is the **driver** track: phase spans become `"X"` complete
//!   events, round/eval markers become `"i"` instants.
//! - tid `device + 1` is that device's track: `TrainDone` and
//!   `Delivered`/`SendFailed` become `"X"` spans ending at the record's
//!   timestamp (their duration fields give the start), everything else
//!   a `"i"` instant.
//! - `"M"` metadata events name the tracks.
//!
//! Timestamps are simulated microseconds (`ts = t * 1e6`), so the
//! Perfetto timeline reads in sim-time directly.

use serde::value::Value;
use serde::Serialize;

use crate::event::{TraceEvent, TraceRecord};
use crate::sink::TraceSink;

const PID: u64 = 1;
/// Driver-track tid; device `d` renders on tid `d + 1`.
const DRIVER_TID: u64 = 0;

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Map(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn us(t_s: f64) -> Value {
    // Round to whole microseconds: deterministic, and Perfetto does not
    // resolve finer anyway.
    Value::Float((t_s * 1e6).round())
}

fn event(ph: &str, name: &str, tid: u64, ts_s: f64, mut extra: Vec<(&str, Value)>) -> Value {
    let mut pairs = vec![
        ("name", Value::Str(name.to_string())),
        ("ph", Value::Str(ph.to_string())),
        ("ts", us(ts_s)),
        ("pid", Value::UInt(PID)),
        ("tid", Value::UInt(tid)),
    ];
    pairs.append(&mut extra);
    obj(pairs)
}

fn instant(name: &str, tid: u64, ts_s: f64, args: Value) -> Value {
    event(
        "i",
        name,
        tid,
        ts_s,
        vec![("s", Value::Str("t".to_string())), ("args", args)],
    )
}

fn span(name: &str, tid: u64, start_s: f64, dur_s: f64, args: Value) -> Value {
    event(
        "X",
        name,
        tid,
        start_s,
        vec![("dur", us(dur_s.max(0.0))), ("args", args)],
    )
}

fn thread_name(tid: u64, name: &str) -> Value {
    obj(vec![
        ("name", Value::Str("thread_name".to_string())),
        ("ph", Value::Str("M".to_string())),
        ("pid", Value::UInt(PID)),
        ("tid", Value::UInt(tid)),
        ("args", obj(vec![("name", Value::Str(name.to_string()))])),
    ])
}

fn device_tid(device: u64) -> u64 {
    device + 1
}

/// Renders a record stream as a Chrome `trace_event` JSON document.
///
/// Phase spans are reconstructed by pairing each `PhaseStart` with the
/// next matching `PhaseEnd`; unmatched starts are emitted as instants
/// so a truncated trace still loads.
pub fn chrome_trace(records: &[TraceRecord]) -> String {
    let mut events: Vec<Value> = Vec::with_capacity(records.len() + 8);
    let mut devices: Vec<u64> = Vec::new();
    // Open phase spans: (cycle, phase name, start time).
    let mut open_phases: Vec<(u64, String, f64)> = Vec::new();

    for rec in records {
        if let Some(d) = rec.event.device() {
            if !devices.contains(&d) {
                devices.push(d);
            }
        }
        match &rec.event {
            TraceEvent::PhaseStart { cycle, phase } => {
                open_phases.push((*cycle, phase.clone(), rec.t));
            }
            TraceEvent::PhaseEnd { cycle, phase } => {
                if let Some(pos) = open_phases
                    .iter()
                    .rposition(|(c, p, _)| c == cycle && p == phase)
                {
                    let (_, _, start) = open_phases.remove(pos);
                    events.push(span(
                        phase,
                        DRIVER_TID,
                        start,
                        rec.t - start,
                        obj(vec![("cycle", Value::UInt(*cycle))]),
                    ));
                }
            }
            TraceEvent::TrainDone { device, compute_s } => {
                events.push(span(
                    "train",
                    device_tid(*device),
                    rec.t - compute_s,
                    *compute_s,
                    obj(vec![("compute_s", Value::Float(*compute_s))]),
                ));
            }
            TraceEvent::Delivered {
                device,
                bytes,
                attempts,
                elapsed_s,
            } => {
                events.push(span(
                    "transfer",
                    device_tid(*device),
                    rec.t - elapsed_s,
                    *elapsed_s,
                    obj(vec![
                        ("bytes", Value::UInt(*bytes)),
                        ("attempts", Value::UInt(*attempts)),
                    ]),
                ));
            }
            TraceEvent::SendFailed {
                device,
                attempts,
                elapsed_s,
            } => {
                events.push(span(
                    "transfer-failed",
                    device_tid(*device),
                    rec.t - elapsed_s,
                    *elapsed_s,
                    obj(vec![("attempts", Value::UInt(*attempts))]),
                ));
            }
            other => {
                let tid = other.device().map_or(DRIVER_TID, device_tid);
                let args = other.to_value();
                events.push(instant(other.kind(), tid, rec.t, args));
            }
        }
    }

    // A truncated trace may leave phases open; render them as instants.
    for (cycle, phase, start) in open_phases {
        events.push(instant(
            &format!("{phase} (unclosed)"),
            DRIVER_TID,
            start,
            obj(vec![("cycle", Value::UInt(cycle))]),
        ));
    }

    let mut meta = vec![thread_name(DRIVER_TID, "driver")];
    devices.sort_unstable();
    for d in devices {
        meta.push(thread_name(device_tid(d), &format!("device {d}")));
    }
    meta.extend(events);

    let doc = obj(vec![
        ("traceEvents", Value::Seq(meta)),
        ("displayTimeUnit", Value::Str("ms".to_string())),
    ]);
    serde_json::to_string(&doc).unwrap_or_else(|_| "{\"traceEvents\":[]}".to_string())
}

/// Buffers records and writes a Chrome trace file when detached.
pub struct ChromeTraceSink {
    records: Vec<TraceRecord>,
    path: std::path::PathBuf,
    written: bool,
}

impl ChromeTraceSink {
    /// Buffers the run's records; the trace lands at `path` on flush
    /// (i.e. when the bus detaches the sink) or drop.
    pub fn create(path: &std::path::Path) -> Self {
        ChromeTraceSink {
            records: Vec::new(),
            path: path.to_path_buf(),
            written: false,
        }
    }
}

impl TraceSink for ChromeTraceSink {
    fn record(&mut self, record: &TraceRecord) {
        self.records.push(record.clone());
        self.written = false;
    }

    fn flush(&mut self) {
        if !self.written {
            let _ = std::fs::write(&self.path, chrome_trace(&self.records));
            self.written = true;
        }
    }
}

impl Drop for ChromeTraceSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Dir;
    use serde::value::find;

    fn trace() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                t: 0.0,
                event: TraceEvent::RoundStart {
                    cycle: 0,
                    population: 2,
                },
            },
            TraceRecord {
                t: 0.0,
                event: TraceEvent::PhaseStart {
                    cycle: 0,
                    phase: "train".into(),
                },
            },
            TraceRecord {
                t: 2.0,
                event: TraceEvent::TrainDone {
                    device: 3,
                    compute_s: 2.0,
                },
            },
            TraceRecord {
                t: 2.0,
                event: TraceEvent::PhaseEnd {
                    cycle: 0,
                    phase: "train".into(),
                },
            },
            TraceRecord {
                t: 2.5,
                event: TraceEvent::FrameSent {
                    device: 3,
                    dir: Dir::Up,
                    bytes: 64,
                    attempt: 1,
                    mode: None,
                },
            },
            TraceRecord {
                t: 3.0,
                event: TraceEvent::Delivered {
                    device: 3,
                    bytes: 64,
                    attempts: 1,
                    elapsed_s: 0.5,
                },
            },
        ]
    }

    fn parse(json: &str) -> Vec<Value> {
        let doc: Value = serde_json::from_str(json).expect("valid JSON");
        let Value::Map(pairs) = doc else {
            panic!("not an object")
        };
        let Some(Value::Seq(events)) = find(&pairs, "traceEvents").cloned() else {
            panic!("no traceEvents array")
        };
        events
    }

    fn field<'a>(ev: &'a Value, key: &str) -> &'a Value {
        let Value::Map(pairs) = ev else {
            panic!("event not an object")
        };
        find(pairs, key).unwrap_or(&Value::Null)
    }

    #[test]
    fn exports_valid_trace_with_device_tracks() {
        let json = chrome_trace(&trace());
        let events = parse(&json);

        let metas: Vec<&Value> = events
            .iter()
            .filter(|e| field(e, "ph") == &Value::Str("M".into()))
            .collect();
        assert_eq!(metas.len(), 2, "driver + one device track");
        assert_eq!(field(metas[0], "tid"), &Value::UInt(0));
        assert_eq!(field(metas[1], "tid"), &Value::UInt(4), "device 3 → tid 4");

        let spans: Vec<&Value> = events
            .iter()
            .filter(|e| field(e, "ph") == &Value::Str("X".into()))
            .collect();
        assert_eq!(spans.len(), 3, "phase + train + transfer");
        let train_phase = spans
            .iter()
            .find(|e| {
                field(e, "name") == &Value::Str("train".into())
                    && field(e, "tid") == &Value::UInt(0)
            })
            .expect("driver train span");
        assert_eq!(field(train_phase, "ts"), &Value::Float(0.0));
        assert_eq!(field(train_phase, "dur"), &Value::Float(2_000_000.0));
    }

    #[test]
    fn unclosed_phase_degrades_to_instant() {
        let mut records = trace();
        records.retain(|r| !matches!(r.event, TraceEvent::PhaseEnd { .. }));
        let events = parse(&chrome_trace(&records));
        assert!(events.iter().any(|e| {
            field(e, "name") == &Value::Str("train (unclosed)".into())
                && field(e, "ph") == &Value::Str("i".into())
        }));
    }

    #[test]
    fn sink_writes_file_on_drop() {
        let dir = std::env::temp_dir().join("helios_obs_chrome_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("trace.json");
        let _ = std::fs::remove_file(&path);
        {
            let mut sink = ChromeTraceSink::create(&path);
            for rec in trace() {
                sink.record(&rec);
            }
        }
        let text = std::fs::read_to_string(&path).expect("trace written");
        assert!(!parse(&text).is_empty());
        let _ = std::fs::remove_file(&path);
    }
}
