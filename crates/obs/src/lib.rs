//! # helios-obs — deterministic tracing and metrics for the simulator
//!
//! This crate is the observability layer of the workspace: a
//! process-wide event bus carrying typed [`TraceEvent`]s, a
//! counter/gauge/histogram [`registry`], and pluggable sinks
//! ([`RingBufferSink`], [`JsonlSink`], [`ChromeTraceSink`]).
//!
//! ## The two clocks
//!
//! Everything on the bus is stamped with **simulated** time (published
//! by the round driver via [`set_sim_time`]); host wall-clock never
//! appears in a trace. Host-side profiling (kernel flop counters,
//! `nn::profiler` wall timers) stays out of traces entirely and bridges
//! into the [`registry`] as polled gauges instead. The payoff is the
//! workspace determinism contract: a fixed-seed run emits a
//! byte-identical JSONL trace at any thread width.
//!
//! ## Zero-cost when off
//!
//! The bus is disabled until a sink is [`install`]ed. [`emit`] takes a
//! closure and checks a single relaxed atomic before building the
//! payload, so instrumented hot paths cost one predictable branch when
//! tracing is off (`bench_obs` pins this below 3% on the engine
//! workload).
//!
//! ## Typical use
//!
//! ```
//! use helios_obs::{install, emit, set_sim_time, RingBufferSink, TraceEvent};
//! use helios_device::SimTime;
//!
//! let ring = RingBufferSink::with_capacity(1024);
//! let handle = install(Box::new(ring.clone()));
//! set_sim_time(SimTime::from_secs(1.0));
//! emit(|| TraceEvent::RoundStart { cycle: 0, population: 1 });
//! drop(handle); // detaches + flushes
//! assert_eq!(ring.records().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod bus;
mod chrome;
mod event;
pub mod registry;
mod sink;

pub use bus::{emit, enabled, flush, install, set_sim_time, sim_time_s, PhaseGuard, SinkHandle};
pub use chrome::{chrome_trace, ChromeTraceSink};
pub use event::{Dir, TraceEvent, TraceRecord};
pub use sink::{JsonlSink, RingBufferSink, TraceSink};

/// Parses a JSONL trace (one record per line, blank lines ignored).
///
/// Fails on the first malformed line, reporting its 1-based number.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec: TraceRecord =
            serde_json::from_str(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        out.push(rec);
    }
    Ok(out)
}

/// FNV-1a digest of a byte stream — the pin used by the determinism
/// test to assert byte-identical traces without embedding the trace.
pub fn content_digest(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_jsonl_round_trips_and_reports_line_numbers() {
        let text = "{\"t\":0.5,\"type\":\"RoundStart\",\"cycle\":1,\"population\":3}\n\n{\"t\":1.0,\"type\":\"Timeout\",\"device\":2}\n";
        let records = parse_jsonl(text).expect("valid trace");
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].event, TraceEvent::Timeout { device: 2 });

        let bad = "{\"t\":0.5,\"type\":\"RoundStart\",\"cycle\":1,\"population\":3}\nnot json\n";
        let err = parse_jsonl(bad).expect_err("malformed line");
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn digest_is_stable_and_input_sensitive() {
        assert_eq!(content_digest(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(content_digest(b"helios"), content_digest(b"helios"));
        assert_ne!(content_digest(b"helios"), content_digest(b"helio$"));
    }
}
