//! Process-wide counter/gauge/histogram registry.
//!
//! The registry is the one facade over every numeric accumulator in the
//! workspace. Two kinds of instrument live here:
//!
//! - **Owned** counters/gauges/histograms, created by [`counter`],
//!   [`gauge`], and [`histogram`]: lock-free atomics updated from
//!   anywhere.
//! - **Polled** gauges, registered by [`register_poll`]: closures read
//!   at snapshot time. The existing process-global atomics (tensor
//!   kernel counters, `nn::profiler` wall timers) bridge in this way —
//!   they stay **host-only** (never part of simulated outcomes or
//!   traces) but become visible through the same [`snapshot`] API.
//!
//! Snapshots are sorted by metric name, so rendering them is
//! deterministic regardless of registration order.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// A monotonically increasing counter.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (scoped-run hygiene; see [`reset_owned`]).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins gauge holding an `f64`.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.set(0.0);
    }
}

/// Fixed-bucket histogram over non-negative samples.
///
/// Buckets are powers of two over the sample (`floor(log2(v)) + 1`,
/// with a dedicated zero bucket), capped at 32 buckets — enough to
/// summarize attempt counts, byte sizes, and second-scale durations
/// without configuration.
#[derive(Clone)]
pub struct Histogram {
    buckets: Arc<[AtomicU64; Histogram::BUCKETS]>,
    count: Arc<AtomicU64>,
    sum_bits: Arc<AtomicU64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: Arc::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: Arc::new(AtomicU64::new(0)),
            sum_bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }
}

impl Histogram {
    const BUCKETS: usize = 32;

    fn bucket_index(v: f64) -> usize {
        if v.is_nan() || v <= 0.0 {
            return 0;
        }
        let exp = v.log2().floor();
        // Bucket 1 holds (0, 1]; each doubling moves one bucket up.
        let idx = (exp as i64 + 1).clamp(1, Self::BUCKETS as i64 - 1);
        idx as usize
    }

    /// Records one sample (negative/NaN samples land in the zero
    /// bucket rather than being dropped, so counts always reconcile).
    pub fn observe(&self, v: f64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Single-writer in practice (serial emission path); a racy
        // read-modify-write here would only skew a host-side summary.
        let old = f64::from_bits(self.sum_bits.load(Ordering::Relaxed));
        self.sum_bits
            .store((old + v.max(0.0)).to_bits(), Ordering::Relaxed);
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of (non-negative parts of) samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean sample, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Non-empty buckets as `(upper_bound, count)`, smallest first.
    /// The zero bucket reports upper bound 0.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                if n == 0 {
                    return None;
                }
                let bound = if i == 0 { 0.0 } else { 2f64.powi(i as i32) };
                Some((bound, n))
            })
            .collect()
    }

    /// Clears all samples.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    Poll(Box<dyn Fn() -> f64 + Send + Sync>),
}

struct Registry {
    instruments: HashMap<String, Instrument>,
}

fn registry() -> std::sync::MutexGuard<'static, Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY
        .get_or_init(|| {
            Mutex::new(Registry {
                instruments: HashMap::new(),
            })
        })
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Registers (or retrieves) the counter named `name`.
///
/// Repeated calls with one name return handles to the same counter; a
/// name already bound to a different instrument kind yields a fresh,
/// unregistered handle rather than panicking.
pub fn counter(name: &str) -> Counter {
    let mut reg = registry();
    match reg
        .instruments
        .entry(name.to_string())
        .or_insert_with(|| Instrument::Counter(Counter::default()))
    {
        Instrument::Counter(c) => c.clone(),
        _ => Counter::default(),
    }
}

/// Registers (or retrieves) the gauge named `name`.
pub fn gauge(name: &str) -> Gauge {
    let mut reg = registry();
    match reg
        .instruments
        .entry(name.to_string())
        .or_insert_with(|| Instrument::Gauge(Gauge::default()))
    {
        Instrument::Gauge(g) => g.clone(),
        _ => Gauge::default(),
    }
}

/// Registers (or retrieves) the histogram named `name`.
pub fn histogram(name: &str) -> Histogram {
    let mut reg = registry();
    match reg
        .instruments
        .entry(name.to_string())
        .or_insert_with(|| Instrument::Histogram(Histogram::default()))
    {
        Instrument::Histogram(h) => h.clone(),
        _ => Histogram::default(),
    }
}

/// Registers a polled gauge: `read` is invoked at [`snapshot`] time.
///
/// This is the bridge for pre-existing process-global atomics (kernel
/// flop counters, profiler nanosecond totals) that cannot become owned
/// instruments without rewiring their hot paths. Re-registering a name
/// replaces the closure.
pub fn register_poll(name: &str, read: impl Fn() -> f64 + Send + Sync + 'static) {
    registry()
        .instruments
        .insert(name.to_string(), Instrument::Poll(Box::new(read)));
}

/// One metric in a [`snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Registered name.
    pub name: String,
    /// Instrument kind: `"counter"`, `"gauge"`, or `"histogram"`.
    pub kind: &'static str,
    /// Counter value, gauge value, or histogram mean.
    pub value: f64,
    /// Histogram sample count (0 for other kinds).
    pub count: u64,
}

/// Reads every instrument, sorted by name (deterministic rendering).
pub fn snapshot() -> Vec<MetricSample> {
    let reg = registry();
    let mut out: Vec<MetricSample> = reg
        .instruments
        .iter()
        .map(|(name, inst)| match inst {
            Instrument::Counter(c) => MetricSample {
                name: name.clone(),
                kind: "counter",
                value: c.get() as f64,
                count: 0,
            },
            Instrument::Gauge(g) => MetricSample {
                name: name.clone(),
                kind: "gauge",
                value: g.get(),
                count: 0,
            },
            Instrument::Histogram(h) => MetricSample {
                name: name.clone(),
                kind: "histogram",
                value: h.mean(),
                count: h.count(),
            },
            Instrument::Poll(read) => MetricSample {
                name: name.clone(),
                kind: "gauge",
                value: read(),
                count: 0,
            },
        })
        .collect();
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// Resets every **owned** instrument to zero. Polled gauges are left
/// alone — their underlying accumulators have their own reset paths
/// (see `helios_nn::profiler::HostMetricsScope`).
pub fn reset_owned() {
    for inst in registry().instruments.values() {
        match inst {
            Instrument::Counter(c) => c.reset(),
            Instrument::Gauge(g) => g.reset(),
            Instrument::Histogram(h) => h.reset(),
            Instrument::Poll(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global and tests share one binary, so
    // every test uses its own metric names.

    #[test]
    fn counter_gauge_histogram_round_trip() {
        let c = counter("test.rt.counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(counter("test.rt.counter").get(), 5, "same handle by name");

        let g = gauge("test.rt.gauge");
        g.set(2.5);
        assert_eq!(gauge("test.rt.gauge").get(), 2.5);

        let h = histogram("test.rt.hist");
        for v in [0.0, 0.5, 3.0, 3.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 106.5);
        let buckets = h.buckets();
        assert_eq!(buckets[0], (0.0, 1), "zero bucket");
        assert!(buckets.iter().any(|&(b, n)| b == 4.0 && n == 2));
    }

    #[test]
    fn snapshot_is_sorted_and_covers_polls() {
        counter("test.snap.b").add(2);
        register_poll("test.snap.a", || 7.5);
        let snap = snapshot();
        let ours: Vec<&MetricSample> = snap
            .iter()
            .filter(|s| s.name.starts_with("test.snap."))
            .collect();
        assert_eq!(ours.len(), 2);
        assert_eq!(ours[0].name, "test.snap.a");
        assert_eq!(ours[0].value, 7.5);
        assert_eq!(ours[0].kind, "gauge");
        assert_eq!(ours[1].name, "test.snap.b");
        assert_eq!(ours[1].value, 2.0);
    }

    #[test]
    fn kind_mismatch_yields_detached_handle() {
        counter("test.kind.metric").add(3);
        let g = gauge("test.kind.metric");
        g.set(9.0);
        // The registered counter is untouched; the gauge handle works
        // but is not registered.
        assert_eq!(counter("test.kind.metric").get(), 3);
        assert_eq!(g.get(), 9.0);
    }

    #[test]
    fn reset_owned_spares_polls() {
        let c = counter("test.reset.counter");
        c.add(9);
        let h = histogram("test.reset.hist");
        h.observe(1.0);
        register_poll("test.reset.poll", || 42.0);
        reset_owned();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        let snap = snapshot();
        let poll = snap
            .iter()
            .find(|s| s.name == "test.reset.poll")
            .expect("poll survives");
        assert_eq!(poll.value, 42.0);
    }
}
