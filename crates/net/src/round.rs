//! Event-driven simulation of one synchronous federated round over the
//! transport: broadcast download → local compute → update upload, per
//! participant, with a per-round deadline that degrades late or failed
//! exchanges to "missed the cycle" instead of panicking.

use crate::error::NetError;
use crate::transport::{Direction, SimTransport};
use helios_device::{EventQueue, SimTime};

/// One participant's work in a round.
#[derive(Debug, Clone)]
pub struct RoundJob {
    /// Transport device index of the participant.
    pub device: usize,
    /// Simulated local compute time between download and upload.
    pub compute: SimTime,
    /// The encoded update frame to upload.
    pub upload_frame: Vec<u8>,
}

/// The outcome of one simulated round.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// Per job (by input index): completion time and the delivered
    /// upload frame, or `None` when the participant missed the cycle.
    pub deliveries: Vec<Option<(SimTime, Vec<u8>)>>,
    /// Input indices of the jobs that missed the cycle (sorted).
    pub missed: Vec<usize>,
    /// The round's span: the latest completion among participants that
    /// made it, extended to the failure/deadline point of those that
    /// did not.
    pub span: SimTime,
}

enum Phase {
    Downloaded(usize),
    Uploaded(usize, Vec<u8>),
}

/// Simulates one synchronous round: every job downloads
/// `broadcast_frame`, computes for its `compute` span, then uploads its
/// frame. Events are processed through the deterministic
/// [`EventQueue`], so the transport's fault draws replay identically
/// for identical inputs.
///
/// A participant misses the cycle when any of its transfers exhausts
/// its retries, or when `timeout` is set and its exchange would finish
/// after the deadline.
///
/// # Errors
///
/// Returns [`NetError::UnknownDevice`] when a job names a device the
/// transport does not know.
pub fn simulate_round(
    transport: &mut SimTransport,
    broadcast_frame: &[u8],
    jobs: &[RoundJob],
    timeout: Option<SimTime>,
) -> Result<RoundOutcome, NetError> {
    let mut deliveries: Vec<Option<(SimTime, Vec<u8>)>> = vec![None; jobs.len()];
    let mut missed = Vec::new();
    let mut span = SimTime::ZERO;
    let mut queue = EventQueue::new();
    let clip = |t: SimTime| match timeout {
        Some(d) if t > d => d,
        _ => t,
    };
    let miss = |idx: usize,
                at: SimTime,
                deadline_hit: bool,
                transport: &mut SimTransport,
                span: &mut SimTime,
                missed: &mut Vec<usize>| {
        if deadline_hit {
            transport.note_timeout(jobs[idx].device);
        } else {
            transport.note_failure_missed(jobs[idx].device);
        }
        *span = span.max(clip(at));
        missed.push(idx);
    };
    for (idx, job) in jobs.iter().enumerate() {
        let tx = transport.transmit(job.device, broadcast_frame, Direction::Download)?;
        match tx.delivered {
            Some(_) => queue.schedule(tx.elapsed, Phase::Downloaded(idx)),
            None => miss(idx, tx.elapsed, false, transport, &mut span, &mut missed),
        }
    }
    while let Some((t, phase)) = queue.pop() {
        match phase {
            Phase::Downloaded(idx) => {
                if timeout.is_some_and(|d| t > d) {
                    miss(idx, t, true, transport, &mut span, &mut missed);
                    continue;
                }
                let ready = t + jobs[idx].compute;
                let tx = transport.transmit(
                    jobs[idx].device,
                    &jobs[idx].upload_frame,
                    Direction::Upload,
                )?;
                match tx.delivered {
                    Some(frame) => queue.schedule(ready + tx.elapsed, Phase::Uploaded(idx, frame)),
                    None => miss(
                        idx,
                        ready + tx.elapsed,
                        false,
                        transport,
                        &mut span,
                        &mut missed,
                    ),
                }
            }
            Phase::Uploaded(idx, frame) => {
                if timeout.is_some_and(|d| t > d) {
                    miss(idx, t, true, transport, &mut span, &mut missed);
                } else {
                    span = span.max(t);
                    deliveries[idx] = Some((t, frame));
                }
            }
        }
    }
    missed.sort_unstable();
    Ok(RoundOutcome {
        deliveries,
        missed,
        span,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_full;
    use crate::link::{FaultConfig, LinkProfile, NetConfig};

    fn jobs(computes: &[f64]) -> Vec<RoundJob> {
        computes
            .iter()
            .enumerate()
            .map(|(device, &c)| RoundJob {
                device,
                compute: SimTime::from_secs(c),
                upload_frame: encode_full(device as u32, 0, &[device as f32; 8]).unwrap(),
            })
            .collect()
    }

    fn transport(cfg: &NetConfig, devices: usize) -> SimTransport {
        SimTransport::new(devices, cfg, 77).unwrap()
    }

    #[test]
    fn ideal_round_span_is_max_compute() {
        let cfg = NetConfig {
            enabled: true,
            ..NetConfig::default()
        };
        let mut t = transport(&cfg, 3);
        let broadcast = encode_full(u32::MAX, 0, &[1.0; 8]).unwrap();
        let js = jobs(&[3.0, 7.0, 5.0]);
        let out = simulate_round(&mut t, &broadcast, &js, None).unwrap();
        assert!(out.missed.is_empty());
        assert_eq!(out.span.as_secs_f64(), 7.0);
        for (idx, d) in out.deliveries.iter().enumerate() {
            let (at, frame) = d.as_ref().unwrap();
            assert_eq!(at.as_secs_f64(), [3.0, 7.0, 5.0][idx]);
            assert_eq!(frame, &js[idx].upload_frame);
        }
    }

    #[test]
    fn constrained_links_extend_the_round() {
        let cfg = NetConfig {
            enabled: true,
            link: LinkProfile::constrained(1e3, 0.5),
            ..NetConfig::default()
        };
        let mut t = transport(&cfg, 1);
        let broadcast = encode_full(u32::MAX, 0, &[1.0; 8]).unwrap();
        let js = jobs(&[2.0]);
        let out = simulate_round(&mut t, &broadcast, &js, None).unwrap();
        let comm = 2.0 * 0.5 + (broadcast.len() as f64 + js[0].upload_frame.len() as f64) / 1e3;
        assert!((out.span.as_secs_f64() - (2.0 + comm)).abs() < 1e-9);
    }

    #[test]
    fn deadline_degrades_to_missed_cycle() {
        let cfg = NetConfig {
            enabled: true,
            round_timeout_s: Some(4.0),
            ..NetConfig::default()
        };
        let mut t = transport(&cfg, 3);
        let broadcast = encode_full(u32::MAX, 0, &[1.0; 8]).unwrap();
        let out = simulate_round(
            &mut t,
            &broadcast,
            &jobs(&[3.0, 9.0, 2.0]),
            Some(SimTime::from_secs(4.0)),
        )
        .unwrap();
        assert_eq!(out.missed, vec![1]);
        assert!(out.deliveries[1].is_none());
        assert!(out.deliveries[0].is_some() && out.deliveries[2].is_some());
        // The server waited until the deadline for the latecomer.
        assert_eq!(out.span.as_secs_f64(), 4.0);
        assert_eq!(t.stats().timeouts, 1);
        assert_eq!(t.device_stats(1).missed_cycles, 1);
    }

    #[test]
    fn total_loss_misses_everyone_without_panicking() {
        let cfg = NetConfig {
            enabled: true,
            faults: FaultConfig {
                drop_prob: 1.0,
                ..FaultConfig::default()
            },
            ..NetConfig::default()
        };
        let mut t = transport(&cfg, 2);
        let broadcast = encode_full(u32::MAX, 0, &[1.0; 8]).unwrap();
        let out = simulate_round(&mut t, &broadcast, &jobs(&[1.0, 2.0]), None).unwrap();
        assert_eq!(out.missed, vec![0, 1]);
        assert!(out.deliveries.iter().all(Option::is_none));
        assert_eq!(t.stats().failures, 2);
    }

    #[test]
    fn rounds_replay_identically() {
        let cfg = NetConfig {
            enabled: true,
            link: LinkProfile::constrained(1e4, 0.1).with_jitter(0.3),
            faults: FaultConfig {
                drop_prob: 0.2,
                corrupt_prob: 0.1,
                delay_prob: 0.3,
                max_extra_delay_s: 1.0,
            },
            ..NetConfig::default()
        };
        let run = || {
            let mut t = transport(&cfg, 4);
            let broadcast = encode_full(u32::MAX, 0, &[1.0; 16]).unwrap();
            let out =
                simulate_round(&mut t, &broadcast, &jobs(&[1.0, 2.0, 3.0, 4.0]), None).unwrap();
            (
                out.span.as_secs_f64().to_bits(),
                out.missed.clone(),
                out.deliveries
                    .iter()
                    .map(|d| {
                        d.as_ref()
                            .map(|(at, f)| (at.as_secs_f64().to_bits(), f.clone()))
                    })
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }
}
