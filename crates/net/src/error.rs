//! Error type for the simulated network layer.

use std::error::Error;
use std::fmt;

/// Error returned by fallible wire-codec and transport operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// The frame does not start with the wire magic.
    BadMagic,
    /// The frame's format version is not supported by this build.
    UnsupportedVersion(u8),
    /// The frame's kind byte is not a known frame kind.
    UnknownFrameKind(u8),
    /// The frame is shorter than its headers and length fields require.
    Truncated {
        /// Bytes the frame claims to need.
        needed: usize,
        /// Bytes actually present.
        available: usize,
    },
    /// The frame carries bytes beyond its declared payload.
    TrailingBytes {
        /// Bytes the frame should occupy.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// The CRC32 trailer does not match the frame contents.
    ChecksumMismatch {
        /// Checksum recorded in the frame.
        stored: u32,
        /// Checksum recomputed from the frame bytes.
        computed: u32,
    },
    /// A masked frame's bitset population disagrees with its active count.
    MaskCountMismatch {
        /// Active parameters the header declares.
        declared: usize,
        /// Active bits actually set in the bitset.
        counted: usize,
    },
    /// An encode-side mask length does not match the parameter vector.
    MaskLengthMismatch {
        /// Parameter count.
        params: usize,
        /// Mask length.
        mask: usize,
    },
    /// A frame's parameter count disagrees with the receiver's model.
    ParamLengthMismatch {
        /// Parameter count the receiver expects.
        expected: usize,
        /// Parameter count the frame declares.
        actual: usize,
    },
    /// A top-k frame's index block is out of range or not strictly
    /// ascending.
    BadIndexBlock {
        /// Description of the violation.
        what: String,
    },
    /// A quantized frame's per-tensor scale is not a finite non-negative
    /// number.
    BadScale {
        /// Bit pattern of the offending `f32` scale.
        scale_bits: u32,
    },
    /// A parameter vector exceeds the wire format's `u32` length field.
    TooManyParams(usize),
    /// A device index is out of range for the transport.
    UnknownDevice {
        /// The offending index.
        device: usize,
        /// Number of devices registered with the transport.
        num_devices: usize,
    },
    /// A link profile or fault configuration holds an invalid value.
    InvalidConfig {
        /// Description of the problem.
        what: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::BadMagic => write!(f, "not a helios wire frame (bad magic)"),
            NetError::UnsupportedVersion(v) => write!(f, "unsupported wire format version {v}"),
            NetError::UnknownFrameKind(k) => write!(f, "unknown wire frame kind {k}"),
            NetError::Truncated { needed, available } => {
                write!(f, "truncated frame: need {needed} bytes, have {available}")
            }
            NetError::TrailingBytes { expected, actual } => {
                write!(f, "frame should be {expected} bytes but is {actual}")
            }
            NetError::ChecksumMismatch { stored, computed } => write!(
                f,
                "crc32 mismatch: frame says {stored:#010x}, contents hash to {computed:#010x}"
            ),
            NetError::MaskCountMismatch { declared, counted } => write!(
                f,
                "mask bitset has {counted} active bits but header declares {declared}"
            ),
            NetError::MaskLengthMismatch { params, mask } => {
                write!(f, "mask length {mask} does not match {params} parameters")
            }
            NetError::ParamLengthMismatch { expected, actual } => {
                write!(
                    f,
                    "frame holds {actual} parameters, receiver expects {expected}"
                )
            }
            NetError::BadIndexBlock { what } => {
                write!(f, "malformed top-k index block: {what}")
            }
            NetError::BadScale { scale_bits } => {
                write!(
                    f,
                    "quantization scale {} (bits {scale_bits:#010x}) is not finite and non-negative",
                    f32::from_bits(*scale_bits)
                )
            }
            NetError::TooManyParams(n) => {
                write!(
                    f,
                    "{n} parameters exceed the wire format's u32 length field"
                )
            }
            NetError::UnknownDevice {
                device,
                num_devices,
            } => write!(f, "device {device} out of range for {num_devices} devices"),
            NetError::InvalidConfig { what } => {
                write!(f, "invalid network configuration: {what}")
            }
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_fields() {
        assert!(NetError::BadMagic.to_string().contains("magic"));
        let e = NetError::ChecksumMismatch {
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("crc32"));
        let e = NetError::UnknownDevice {
            device: 9,
            num_devices: 2,
        };
        assert!(e.to_string().contains("device 9"));
        assert!(e.source().is_none());
    }
}
