//! Link profiles and fault/transport configuration.
//!
//! Everything here is a plain-old-data `Copy` struct with `serde`
//! defaults, so a [`NetConfig`] can be embedded in `helios_fl::FlConfig`
//! without breaking `Copy` or the loadability of pre-existing JSON
//! configs (a missing `net` section deserializes to the disabled
//! default).

use crate::error::NetError;
use helios_device::SimTime;
use serde::{Deserialize, Serialize};

/// Bandwidth/latency/jitter description of one device's uplink and
/// downlink (links are modeled symmetric).
///
/// The default profile is the *ideal link*: unlimited bandwidth, zero
/// latency, zero jitter. Routing a round through an ideal link adds
/// exactly zero simulated time, which is what keeps transport-routed
/// runs bitwise identical to the direct in-memory path when networking
/// is enabled without link constraints.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkProfile {
    /// Sustained throughput in bytes per second; `None` = unlimited.
    #[serde(default)]
    pub bandwidth_bps: Option<f64>,
    /// Fixed one-way latency per message, in seconds.
    #[serde(default)]
    pub latency_s: f64,
    /// Maximum uniform jitter added per message, in seconds (the draw
    /// comes from the transport's per-device RNG).
    #[serde(default)]
    pub jitter_s: f64,
}

impl Default for LinkProfile {
    fn default() -> Self {
        LinkProfile::ideal()
    }
}

impl LinkProfile {
    /// The ideal link: unlimited bandwidth, zero latency, zero jitter.
    pub const fn ideal() -> Self {
        LinkProfile {
            bandwidth_bps: None,
            latency_s: 0.0,
            jitter_s: 0.0,
        }
    }

    /// A bandwidth- and latency-constrained link.
    pub const fn constrained(bandwidth_bps: f64, latency_s: f64) -> Self {
        LinkProfile {
            bandwidth_bps: Some(bandwidth_bps),
            latency_s,
            jitter_s: 0.0,
        }
    }

    /// Adds uniform jitter in `[0, jitter_s)` per message.
    pub const fn with_jitter(mut self, jitter_s: f64) -> Self {
        self.jitter_s = jitter_s;
        self
    }

    /// Whether this link adds no simulated time at all.
    pub fn is_ideal(&self) -> bool {
        self.bandwidth_bps.is_none() && self.latency_s == 0.0 && self.jitter_s == 0.0
    }

    /// Deterministic expected transfer time for `bytes` (latency plus
    /// serialization delay, without jitter or faults) — the estimator the
    /// Helios scheduler uses for deadlines and straggler ranking.
    pub fn expected_transfer(&self, bytes: usize) -> SimTime {
        let serialization = match self.bandwidth_bps {
            Some(bw) => bytes as f64 / bw,
            None => 0.0,
        };
        SimTime::from_secs(self.latency_s + serialization)
    }

    /// Validates the profile.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidConfig`] for non-finite or non-positive
    /// bandwidth, or negative/non-finite latency or jitter.
    pub fn validate(&self) -> Result<(), NetError> {
        if let Some(bw) = self.bandwidth_bps {
            if !(bw.is_finite() && bw > 0.0) {
                return Err(NetError::InvalidConfig {
                    what: format!("bandwidth {bw} must be positive and finite"),
                });
            }
        }
        for (name, v) in [("latency_s", self.latency_s), ("jitter_s", self.jitter_s)] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(NetError::InvalidConfig {
                    what: format!("{name} {v} must be non-negative and finite"),
                });
            }
        }
        Ok(())
    }
}

/// Probabilities of the injected transmission faults. All default to
/// zero (a quiet network).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability that a transmission attempt is silently lost.
    #[serde(default)]
    pub drop_prob: f64,
    /// Probability that an attempt arrives with a flipped byte; the
    /// receiver's CRC32 check detects it and the sender retries.
    #[serde(default)]
    pub corrupt_prob: f64,
    /// Probability that an attempt suffers an extra queuing delay.
    #[serde(default)]
    pub delay_prob: f64,
    /// Maximum extra delay in seconds (uniform in `[0, max)`).
    #[serde(default)]
    pub max_extra_delay_s: f64,
}

impl FaultConfig {
    /// Whether every fault probability is zero.
    pub fn is_quiet(&self) -> bool {
        self.drop_prob == 0.0 && self.corrupt_prob == 0.0 && self.delay_prob == 0.0
    }

    /// Validates the fault probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidConfig`] for probabilities outside
    /// `[0, 1]` or a negative/non-finite delay bound.
    pub fn validate(&self) -> Result<(), NetError> {
        for (name, p) in [
            ("drop_prob", self.drop_prob),
            ("corrupt_prob", self.corrupt_prob),
            ("delay_prob", self.delay_prob),
        ] {
            if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
                return Err(NetError::InvalidConfig {
                    what: format!("{name} {p} outside [0, 1]"),
                });
            }
        }
        if !(self.max_extra_delay_s.is_finite() && self.max_extra_delay_s >= 0.0) {
            return Err(NetError::InvalidConfig {
                what: format!(
                    "max_extra_delay_s {} must be non-negative and finite",
                    self.max_extra_delay_s
                ),
            });
        }
        Ok(())
    }
}

fn default_max_retries() -> u32 {
    3
}

fn default_retry_backoff_s() -> f64 {
    0.05
}

/// The network section of a federated run configuration.
///
/// Every field has a `serde` default, so configs written before this
/// section existed keep loading unchanged (they get the disabled
/// default). With `enabled: false` the environment never constructs a
/// transport and rounds take the direct in-memory path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetConfig {
    /// Route rounds through the simulated transport.
    #[serde(default)]
    pub enabled: bool,
    /// Link profile every device starts with (override per device via
    /// the transport or `FlEnv::set_link`).
    #[serde(default)]
    pub link: LinkProfile,
    /// Fault-injection probabilities.
    #[serde(default)]
    pub faults: FaultConfig,
    /// Transmission attempts beyond the first before a message is given
    /// up as failed.
    #[serde(default = "default_max_retries")]
    pub max_retries: u32,
    /// Base retry backoff in seconds; attempt `i` waits `backoff · 2^i`.
    #[serde(default = "default_retry_backoff_s")]
    pub retry_backoff_s: f64,
    /// Per-round deadline in seconds; a participant whose exchange
    /// completes later misses the cycle (`None` = wait forever).
    #[serde(default)]
    pub round_timeout_s: Option<f64>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            enabled: false,
            link: LinkProfile::ideal(),
            faults: FaultConfig::default(),
            max_retries: default_max_retries(),
            retry_backoff_s: default_retry_backoff_s(),
            round_timeout_s: None,
        }
    }
}

impl NetConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidConfig`] when the link, faults,
    /// backoff, or timeout hold invalid values.
    pub fn validate(&self) -> Result<(), NetError> {
        self.link.validate()?;
        self.faults.validate()?;
        if !(self.retry_backoff_s.is_finite() && self.retry_backoff_s >= 0.0) {
            return Err(NetError::InvalidConfig {
                what: format!(
                    "retry_backoff_s {} must be non-negative and finite",
                    self.retry_backoff_s
                ),
            });
        }
        if let Some(t) = self.round_timeout_s {
            if !(t.is_finite() && t > 0.0) {
                return Err(NetError::InvalidConfig {
                    what: format!("round_timeout_s {t} must be positive and finite"),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled_and_ideal() {
        let cfg = NetConfig::default();
        assert!(!cfg.enabled);
        assert!(cfg.link.is_ideal());
        assert!(cfg.faults.is_quiet());
        assert!(cfg.round_timeout_s.is_none());
        cfg.validate().unwrap();
    }

    #[test]
    fn ideal_link_transfers_in_zero_time() {
        let link = LinkProfile::ideal();
        assert_eq!(link.expected_transfer(1 << 30), SimTime::ZERO);
    }

    #[test]
    fn constrained_link_models_latency_plus_serialization() {
        let link = LinkProfile::constrained(1000.0, 0.25);
        let t = link.expected_transfer(500);
        assert!((t.as_secs_f64() - 0.75).abs() < 1e-12);
        assert!(!link.is_ideal());
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut link = LinkProfile::constrained(0.0, 0.0);
        assert!(link.validate().is_err());
        link.bandwidth_bps = Some(f64::NAN);
        assert!(link.validate().is_err());
        let link = LinkProfile {
            latency_s: -1.0,
            ..LinkProfile::ideal()
        };
        assert!(link.validate().is_err());
        let faults = FaultConfig {
            drop_prob: 1.5,
            ..FaultConfig::default()
        };
        assert!(faults.validate().is_err());
        let cfg = NetConfig {
            round_timeout_s: Some(0.0),
            ..NetConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = NetConfig {
            retry_backoff_s: f64::INFINITY,
            ..NetConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn partial_json_fills_defaults() {
        // A config section naming only what it changes.
        let v: NetConfig =
            serde_json::from_str(r#"{"enabled": true, "link": {"latency_s": 0.1}}"#).unwrap();
        assert!(v.enabled);
        assert_eq!(v.link.latency_s, 0.1);
        assert!(v.link.bandwidth_bps.is_none());
        assert_eq!(v.max_retries, 3);
        assert_eq!(v.retry_backoff_s, 0.05);
    }
}
