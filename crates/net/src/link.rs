//! Link profiles and fault/transport configuration.
//!
//! Everything here is a plain-old-data `Copy` struct with `serde`
//! defaults, so a [`NetConfig`] can be embedded in `helios_fl::FlConfig`
//! without breaking `Copy` or the loadability of pre-existing JSON
//! configs (a missing `net` section deserializes to the disabled
//! default).

use crate::codec::{self, CompressionMode, WireSize};
use crate::error::NetError;
use helios_device::SimTime;
use serde::{Deserialize, Serialize};

fn default_topk_ratio() -> f64 {
    0.1
}

/// Upload-compression section of a [`NetConfig`]: which wire-v2 frame
/// layout (if any) clients use for their update uploads, and the top-k
/// keep fraction.
///
/// Every field has a `serde` default and the default mode is
/// [`CompressionMode::None`], so configurations written before wire v2
/// keep loading — and running — bit-for-bit unchanged. Broadcasts are
/// *never* compressed: the broadcast **is** the shared base every v2
/// mode encodes against, so it must arrive bit-exact (see the
/// negotiation rule in DESIGN.md §4k).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompressionConfig {
    /// Upload frame layout; `None` keeps v1 full/masked frames.
    #[serde(default)]
    pub mode: CompressionMode,
    /// Fraction of parameters the `TopK` mode keeps (rounded up to at
    /// least one entry), in `(0, 1]`. Ignored by the other modes.
    #[serde(default = "default_topk_ratio")]
    pub topk_ratio: f64,
}

impl Default for CompressionConfig {
    fn default() -> Self {
        CompressionConfig {
            mode: CompressionMode::None,
            topk_ratio: default_topk_ratio(),
        }
    }
}

impl CompressionConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidConfig`] for a top-k ratio outside
    /// `(0, 1]`.
    pub fn validate(&self) -> Result<(), NetError> {
        if !(self.topk_ratio.is_finite() && self.topk_ratio > 0.0 && self.topk_ratio <= 1.0) {
            return Err(NetError::InvalidConfig {
                what: format!("topk_ratio {} outside (0, 1]", self.topk_ratio),
            });
        }
        Ok(())
    }

    /// Entries the `TopK` mode keeps for a model of `params` parameters:
    /// `⌈ratio · params⌉`, at least 1 (0 only for an empty model).
    pub fn topk_count(&self, params: usize) -> usize {
        if params == 0 {
            return 0;
        }
        ((self.topk_ratio * params as f64).ceil() as usize).clamp(1, params)
    }

    /// Encodes one update upload under the configured mode, against the
    /// broadcast `base` the receiver holds. With mode `None` this is
    /// exactly the v1 [`codec::encode_update`] path.
    ///
    /// # Errors
    ///
    /// Propagates the underlying encoder's [`NetError`] conditions.
    pub fn encode_update(
        &self,
        sender: u32,
        cycle: u32,
        params: &[f32],
        mask: Option<&[bool]>,
        base: &[f32],
    ) -> Result<Vec<u8>, NetError> {
        match self.mode {
            CompressionMode::None => codec::encode_update(sender, cycle, params, mask),
            CompressionMode::Delta => codec::encode_delta(sender, cycle, params, base),
            CompressionMode::TopK => {
                codec::encode_topk(sender, cycle, params, base, self.topk_count(params.len()))
            }
            CompressionMode::QuantF16 => codec::encode_quant_f16(sender, cycle, params, mask, base),
            CompressionMode::QuantInt8 => codec::encode_quant_i8(sender, cycle, params, mask, base),
        }
    }

    /// Deterministic upload-size estimate for a model of `params`
    /// parameters with `active` of them trained (`None` = no mask). This
    /// is the planning-side counterpart of [`Self::encode_update`], used
    /// for deadline fitting and analytic comm accounting; `Delta` and
    /// `TopK` sizes depend on how many entries actually changed, so the
    /// estimate uses the worst case (every active entry changed).
    pub fn upload_wire_size(&self, params: usize, active: Option<usize>) -> WireSize {
        let act = active.unwrap_or(params);
        match self.mode {
            CompressionMode::None => match active {
                Some(a) => WireSize::masked(params, a),
                None => WireSize::full(params),
            },
            CompressionMode::Delta => WireSize::delta(params, act),
            CompressionMode::TopK => WireSize::topk(self.topk_count(params).min(act)),
            CompressionMode::QuantF16 => WireSize::quant_f16(params, act),
            CompressionMode::QuantInt8 => WireSize::quant_i8(params, act),
        }
    }
}

/// Bandwidth/latency/jitter description of one device's uplink and
/// downlink (links are modeled symmetric).
///
/// The default profile is the *ideal link*: unlimited bandwidth, zero
/// latency, zero jitter. Routing a round through an ideal link adds
/// exactly zero simulated time, which is what keeps transport-routed
/// runs bitwise identical to the direct in-memory path when networking
/// is enabled without link constraints.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkProfile {
    /// Sustained throughput in bytes per second; `None` = unlimited.
    #[serde(default)]
    pub bandwidth_bps: Option<f64>,
    /// Fixed one-way latency per message, in seconds.
    #[serde(default)]
    pub latency_s: f64,
    /// Maximum uniform jitter added per message, in seconds (the draw
    /// comes from the transport's per-device RNG).
    #[serde(default)]
    pub jitter_s: f64,
}

impl Default for LinkProfile {
    fn default() -> Self {
        LinkProfile::ideal()
    }
}

impl LinkProfile {
    /// The ideal link: unlimited bandwidth, zero latency, zero jitter.
    pub const fn ideal() -> Self {
        LinkProfile {
            bandwidth_bps: None,
            latency_s: 0.0,
            jitter_s: 0.0,
        }
    }

    /// A bandwidth- and latency-constrained link.
    pub const fn constrained(bandwidth_bps: f64, latency_s: f64) -> Self {
        LinkProfile {
            bandwidth_bps: Some(bandwidth_bps),
            latency_s,
            jitter_s: 0.0,
        }
    }

    /// Adds uniform jitter in `[0, jitter_s)` per message.
    pub const fn with_jitter(mut self, jitter_s: f64) -> Self {
        self.jitter_s = jitter_s;
        self
    }

    /// Whether this link adds no simulated time at all.
    pub fn is_ideal(&self) -> bool {
        self.bandwidth_bps.is_none() && self.latency_s == 0.0 && self.jitter_s == 0.0
    }

    /// Deterministic expected transfer time for `bytes` (latency plus
    /// serialization delay, without jitter or faults) — the estimator the
    /// Helios scheduler uses for deadlines and straggler ranking.
    pub fn expected_transfer(&self, bytes: usize) -> SimTime {
        let serialization = match self.bandwidth_bps {
            Some(bw) => bytes as f64 / bw,
            None => 0.0,
        };
        SimTime::from_secs(self.latency_s + serialization)
    }

    /// Validates the profile.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidConfig`] for non-finite or non-positive
    /// bandwidth, or negative/non-finite latency or jitter.
    pub fn validate(&self) -> Result<(), NetError> {
        if let Some(bw) = self.bandwidth_bps {
            if !(bw.is_finite() && bw > 0.0) {
                return Err(NetError::InvalidConfig {
                    what: format!("bandwidth {bw} must be positive and finite"),
                });
            }
        }
        for (name, v) in [("latency_s", self.latency_s), ("jitter_s", self.jitter_s)] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(NetError::InvalidConfig {
                    what: format!("{name} {v} must be non-negative and finite"),
                });
            }
        }
        Ok(())
    }
}

/// Probabilities of the injected transmission faults. All default to
/// zero (a quiet network).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability that a transmission attempt is silently lost.
    #[serde(default)]
    pub drop_prob: f64,
    /// Probability that an attempt arrives with a flipped byte; the
    /// receiver's CRC32 check detects it and the sender retries.
    #[serde(default)]
    pub corrupt_prob: f64,
    /// Probability that an attempt suffers an extra queuing delay.
    #[serde(default)]
    pub delay_prob: f64,
    /// Maximum extra delay in seconds (uniform in `[0, max)`).
    #[serde(default)]
    pub max_extra_delay_s: f64,
}

impl FaultConfig {
    /// Whether every fault probability is zero.
    pub fn is_quiet(&self) -> bool {
        self.drop_prob == 0.0 && self.corrupt_prob == 0.0 && self.delay_prob == 0.0
    }

    /// Validates the fault probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidConfig`] for probabilities outside
    /// `[0, 1]` or a negative/non-finite delay bound.
    pub fn validate(&self) -> Result<(), NetError> {
        for (name, p) in [
            ("drop_prob", self.drop_prob),
            ("corrupt_prob", self.corrupt_prob),
            ("delay_prob", self.delay_prob),
        ] {
            if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
                return Err(NetError::InvalidConfig {
                    what: format!("{name} {p} outside [0, 1]"),
                });
            }
        }
        if !(self.max_extra_delay_s.is_finite() && self.max_extra_delay_s >= 0.0) {
            return Err(NetError::InvalidConfig {
                what: format!(
                    "max_extra_delay_s {} must be non-negative and finite",
                    self.max_extra_delay_s
                ),
            });
        }
        Ok(())
    }
}

fn default_max_retries() -> u32 {
    3
}

fn default_retry_backoff_s() -> f64 {
    0.05
}

/// The network section of a federated run configuration.
///
/// Every field has a `serde` default, so configs written before this
/// section existed keep loading unchanged (they get the disabled
/// default). With `enabled: false` the environment never constructs a
/// transport and rounds take the direct in-memory path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetConfig {
    /// Route rounds through the simulated transport.
    #[serde(default)]
    pub enabled: bool,
    /// Link profile every device starts with (override per device via
    /// the transport or `FlEnv::set_link`).
    #[serde(default)]
    pub link: LinkProfile,
    /// Fault-injection probabilities.
    #[serde(default)]
    pub faults: FaultConfig,
    /// Transmission attempts beyond the first before a message is given
    /// up as failed.
    #[serde(default = "default_max_retries")]
    pub max_retries: u32,
    /// Base retry backoff in seconds; attempt `i` waits `backoff · 2^i`.
    #[serde(default = "default_retry_backoff_s")]
    pub retry_backoff_s: f64,
    /// Per-round deadline in seconds; a participant whose exchange
    /// completes later misses the cycle (`None` = wait forever).
    #[serde(default)]
    pub round_timeout_s: Option<f64>,
    /// Wire-v2 upload compression (default: off, v1 frames).
    #[serde(default)]
    pub compression: CompressionConfig,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            enabled: false,
            link: LinkProfile::ideal(),
            faults: FaultConfig::default(),
            max_retries: default_max_retries(),
            retry_backoff_s: default_retry_backoff_s(),
            round_timeout_s: None,
            compression: CompressionConfig::default(),
        }
    }
}

impl NetConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidConfig`] when the link, faults,
    /// backoff, or timeout hold invalid values.
    pub fn validate(&self) -> Result<(), NetError> {
        self.link.validate()?;
        self.faults.validate()?;
        self.compression.validate()?;
        if !(self.retry_backoff_s.is_finite() && self.retry_backoff_s >= 0.0) {
            return Err(NetError::InvalidConfig {
                what: format!(
                    "retry_backoff_s {} must be non-negative and finite",
                    self.retry_backoff_s
                ),
            });
        }
        if let Some(t) = self.round_timeout_s {
            if !(t.is_finite() && t > 0.0) {
                return Err(NetError::InvalidConfig {
                    what: format!("round_timeout_s {t} must be positive and finite"),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled_and_ideal() {
        let cfg = NetConfig::default();
        assert!(!cfg.enabled);
        assert!(cfg.link.is_ideal());
        assert!(cfg.faults.is_quiet());
        assert!(cfg.round_timeout_s.is_none());
        cfg.validate().unwrap();
    }

    #[test]
    fn ideal_link_transfers_in_zero_time() {
        let link = LinkProfile::ideal();
        assert_eq!(link.expected_transfer(1 << 30), SimTime::ZERO);
    }

    #[test]
    fn constrained_link_models_latency_plus_serialization() {
        let link = LinkProfile::constrained(1000.0, 0.25);
        let t = link.expected_transfer(500);
        assert!((t.as_secs_f64() - 0.75).abs() < 1e-12);
        assert!(!link.is_ideal());
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut link = LinkProfile::constrained(0.0, 0.0);
        assert!(link.validate().is_err());
        link.bandwidth_bps = Some(f64::NAN);
        assert!(link.validate().is_err());
        let link = LinkProfile {
            latency_s: -1.0,
            ..LinkProfile::ideal()
        };
        assert!(link.validate().is_err());
        let faults = FaultConfig {
            drop_prob: 1.5,
            ..FaultConfig::default()
        };
        assert!(faults.validate().is_err());
        let cfg = NetConfig {
            round_timeout_s: Some(0.0),
            ..NetConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = NetConfig {
            retry_backoff_s: f64::INFINITY,
            ..NetConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn partial_json_fills_defaults() {
        // A config section naming only what it changes.
        let v: NetConfig =
            serde_json::from_str(r#"{"enabled": true, "link": {"latency_s": 0.1}}"#).unwrap();
        assert!(v.enabled);
        assert_eq!(v.link.latency_s, 0.1);
        assert!(v.link.bandwidth_bps.is_none());
        assert_eq!(v.max_retries, 3);
        assert_eq!(v.retry_backoff_s, 0.05);
        // Pre-v2 configs carry no `compression` section → v1 behavior.
        assert_eq!(v.compression.mode, CompressionMode::None);
        assert_eq!(v.compression.topk_ratio, 0.1);
    }

    #[test]
    fn compression_config_parses_from_partial_json() {
        let v: CompressionConfig = serde_json::from_str(r#"{"mode": "TopK"}"#).unwrap();
        assert_eq!(v.mode, CompressionMode::TopK);
        assert_eq!(v.topk_ratio, 0.1);
        let v: CompressionConfig =
            serde_json::from_str(r#"{"mode": "QuantInt8", "topk_ratio": 0.25}"#).unwrap();
        assert_eq!(v.mode, CompressionMode::QuantInt8);
        assert_eq!(v.topk_ratio, 0.25);
    }

    #[test]
    fn compression_validation_rejects_bad_ratio() {
        for ratio in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
            let cfg = CompressionConfig {
                mode: CompressionMode::TopK,
                topk_ratio: ratio,
            };
            assert!(cfg.validate().is_err(), "ratio {ratio} accepted");
        }
        CompressionConfig {
            mode: CompressionMode::TopK,
            topk_ratio: 1.0,
        }
        .validate()
        .unwrap();
        // NetConfig::validate covers the nested section.
        let cfg = NetConfig {
            compression: CompressionConfig {
                mode: CompressionMode::TopK,
                topk_ratio: 0.0,
            },
            ..NetConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn topk_count_rounds_up_and_clamps() {
        let cfg = CompressionConfig {
            mode: CompressionMode::TopK,
            topk_ratio: 0.1,
        };
        assert_eq!(cfg.topk_count(0), 0);
        assert_eq!(cfg.topk_count(1), 1);
        assert_eq!(cfg.topk_count(10), 1);
        assert_eq!(cfg.topk_count(15), 2);
        let full = CompressionConfig {
            mode: CompressionMode::TopK,
            topk_ratio: 1.0,
        };
        assert_eq!(full.topk_count(10), 10);
    }

    #[test]
    fn encode_update_dispatches_on_mode() {
        use crate::codec::{decode, frame_mode, Payload};
        let base = vec![1.0, 2.0, 3.0];
        let update = vec![1.5, 2.0, 3.5];
        let cases = [
            (CompressionMode::None, None),
            (CompressionMode::Delta, Some("delta")),
            (CompressionMode::TopK, Some("topk")),
            (CompressionMode::QuantF16, Some("qf16")),
            (CompressionMode::QuantInt8, Some("qi8")),
        ];
        for (mode, expect) in cases {
            let cfg = CompressionConfig {
                mode,
                ..CompressionConfig::default()
            };
            let frame = cfg.encode_update(4, 2, &update, None, &base).unwrap();
            assert_eq!(frame_mode(&frame), expect, "mode {mode:?}");
            let decoded = decode(&frame).unwrap();
            assert_eq!(decoded.sender, 4);
            assert_eq!(decoded.cycle, 2);
        }
        // Mode None respects the v1 full/masked split.
        let cfg = CompressionConfig::default();
        let masked = cfg
            .encode_update(0, 0, &update, Some(&[true, false, true]), &base)
            .unwrap();
        assert!(matches!(
            decode(&masked).unwrap().payload,
            Payload::Masked { .. }
        ));
    }

    #[test]
    fn upload_wire_size_estimates_per_mode() {
        use crate::codec::WireSize;
        let mk = |mode| CompressionConfig {
            mode,
            topk_ratio: 0.1,
        };
        let n = 1000;
        let act = 300;
        // v1 estimates are unchanged.
        assert_eq!(
            mk(CompressionMode::None).upload_wire_size(n, Some(act)),
            WireSize::masked(n, act)
        );
        assert_eq!(
            mk(CompressionMode::None).upload_wire_size(n, None),
            WireSize::full(n)
        );
        // Delta plans the masked shape (worst case: all active changed).
        assert_eq!(
            mk(CompressionMode::Delta).upload_wire_size(n, Some(act)),
            WireSize::delta(n, act)
        );
        // Top-k keeps ratio·n entries, capped by the active count.
        assert_eq!(
            mk(CompressionMode::TopK).upload_wire_size(n, Some(act)),
            WireSize::topk(100)
        );
        assert_eq!(
            mk(CompressionMode::TopK).upload_wire_size(n, Some(50)),
            WireSize::topk(50)
        );
        // Quantized estimates shrink with the active count.
        assert_eq!(
            mk(CompressionMode::QuantF16).upload_wire_size(n, Some(act)),
            WireSize::quant_f16(n, act)
        );
        assert_eq!(
            mk(CompressionMode::QuantInt8).upload_wire_size(n, None),
            WireSize::quant_i8(n, n)
        );
    }
}
