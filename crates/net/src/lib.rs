//! Deterministic simulated networking for the Helios reproduction.
//!
//! Helios's premise is that heterogeneous edge devices fall behind the
//! collaboration cycle — and half of every federated round is
//! *communication*: shipping the global model down and the (possibly
//! soft-trained, hence smaller) update back up over constrained links.
//! This crate makes that half first-class:
//!
//! - [`codec`] — a compact binary wire format for model exchanges
//!   (little-endian `f32` payload, shape header, CRC32 trailer),
//!   roundtrip-exact for every bit pattern, with a [`WireSize`] report
//!   showing that a straggler's masked upload is genuinely smaller.
//!   Wire v2 adds negotiated upload compression behind the frame-version
//!   byte ([`CompressionMode`]): lossless delta frames, top-k
//!   sparsification, and f16/int8 quantized deltas with deterministic
//!   dequantization — configured through [`CompressionConfig`];
//! - [`LinkProfile`] / [`FaultConfig`] / [`NetConfig`] — `Copy`,
//!   serde-defaulted knobs describing per-device bandwidth/latency/
//!   jitter and injected faults (drop, corrupt-detected-by-CRC, delay);
//! - [`SimTransport`] — the transport itself: per-device ChaCha RNG
//!   streams forked from the run seed, retry-with-backoff, and
//!   statistics ([`TransportStats`], [`DeviceStats`]);
//! - [`simulate_round`] — one synchronous round (download → compute →
//!   upload per participant) driven by `helios_device`'s deterministic
//!   [`EventQueue`](helios_device::EventQueue), with a per-round
//!   deadline that degrades late participants to "missed the cycle".
//!
//! # Determinism contract
//!
//! Same seed + same link/fault configuration ⇒ same byte streams, same
//! fault draws, and same simulated round times, at every thread width
//! (the transport runs in the serial prologue/epilogue of a round, never
//! inside the parallel training fan-out). With the default ideal link
//! and quiet faults the transport adds exactly zero simulated time and
//! delivers byte-identical frames, so routed runs are bitwise identical
//! to the direct in-memory path.
//!
//! # Example
//!
//! ```
//! use helios_net::{codec, LinkProfile, NetConfig, SimTransport};
//! use helios_net::transport::Direction;
//!
//! let cfg = NetConfig { enabled: true, ..NetConfig::default() };
//! let mut transport = SimTransport::new(1, &cfg, 42).unwrap();
//! let frame = codec::encode_full(0, 0, &[1.0, -2.5, 3.25]).unwrap();
//! let tx = transport.transmit(0, &frame, Direction::Upload).unwrap();
//! let decoded = codec::decode(&tx.delivered.unwrap()).unwrap();
//! assert_eq!(decoded.into_params(&[0.0; 3]).unwrap(), vec![1.0, -2.5, 3.25]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The PR 3 typed-error migration removed every panicking shortcut from
// non-test code; this keeps them out. Tests may still unwrap freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod codec;
mod error;
mod link;
mod round;
pub mod transport;

pub use codec::{CompressionMode, Frame, Payload, WireSize};
pub use error::NetError;
pub use link::{CompressionConfig, FaultConfig, LinkProfile, NetConfig};
pub use round::{simulate_round, RoundJob, RoundOutcome};
pub use transport::{DeviceStats, SimTransport, TransportStats};

/// Crate-wide result alias carrying a [`NetError`].
pub type Result<T> = std::result::Result<T, NetError>;
