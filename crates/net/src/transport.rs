//! The simulated transport: per-device links, deterministic fault
//! injection, and retry-with-backoff delivery.

use crate::codec;
use crate::error::NetError;
use crate::link::{FaultConfig, LinkProfile, NetConfig};
use helios_device::SimTime;
use helios_obs::TraceEvent;
use helios_tensor::TensorRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Whether a message travels server→device or device→server (statistics
/// bookkeeping only; links are symmetric).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Server → device (global model broadcast).
    Download,
    /// Device → server (local update upload).
    Upload,
}

/// Aggregate counters over every transmission the transport performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportStats {
    /// Messages handed to the transport.
    pub messages: u64,
    /// Individual transmission attempts (≥ `messages`).
    pub attempts: u64,
    /// Re-transmissions after a drop or detected corruption.
    pub retries: u64,
    /// Attempts lost in flight.
    pub drops: u64,
    /// Attempts whose corruption the receiver's CRC32 check caught.
    pub corruptions_detected: u64,
    /// Attempts that suffered an extra queuing delay.
    pub extra_delays: u64,
    /// Messages abandoned after exhausting every retry.
    pub failures: u64,
    /// Participants cut off by the per-round deadline.
    pub timeouts: u64,
    /// Bytes put on the wire, counting every attempt.
    pub bytes_on_wire: u64,
    /// Bytes of successfully delivered messages (final attempt only).
    pub delivered_bytes: u64,
}

impl TransportStats {
    /// The traffic accumulated since an `earlier` snapshot — the
    /// counters are monotone, so callers copy [`SimTransport::stats`]
    /// before a round and diff afterwards to attribute wire activity to
    /// one cycle. Saturating, so swapped snapshots yield zeros instead
    /// of wrapping.
    pub fn since(&self, earlier: &TransportStats) -> TransportStats {
        TransportStats {
            messages: self.messages.saturating_sub(earlier.messages),
            attempts: self.attempts.saturating_sub(earlier.attempts),
            retries: self.retries.saturating_sub(earlier.retries),
            drops: self.drops.saturating_sub(earlier.drops),
            corruptions_detected: self
                .corruptions_detected
                .saturating_sub(earlier.corruptions_detected),
            extra_delays: self.extra_delays.saturating_sub(earlier.extra_delays),
            failures: self.failures.saturating_sub(earlier.failures),
            timeouts: self.timeouts.saturating_sub(earlier.timeouts),
            bytes_on_wire: self.bytes_on_wire.saturating_sub(earlier.bytes_on_wire),
            delivered_bytes: self.delivered_bytes.saturating_sub(earlier.delivered_bytes),
        }
    }
}

/// Per-device traffic counters, used by the benchmarks to compare a
/// soft-trained straggler's wire volume against a full-model client's.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceStats {
    /// Bytes uploaded by this device (delivered messages only).
    pub upload_bytes: u64,
    /// Bytes downloaded by this device (delivered messages only).
    pub download_bytes: u64,
    /// Re-transmissions on this device's link.
    pub retries: u64,
    /// Cycles this device missed (deadline or retry exhaustion).
    pub missed_cycles: u64,
}

/// The outcome of transmitting one message.
#[derive(Debug, Clone, PartialEq)]
pub struct Transmission {
    /// The delivered frame, or `None` when every attempt failed.
    pub delivered: Option<Vec<u8>>,
    /// Simulated time from send to delivery (or to giving up), including
    /// retries and backoff.
    pub elapsed: SimTime,
    /// Number of transmission attempts made.
    pub attempts: u32,
}

/// A deterministic store-and-forward network simulator.
///
/// Each device owns a [`LinkProfile`] and a ChaCha RNG forked from the
/// run seed, so jitter and fault draws are a pure function of `(seed,
/// config, traffic order)` — the determinism contract is *same seed +
/// same fault config ⇒ same byte streams and same simulated times*.
/// Faults never panic: a message that exhausts its retries is reported
/// as undelivered and the round layer degrades it to "client missed
/// this cycle".
///
/// Per-device state is **sparse**: a device's RNG stream is created on
/// its first transmission from `device_seed(base_seed, index)` — a pure
/// function of the device index — and link overrides / traffic counters
/// are stored only for devices that diverge from the defaults. A
/// 100k-device fleet therefore costs O(sampled devices), not
/// O(population), while remaining bitwise identical to an eagerly
/// constructed transport for any traffic order.
#[derive(Debug, Clone)]
pub struct SimTransport {
    num_devices: usize,
    link_overrides: BTreeMap<usize, LinkProfile>,
    faults: FaultConfig,
    max_retries: u32,
    retry_backoff_s: f64,
    rngs: BTreeMap<usize, TensorRng>,
    stats: TransportStats,
    device_stats: BTreeMap<usize, DeviceStats>,
    base_seed: u64,
    default_link: LinkProfile,
}

fn device_seed(base: u64, device: usize) -> u64 {
    // Golden-ratio mixing keyed away from other seed consumers ("NETW").
    base ^ 0x4e45_5457u64 ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(device as u64 + 1)
}

impl SimTransport {
    /// Builds a transport for `num_devices` devices, all starting on the
    /// configured default link.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidConfig`] when `config` fails
    /// validation.
    pub fn new(num_devices: usize, config: &NetConfig, seed: u64) -> Result<Self, NetError> {
        config.validate()?;
        Ok(SimTransport {
            num_devices,
            link_overrides: BTreeMap::new(),
            faults: config.faults,
            max_retries: config.max_retries,
            retry_backoff_s: config.retry_backoff_s,
            rngs: BTreeMap::new(),
            stats: TransportStats::default(),
            device_stats: BTreeMap::new(),
            base_seed: seed,
            default_link: config.link,
        })
    }

    /// Registers one more device on the default link and returns its
    /// index (used when a device joins mid-run). O(1): per-device state
    /// stays unmaterialized until the device sees traffic.
    pub fn add_device(&mut self) -> usize {
        let device = self.num_devices;
        self.num_devices += 1;
        device
    }

    /// Number of registered devices.
    pub fn num_devices(&self) -> usize {
        self.num_devices
    }

    /// Number of devices with materialized per-device state (RNG stream,
    /// link override, or traffic counters) — the transport's actual
    /// footprint, which the fleet bench asserts stays O(sampled), not
    /// O(population).
    pub fn touched_devices(&self) -> usize {
        let mut touched: std::collections::BTreeSet<usize> = self.rngs.keys().copied().collect();
        touched.extend(self.link_overrides.keys());
        touched.extend(self.device_stats.keys());
        touched.len()
    }

    /// The link profile of `device`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownDevice`] for an out-of-range index.
    pub fn link(&self, device: usize) -> Result<&LinkProfile, NetError> {
        if device >= self.num_devices {
            return Err(NetError::UnknownDevice {
                device,
                num_devices: self.num_devices,
            });
        }
        Ok(self
            .link_overrides
            .get(&device)
            .unwrap_or(&self.default_link))
    }

    /// Replaces the link profile of `device`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownDevice`] for an out-of-range index or
    /// [`NetError::InvalidConfig`] for an invalid profile.
    pub fn set_link(&mut self, device: usize, link: LinkProfile) -> Result<(), NetError> {
        link.validate()?;
        if device >= self.num_devices {
            return Err(NetError::UnknownDevice {
                device,
                num_devices: self.num_devices,
            });
        }
        self.link_overrides.insert(device, link);
        Ok(())
    }

    /// Aggregate transmission statistics.
    pub fn stats(&self) -> &TransportStats {
        &self.stats
    }

    /// Traffic statistics of `device`. Devices that never saw traffic
    /// report all-zero counters.
    pub fn device_stats(&self, device: usize) -> DeviceStats {
        self.device_stats.get(&device).copied().unwrap_or_default()
    }

    /// Records that `device` missed a cycle because of the per-round
    /// deadline (called by the round layer).
    pub(crate) fn note_timeout(&mut self, device: usize) {
        self.stats.timeouts += 1;
        if device < self.num_devices {
            self.device_stats.entry(device).or_default().missed_cycles += 1;
        }
        helios_obs::emit(|| TraceEvent::Timeout {
            device: device as u64,
        });
    }

    pub(crate) fn note_failure_missed(&mut self, device: usize) {
        if device < self.num_devices {
            self.device_stats.entry(device).or_default().missed_cycles += 1;
        }
    }

    /// Transmits `frame` over `device`'s link, retrying dropped or
    /// corrupted attempts with exponential backoff.
    ///
    /// Fault draws are consumed only when the corresponding probability
    /// is nonzero, so a quiet configuration leaves the RNG streams
    /// untouched and delivery takes exactly the link's transfer time.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownDevice`] for an out-of-range index.
    /// Exhausted retries are *not* an error: the returned
    /// [`Transmission`] reports `delivered: None`.
    pub fn transmit(
        &mut self,
        device: usize,
        frame: &[u8],
        direction: Direction,
    ) -> Result<Transmission, NetError> {
        let link = *self.link(device)?;
        self.stats.messages += 1;
        let obs_dir = match direction {
            Direction::Download => helios_obs::Dir::Down,
            Direction::Upload => helios_obs::Dir::Up,
        };
        // v2 frames carry their compression mode into the trace; v1
        // frames emit no mode field at all, keeping pre-v2 captures (and
        // the pinned trace digest) byte-identical.
        let frame_mode = codec::frame_mode(frame);
        let mut elapsed = 0.0f64;
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            self.stats.attempts += 1;
            self.stats.bytes_on_wire += frame.len() as u64;
            helios_obs::emit(|| TraceEvent::FrameSent {
                device: device as u64,
                dir: obs_dir,
                bytes: frame.len() as u64,
                attempt: u64::from(attempts),
                mode: frame_mode.map(str::to_string),
            });
            let mut transfer = link.expected_transfer(frame.len()).as_secs_f64();
            let base_seed = self.base_seed;
            let rng = self
                .rngs
                .entry(device)
                .or_insert_with(|| TensorRng::seed_from(device_seed(base_seed, device)));
            if link.jitter_s > 0.0 {
                transfer += rng.unit_f64() * link.jitter_s;
            }
            if self.faults.delay_prob > 0.0 && rng.unit_f64() < self.faults.delay_prob {
                transfer += rng.unit_f64() * self.faults.max_extra_delay_s;
                self.stats.extra_delays += 1;
            }
            elapsed += transfer;
            let dropped = self.faults.drop_prob > 0.0 && rng.unit_f64() < self.faults.drop_prob;
            if dropped {
                self.stats.drops += 1;
                helios_obs::emit(|| TraceEvent::FrameDropped {
                    device: device as u64,
                    attempt: u64::from(attempts),
                });
            } else {
                let corrupted =
                    self.faults.corrupt_prob > 0.0 && rng.unit_f64() < self.faults.corrupt_prob;
                if corrupted && !frame.is_empty() {
                    // Flip one byte en route and run the receiver's
                    // integrity check: CRC32 detects every single-byte
                    // error, so the receiver requests a retransmission.
                    let idx = rng.below(frame.len());
                    let flip = (rng.below(255) + 1) as u8;
                    let mut damaged = frame.to_vec();
                    damaged[idx] ^= flip;
                    if codec::verify(&damaged) {
                        // Unreachable for CRC32 and a single flipped
                        // byte, but if it ever passed the check the
                        // receiver would accept the damaged frame.
                        return Ok(self.deliver(device, direction, damaged, elapsed, attempts));
                    }
                    self.stats.corruptions_detected += 1;
                    helios_obs::emit(|| TraceEvent::FrameCorrupted {
                        device: device as u64,
                        attempt: u64::from(attempts),
                    });
                } else {
                    return Ok(self.deliver(device, direction, frame.to_vec(), elapsed, attempts));
                }
            }
            if attempts > self.max_retries {
                self.stats.failures += 1;
                helios_obs::emit(|| TraceEvent::SendFailed {
                    device: device as u64,
                    attempts: u64::from(attempts),
                    elapsed_s: elapsed,
                });
                return Ok(Transmission {
                    delivered: None,
                    elapsed: SimTime::from_secs(elapsed),
                    attempts,
                });
            }
            self.stats.retries += 1;
            self.device_stats.entry(device).or_default().retries += 1;
            let backoff = self.retry_backoff_s * f64::from(1u32 << (attempts - 1).min(16));
            helios_obs::emit(|| TraceEvent::Retry {
                device: device as u64,
                attempt: u64::from(attempts),
                backoff_s: backoff,
            });
            elapsed += backoff;
        }
    }

    fn deliver(
        &mut self,
        device: usize,
        direction: Direction,
        frame: Vec<u8>,
        elapsed: f64,
        attempts: u32,
    ) -> Transmission {
        self.stats.delivered_bytes += frame.len() as u64;
        let d = self.device_stats.entry(device).or_default();
        match direction {
            Direction::Download => d.download_bytes += frame.len() as u64,
            Direction::Upload => d.upload_bytes += frame.len() as u64,
        }
        helios_obs::emit(|| TraceEvent::Delivered {
            device: device as u64,
            bytes: frame.len() as u64,
            attempts: u64::from(attempts),
            elapsed_s: elapsed,
        });
        Transmission {
            delivered: Some(frame),
            elapsed: SimTime::from_secs(elapsed),
            attempts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_full;

    fn frame() -> Vec<u8> {
        encode_full(0, 0, &[1.0, 2.0, 3.0, 4.0]).unwrap()
    }

    fn config(faults: FaultConfig, link: LinkProfile) -> NetConfig {
        NetConfig {
            enabled: true,
            link,
            faults,
            ..NetConfig::default()
        }
    }

    #[test]
    fn ideal_quiet_link_delivers_in_zero_time_without_rng_draws() {
        let cfg = config(FaultConfig::default(), LinkProfile::ideal());
        let mut t = SimTransport::new(2, &cfg, 7).unwrap();
        let f = frame();
        let tx = t.transmit(0, &f, Direction::Upload).unwrap();
        assert_eq!(tx.delivered.as_deref(), Some(&f[..]));
        assert_eq!(tx.elapsed, SimTime::ZERO);
        assert_eq!(tx.attempts, 1);
        assert_eq!(t.stats().retries, 0);
        assert_eq!(t.stats().bytes_on_wire, f.len() as u64);
        assert_eq!(t.device_stats(0).upload_bytes, f.len() as u64);
    }

    #[test]
    fn constrained_link_accumulates_transfer_time() {
        let cfg = config(FaultConfig::default(), LinkProfile::constrained(100.0, 1.0));
        let mut t = SimTransport::new(1, &cfg, 7).unwrap();
        let f = frame();
        let tx = t.transmit(0, &f, Direction::Download).unwrap();
        let expect = 1.0 + f.len() as f64 / 100.0;
        assert!((tx.elapsed.as_secs_f64() - expect).abs() < 1e-12);
    }

    #[test]
    fn certain_drop_exhausts_retries_without_panicking() {
        let faults = FaultConfig {
            drop_prob: 1.0,
            ..FaultConfig::default()
        };
        let cfg = config(faults, LinkProfile::ideal());
        let mut t = SimTransport::new(1, &cfg, 7).unwrap();
        let tx = t.transmit(0, &frame(), Direction::Upload).unwrap();
        assert!(tx.delivered.is_none());
        assert_eq!(tx.attempts, cfg.max_retries + 1);
        assert_eq!(t.stats().failures, 1);
        assert_eq!(t.stats().drops as u32, cfg.max_retries + 1);
        // Backoff made the failed exchange take nonzero simulated time.
        assert!(tx.elapsed > SimTime::ZERO);
    }

    #[test]
    fn corruption_is_detected_and_retried() {
        let faults = FaultConfig {
            corrupt_prob: 1.0,
            ..FaultConfig::default()
        };
        let cfg = config(faults, LinkProfile::ideal());
        let mut t = SimTransport::new(1, &cfg, 7).unwrap();
        let tx = t.transmit(0, &frame(), Direction::Upload).unwrap();
        // Every attempt corrupts, so the message ultimately fails —
        // but every corruption was caught by the CRC, none delivered.
        assert!(tx.delivered.is_none());
        assert_eq!(t.stats().corruptions_detected as u32, cfg.max_retries + 1);
    }

    #[test]
    fn lossy_link_eventually_delivers_clean_frames() {
        let faults = FaultConfig {
            drop_prob: 0.3,
            corrupt_prob: 0.3,
            delay_prob: 0.5,
            max_extra_delay_s: 2.0,
        };
        let cfg = NetConfig {
            max_retries: 50,
            ..config(
                faults,
                LinkProfile::constrained(1e6, 0.01).with_jitter(0.01),
            )
        };
        let mut t = SimTransport::new(1, &cfg, 99).unwrap();
        let f = frame();
        let mut delivered = 0;
        for _ in 0..50 {
            let tx = t.transmit(0, &f, Direction::Upload).unwrap();
            if let Some(got) = tx.delivered {
                assert_eq!(got, f, "delivered frames are never corrupted");
                delivered += 1;
            }
        }
        assert!(delivered > 40, "only {delivered}/50 delivered");
        assert!(t.stats().retries > 0);
        assert!(t.stats().corruptions_detected > 0);
        assert!(t.stats().extra_delays > 0);
    }

    #[test]
    fn same_seed_same_config_same_outcomes() {
        let faults = FaultConfig {
            drop_prob: 0.4,
            corrupt_prob: 0.2,
            delay_prob: 0.3,
            max_extra_delay_s: 1.0,
        };
        let cfg = config(faults, LinkProfile::constrained(1e5, 0.05).with_jitter(0.2));
        let run = || {
            let mut t = SimTransport::new(3, &cfg, 1234).unwrap();
            let f = frame();
            let mut log = Vec::new();
            for i in 0..30 {
                let tx = t.transmit(i % 3, &f, Direction::Upload).unwrap();
                log.push((tx.elapsed.as_secs_f64().to_bits(), tx.attempts));
            }
            (log, *t.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn unknown_device_and_invalid_config_error() {
        let cfg = config(FaultConfig::default(), LinkProfile::ideal());
        let mut t = SimTransport::new(1, &cfg, 0).unwrap();
        assert!(matches!(
            t.transmit(5, &frame(), Direction::Upload),
            Err(NetError::UnknownDevice { .. })
        ));
        assert!(t.set_link(9, LinkProfile::ideal()).is_err());
        let bad = NetConfig {
            faults: FaultConfig {
                drop_prob: 2.0,
                ..FaultConfig::default()
            },
            ..NetConfig::default()
        };
        assert!(SimTransport::new(1, &bad, 0).is_err());
    }

    #[test]
    fn fleet_scale_state_is_sparse_and_order_independent() {
        let faults = FaultConfig {
            drop_prob: 0.2,
            delay_prob: 0.3,
            max_extra_delay_s: 0.5,
            ..FaultConfig::default()
        };
        let cfg = config(
            faults,
            LinkProfile::constrained(1e6, 0.01).with_jitter(0.05),
        );
        // 100k enrolled devices cost nothing until they see traffic.
        let mut t = SimTransport::new(100_000, &cfg, 7).unwrap();
        assert_eq!(t.num_devices(), 100_000);
        assert_eq!(t.touched_devices(), 0);
        let f = frame();
        let a = t.transmit(99_999, &f, Direction::Upload).unwrap();
        let b = t.transmit(3, &f, Direction::Upload).unwrap();
        assert!(t.touched_devices() <= 2);
        // Per-device streams are pure in (seed, index): a transport that
        // serves the same devices in the opposite order sees identical
        // outcomes.
        let mut u = SimTransport::new(100_000, &cfg, 7).unwrap();
        let b2 = u.transmit(3, &f, Direction::Upload).unwrap();
        let a2 = u.transmit(99_999, &f, Direction::Upload).unwrap();
        assert_eq!(a, a2);
        assert_eq!(b, b2);
    }

    #[test]
    fn untouched_devices_report_zero_stats() {
        let cfg = config(FaultConfig::default(), LinkProfile::ideal());
        let t = SimTransport::new(10, &cfg, 1).unwrap();
        assert_eq!(t.device_stats(9), DeviceStats::default());
        // Out-of-range queries are also all-zero rather than a panic.
        assert_eq!(t.device_stats(10_000), DeviceStats::default());
    }

    #[test]
    fn add_device_extends_fleet_deterministically() {
        let cfg = config(FaultConfig::default(), LinkProfile::ideal());
        let mut a = SimTransport::new(2, &cfg, 5).unwrap();
        let id = a.add_device();
        assert_eq!(id, 2);
        assert_eq!(a.num_devices(), 3);
        // A transport built with 3 devices up front has identical streams.
        let b = SimTransport::new(3, &cfg, 5).unwrap();
        let fa = frame();
        let mut a2 = a.clone();
        let mut b2 = b.clone();
        let ta = a2.transmit(2, &fa, Direction::Upload).unwrap();
        let tb = b2.transmit(2, &fa, Direction::Upload).unwrap();
        assert_eq!(ta, tb);
    }
}
