//! The compact binary wire format for model exchanges.
//!
//! Every message on the simulated network is one self-describing *frame*:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"HNET"
//! 4       1     format version (currently 1)
//! 5       1     frame kind: 0 = full parameter vector, 1 = masked update
//! 6       4     sender id (u32 LE; SERVER_SENDER for broadcasts)
//! 10      4     cycle index (u32 LE)
//! 14      4     total parameter count n (u32 LE)
//! 18      4     active parameter count k (u32 LE; k = n for full frames)
//! 22      ⌈n/8⌉ activity bitset, LSB-first   (masked frames only)
//! ...     4·k   active parameter values, f32 LE
//! end-4   4     CRC32 (IEEE) over all preceding bytes, u32 LE
//! ```
//!
//! The `f32` payload is copied bit-for-bit (`to_le_bytes`/`from_le_bytes`),
//! so the codec is roundtrip-exact for every bit pattern including NaN
//! payload bits and infinities. Masked frames carry only the parameters
//! the sender actually trained; the receiver reconstructs the full vector
//! against its own copy of the broadcast global, which is valid because a
//! soft-trained client's masked-out parameters still hold exactly the
//! broadcast values (see `helios_fl::LocalUpdate::param_mask`). That is
//! what makes a straggler's upload genuinely smaller on the wire.

use crate::error::NetError;

/// Magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"HNET";

/// Current wire format version.
pub const VERSION: u8 = 1;

/// Sender id used for server→client broadcast frames.
pub const SERVER_SENDER: u32 = u32::MAX;

/// Fixed byte size of the frame header (before bitset and payload).
pub const HEADER_BYTES: usize = 22;

/// Byte size of the CRC32 trailer.
pub const CHECKSUM_BYTES: usize = 4;

const KIND_FULL: u8 = 0;
const KIND_MASKED: u8 = 1;

/// IEEE 802.3 CRC32 lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// The IEEE CRC32 of `data` (reflected polynomial 0xEDB88320).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// Byte-level breakdown of one frame — the report the benchmarks use to
/// show that a soft-trained straggler's upload is genuinely smaller than
/// a full-model upload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WireSize {
    /// Fixed header bytes ([`HEADER_BYTES`]).
    pub header_bytes: usize,
    /// Activity-bitset bytes (`⌈n/8⌉` for masked frames, 0 for full).
    pub mask_bytes: usize,
    /// `f32` payload bytes (4 per transmitted parameter).
    pub payload_bytes: usize,
    /// CRC trailer bytes ([`CHECKSUM_BYTES`]).
    pub checksum_bytes: usize,
}

impl WireSize {
    /// Size of a full-model frame carrying `params` parameters.
    pub fn full(params: usize) -> Self {
        WireSize {
            header_bytes: HEADER_BYTES,
            mask_bytes: 0,
            payload_bytes: 4 * params,
            checksum_bytes: CHECKSUM_BYTES,
        }
    }

    /// Size of a masked frame carrying `active` of `params` parameters.
    pub fn masked(params: usize, active: usize) -> Self {
        WireSize {
            header_bytes: HEADER_BYTES,
            mask_bytes: params.div_ceil(8),
            payload_bytes: 4 * active,
            checksum_bytes: CHECKSUM_BYTES,
        }
    }

    /// Total frame size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.header_bytes + self.mask_bytes + self.payload_bytes + self.checksum_bytes
    }
}

/// A decoded wire frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Sender id ([`SERVER_SENDER`] for broadcasts).
    pub sender: u32,
    /// Cycle index the frame belongs to.
    pub cycle: u32,
    /// The parameter payload.
    pub payload: Payload,
}

/// The parameter payload of a [`Frame`].
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Every parameter, in canonical order.
    Full(Vec<f32>),
    /// Only the actively trained parameters, plus the activity bitset
    /// locating them in the full vector.
    Masked {
        /// Per-parameter activity (length = total parameter count).
        mask: Vec<bool>,
        /// Values of the active parameters, in mask order.
        active: Vec<f32>,
    },
}

impl Frame {
    /// Total parameter count of the model this frame describes.
    pub fn param_len(&self) -> usize {
        match &self.payload {
            Payload::Full(p) => p.len(),
            Payload::Masked { mask, .. } => mask.len(),
        }
    }

    /// Reassembles the full parameter vector. For masked frames, inactive
    /// entries are filled from `base` — the receiver's copy of the global
    /// vector the sender trained from.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::ParamLengthMismatch`] when `base` does not
    /// match the frame's parameter count (full frames do not consult
    /// `base` and only check the length).
    pub fn into_params(self, base: &[f32]) -> Result<Vec<f32>, NetError> {
        match self.payload {
            Payload::Full(p) => {
                if p.len() != base.len() {
                    return Err(NetError::ParamLengthMismatch {
                        expected: base.len(),
                        actual: p.len(),
                    });
                }
                Ok(p)
            }
            Payload::Masked { mask, active } => {
                if mask.len() != base.len() {
                    return Err(NetError::ParamLengthMismatch {
                        expected: base.len(),
                        actual: mask.len(),
                    });
                }
                let mut out = base.to_vec();
                let mut next = active.iter();
                for (slot, &on) in out.iter_mut().zip(&mask) {
                    if on {
                        // Decode validated |active| == popcount(mask).
                        if let Some(&v) = next.next() {
                            *slot = v;
                        }
                    }
                }
                Ok(out)
            }
        }
    }
}

fn check_len(params: usize) -> Result<u32, NetError> {
    u32::try_from(params).map_err(|_| NetError::TooManyParams(params))
}

fn push_header(buf: &mut Vec<u8>, kind: u8, sender: u32, cycle: u32, n: u32, k: u32) {
    buf.extend_from_slice(&MAGIC);
    buf.push(VERSION);
    buf.push(kind);
    buf.extend_from_slice(&sender.to_le_bytes());
    buf.extend_from_slice(&cycle.to_le_bytes());
    buf.extend_from_slice(&n.to_le_bytes());
    buf.extend_from_slice(&k.to_le_bytes());
}

fn seal(mut buf: Vec<u8>) -> Vec<u8> {
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Encodes a full parameter vector.
///
/// # Errors
///
/// Returns [`NetError::TooManyParams`] when the vector exceeds the `u32`
/// length field.
pub fn encode_full(sender: u32, cycle: u32, params: &[f32]) -> Result<Vec<u8>, NetError> {
    let n = check_len(params.len())?;
    let mut buf = Vec::with_capacity(WireSize::full(params.len()).total_bytes());
    push_header(&mut buf, KIND_FULL, sender, cycle, n, n);
    for p in params {
        buf.extend_from_slice(&p.to_le_bytes());
    }
    Ok(seal(buf))
}

/// Encodes a masked update: the activity bitset plus only the active
/// parameter values.
///
/// # Errors
///
/// Returns [`NetError::MaskLengthMismatch`] when `mask` and `params`
/// disagree, or [`NetError::TooManyParams`] for oversized vectors.
pub fn encode_masked(
    sender: u32,
    cycle: u32,
    params: &[f32],
    mask: &[bool],
) -> Result<Vec<u8>, NetError> {
    if mask.len() != params.len() {
        return Err(NetError::MaskLengthMismatch {
            params: params.len(),
            mask: mask.len(),
        });
    }
    let n = check_len(params.len())?;
    let active = mask.iter().filter(|&&b| b).count();
    let k = check_len(active)?;
    let mut buf = Vec::with_capacity(WireSize::masked(params.len(), active).total_bytes());
    push_header(&mut buf, KIND_MASKED, sender, cycle, n, k);
    for chunk in mask.chunks(8) {
        let mut byte = 0u8;
        for (bit, &on) in chunk.iter().enumerate() {
            if on {
                byte |= 1 << bit;
            }
        }
        buf.push(byte);
    }
    for (p, &on) in params.iter().zip(mask) {
        if on {
            buf.extend_from_slice(&p.to_le_bytes());
        }
    }
    Ok(seal(buf))
}

/// Encodes a local update, choosing the masked layout when a mask is
/// present and the full layout otherwise.
///
/// # Errors
///
/// Same conditions as [`encode_full`] and [`encode_masked`].
pub fn encode_update(
    sender: u32,
    cycle: u32,
    params: &[f32],
    mask: Option<&[bool]>,
) -> Result<Vec<u8>, NetError> {
    match mask {
        Some(m) => encode_masked(sender, cycle, params, m),
        None => encode_full(sender, cycle, params),
    }
}

/// Fast integrity check: magic, minimum length, and CRC32. Used by the
/// transport to model receiver-side corruption detection without a full
/// decode.
pub fn verify(bytes: &[u8]) -> bool {
    if bytes.len() < HEADER_BYTES + CHECKSUM_BYTES || bytes[..4] != MAGIC {
        return false;
    }
    let body = &bytes[..bytes.len() - CHECKSUM_BYTES];
    let mut stored = [0u8; 4];
    stored.copy_from_slice(&bytes[bytes.len() - CHECKSUM_BYTES..]);
    crc32(body) == u32::from_le_bytes(stored)
}

fn read_u32(bytes: &[u8], offset: usize) -> u32 {
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&bytes[offset..offset + 4]);
    u32::from_le_bytes(raw)
}

/// Decodes and validates one frame.
///
/// # Errors
///
/// Returns a [`NetError`] describing the first violated invariant: bad
/// magic, unsupported version, truncation, trailing bytes, checksum
/// mismatch, unknown kind, or a bitset/active-count disagreement.
pub fn decode(bytes: &[u8]) -> Result<Frame, NetError> {
    if bytes.len() < HEADER_BYTES + CHECKSUM_BYTES {
        return Err(NetError::Truncated {
            needed: HEADER_BYTES + CHECKSUM_BYTES,
            available: bytes.len(),
        });
    }
    if bytes[..4] != MAGIC {
        return Err(NetError::BadMagic);
    }
    if bytes[4] != VERSION {
        return Err(NetError::UnsupportedVersion(bytes[4]));
    }
    let body = &bytes[..bytes.len() - CHECKSUM_BYTES];
    let stored = read_u32(bytes, bytes.len() - CHECKSUM_BYTES);
    let computed = crc32(body);
    if stored != computed {
        return Err(NetError::ChecksumMismatch { stored, computed });
    }
    let kind = bytes[5];
    let sender = read_u32(bytes, 6);
    let cycle = read_u32(bytes, 10);
    let n = read_u32(bytes, 14) as usize;
    let k = read_u32(bytes, 18) as usize;
    let expected = match kind {
        KIND_FULL => WireSize::full(n).total_bytes(),
        KIND_MASKED => WireSize::masked(n, k).total_bytes(),
        other => return Err(NetError::UnknownFrameKind(other)),
    };
    if bytes.len() < expected {
        return Err(NetError::Truncated {
            needed: expected,
            available: bytes.len(),
        });
    }
    if bytes.len() > expected {
        return Err(NetError::TrailingBytes {
            expected,
            actual: bytes.len(),
        });
    }
    let payload = match kind {
        KIND_FULL => {
            if k != n {
                return Err(NetError::MaskCountMismatch {
                    declared: k,
                    counted: n,
                });
            }
            let mut params = Vec::with_capacity(n);
            let mut off = HEADER_BYTES;
            for _ in 0..n {
                params.push(f32::from_le_bytes([
                    bytes[off],
                    bytes[off + 1],
                    bytes[off + 2],
                    bytes[off + 3],
                ]));
                off += 4;
            }
            Payload::Full(params)
        }
        _ => {
            let mask_bytes = n.div_ceil(8);
            let mut mask = Vec::with_capacity(n);
            for i in 0..n {
                let byte = bytes[HEADER_BYTES + i / 8];
                mask.push(byte & (1 << (i % 8)) != 0);
            }
            let counted = mask.iter().filter(|&&b| b).count();
            if counted != k {
                return Err(NetError::MaskCountMismatch {
                    declared: k,
                    counted,
                });
            }
            let mut active = Vec::with_capacity(k);
            let mut off = HEADER_BYTES + mask_bytes;
            for _ in 0..k {
                active.push(f32::from_le_bytes([
                    bytes[off],
                    bytes[off + 1],
                    bytes[off + 2],
                    bytes[off + 3],
                ]));
                off += 4;
            }
            Payload::Masked { mask, active }
        }
    };
    Ok(Frame {
        sender,
        cycle,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vector() {
        // The classic check value for IEEE CRC32.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn full_roundtrip_is_bitwise_exact() {
        let params = vec![
            0.0,
            -0.0,
            1.5,
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN_POSITIVE,
            f32::from_bits(0x7fc0_dead), // NaN with payload bits
        ];
        let frame = encode_full(3, 9, &params).unwrap();
        assert_eq!(frame.len(), WireSize::full(params.len()).total_bytes());
        assert!(verify(&frame));
        let decoded = decode(&frame).unwrap();
        assert_eq!(decoded.sender, 3);
        assert_eq!(decoded.cycle, 9);
        let out = decoded.into_params(&vec![0.0; params.len()]).unwrap();
        let bits: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
        let expect: Vec<u32> = params.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, expect);
    }

    #[test]
    fn masked_roundtrip_reconstructs_against_base() {
        let base = vec![10.0, 20.0, 30.0, 40.0, 50.0];
        let mut trained = base.clone();
        trained[1] = -2.0;
        trained[4] = 7.5;
        let mask = vec![false, true, false, false, true];
        let frame = encode_masked(1, 0, &trained, &mask).unwrap();
        assert_eq!(frame.len(), WireSize::masked(5, 2).total_bytes());
        let out = decode(&frame).unwrap().into_params(&base).unwrap();
        assert_eq!(out, trained);
    }

    #[test]
    fn masked_upload_is_smaller_than_full() {
        let n = 10_000;
        let active = 3_000;
        assert!(WireSize::masked(n, active).total_bytes() < WireSize::full(n).total_bytes());
    }

    #[test]
    fn corruption_is_detected_at_every_byte() {
        let frame = encode_full(0, 0, &[1.0, 2.0, 3.0]).unwrap();
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x41;
            assert!(!verify(&bad), "flip at byte {i} undetected");
            assert!(decode(&bad).is_err(), "flip at byte {i} decoded");
        }
    }

    #[test]
    fn decode_rejects_malformed_frames() {
        assert!(matches!(decode(&[]), Err(NetError::Truncated { .. })));
        let ok = encode_full(0, 0, &[1.0]).unwrap();
        let mut wrong_magic = ok.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(decode(&wrong_magic), Err(NetError::BadMagic)));
        let mut truncated = ok.clone();
        truncated.truncate(ok.len() - 5);
        assert!(decode(&truncated).is_err());
        let mut extended = ok.clone();
        extended.push(0);
        assert!(decode(&extended).is_err());
    }

    #[test]
    fn encode_masked_validates_mask_length() {
        let err = encode_masked(0, 0, &[1.0, 2.0], &[true]);
        assert!(matches!(err, Err(NetError::MaskLengthMismatch { .. })));
    }

    #[test]
    fn into_params_validates_base_length() {
        let frame = decode(&encode_full(0, 0, &[1.0, 2.0]).unwrap()).unwrap();
        assert!(matches!(
            frame.into_params(&[0.0; 3]),
            Err(NetError::ParamLengthMismatch { .. })
        ));
    }

    #[test]
    fn encode_update_picks_layout_by_mask() {
        let full = encode_update(0, 0, &[1.0, 2.0], None).unwrap();
        let masked = encode_update(0, 0, &[1.0, 2.0], Some(&[true, false])).unwrap();
        assert!(matches!(decode(&full).unwrap().payload, Payload::Full(_)));
        assert!(matches!(
            decode(&masked).unwrap().payload,
            Payload::Masked { .. }
        ));
    }
}
