//! The compact binary wire format for model exchanges.
//!
//! Every message on the simulated network is one self-describing *frame*
//! sharing a fixed 22-byte header:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"HNET"
//! 4       1     format version (1 or 2)
//! 5       1     frame kind (see below; the version pins the legal kinds)
//! 6       4     sender id (u32 LE; SERVER_SENDER for broadcasts)
//! 10      4     cycle index (u32 LE)
//! 14      4     total parameter count n (u32 LE)
//! 18      4     active/kept parameter count k (u32 LE; k = n for full)
//! ...           kind-specific body (below)
//! end-4   4     CRC32 (IEEE) over all preceding bytes, u32 LE
//! ```
//!
//! **Version 1** (the original format, byte-frozen — old captures must
//! keep decoding bit-for-bit):
//!
//! - kind 0 `full`: body = `4·n` f32 LE values.
//! - kind 1 `masked`: body = `⌈n/8⌉` activity bitset (LSB-first) +
//!   `4·k` f32 LE values of the active parameters, in mask order.
//!
//! **Version 2** (negotiated compression; see [`CompressionMode`]):
//!
//! - kind 2 `delta`: body = `⌈n/8⌉` changed-bitset + `4·k` raw f32
//!   values of the entries whose bits differ from the broadcast base.
//!   *Lossless*: reconstruction copies bits, no arithmetic.
//! - kind 3 `topk`: body = `4·k` strictly-ascending u32 LE indices +
//!   `4·k` raw f32 values. Kept entries are bit-exact; dropped entries
//!   revert to the base. Selection ranks `|update − base|` with
//!   [`f32::total_cmp`], ties broken toward the lower index.
//! - kind 4 `qf16`: body = optional `⌈n/8⌉` bitset (present iff k < n) +
//!   `2·k` IEEE binary16 LE *delta* values (`update − base`, round to
//!   nearest even, finite overflow saturating to ±[`F16_MAX`]).
//! - kind 5 `qi8`: body = optional bitset (iff k < n) + 4-byte f32 LE
//!   per-tensor scale + `k` i8 quantized deltas
//!   (`round(delta/scale)` clamped to ±127, `scale = max|delta|/127`).
//!
//! The v1 `f32` payloads are copied bit-for-bit
//! (`to_le_bytes`/`from_le_bytes`), so the codec is roundtrip-exact for
//! every bit pattern including NaN payload bits and infinities. Masked
//! frames carry only the parameters the sender actually trained; the
//! receiver reconstructs the full vector against its own copy of the
//! broadcast global, which is valid because a soft-trained client's
//! masked-out parameters still hold exactly the broadcast values (see
//! `helios_fl::LocalUpdate::param_mask`). The v2 modes push the same
//! idea further: every quantity on the wire is a deterministic pure
//! function of `(update, base)`, so any two receivers holding the same
//! broadcast reconstruct identical bits.

use crate::error::NetError;
use serde::{Deserialize, Serialize};

/// Magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"HNET";

/// Original wire format version (full + masked frames).
pub const VERSION: u8 = 1;

/// Wire format version carrying the compressed frame kinds.
pub const VERSION_V2: u8 = 2;

/// Sender id used for server→client broadcast frames.
pub const SERVER_SENDER: u32 = u32::MAX;

/// Fixed byte size of the frame header (before bitset and payload).
pub const HEADER_BYTES: usize = 22;

/// Byte size of the CRC32 trailer.
pub const CHECKSUM_BYTES: usize = 4;

/// Largest finite IEEE binary16 value; finite deltas beyond it saturate.
pub const F16_MAX: f32 = 65504.0;

const KIND_FULL: u8 = 0;
const KIND_MASKED: u8 = 1;
const KIND_DELTA: u8 = 2;
const KIND_TOPK: u8 = 3;
const KIND_QF16: u8 = 4;
const KIND_QI8: u8 = 5;

/// Upload frame layout negotiated for a run — the knob a
/// `CompressionConfig` (in `helios_net::link`) carries.
///
/// `None` keeps the byte-frozen v1 layouts; every other mode emits
/// version-2 frames encoded *against the broadcast global* the receiver
/// already holds. `Delta` is lossless (bit-copy of changed entries);
/// `TopK`, `QuantF16`, and `QuantInt8` are lossy with deterministic,
/// documented error behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CompressionMode {
    /// v1 frames (full / masked) — the bit-transparent default.
    #[default]
    None,
    /// v2 delta frames: bitwise-changed entries only. Lossless.
    Delta,
    /// v2 top-k sparsification by `|update − base|`. Lossy: dropped
    /// entries revert to the broadcast base.
    TopK,
    /// v2 f16-quantized deltas. Lossy: per-entry relative error ≤ 2⁻¹¹
    /// for deltas in the binary16 normal range.
    QuantF16,
    /// v2 int8-quantized deltas with a per-tensor scale. Lossy:
    /// per-entry absolute error ≤ scale/2 (up to f32 rounding).
    QuantInt8,
}

impl CompressionMode {
    /// Whether reconstruction is bit-exact for every update.
    pub fn is_lossless(self) -> bool {
        matches!(self, CompressionMode::None | CompressionMode::Delta)
    }

    /// The frame version this mode emits on the wire.
    pub fn frame_version(self) -> u8 {
        match self {
            CompressionMode::None => VERSION,
            _ => VERSION_V2,
        }
    }

    /// Stable lowercase tag used in traces and benchmark artifacts.
    pub fn as_str(self) -> &'static str {
        match self {
            CompressionMode::None => "none",
            CompressionMode::Delta => "delta",
            CompressionMode::TopK => "topk",
            CompressionMode::QuantF16 => "qf16",
            CompressionMode::QuantInt8 => "qi8",
        }
    }
}

/// The v2 mode tag of an encoded frame, peeked from the version and kind
/// bytes without a full decode — `None` for v1 frames (and for byte
/// strings too short or unrecognizable to classify). The transport uses
/// this to stamp `FrameSent` trace events; v1 frames deliberately map to
/// `None` so traces captured before wire v2 stay byte-identical.
pub fn frame_mode(bytes: &[u8]) -> Option<&'static str> {
    if bytes.len() < HEADER_BYTES || bytes[..4] != MAGIC || bytes[4] != VERSION_V2 {
        return None;
    }
    match bytes[5] {
        KIND_DELTA => Some("delta"),
        KIND_TOPK => Some("topk"),
        KIND_QF16 => Some("qf16"),
        KIND_QI8 => Some("qi8"),
        _ => None,
    }
}

/// IEEE 802.3 CRC32 lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// The IEEE CRC32 of `data` (reflected polynomial 0xEDB88320).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// Byte-level breakdown of one frame — the report the benchmarks use to
/// show that a soft-trained straggler's upload is genuinely smaller than
/// a full-model upload.
///
/// The `index_bytes`/`scale_bytes` fields arrived with wire v2 and carry
/// `#[serde(default)]`, so artifacts written before v2 still parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WireSize {
    /// Fixed header bytes ([`HEADER_BYTES`]).
    pub header_bytes: usize,
    /// Activity/changed-bitset bytes (`⌈n/8⌉` when present, else 0).
    pub mask_bytes: usize,
    /// Index-block bytes (4 per kept entry, top-k frames only).
    #[serde(default)]
    pub index_bytes: usize,
    /// Per-tensor scale bytes (4 for int8 frames, else 0).
    #[serde(default)]
    pub scale_bytes: usize,
    /// Value payload bytes (4 per f32, 2 per f16, 1 per i8 entry).
    pub payload_bytes: usize,
    /// CRC trailer bytes ([`CHECKSUM_BYTES`]).
    pub checksum_bytes: usize,
}

impl WireSize {
    /// Size of a full-model frame carrying `params` parameters.
    pub fn full(params: usize) -> Self {
        WireSize {
            header_bytes: HEADER_BYTES,
            mask_bytes: 0,
            index_bytes: 0,
            scale_bytes: 0,
            payload_bytes: 4 * params,
            checksum_bytes: CHECKSUM_BYTES,
        }
    }

    /// Size of a masked frame carrying `active` of `params` parameters.
    pub fn masked(params: usize, active: usize) -> Self {
        WireSize {
            header_bytes: HEADER_BYTES,
            mask_bytes: params.div_ceil(8),
            index_bytes: 0,
            scale_bytes: 0,
            payload_bytes: 4 * active,
            checksum_bytes: CHECKSUM_BYTES,
        }
    }

    /// Size of a v2 delta frame carrying `changed` of `params` entries
    /// (same shape as a masked frame: bitset + raw f32 values).
    pub fn delta(params: usize, changed: usize) -> Self {
        WireSize::masked(params, changed)
    }

    /// Size of a v2 top-k frame keeping `kept` entries.
    pub fn topk(kept: usize) -> Self {
        WireSize {
            header_bytes: HEADER_BYTES,
            mask_bytes: 0,
            index_bytes: 4 * kept,
            scale_bytes: 0,
            payload_bytes: 4 * kept,
            checksum_bytes: CHECKSUM_BYTES,
        }
    }

    /// Size of a v2 f16-quantized frame carrying `active` of `params`
    /// entries (the bitset is omitted when every entry is active).
    pub fn quant_f16(params: usize, active: usize) -> Self {
        WireSize {
            header_bytes: HEADER_BYTES,
            mask_bytes: if active < params {
                params.div_ceil(8)
            } else {
                0
            },
            index_bytes: 0,
            scale_bytes: 0,
            payload_bytes: 2 * active,
            checksum_bytes: CHECKSUM_BYTES,
        }
    }

    /// Size of a v2 int8-quantized frame carrying `active` of `params`
    /// entries plus its per-tensor scale.
    pub fn quant_i8(params: usize, active: usize) -> Self {
        WireSize {
            header_bytes: HEADER_BYTES,
            mask_bytes: if active < params {
                params.div_ceil(8)
            } else {
                0
            },
            index_bytes: 0,
            scale_bytes: 4,
            payload_bytes: active,
            checksum_bytes: CHECKSUM_BYTES,
        }
    }

    /// Total frame size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.header_bytes
            + self.mask_bytes
            + self.index_bytes
            + self.scale_bytes
            + self.payload_bytes
            + self.checksum_bytes
    }
}

/// Converts an `f32` to IEEE 754 binary16 bits, rounding to nearest even.
///
/// Deterministic pure-integer arithmetic — no platform FPU mode can
/// perturb it. Finite values beyond the binary16 range saturate to
/// ±[`F16_MAX`]; infinities stay infinite; NaNs stay NaN with the top 10
/// payload bits preserved (a zeroed payload is forced to 1 to keep the
/// value NaN). Values below the smallest subnormal round to signed zero.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;
    if exp == 0xff {
        if man == 0 {
            return sign | 0x7c00; // ±inf
        }
        let payload = ((man >> 13) as u16) & 0x03ff;
        return sign | 0x7c00 | if payload == 0 { 1 } else { payload };
    }
    let unbiased = exp - 127;
    if unbiased >= 16 {
        return sign | 0x7bff; // finite overflow → ±F16_MAX
    }
    if unbiased >= -14 {
        // Normal binary16 range: drop 13 mantissa bits with RNE.
        let mut h = (((unbiased + 15) as u32) << 10) | (man >> 13);
        let rest = man & 0x1fff;
        if rest > 0x1000 || (rest == 0x1000 && h & 1 != 0) {
            h += 1;
        }
        if h >= 0x7c00 {
            return sign | 0x7bff; // rounding carried past the max
        }
        return sign | h as u16;
    }
    if unbiased >= -25 {
        // Subnormal binary16: shift the (implicit-bit) mantissa into
        // units of 2⁻²⁴ with RNE.
        let m = man | 0x0080_0000;
        let shift = (-unbiased - 1) as u32;
        let h = (m >> shift) as u16;
        let rest = m & ((1 << shift) - 1);
        let half = 1u32 << (shift - 1);
        if rest > half || (rest == half && h & 1 != 0) {
            return sign | (h + 1);
        }
        return sign | h;
    }
    sign // underflow to signed zero
}

/// Converts IEEE 754 binary16 bits to the exactly-representable `f32`.
///
/// Every binary16 value (including subnormals, ±0, ±inf, and NaN
/// payloads) maps to a distinct `f32` bit pattern, so
/// `f32_to_f16_bits(f16_bits_to_f32(h)) == h` for all 65536 inputs.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = (u32::from(h) & 0x8000) << 16;
    let exp = (h >> 10) & 0x1f;
    let man = u32::from(h & 0x03ff);
    let bits = match exp {
        0 => {
            if man == 0 {
                sign // ±0
            } else {
                // Subnormal: normalize. msb ∈ 0..=9 is the position of
                // the leading set bit; value = man · 2⁻²⁴.
                let msb = 31 - man.leading_zeros();
                let exp32 = (msb + 103) << 23;
                let man32 = (man << (23 - msb)) & 0x007f_ffff;
                sign | exp32 | man32
            }
        }
        0x1f => sign | 0x7f80_0000 | (man << 13), // inf / NaN (payload kept)
        _ => sign | ((u32::from(exp) + 112) << 23) | (man << 13),
    };
    f32::from_bits(bits)
}

/// A decoded wire frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Sender id ([`SERVER_SENDER`] for broadcasts).
    pub sender: u32,
    /// Cycle index the frame belongs to.
    pub cycle: u32,
    /// The parameter payload.
    pub payload: Payload,
}

/// The parameter payload of a [`Frame`].
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Every parameter, in canonical order (v1).
    Full(Vec<f32>),
    /// Only the actively trained parameters, plus the activity bitset
    /// locating them in the full vector (v1).
    Masked {
        /// Per-parameter activity (length = total parameter count).
        mask: Vec<bool>,
        /// Values of the active parameters, in mask order.
        active: Vec<f32>,
    },
    /// Raw values of the entries whose bits differ from the broadcast
    /// base (v2, lossless).
    Delta {
        /// Per-parameter changed flag (length = total parameter count).
        changed: Vec<bool>,
        /// Values of the changed parameters, in bitset order.
        values: Vec<f32>,
    },
    /// The k largest-magnitude update entries by `|update − base|`
    /// (v2, lossy: dropped entries revert to base).
    TopK {
        /// Total parameter count of the model.
        len: usize,
        /// Strictly ascending indices of the kept entries.
        indices: Vec<u32>,
        /// Raw update values at those indices.
        values: Vec<f32>,
    },
    /// IEEE binary16 quantized deltas against the base (v2, lossy).
    QuantF16 {
        /// Per-parameter activity (length = total parameter count).
        mask: Vec<bool>,
        /// binary16 bits of `update − base` for the active entries.
        values: Vec<u16>,
    },
    /// int8 quantized deltas with a per-tensor scale (v2, lossy).
    QuantInt8 {
        /// Per-parameter activity (length = total parameter count).
        mask: Vec<bool>,
        /// Dequantization scale: `delta ≈ q · scale`.
        scale: f32,
        /// Quantized deltas for the active entries.
        values: Vec<i8>,
    },
}

/// Checks that a bitset/value pairing agrees: `|values| == popcount`.
fn check_bitset_pairing(mask: &[bool], values: usize) -> Result<(), NetError> {
    let counted = mask.iter().filter(|&&b| b).count();
    if counted != values {
        return Err(NetError::MaskCountMismatch {
            declared: values,
            counted,
        });
    }
    Ok(())
}

fn check_base(frame_len: usize, base: &[f32]) -> Result<(), NetError> {
    if frame_len != base.len() {
        return Err(NetError::ParamLengthMismatch {
            expected: base.len(),
            actual: frame_len,
        });
    }
    Ok(())
}

impl Frame {
    /// Total parameter count of the model this frame describes.
    pub fn param_len(&self) -> usize {
        match &self.payload {
            Payload::Full(p) => p.len(),
            Payload::Masked { mask, .. } => mask.len(),
            Payload::Delta { changed, .. } => changed.len(),
            Payload::TopK { len, .. } => *len,
            Payload::QuantF16 { mask, .. } => mask.len(),
            Payload::QuantInt8 { mask, .. } => mask.len(),
        }
    }

    /// Reassembles the full parameter vector. For every kind except
    /// `Full`, entries the frame does not carry are filled from `base` —
    /// the receiver's copy of the global vector the sender trained from.
    /// Quantized entries whose encoded delta is exactly ±0 keep the base
    /// bits untouched, so an update that didn't move a parameter never
    /// perturbs it (not even `-0.0` → `+0.0`).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::ParamLengthMismatch`] when `base` does not
    /// match the frame's parameter count (full frames do not consult
    /// `base` and only check the length), [`NetError::MaskCountMismatch`]
    /// when a bitset's population disagrees with the value count (decoded
    /// frames always agree, but a hand-built [`Frame`] may not), or
    /// [`NetError::BadIndexBlock`] for out-of-range or non-ascending
    /// top-k indices.
    pub fn into_params(self, base: &[f32]) -> Result<Vec<f32>, NetError> {
        match self.payload {
            Payload::Full(p) => {
                check_base(p.len(), base)?;
                Ok(p)
            }
            Payload::Masked { mask, active } => {
                check_base(mask.len(), base)?;
                check_bitset_pairing(&mask, active.len())?;
                let mut out = base.to_vec();
                let mut next = active.iter();
                for (slot, &on) in out.iter_mut().zip(&mask) {
                    if on {
                        if let Some(&v) = next.next() {
                            *slot = v;
                        }
                    }
                }
                Ok(out)
            }
            Payload::Delta { changed, values } => {
                check_base(changed.len(), base)?;
                check_bitset_pairing(&changed, values.len())?;
                let mut out = base.to_vec();
                let mut next = values.iter();
                for (slot, &on) in out.iter_mut().zip(&changed) {
                    if on {
                        if let Some(&v) = next.next() {
                            *slot = v;
                        }
                    }
                }
                Ok(out)
            }
            Payload::TopK {
                len,
                indices,
                values,
            } => {
                check_base(len, base)?;
                if indices.len() != values.len() {
                    return Err(NetError::MaskCountMismatch {
                        declared: values.len(),
                        counted: indices.len(),
                    });
                }
                check_indices(&indices, len)?;
                let mut out = base.to_vec();
                for (&i, &v) in indices.iter().zip(&values) {
                    out[i as usize] = v;
                }
                Ok(out)
            }
            Payload::QuantF16 { mask, values } => {
                check_base(mask.len(), base)?;
                check_bitset_pairing(&mask, values.len())?;
                let mut out = base.to_vec();
                let mut next = values.iter();
                for (slot, &on) in out.iter_mut().zip(&mask) {
                    if on {
                        if let Some(&h) = next.next() {
                            // ±0 delta: keep the base bits untouched.
                            if h & 0x7fff != 0 {
                                *slot += f16_bits_to_f32(h);
                            }
                        }
                    }
                }
                Ok(out)
            }
            Payload::QuantInt8 {
                mask,
                scale,
                values,
            } => {
                check_base(mask.len(), base)?;
                check_bitset_pairing(&mask, values.len())?;
                if !(scale.is_finite() && scale >= 0.0) {
                    return Err(NetError::BadScale {
                        scale_bits: scale.to_bits(),
                    });
                }
                let mut out = base.to_vec();
                let mut next = values.iter();
                for (slot, &on) in out.iter_mut().zip(&mask) {
                    if on {
                        if let Some(&q) = next.next() {
                            if q != 0 {
                                *slot += f32::from(q) * scale;
                            }
                        }
                    }
                }
                Ok(out)
            }
        }
    }
}

/// Validates a top-k index block: strictly ascending, all below `len`.
fn check_indices(indices: &[u32], len: usize) -> Result<(), NetError> {
    let mut prev: Option<u32> = None;
    for &i in indices {
        if i as usize >= len {
            return Err(NetError::BadIndexBlock {
                what: format!("index {i} out of range for {len} parameters"),
            });
        }
        if let Some(p) = prev {
            if i <= p {
                return Err(NetError::BadIndexBlock {
                    what: format!("indices not strictly ascending ({p} then {i})"),
                });
            }
        }
        prev = Some(i);
    }
    Ok(())
}

fn check_len(params: usize) -> Result<u32, NetError> {
    u32::try_from(params).map_err(|_| NetError::TooManyParams(params))
}

fn push_header(buf: &mut Vec<u8>, kind: u8, sender: u32, cycle: u32, n: u32, k: u32) {
    buf.extend_from_slice(&MAGIC);
    buf.push(if kind <= KIND_MASKED {
        VERSION
    } else {
        VERSION_V2
    });
    buf.push(kind);
    buf.extend_from_slice(&sender.to_le_bytes());
    buf.extend_from_slice(&cycle.to_le_bytes());
    buf.extend_from_slice(&n.to_le_bytes());
    buf.extend_from_slice(&k.to_le_bytes());
}

fn push_bitset(buf: &mut Vec<u8>, bits: &[bool]) {
    for chunk in bits.chunks(8) {
        let mut byte = 0u8;
        for (bit, &on) in chunk.iter().enumerate() {
            if on {
                byte |= 1 << bit;
            }
        }
        buf.push(byte);
    }
}

fn seal(mut buf: Vec<u8>) -> Vec<u8> {
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Encodes a full parameter vector.
///
/// # Errors
///
/// Returns [`NetError::TooManyParams`] when the vector exceeds the `u32`
/// length field.
pub fn encode_full(sender: u32, cycle: u32, params: &[f32]) -> Result<Vec<u8>, NetError> {
    let n = check_len(params.len())?;
    let mut buf = Vec::with_capacity(WireSize::full(params.len()).total_bytes());
    push_header(&mut buf, KIND_FULL, sender, cycle, n, n);
    for p in params {
        buf.extend_from_slice(&p.to_le_bytes());
    }
    Ok(seal(buf))
}

/// Encodes a masked update: the activity bitset plus only the active
/// parameter values.
///
/// # Errors
///
/// Returns [`NetError::MaskLengthMismatch`] when `mask` and `params`
/// disagree, or [`NetError::TooManyParams`] for oversized vectors.
pub fn encode_masked(
    sender: u32,
    cycle: u32,
    params: &[f32],
    mask: &[bool],
) -> Result<Vec<u8>, NetError> {
    if mask.len() != params.len() {
        return Err(NetError::MaskLengthMismatch {
            params: params.len(),
            mask: mask.len(),
        });
    }
    let n = check_len(params.len())?;
    let active = mask.iter().filter(|&&b| b).count();
    let k = check_len(active)?;
    let mut buf = Vec::with_capacity(WireSize::masked(params.len(), active).total_bytes());
    push_header(&mut buf, KIND_MASKED, sender, cycle, n, k);
    push_bitset(&mut buf, mask);
    for (p, &on) in params.iter().zip(mask) {
        if on {
            buf.extend_from_slice(&p.to_le_bytes());
        }
    }
    Ok(seal(buf))
}

/// Encodes a v2 delta frame: the bitset of entries whose bits differ
/// from `base`, plus their raw f32 values. Lossless by construction —
/// reconstruction copies bits, no arithmetic — and strictly no larger
/// than the masked layout whenever the update obeys the soft-training
/// invariant (masked-out entries hold the broadcast values, so they are
/// never "changed").
///
/// # Errors
///
/// Returns [`NetError::ParamLengthMismatch`] when `base` and `params`
/// disagree, or [`NetError::TooManyParams`] for oversized vectors.
pub fn encode_delta(
    sender: u32,
    cycle: u32,
    params: &[f32],
    base: &[f32],
) -> Result<Vec<u8>, NetError> {
    check_base(params.len(), base)?;
    let n = check_len(params.len())?;
    let changed: Vec<bool> = params
        .iter()
        .zip(base)
        .map(|(p, b)| p.to_bits() != b.to_bits())
        .collect();
    let count = changed.iter().filter(|&&c| c).count();
    let k = check_len(count)?;
    let mut buf = Vec::with_capacity(WireSize::delta(params.len(), count).total_bytes());
    push_header(&mut buf, KIND_DELTA, sender, cycle, n, k);
    push_bitset(&mut buf, &changed);
    for (p, &on) in params.iter().zip(&changed) {
        if on {
            buf.extend_from_slice(&p.to_le_bytes());
        }
    }
    Ok(seal(buf))
}

/// Encodes a v2 top-k frame keeping (at most) the `k` largest-magnitude
/// entries of `update − base` as `(index, raw value)` pairs.
///
/// Selection is fully deterministic: candidates are the entries whose
/// bits differ from `base` (an unchanged entry carries no information),
/// ranked by `|params[i] − base[i]|` descending under
/// [`f32::total_cmp`] — which totally orders NaN magnitudes above
/// infinity, so NaN-carrying entries are always kept — with ties broken
/// toward the lower index. Kept entries reconstruct bit-exactly; dropped
/// entries revert to the base.
///
/// # Errors
///
/// Returns [`NetError::ParamLengthMismatch`] when `base` and `params`
/// disagree, or [`NetError::TooManyParams`] for oversized vectors.
pub fn encode_topk(
    sender: u32,
    cycle: u32,
    params: &[f32],
    base: &[f32],
    k: usize,
) -> Result<Vec<u8>, NetError> {
    check_base(params.len(), base)?;
    let n = check_len(params.len())?;
    let mut candidates: Vec<(u32, f32)> = params
        .iter()
        .zip(base)
        .enumerate()
        .filter(|(_, (p, b))| p.to_bits() != b.to_bits())
        .map(|(i, (p, b))| (i as u32, (p - b).abs()))
        .collect();
    candidates.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    candidates.truncate(k);
    let mut kept: Vec<u32> = candidates.into_iter().map(|(i, _)| i).collect();
    kept.sort_unstable();
    let kk = check_len(kept.len())?;
    let mut buf = Vec::with_capacity(WireSize::topk(kept.len()).total_bytes());
    push_header(&mut buf, KIND_TOPK, sender, cycle, n, kk);
    for &i in &kept {
        buf.extend_from_slice(&i.to_le_bytes());
    }
    for &i in &kept {
        buf.extend_from_slice(&params[i as usize].to_le_bytes());
    }
    Ok(seal(buf))
}

/// Encodes a v2 f16-quantized frame: `update − base` deltas of the
/// active entries as IEEE binary16, round-to-nearest-even, finite
/// overflow saturating to ±[`F16_MAX`]. The bitset rides along only when
/// a mask leaves some entries inactive.
///
/// Determinism argument: binary16 conversion is pure integer bit
/// manipulation ([`f32_to_f16_bits`]), and the delta subtraction is a
/// single IEEE f32 operation — identical on every host.
///
/// # Errors
///
/// Returns [`NetError::ParamLengthMismatch`] when `base` and `params`
/// disagree, [`NetError::MaskLengthMismatch`] for a bad mask, or
/// [`NetError::TooManyParams`] for oversized vectors.
pub fn encode_quant_f16(
    sender: u32,
    cycle: u32,
    params: &[f32],
    mask: Option<&[bool]>,
    base: &[f32],
) -> Result<Vec<u8>, NetError> {
    check_base(params.len(), base)?;
    let (n, k, all) = quant_extent(params.len(), mask)?;
    let mut buf = Vec::with_capacity(WireSize::quant_f16(params.len(), k as usize).total_bytes());
    push_header(&mut buf, KIND_QF16, sender, cycle, n, k);
    if let Some(m) = mask {
        if !all {
            push_bitset(&mut buf, m);
        }
    }
    for (i, (p, b)) in params.iter().zip(base).enumerate() {
        if mask.is_none_or(|m| m[i]) {
            // Bit-equal entries encode a zero delta so the receiver keeps
            // the base bits exactly (`inf - inf` would otherwise smuggle
            // a NaN into an unchanged slot).
            let h = if p.to_bits() == b.to_bits() {
                0
            } else {
                f32_to_f16_bits(p - b)
            };
            buf.extend_from_slice(&h.to_le_bytes());
        }
    }
    Ok(seal(buf))
}

/// Encodes a v2 int8-quantized frame: active deltas scaled by the
/// per-tensor scale `max|delta|/127` (computed over *finite* deltas;
/// non-finite deltas quantize to 0 and reconstruct as the base value),
/// rounded half-away-from-zero and clamped to ±127.
///
/// Determinism argument: the scale is a fold over the deltas in index
/// order with `f32::max` (order-insensitive for the finite values it
/// sees), and `f32::round` ties away from zero — both exactly specified
/// by IEEE 754, so every host produces identical bytes.
///
/// # Errors
///
/// Returns [`NetError::ParamLengthMismatch`] when `base` and `params`
/// disagree, [`NetError::MaskLengthMismatch`] for a bad mask, or
/// [`NetError::TooManyParams`] for oversized vectors.
pub fn encode_quant_i8(
    sender: u32,
    cycle: u32,
    params: &[f32],
    mask: Option<&[bool]>,
    base: &[f32],
) -> Result<Vec<u8>, NetError> {
    check_base(params.len(), base)?;
    let (n, k, all) = quant_extent(params.len(), mask)?;
    let mut max_abs = 0.0f32;
    for (i, (p, b)) in params.iter().zip(base).enumerate() {
        if mask.is_none_or(|m| m[i]) {
            let d = p - b;
            if d.is_finite() {
                max_abs = max_abs.max(d.abs());
            }
        }
    }
    let scale = max_abs / 127.0;
    let mut buf = Vec::with_capacity(WireSize::quant_i8(params.len(), k as usize).total_bytes());
    push_header(&mut buf, KIND_QI8, sender, cycle, n, k);
    if let Some(m) = mask {
        if !all {
            push_bitset(&mut buf, m);
        }
    }
    buf.extend_from_slice(&scale.to_le_bytes());
    for (i, (p, b)) in params.iter().zip(base).enumerate() {
        if mask.is_none_or(|m| m[i]) {
            let d = p - b;
            let q = if d.is_finite() && scale > 0.0 {
                (d / scale).round().clamp(-127.0, 127.0) as i8
            } else {
                0
            };
            buf.push(q as u8);
        }
    }
    Ok(seal(buf))
}

/// Shared mask bookkeeping for the quantized encoders: validates the
/// mask length and returns `(n, k, mask_covers_everything)`.
fn quant_extent(params: usize, mask: Option<&[bool]>) -> Result<(u32, u32, bool), NetError> {
    let n = check_len(params)?;
    match mask {
        Some(m) => {
            if m.len() != params {
                return Err(NetError::MaskLengthMismatch {
                    params,
                    mask: m.len(),
                });
            }
            let active = m.iter().filter(|&&b| b).count();
            Ok((n, check_len(active)?, active == params))
        }
        None => Ok((n, n, true)),
    }
}

/// Encodes a local update, choosing the masked layout when a mask is
/// present and the full layout otherwise.
///
/// # Errors
///
/// Same conditions as [`encode_full`] and [`encode_masked`].
pub fn encode_update(
    sender: u32,
    cycle: u32,
    params: &[f32],
    mask: Option<&[bool]>,
) -> Result<Vec<u8>, NetError> {
    match mask {
        Some(m) => encode_masked(sender, cycle, params, m),
        None => encode_full(sender, cycle, params),
    }
}

/// Fast integrity check: magic, minimum length, supported version, and
/// CRC32. Used by the transport to model receiver-side corruption
/// detection without a full decode.
///
/// The version byte is checked so that `verify` never accepts a frame
/// [`decode`] would reject as [`NetError::UnsupportedVersion`] — without
/// it, a corrupted-in-flight version byte whose CRC happened to survive
/// (or a newer sender talking to an older receiver) would pass the
/// receiver's integrity gate and only fail later, outside the
/// retry/fault-injection path that is supposed to handle it.
pub fn verify(bytes: &[u8]) -> bool {
    if bytes.len() < HEADER_BYTES + CHECKSUM_BYTES || bytes[..4] != MAGIC {
        return false;
    }
    if bytes[4] != VERSION && bytes[4] != VERSION_V2 {
        return false;
    }
    let body = &bytes[..bytes.len() - CHECKSUM_BYTES];
    let mut stored = [0u8; 4];
    stored.copy_from_slice(&bytes[bytes.len() - CHECKSUM_BYTES..]);
    crc32(body) == u32::from_le_bytes(stored)
}

fn read_u32(bytes: &[u8], offset: usize) -> u32 {
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&bytes[offset..offset + 4]);
    u32::from_le_bytes(raw)
}

fn read_f32(bytes: &[u8], offset: usize) -> f32 {
    f32::from_bits(read_u32(bytes, offset))
}

/// Reads an LSB-first bitset of `n` bits starting at `offset` and checks
/// its population against the declared count `k`.
fn read_bitset(bytes: &[u8], offset: usize, n: usize, k: usize) -> Result<Vec<bool>, NetError> {
    let mut mask = Vec::with_capacity(n);
    for i in 0..n {
        let byte = bytes[offset + i / 8];
        mask.push(byte & (1 << (i % 8)) != 0);
    }
    let counted = mask.iter().filter(|&&b| b).count();
    if counted != k {
        return Err(NetError::MaskCountMismatch {
            declared: k,
            counted,
        });
    }
    Ok(mask)
}

fn read_f32_block(bytes: &[u8], offset: usize, count: usize) -> Vec<f32> {
    (0..count)
        .map(|i| read_f32(bytes, offset + 4 * i))
        .collect()
}

/// Decodes and validates one frame (either version).
///
/// # Errors
///
/// Returns a [`NetError`] describing the first violated invariant: bad
/// magic, unsupported version, truncation, trailing bytes, checksum
/// mismatch, unknown kind (each version pins its own legal kind set),
/// a bitset/active-count disagreement, a malformed top-k index block,
/// or a non-finite quantization scale.
pub fn decode(bytes: &[u8]) -> Result<Frame, NetError> {
    if bytes.len() < HEADER_BYTES + CHECKSUM_BYTES {
        return Err(NetError::Truncated {
            needed: HEADER_BYTES + CHECKSUM_BYTES,
            available: bytes.len(),
        });
    }
    if bytes[..4] != MAGIC {
        return Err(NetError::BadMagic);
    }
    let version = bytes[4];
    if version != VERSION && version != VERSION_V2 {
        return Err(NetError::UnsupportedVersion(version));
    }
    let body = &bytes[..bytes.len() - CHECKSUM_BYTES];
    let stored = read_u32(bytes, bytes.len() - CHECKSUM_BYTES);
    let computed = crc32(body);
    if stored != computed {
        return Err(NetError::ChecksumMismatch { stored, computed });
    }
    let kind = bytes[5];
    let sender = read_u32(bytes, 6);
    let cycle = read_u32(bytes, 10);
    let n = read_u32(bytes, 14) as usize;
    let k = read_u32(bytes, 18) as usize;
    // Each version owns its kind set: a v1 receiver must keep decoding
    // old captures unchanged, and a v2 kind under a v1 version byte is a
    // malformed frame, not a negotiation.
    let version_ok = match kind {
        KIND_FULL | KIND_MASKED => version == VERSION,
        KIND_DELTA | KIND_TOPK | KIND_QF16 | KIND_QI8 => version == VERSION_V2,
        _ => false,
    };
    if !version_ok {
        return Err(NetError::UnknownFrameKind(kind));
    }
    if k > n {
        return Err(NetError::MaskCountMismatch {
            declared: k,
            counted: n,
        });
    }
    let expected = match kind {
        KIND_FULL => WireSize::full(n).total_bytes(),
        KIND_MASKED => WireSize::masked(n, k).total_bytes(),
        KIND_DELTA => WireSize::delta(n, k).total_bytes(),
        KIND_TOPK => WireSize::topk(k).total_bytes(),
        KIND_QF16 => WireSize::quant_f16(n, k).total_bytes(),
        _ => WireSize::quant_i8(n, k).total_bytes(),
    };
    if bytes.len() < expected {
        return Err(NetError::Truncated {
            needed: expected,
            available: bytes.len(),
        });
    }
    if bytes.len() > expected {
        return Err(NetError::TrailingBytes {
            expected,
            actual: bytes.len(),
        });
    }
    let payload = match kind {
        KIND_FULL => {
            if k != n {
                return Err(NetError::MaskCountMismatch {
                    declared: k,
                    counted: n,
                });
            }
            Payload::Full(read_f32_block(bytes, HEADER_BYTES, n))
        }
        KIND_MASKED | KIND_DELTA => {
            let mask_bytes = n.div_ceil(8);
            let mask = read_bitset(bytes, HEADER_BYTES, n, k)?;
            let values = read_f32_block(bytes, HEADER_BYTES + mask_bytes, k);
            if kind == KIND_MASKED {
                Payload::Masked {
                    mask,
                    active: values,
                }
            } else {
                Payload::Delta {
                    changed: mask,
                    values,
                }
            }
        }
        KIND_TOPK => {
            let indices: Vec<u32> = (0..k)
                .map(|i| read_u32(bytes, HEADER_BYTES + 4 * i))
                .collect();
            check_indices(&indices, n)?;
            let values = read_f32_block(bytes, HEADER_BYTES + 4 * k, k);
            Payload::TopK {
                len: n,
                indices,
                values,
            }
        }
        KIND_QF16 => {
            let (mask, off) = read_quant_mask(bytes, n, k)?;
            let values = (0..k)
                .map(|i| u16::from_le_bytes([bytes[off + 2 * i], bytes[off + 2 * i + 1]]))
                .collect();
            Payload::QuantF16 { mask, values }
        }
        _ => {
            let (mask, off) = read_quant_mask(bytes, n, k)?;
            let scale = read_f32(bytes, off);
            if !(scale.is_finite() && scale >= 0.0) {
                return Err(NetError::BadScale {
                    scale_bits: scale.to_bits(),
                });
            }
            let values = (0..k).map(|i| bytes[off + 4 + i] as i8).collect();
            Payload::QuantInt8 {
                mask,
                scale,
                values,
            }
        }
    };
    Ok(Frame {
        sender,
        cycle,
        payload,
    })
}

/// Reads the optional activity bitset of a quantized frame (present iff
/// `k < n`; an omitted bitset means every entry is active). Returns the
/// materialized mask and the offset just past it.
fn read_quant_mask(bytes: &[u8], n: usize, k: usize) -> Result<(Vec<bool>, usize), NetError> {
    if k < n {
        let mask = read_bitset(bytes, HEADER_BYTES, n, k)?;
        Ok((mask, HEADER_BYTES + n.div_ceil(8)))
    } else {
        Ok((vec![true; n], HEADER_BYTES))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vector() {
        // The classic check value for IEEE CRC32.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn full_roundtrip_is_bitwise_exact() {
        let params = vec![
            0.0,
            -0.0,
            1.5,
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN_POSITIVE,
            f32::from_bits(0x7fc0_dead), // NaN with payload bits
        ];
        let frame = encode_full(3, 9, &params).unwrap();
        assert_eq!(frame.len(), WireSize::full(params.len()).total_bytes());
        assert!(verify(&frame));
        let decoded = decode(&frame).unwrap();
        assert_eq!(decoded.sender, 3);
        assert_eq!(decoded.cycle, 9);
        let out = decoded.into_params(&vec![0.0; params.len()]).unwrap();
        let bits: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
        let expect: Vec<u32> = params.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, expect);
    }

    #[test]
    fn masked_roundtrip_reconstructs_against_base() {
        let base = vec![10.0, 20.0, 30.0, 40.0, 50.0];
        let mut trained = base.clone();
        trained[1] = -2.0;
        trained[4] = 7.5;
        let mask = vec![false, true, false, false, true];
        let frame = encode_masked(1, 0, &trained, &mask).unwrap();
        assert_eq!(frame.len(), WireSize::masked(5, 2).total_bytes());
        let out = decode(&frame).unwrap().into_params(&base).unwrap();
        assert_eq!(out, trained);
    }

    #[test]
    fn masked_upload_is_smaller_than_full() {
        let n = 10_000;
        let active = 3_000;
        assert!(WireSize::masked(n, active).total_bytes() < WireSize::full(n).total_bytes());
    }

    #[test]
    fn corruption_is_detected_at_every_byte() {
        let frame = encode_full(0, 0, &[1.0, 2.0, 3.0]).unwrap();
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x41;
            assert!(!verify(&bad), "flip at byte {i} undetected");
            assert!(decode(&bad).is_err(), "flip at byte {i} decoded");
        }
    }

    #[test]
    fn decode_rejects_malformed_frames() {
        assert!(matches!(decode(&[]), Err(NetError::Truncated { .. })));
        let ok = encode_full(0, 0, &[1.0]).unwrap();
        let mut wrong_magic = ok.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(decode(&wrong_magic), Err(NetError::BadMagic)));
        let mut truncated = ok.clone();
        truncated.truncate(ok.len() - 5);
        assert!(decode(&truncated).is_err());
        let mut extended = ok.clone();
        extended.push(0);
        assert!(decode(&extended).is_err());
    }

    #[test]
    fn encode_masked_validates_mask_length() {
        let err = encode_masked(0, 0, &[1.0, 2.0], &[true]);
        assert!(matches!(err, Err(NetError::MaskLengthMismatch { .. })));
    }

    #[test]
    fn into_params_validates_base_length() {
        let frame = decode(&encode_full(0, 0, &[1.0, 2.0]).unwrap()).unwrap();
        assert!(matches!(
            frame.into_params(&[0.0; 3]),
            Err(NetError::ParamLengthMismatch { .. })
        ));
    }

    #[test]
    fn encode_update_picks_layout_by_mask() {
        let full = encode_update(0, 0, &[1.0, 2.0], None).unwrap();
        let masked = encode_update(0, 0, &[1.0, 2.0], Some(&[true, false])).unwrap();
        assert!(matches!(decode(&full).unwrap().payload, Payload::Full(_)));
        assert!(matches!(
            decode(&masked).unwrap().payload,
            Payload::Masked { .. }
        ));
    }

    // ---- wire v2 + hardening tests (PR: wire-protocol v2) ----

    /// Regression: a masked frame whose `active` vector is *shorter* than
    /// the mask popcount used to silently leave trailing entries at their
    /// base values. It must be a typed error instead.
    #[test]
    fn into_params_rejects_short_active_vector() {
        let frame = Frame {
            sender: 0,
            cycle: 0,
            payload: Payload::Masked {
                mask: vec![true, false, true],
                active: vec![1.0], // popcount is 2
            },
        };
        assert!(matches!(
            frame.into_params(&[0.0; 3]),
            Err(NetError::MaskCountMismatch {
                declared: 1,
                counted: 2
            })
        ));
    }

    /// Regression: a *longer* `active` vector used to be silently
    /// truncated, dropping trailing values on the floor.
    #[test]
    fn into_params_rejects_long_active_vector() {
        let frame = Frame {
            sender: 0,
            cycle: 0,
            payload: Payload::Masked {
                mask: vec![true, false, true],
                active: vec![1.0, 2.0, 3.0], // popcount is 2
            },
        };
        assert!(matches!(
            frame.into_params(&[0.0; 3]),
            Err(NetError::MaskCountMismatch {
                declared: 3,
                counted: 2
            })
        ));
    }

    /// The same pairing check guards the v2 bitset payloads.
    #[test]
    fn into_params_checks_pairing_on_v2_payloads() {
        let frame = Frame {
            sender: 0,
            cycle: 0,
            payload: Payload::Delta {
                changed: vec![true, true],
                values: vec![1.0],
            },
        };
        assert!(matches!(
            frame.into_params(&[0.0; 2]),
            Err(NetError::MaskCountMismatch { .. })
        ));
        let frame = Frame {
            sender: 0,
            cycle: 0,
            payload: Payload::QuantF16 {
                mask: vec![true, true],
                values: vec![0x3c00, 0x3c00, 0x3c00],
            },
        };
        assert!(matches!(
            frame.into_params(&[0.0; 2]),
            Err(NetError::MaskCountMismatch { .. })
        ));
        let frame = Frame {
            sender: 0,
            cycle: 0,
            payload: Payload::QuantInt8 {
                mask: vec![true, false],
                scale: 1.0,
                values: vec![],
            },
        };
        assert!(matches!(
            frame.into_params(&[0.0; 2]),
            Err(NetError::MaskCountMismatch { .. })
        ));
    }

    /// Regression: `verify` used to accept any version byte as long as
    /// magic and CRC checked out, disagreeing with `decode`.
    #[test]
    fn verify_rejects_unknown_version_even_with_valid_crc() {
        let mut frame = encode_full(0, 0, &[1.0, 2.0]).unwrap();
        frame[4] = 3; // unknown version
        let body = frame.len() - CHECKSUM_BYTES;
        let crc = crc32(&frame[..body]).to_le_bytes();
        frame[body..].copy_from_slice(&crc); // re-seal so only the version is wrong
        assert!(!verify(&frame));
        assert!(matches!(
            decode(&frame),
            Err(NetError::UnsupportedVersion(3))
        ));
    }

    #[test]
    fn verify_accepts_v2_frames() {
        let base = vec![1.0, 2.0, 3.0];
        let frame = encode_delta(0, 0, &[1.0, 2.5, 3.0], &base).unwrap();
        assert_eq!(frame[4], VERSION_V2);
        assert!(verify(&frame));
    }

    /// Decode enforces the kind ↔ version pairing in both directions.
    #[test]
    fn decode_rejects_mismatched_kind_and_version() {
        // A v1 frame claiming a v2 kind...
        let mut frame = encode_full(0, 0, &[1.0]).unwrap();
        frame[5] = KIND_DELTA;
        let body = frame.len() - CHECKSUM_BYTES;
        let crc = crc32(&frame[..body]).to_le_bytes();
        frame[body..].copy_from_slice(&crc);
        assert!(matches!(
            decode(&frame),
            Err(NetError::UnknownFrameKind { .. })
        ));
        // ...and a v2 frame claiming a v1 kind.
        let mut frame = encode_delta(0, 0, &[2.0], &[1.0]).unwrap();
        frame[5] = KIND_FULL;
        let body = frame.len() - CHECKSUM_BYTES;
        let crc = crc32(&frame[..body]).to_le_bytes();
        frame[body..].copy_from_slice(&crc);
        assert!(matches!(
            decode(&frame),
            Err(NetError::UnknownFrameKind { .. })
        ));
    }

    #[test]
    fn delta_roundtrip_is_bitwise_exact() {
        let base = vec![1.0, -0.0, f32::NAN, 4.0, 5.0];
        let mut update = base.clone();
        update[0] = 1.5;
        update[2] = f32::from_bits(0x7fc0_beef); // NaN → different NaN
        update[4] = f32::NEG_INFINITY;
        let frame = encode_delta(7, 3, &update, &base).unwrap();
        assert_eq!(frame.len(), WireSize::delta(5, 3).total_bytes());
        let out = decode(&frame).unwrap().into_params(&base).unwrap();
        let bits: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
        let expect: Vec<u32> = update.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, expect);
    }

    #[test]
    fn delta_of_identical_params_is_empty() {
        let base = vec![1.0, f32::NAN, -0.0];
        let frame = encode_delta(0, 0, &base, &base).unwrap();
        assert_eq!(frame.len(), WireSize::delta(3, 0).total_bytes());
        let out = decode(&frame).unwrap().into_params(&base).unwrap();
        let bits: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
        let expect: Vec<u32> = base.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, expect);
    }

    #[test]
    fn topk_keeps_largest_deltas_bit_exact_and_reverts_the_rest() {
        let base = vec![0.0; 5];
        let update = vec![0.1, -3.0, 0.2, 2.0, 0.0];
        let frame = encode_topk(0, 0, &update, &base, 2).unwrap();
        assert_eq!(frame.len(), WireSize::topk(2).total_bytes());
        let out = decode(&frame).unwrap().into_params(&base).unwrap();
        // |−3.0| and |2.0| win; the rest revert to base.
        assert_eq!(out, vec![0.0, -3.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn topk_breaks_magnitude_ties_toward_lower_index() {
        let base = vec![0.0; 3];
        let update = vec![1.0, -1.0, 1.0];
        let out = decode(&encode_topk(0, 0, &update, &base, 2).unwrap())
            .unwrap()
            .into_params(&base)
            .unwrap();
        assert_eq!(out, vec![1.0, -1.0, 0.0]);
    }

    #[test]
    fn topk_with_k_at_least_changed_count_is_lossless() {
        let base = vec![1.0, 2.0, 3.0, 4.0];
        let update = vec![1.0, f32::NAN, 3.5, 4.0];
        let frame = encode_topk(0, 0, &update, &base, 16).unwrap();
        assert_eq!(frame.len(), WireSize::topk(2).total_bytes());
        let out = decode(&frame).unwrap().into_params(&base).unwrap();
        let bits: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
        let expect: Vec<u32> = update.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, expect);
    }

    #[test]
    fn quant_f16_roundtrip_respects_error_bound() {
        let base = vec![0.5, -1.0, 2.0, 0.0];
        let update = vec![0.75, -1.125, 2.0, 1e-5];
        let frame = encode_quant_f16(0, 0, &update, None, &base).unwrap();
        assert_eq!(frame.len(), WireSize::quant_f16(4, 4).total_bytes());
        let out = decode(&frame).unwrap().into_params(&base).unwrap();
        for ((o, u), b) in out.iter().zip(&update).zip(&base) {
            let delta = (u - b).abs();
            // f16 has 11 significand bits → relative error ≤ 2^-11.
            let bound = delta / 1024.0 + 1e-7;
            assert!((o - u).abs() <= bound, "out {o} vs update {u}");
        }
    }

    #[test]
    fn quant_zero_delta_preserves_base_bits() {
        // A ±0 encoded delta must not rewrite base bits (e.g. −0.0 → +0.0).
        let base = vec![-0.0, 1.0, f32::NAN];
        let update = base.clone();
        for frame in [
            encode_quant_f16(0, 0, &update, None, &base).unwrap(),
            encode_quant_i8(0, 0, &update, None, &base).unwrap(),
        ] {
            let out = decode(&frame).unwrap().into_params(&base).unwrap();
            let bits: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            let expect: Vec<u32> = base.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits, expect);
        }
    }

    #[test]
    fn quant_i8_roundtrip_respects_scale_bound() {
        let base = vec![0.0, 10.0, -5.0, 2.5];
        let update = vec![1.0, 9.0, -5.5, 2.5];
        let frame = encode_quant_i8(0, 0, &update, None, &base).unwrap();
        assert_eq!(frame.len(), WireSize::quant_i8(4, 4).total_bytes());
        let Payload::QuantInt8 { scale, .. } = decode(&frame).unwrap().payload else {
            panic!("expected int8 payload");
        };
        let out = decode(&frame).unwrap().into_params(&base).unwrap();
        for (o, u) in out.iter().zip(&update) {
            let bound = scale * 0.5 + scale * 1e-5 + 1e-7;
            assert!((o - u).abs() <= bound, "out {o} vs update {u} (±{bound})");
        }
    }

    #[test]
    fn quant_frames_compose_with_activity_mask() {
        let base = vec![1.0, 2.0, 3.0, 4.0];
        let update = vec![1.5, 2.0, 3.25, 4.0];
        let mask = vec![true, false, true, false];
        for frame in [
            encode_quant_f16(0, 0, &update, Some(&mask), &base).unwrap(),
            encode_quant_i8(0, 0, &update, Some(&mask), &base).unwrap(),
        ] {
            let out = decode(&frame).unwrap().into_params(&base).unwrap();
            // Masked-out entries keep base *bits*; active ones approximate.
            assert_eq!(out[1].to_bits(), base[1].to_bits());
            assert_eq!(out[3].to_bits(), base[3].to_bits());
            assert!((out[0] - update[0]).abs() < 0.01);
            assert!((out[2] - update[2]).abs() < 0.01);
        }
    }

    #[test]
    fn quant_i8_of_all_zero_delta_uses_zero_scale() {
        let base = vec![3.0, -2.0];
        let frame = encode_quant_i8(0, 0, &base, None, &base).unwrap();
        let out = decode(&frame).unwrap().into_params(&base).unwrap();
        assert_eq!(out, base);
    }

    #[test]
    fn decode_rejects_nonfinite_i8_scale() {
        let base = vec![0.0];
        let mut frame = encode_quant_i8(0, 0, &[1.0], None, &base).unwrap();
        // Scale sits right after the header when no bitset is present.
        frame[HEADER_BYTES..HEADER_BYTES + 4].copy_from_slice(&f32::NAN.to_le_bytes());
        let body = frame.len() - CHECKSUM_BYTES;
        let crc = crc32(&frame[..body]).to_le_bytes();
        frame[body..].copy_from_slice(&crc);
        assert!(matches!(decode(&frame), Err(NetError::BadScale { .. })));
    }

    #[test]
    fn decode_rejects_malformed_topk_index_blocks() {
        let base = vec![0.0; 4];
        let good = encode_topk(0, 0, &[1.0, 2.0, 3.0, 4.0], &base, 2).unwrap();
        // Swap the two indices so they are non-ascending.
        let mut bad = good.clone();
        let (a, b) = (HEADER_BYTES, HEADER_BYTES + 4);
        for i in 0..4 {
            bad.swap(a + i, b + i);
        }
        let body = bad.len() - CHECKSUM_BYTES;
        let crc = crc32(&bad[..body]).to_le_bytes();
        bad[body..].copy_from_slice(&crc);
        assert!(matches!(decode(&bad), Err(NetError::BadIndexBlock { .. })));
        // Point an index past the parameter vector.
        let mut oob = good.clone();
        oob[a..a + 4].copy_from_slice(&99u32.to_le_bytes());
        let body = oob.len() - CHECKSUM_BYTES;
        let crc = crc32(&oob[..body]).to_le_bytes();
        oob[body..].copy_from_slice(&crc);
        assert!(matches!(decode(&oob), Err(NetError::BadIndexBlock { .. })));
    }

    #[test]
    fn v2_corruption_is_detected_at_every_byte() {
        let base = vec![0.5, 1.5, 2.5];
        for frame in [
            encode_delta(1, 2, &[0.5, 9.0, 2.5], &base).unwrap(),
            encode_topk(1, 2, &[0.5, 9.0, 8.0], &base, 1).unwrap(),
            encode_quant_f16(1, 2, &[0.75, 1.5, 2.5], None, &base).unwrap(),
            encode_quant_i8(1, 2, &[0.75, 1.5, 2.5], None, &base).unwrap(),
        ] {
            for i in 0..frame.len() {
                let mut bad = frame.clone();
                bad[i] ^= 0x41;
                assert!(decode(&bad).is_err(), "flip at byte {i} decoded");
            }
        }
    }

    /// f16 conversion is exact on the full 16-bit domain: every half
    /// bit pattern survives a trip through f32 and back unchanged.
    #[test]
    fn f16_roundtrip_is_exhaustively_exact() {
        for h in 0..=u16::MAX {
            let back = f32_to_f16_bits(f16_bits_to_f32(h));
            assert_eq!(back, h, "half bits {h:#06x} roundtripped to {back:#06x}");
        }
    }

    #[test]
    fn f16_conversion_handles_special_values() {
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
        assert_eq!(f32_to_f16_bits(f32::NEG_INFINITY), 0xfc00);
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        // Finite overflow saturates to ±F16_MAX instead of rounding to inf.
        assert_eq!(f32_to_f16_bits(1e9), 0x7bff);
        assert_eq!(f32_to_f16_bits(-1e9), 0xfbff);
        assert_eq!(f16_bits_to_f32(0x7bff), F16_MAX);
        // NaN stays NaN.
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
        // Round-to-nearest-even at the halfway point: 1 + 2^-11 is exactly
        // between 1.0 and the next half; ties go to the even significand.
        assert_eq!(f32_to_f16_bits(1.0 + f32::powi(2.0, -11)), 0x3c00);
        assert_eq!(f32_to_f16_bits(1.0 + 3.0 * f32::powi(2.0, -11)), 0x3c02);
    }

    #[test]
    fn wire_size_accounts_for_v2_layouts() {
        // Delta frames have exactly the masked shape.
        assert_eq!(
            WireSize::delta(100, 7).total_bytes(),
            WireSize::masked(100, 7).total_bytes()
        );
        // Top-k pays 8 bytes per kept entry.
        let topk = WireSize::topk(5);
        assert_eq!(topk.index_bytes, 20);
        assert_eq!(topk.payload_bytes, 20);
        // Quantized frames halve (f16) or quarter (int8) the payload.
        assert_eq!(WireSize::quant_f16(8, 8).payload_bytes, 16);
        assert_eq!(WireSize::quant_i8(8, 8).payload_bytes, 8);
        assert_eq!(WireSize::quant_i8(8, 8).scale_bytes, 4);
        // The bitset appears only when the frame is partial.
        assert_eq!(WireSize::quant_f16(8, 8).mask_bytes, 0);
        assert_eq!(WireSize::quant_f16(8, 3).mask_bytes, 1);
        // Encoded frames match their predicted sizes.
        let base = vec![0.0; 8];
        let update = vec![1.0; 8];
        assert_eq!(
            encode_quant_f16(0, 0, &update, None, &base).unwrap().len(),
            WireSize::quant_f16(8, 8).total_bytes()
        );
        assert_eq!(
            encode_quant_i8(0, 0, &update, None, &base).unwrap().len(),
            WireSize::quant_i8(8, 8).total_bytes()
        );
    }

    /// `WireSize` artifacts written before wire v2 (no `index_bytes` /
    /// `scale_bytes` fields) still deserialize.
    #[test]
    fn wire_size_accepts_pre_v2_json() {
        let v: WireSize = serde_json::from_str(
            r#"{"header_bytes":22,"mask_bytes":0,"payload_bytes":8,"checksum_bytes":4}"#,
        )
        .unwrap();
        assert_eq!(v.index_bytes, 0);
        assert_eq!(v.scale_bytes, 0);
        assert_eq!(v.total_bytes(), 34);
    }

    #[test]
    fn frame_mode_peeks_v2_kinds_only() {
        let base = vec![1.0, 2.0];
        let v1 = encode_full(0, 0, &base).unwrap();
        assert_eq!(frame_mode(&v1), None);
        let masked = encode_masked(0, 0, &base, &[true, false]).unwrap();
        assert_eq!(frame_mode(&masked), None);
        assert_eq!(
            frame_mode(&encode_delta(0, 0, &[9.0, 2.0], &base).unwrap()),
            Some("delta")
        );
        assert_eq!(
            frame_mode(&encode_topk(0, 0, &[9.0, 2.0], &base, 1).unwrap()),
            Some("topk")
        );
        assert_eq!(
            frame_mode(&encode_quant_f16(0, 0, &[9.0, 2.0], None, &base).unwrap()),
            Some("qf16")
        );
        assert_eq!(
            frame_mode(&encode_quant_i8(0, 0, &[9.0, 2.0], None, &base).unwrap()),
            Some("qi8")
        );
        assert_eq!(frame_mode(b"xx"), None);
    }
}
