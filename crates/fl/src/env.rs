//! The shared experimental environment a strategy runs against.

use crate::fleet::{AvailabilityModel, FleetSpec};
use crate::sampler::{ClientSampler, SamplerConfig};
use crate::{Client, FlError, LocalUpdate, Result};
use helios_data::Dataset;
use helios_device::{ResourceProfile, SimClock, SimTime};
use helios_net::{codec, simulate_round, LinkProfile, NetConfig, RoundJob, SimTransport};
use helios_nn::models::ModelKind;
use helios_nn::{CrossEntropyLoss, Network};
use helios_scenario::{ChurnAction, DriftKind, EventKind, ScenarioConfig, Schedule};
use helios_tensor::{map_items_mut, ParallelismConfig, TensorRng};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Bandwidth a link collapses to during a scenario outage window. The
/// link model rejects an exact zero (transfer time would be infinite in
/// a way the scheduler cannot rank), so an outage is "one microbit per
/// second": finite, deterministic, and slower than any real profile by
/// many orders of magnitude.
const OUTAGE_TRICKLE_BPS: f64 = 1e-6;

/// Hyper-parameters shared by every strategy run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlConfig {
    /// Mini-batch size for local training.
    pub batch_size: usize,
    /// Local epochs per aggregation cycle.
    pub local_epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Batch size used for test-set evaluation.
    pub eval_batch: usize,
    /// Master seed; model init, client shuffling, and strategy randomness
    /// all derive from it, making runs bit-reproducible.
    pub seed: u64,
    /// Maps the scaled experiment models' analytic FLOPs/memory to the
    /// magnitude of the paper's full-size models (32×32 inputs, full
    /// channel counts, full datasets), so `W/C_cpu` dominates the cost
    /// formula as in Table I. Affects only *simulated* time, never the
    /// learned parameters.
    pub workload_scale: f64,
    /// Thread budget for the parallel execution engine: caps the client
    /// fan-out of [`FlEnv::train_all`] and the kernel width during
    /// evaluation. Results are bitwise identical for every setting —
    /// parallelism trades wall-clock time only (see `helios_tensor`'s
    /// parallel module). Defaults to auto-detect.
    #[serde(default)]
    pub parallelism: ParallelismConfig,
    /// Simulated-network section: per-device link profile, fault
    /// injection, retries, and the per-round deadline. Defaults to
    /// *disabled* (direct in-memory exchange), so configs and result
    /// files written before this section existed keep loading
    /// unchanged.
    #[serde(default)]
    pub net: NetConfig,
    /// Per-round client sampling for fleet-scale populations. Defaults
    /// to *disabled* (every enrolled device participates every round),
    /// so configs written before this section existed keep loading
    /// unchanged.
    #[serde(default)]
    pub sampling: SamplerConfig,
    /// Declarative scenario timeline: device churn, diurnal availability
    /// waves, battery/thermal throttling, and data drift. Defaults to
    /// *empty* (a static fleet — bit-identical to runs before the
    /// scenario engine existed), so older configs keep loading
    /// unchanged.
    #[serde(default)]
    pub scenario: ScenarioConfig,
}

impl Default for FlConfig {
    fn default() -> Self {
        FlConfig {
            batch_size: 16,
            local_epochs: 1,
            learning_rate: 0.05,
            momentum: 0.9,
            eval_batch: 64,
            seed: 42,
            workload_scale: 2000.0,
            parallelism: ParallelismConfig::auto(),
            net: NetConfig::default(),
            sampling: SamplerConfig::default(),
            scenario: ScenarioConfig::default(),
        }
    }
}

impl FlConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidRunConfig`] for zero batch/epoch
    /// counts, a non-finite or non-positive learning rate or workload
    /// scale, a momentum outside `[0, 1)`, or an invalid `net` section.
    pub fn validate(&self) -> Result<()> {
        let invalid = |what: String| Err(FlError::InvalidRunConfig { what });
        if self.batch_size == 0 {
            return invalid("batch_size must be nonzero".into());
        }
        if self.eval_batch == 0 {
            return invalid("eval_batch must be nonzero".into());
        }
        if self.local_epochs == 0 {
            return invalid("local_epochs must be nonzero".into());
        }
        if !(self.learning_rate.is_finite() && self.learning_rate > 0.0) {
            return invalid(format!(
                "learning_rate {} must be positive and finite",
                self.learning_rate
            ));
        }
        if !(self.momentum.is_finite() && (0.0..1.0).contains(&self.momentum)) {
            return invalid(format!("momentum {} outside [0, 1)", self.momentum));
        }
        if !(self.workload_scale.is_finite() && self.workload_scale > 0.0) {
            return invalid(format!(
                "workload_scale {} must be positive and finite",
                self.workload_scale
            ));
        }
        self.sampling.validate()?;
        self.net.validate().map_err(FlError::Net)
    }
}

/// The result of routing one cycle's updates through the simulated
/// transport (see [`FlEnv::route_updates`]).
#[derive(Debug, Clone)]
pub struct RoutedCycle {
    /// The delivered updates, in client order, with parameters decoded
    /// from their wire frames. Participants that missed the cycle are
    /// absent.
    pub updates: Vec<LocalUpdate>,
    /// The round's simulated span: `max(compute + comm)` over delivered
    /// participants, extended to the deadline when someone missed it.
    pub cycle_time: SimTime,
    /// Client ids that missed the cycle (retry exhaustion or deadline).
    pub missed: Vec<usize>,
}

/// Client storage: either the full fleet constructed up front (the
/// pre-fleet path, unchanged behavior) or a lazily materialized
/// population described by a [`FleetSpec`].
// One store per environment: the variant size gap is irrelevant, and
// boxing the lazy half would cost an indirection on every client access.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum ClientStore {
    /// Every client lives in memory for the whole run.
    Eager(Vec<Client>),
    /// Clients are materialized on demand from pure per-device
    /// generators; unsampled devices cost 8 bytes (their RNG seed).
    Lazy(LazyFleet),
}

/// The lazy half of [`ClientStore`].
#[derive(Debug, Clone)]
struct LazyFleet {
    spec: FleetSpec,
    /// Pristine post-init model cloned into each materialized client.
    /// (`FlEnv::eval_net` cannot serve this role: evaluation mutates it.)
    template: Network,
    /// The master RNG's split chain, one recorded seed per device, so
    /// client `i` constructed at any later time gets bit-for-bit the RNG
    /// the eager constructor would have handed it.
    seeds: Vec<u64>,
    /// Materialized clients, keyed by id. Iteration order is ascending
    /// id, matching the eager vector.
    cache: BTreeMap<usize, Client>,
}

/// Mutable scenario-engine state carried by the environment for the
/// duration of one run. Absent (`None`) when the config's scenario is
/// empty, which guarantees zero behavioral change for pre-scenario
/// runs.
#[derive(Debug, Clone)]
struct ScenarioRuntime {
    /// The compiled, time-sorted event timeline.
    schedule: Schedule,
    /// Devices currently departed (scenario `Leave` without a matching
    /// `Return`). They are filtered out of every cohort but keep their
    /// id, skip counters, and materialized state, so a `Return` resumes
    /// them exactly where they left off — Helios's device-id-keyed
    /// collaboration state survives churn.
    offline: BTreeSet<usize>,
    /// Cycle currently being driven; consulted when a client is
    /// materialized mid-run so it picks up the throttle scale already
    /// in force.
    current_cycle: usize,
    /// Index into `schedule.events()` of the first unapplied event.
    next_event: usize,
}

impl LazyFleet {
    /// Constructs client `i` from the spec's pure generators and its
    /// recorded seed. Pure in `i`: materializing in any order, or after
    /// eviction, yields identical clients.
    fn materialize(&self, i: usize, config: &FlConfig) -> Result<Client> {
        let shard = self.spec.shards.shard(i)?;
        let profile = self.spec.profiles.profile(i);
        Ok(Client::new(
            i,
            self.template.clone(),
            shard,
            profile,
            config.learning_rate,
            config.momentum,
            config.batch_size,
            config.local_epochs,
            config.workload_scale,
            TensorRng::seed_from(self.seeds[i]),
        ))
    }
}

/// The full experimental setup: a fleet of [`Client`]s, the held-out test
/// set, the global parameter vector, and the simulated clock.
///
/// One `FlEnv` hosts one strategy run; construct a fresh environment (same
/// seed) per strategy to compare them from identical initial conditions.
/// See the crate-level example.
///
/// # Eager vs lazy fleets
///
/// [`FlEnv::new`] builds every client up front — right for the paper's
/// tens-of-devices experiments. [`FlEnv::new_lazy`] instead takes a
/// [`FleetSpec`] whose profiles, shards, and availability are pure
/// functions of `(seed, device_index)`, so a 100k-device population
/// costs O(1) memory per enrolled device until [`FlEnv::select_cohort`]
/// materializes the sampled cohort. A lazy environment run through the
/// same cohorts is bitwise identical to its eagerly constructed twin.
#[derive(Debug, Clone)]
pub struct FlEnv {
    store: ClientStore,
    test_set: Dataset,
    eval_net: Network,
    global: Vec<f32>,
    clock: SimClock,
    config: FlConfig,
    /// Present iff `config.net.enabled`: the simulated transport every
    /// synchronous round is routed through.
    transport: Option<SimTransport>,
    /// Participation propensities consumed by availability-weighted
    /// sampling; `always_on` unless a [`FleetSpec`] says otherwise.
    availability: AvailabilityModel,
    /// Present iff `config.scenario` is non-empty: the compiled timeline
    /// plus the churn overlay the round driver consults each cycle.
    scenario_rt: Option<ScenarioRuntime>,
}

impl FlEnv {
    /// Builds an environment: one client per `(profile, shard)` pair, all
    /// starting from the same seeded model initialization.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::FleetMismatch`] when profile and shard counts
    /// differ, [`FlError::InvalidStrategyConfig`] for an empty fleet, or
    /// [`FlError::InvalidRunConfig`] when [`FlConfig::validate`] rejects
    /// the configuration.
    pub fn new(
        model: ModelKind,
        fleet: Vec<ResourceProfile>,
        shards: Vec<Dataset>,
        test_set: Dataset,
        config: FlConfig,
    ) -> Result<Self> {
        config.validate()?;
        if fleet.len() != shards.len() {
            return Err(FlError::FleetMismatch {
                profiles: fleet.len(),
                shards: shards.len(),
            });
        }
        if fleet.is_empty() {
            return Err(FlError::InvalidStrategyConfig {
                what: "fleet must not be empty".into(),
            });
        }
        let num_classes = test_set.num_classes();
        let mut master_rng = TensorRng::seed_from(config.seed);
        let template = model.build(num_classes, &mut master_rng);
        let global = template.param_vector();
        let clients = fleet
            .into_iter()
            .zip(shards)
            .enumerate()
            .map(|(id, (profile, shard))| {
                Client::new(
                    id,
                    template.clone(),
                    shard,
                    profile,
                    config.learning_rate,
                    config.momentum,
                    config.batch_size,
                    config.local_epochs,
                    config.workload_scale,
                    master_rng.split(),
                )
            })
            .collect::<Vec<Client>>();
        let transport = if config.net.enabled {
            Some(SimTransport::new(clients.len(), &config.net, config.seed)?)
        } else {
            None
        };
        let scenario_rt = Self::build_scenario_runtime(&config, clients.len(), None)?;
        let mut availability = AvailabilityModel::always_on();
        if let Some(w) = config.scenario.diurnal {
            availability = availability.with_wave(w);
        }
        Ok(FlEnv {
            store: ClientStore::Eager(clients),
            test_set,
            eval_net: template,
            global,
            clock: SimClock::new(),
            config,
            transport,
            availability,
            scenario_rt,
        })
    }

    /// Builds a fleet-scale environment whose clients are materialized
    /// on demand from the spec's pure per-device generators.
    ///
    /// Model initialization consumes the master RNG exactly as
    /// [`FlEnv::new`] does, and the per-client split chain is recorded
    /// as one `u64` seed per enrolled device — the only per-device state
    /// held for unsampled devices. Materializing the same indices
    /// therefore reproduces the eager constructor's clients bit-for-bit,
    /// in any order, at any time.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidStrategyConfig`] for an empty
    /// population or [`FlError::InvalidRunConfig`] when
    /// [`FlConfig::validate`] rejects the configuration.
    pub fn new_lazy(
        model: ModelKind,
        spec: FleetSpec,
        test_set: Dataset,
        config: FlConfig,
    ) -> Result<Self> {
        config.validate()?;
        if spec.population == 0 {
            return Err(FlError::InvalidStrategyConfig {
                what: "fleet must not be empty".into(),
            });
        }
        let num_classes = test_set.num_classes();
        let mut master_rng = TensorRng::seed_from(config.seed);
        let template = model.build(num_classes, &mut master_rng);
        let global = template.param_vector();
        let seeds: Vec<u64> = (0..spec.population)
            .map(|_| master_rng.next_seed())
            .collect();
        let transport = if config.net.enabled {
            Some(SimTransport::new(
                spec.population,
                &config.net,
                config.seed,
            )?)
        } else {
            None
        };
        let scenario_rt =
            Self::build_scenario_runtime(&config, spec.population, Some(spec.retain_clients))?;
        let mut availability = spec.availability;
        if let Some(w) = config.scenario.diurnal {
            availability = availability.with_wave(w);
        }
        Ok(FlEnv {
            store: ClientStore::Lazy(LazyFleet {
                spec,
                template: template.clone(),
                seeds,
                cache: BTreeMap::new(),
            }),
            test_set,
            eval_net: template,
            global,
            clock: SimClock::new(),
            config,
            transport,
            availability,
            scenario_rt,
        })
    }

    /// Compiles the config's scenario timeline into runtime state, or
    /// `None` for an empty scenario (static fleet, historical behavior).
    ///
    /// `lazy_retaining` is `None` for an eager fleet, `Some(retain)` for
    /// a lazy one. Scenario `Join` events grow the population from the
    /// spec's pure generators, so they require a retaining lazy fleet.
    fn build_scenario_runtime(
        config: &FlConfig,
        population: usize,
        lazy_retaining: Option<bool>,
    ) -> Result<Option<ScenarioRuntime>> {
        if config.scenario.is_empty() {
            return Ok(None);
        }
        config
            .scenario
            .validate(population)
            .map_err(|e| FlError::InvalidRunConfig {
                what: format!("scenario: {}", e.what),
            })?;
        let has_joins = config
            .scenario
            .churn
            .iter()
            .any(|e| e.action == ChurnAction::Join);
        if has_joins {
            match lazy_retaining {
                None => {
                    return Err(FlError::InvalidRunConfig {
                        what: "scenario join events require a lazy fleet \
                               (newcomers come from the spec's generators)"
                            .into(),
                    })
                }
                Some(false) => {
                    return Err(FlError::InvalidRunConfig {
                        what: "scenario join events require client retention on the lazy fleet"
                            .into(),
                    })
                }
                Some(true) => {}
            }
        }
        Ok(Some(ScenarioRuntime {
            schedule: config.scenario.compile(),
            offline: BTreeSet::new(),
            current_cycle: 0,
            next_event: 0,
        }))
    }

    /// The run configuration.
    pub fn config(&self) -> &FlConfig {
        &self.config
    }

    /// Number of enrolled clients (for a lazy fleet: the population,
    /// materialized or not).
    pub fn num_clients(&self) -> usize {
        match &self.store {
            ClientStore::Eager(v) => v.len(),
            ClientStore::Lazy(l) => l.spec.population,
        }
    }

    /// Number of clients currently held in memory. Equals
    /// [`FlEnv::num_clients`] for eager environments; for lazy fleets it
    /// counts the cache — the fleet bench's O(cohort) memory contract.
    pub fn materialized_clients(&self) -> usize {
        match &self.store {
            ClientStore::Eager(v) => v.len(),
            ClientStore::Lazy(l) => l.cache.len(),
        }
    }

    /// Whether this environment materializes clients on demand.
    pub fn is_lazy(&self) -> bool {
        matches!(self.store, ClientStore::Lazy(_))
    }

    /// The availability model consulted by weighted sampling.
    pub fn availability_model(&self) -> &AvailabilityModel {
        &self.availability
    }

    /// Whether per-round cohort sampling is enabled in the config.
    pub fn sampling_enabled(&self) -> bool {
        self.config.sampling.enabled
    }

    /// Ensures client `i` is materialized (a bounds check on eager
    /// environments).
    ///
    /// # Errors
    ///
    /// Returns [`FlError::UnknownClient`] for an out-of-range index and
    /// propagates shard-synthesis errors.
    pub fn ensure_client(&mut self, i: usize) -> Result<()> {
        let n = self.num_clients();
        if i >= n {
            return Err(FlError::UnknownClient {
                client: i,
                num_clients: n,
            });
        }
        let config = self.config.clone();
        let throttle_cycle = self.scenario_rt.as_ref().map(|rt| rt.current_cycle);
        if let ClientStore::Lazy(l) = &mut self.store {
            if !l.cache.contains_key(&i) {
                let mut client = l.materialize(i, &config)?;
                if let Some(cycle) = throttle_cycle {
                    // A device materialized mid-run picks up the
                    // throttle scale already in force, exactly as if it
                    // had been resident since cycle 0.
                    let scale = Self::combined_compute_scale(&config.scenario, i, cycle);
                    if scale != 1.0 {
                        client.set_compute_scale(scale);
                    }
                }
                l.cache.insert(i, client);
            }
        }
        Ok(())
    }

    /// Product of every applicable throttle rule's compute scale for
    /// `device` at `cycle`; `1.0` when no rule is active.
    fn combined_compute_scale(scenario: &ScenarioConfig, device: usize, cycle: usize) -> f64 {
        scenario
            .throttle
            .iter()
            .filter(|r| r.applies_to(device))
            .map(|r| r.compute_scale(cycle))
            .product()
    }

    /// Product of every applicable throttle rule's bandwidth scale for
    /// `device` at `cycle`; `1.0` when no rule is active.
    fn combined_bandwidth_scale(scenario: &ScenarioConfig, device: usize, cycle: usize) -> f64 {
        scenario
            .throttle
            .iter()
            .filter(|r| r.applies_to(device))
            .map(|r| r.bandwidth_scale(cycle))
            .product()
    }

    /// Draws cycle `cycle`'s cohort and materializes it, evicting
    /// clients outside the cohort first when the spec disabled
    /// retention. With sampling disabled the cohort is the whole
    /// enrolled population, in id order — the pre-fleet behavior.
    ///
    /// The draw is a pure function of `(config.sampling, config.seed,
    /// population, cycle)` plus the availability model, so reruns replay
    /// the identical cohort sequence at any thread width.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidRunConfig`] when sampling yields an
    /// empty cohort (every device offline) and propagates
    /// materialization errors.
    pub fn select_cohort(&mut self, cycle: usize) -> Result<Vec<usize>> {
        let sampler = ClientSampler::new(self.config.sampling, self.config.seed);
        let mut cohort = sampler.cohort(self.num_clients(), cycle, &self.availability);
        if let Some(rt) = &self.scenario_rt {
            // Departed devices are filtered after the draw rather than
            // re-weighted inside it, so the sampler's stream stays a
            // pure function of (config, seed, population, cycle) and
            // cohorts replay bitwise whether or not churn is active.
            cohort.retain(|d| !rt.offline.contains(d));
        }
        if cohort.is_empty() {
            return Err(FlError::InvalidRunConfig {
                what: format!("cycle {cycle} sampled an empty cohort (no available devices)"),
            });
        }
        if let ClientStore::Lazy(l) = &mut self.store {
            if !l.spec.retain_clients {
                let keep: BTreeSet<usize> = cohort.iter().copied().collect();
                l.cache.retain(|id, _| keep.contains(id));
            }
        }
        for &i in &cohort {
            self.ensure_client(i)?;
        }
        Ok(cohort)
    }

    /// Immutable client access. On a lazy fleet the client must already
    /// be materialized (via [`FlEnv::select_cohort`],
    /// [`FlEnv::ensure_client`], or [`FlEnv::client_mut`]).
    ///
    /// # Errors
    ///
    /// Returns [`FlError::UnknownClient`] for an out-of-range index or
    /// [`FlError::InvalidRunConfig`] for an enrolled-but-unmaterialized
    /// lazy client.
    pub fn client(&self, i: usize) -> Result<&Client> {
        let n = self.num_clients();
        if i >= n {
            return Err(FlError::UnknownClient {
                client: i,
                num_clients: n,
            });
        }
        match &self.store {
            ClientStore::Eager(v) => v.get(i).ok_or(FlError::UnknownClient {
                client: i,
                num_clients: n,
            }),
            ClientStore::Lazy(l) => l.cache.get(&i).ok_or_else(|| FlError::InvalidRunConfig {
                what: format!(
                    "client {i} is enrolled but not materialized; select or ensure it first"
                ),
            }),
        }
    }

    /// Mutable client access; a lazy fleet materializes the client on
    /// demand.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::UnknownClient`] for an out-of-range index and
    /// propagates materialization errors.
    pub fn client_mut(&mut self, i: usize) -> Result<&mut Client> {
        self.ensure_client(i)?;
        let n = self.num_clients();
        let missing = FlError::UnknownClient {
            client: i,
            num_clients: n,
        };
        match &mut self.store {
            ClientStore::Eager(v) => v.get_mut(i).ok_or(missing),
            ClientStore::Lazy(l) => l.cache.get_mut(&i).ok_or(missing),
        }
    }

    /// Iterates the in-memory fleet in ascending id order: every client
    /// for an eager environment, the materialized ones for a lazy fleet.
    pub fn clients(&self) -> impl Iterator<Item = &Client> {
        let (eager, lazy) = match &self.store {
            ClientStore::Eager(v) => (Some(v.iter()), None),
            ClientStore::Lazy(l) => (None, Some(l.cache.values())),
        };
        eager
            .into_iter()
            .flatten()
            .chain(lazy.into_iter().flatten())
    }

    /// Iterates the in-memory fleet mutably (see [`FlEnv::clients`]).
    pub fn clients_mut(&mut self) -> impl Iterator<Item = &mut Client> {
        let (eager, lazy) = match &mut self.store {
            ClientStore::Eager(v) => (Some(v.iter_mut()), None),
            ClientStore::Lazy(l) => (None, Some(l.cache.values_mut())),
        };
        eager
            .into_iter()
            .flatten()
            .chain(lazy.into_iter().flatten())
    }

    /// Adds a device mid-run (the paper's §VI.C dynamic-join scenario) and
    /// returns its client index. The newcomer starts from the current
    /// global model.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidRunConfig`] on a lazy fleet with
    /// eviction enabled (an evicted joiner would be rebuilt from the
    /// spec's generators instead of the supplied profile/shard), and
    /// propagates parameter-length errors (impossible unless the dataset
    /// class count disagrees with the architecture).
    pub fn join_client(&mut self, profile: ResourceProfile, shard: Dataset) -> Result<usize> {
        if let ClientStore::Lazy(l) = &self.store {
            if !l.spec.retain_clients {
                return Err(FlError::InvalidRunConfig {
                    what: "join_client requires client retention on a lazy fleet".into(),
                });
            }
        }
        let id = self.num_clients();
        let mut rng = TensorRng::seed_from(
            self.config.seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(id as u64 + 1)),
        );
        let client_seed = rng.next_seed();
        let mut client = Client::new(
            id,
            self.eval_net.clone(),
            shard,
            profile,
            self.config.learning_rate,
            self.config.momentum,
            self.config.batch_size,
            self.config.local_epochs,
            self.config.workload_scale,
            TensorRng::seed_from(client_seed),
        );
        client.receive_global(&self.global, 0)?;
        match &mut self.store {
            ClientStore::Eager(v) => v.push(client),
            ClientStore::Lazy(l) => {
                l.spec.population += 1;
                l.seeds.push(client_seed);
                l.cache.insert(id, client);
            }
        }
        if let Some(t) = &mut self.transport {
            // The newcomer's fault/jitter stream is a pure function of
            // (run seed, device index), so a grown transport matches one
            // built with the full fleet upfront.
            t.add_device();
        }
        helios_obs::emit(|| helios_obs::TraceEvent::DeviceJoined { device: id as u64 });
        Ok(id)
    }

    /// Whether a non-empty scenario timeline is driving this run.
    pub fn scenario_active(&self) -> bool {
        self.scenario_rt.is_some()
    }

    /// Number of devices currently departed under scenario churn
    /// (`Leave` without a matching `Return`).
    pub fn offline_devices(&self) -> usize {
        self.scenario_rt.as_ref().map_or(0, |rt| rt.offline.len())
    }

    /// Scenario hook the round driver calls at the top of every cycle,
    /// before cohort selection: applies all timeline events due at
    /// `cycle` (joins grow the population, leaves/returns update the
    /// churn overlay, drift rotates the held-out test set) and
    /// recomputes every materialized client's throttle scale from the
    /// timeline. A no-op when the scenario is empty.
    ///
    /// Every applied event emits a
    /// [`TraceEvent::ScenarioEvent`](helios_obs::TraceEvent); all work
    /// here is serial and deterministic, so traces stay byte-identical
    /// at any thread width.
    ///
    /// # Errors
    ///
    /// Propagates join materialization and drift transform errors.
    pub fn scenario_begin_cycle(&mut self, cycle: usize) -> Result<()> {
        let due: Vec<helios_scenario::ScheduledEvent> = match &mut self.scenario_rt {
            None => return Ok(()),
            Some(rt) => {
                rt.current_cycle = cycle;
                let events = rt.schedule.events();
                let start = rt.next_event;
                let mut end = start;
                while end < events.len() && events[end].cycle <= cycle {
                    end += 1;
                }
                rt.next_event = end;
                events[start..end].to_vec()
            }
        };
        for ev in due {
            match ev.kind {
                EventKind::Join { count } => {
                    for _ in 0..count {
                        let id = self.scenario_join()?;
                        helios_obs::emit(|| helios_obs::TraceEvent::ScenarioEvent {
                            cycle: cycle as u64,
                            kind: "join".into(),
                            device: Some(id as u64),
                            value: 1.0,
                        });
                    }
                }
                EventKind::Leave { device } => {
                    if let Some(rt) = &mut self.scenario_rt {
                        rt.offline.insert(device);
                    }
                    helios_obs::emit(|| helios_obs::TraceEvent::ScenarioEvent {
                        cycle: cycle as u64,
                        kind: "leave".into(),
                        device: Some(device as u64),
                        value: 0.0,
                    });
                }
                EventKind::Return { device } => {
                    if let Some(rt) = &mut self.scenario_rt {
                        rt.offline.remove(&device);
                    }
                    helios_obs::emit(|| helios_obs::TraceEvent::ScenarioEvent {
                        cycle: cycle as u64,
                        kind: "return".into(),
                        device: Some(device as u64),
                        value: 1.0,
                    });
                }
                EventKind::Drift { kind, amount } => {
                    if self.config.scenario.drift_test_set {
                        // The evaluation distribution drifts with the
                        // fleet, at fire time; client shards catch up
                        // per participant in `scenario_prepare_cohort`.
                        self.test_set = match kind {
                            DriftKind::LabelRotate => self
                                .test_set
                                .rotate_labels(amount.max(0.0).round() as usize),
                            DriftKind::InputShift => self.test_set.shift_inputs(amount as f32)?,
                        };
                    }
                    helios_obs::emit(|| helios_obs::TraceEvent::ScenarioEvent {
                        cycle: cycle as u64,
                        kind: kind.trace_kind().into(),
                        device: None,
                        value: amount,
                    });
                }
            }
        }
        // Battery/thermal throttling: recompute every materialized
        // client's compute scale from the timeline (the pristine profile
        // is rescaled each cycle, never compounded), and record each
        // active rule once per cycle.
        let scenario = self.config.scenario.clone();
        if !scenario.throttle.is_empty() {
            for c in self.clients_mut() {
                let id = c.id();
                c.set_compute_scale(Self::combined_compute_scale(&scenario, id, cycle));
            }
            for rule in &scenario.throttle {
                if rule.active_at(cycle) {
                    let device = rule.device.map(|d| d as u64);
                    let value = rule.compute_scale(cycle);
                    helios_obs::emit(|| helios_obs::TraceEvent::ScenarioEvent {
                        cycle: cycle as u64,
                        kind: "throttle".into(),
                        device,
                        value,
                    });
                }
            }
        }
        Ok(())
    }

    /// Scenario hook the round driver calls right after cohort
    /// selection, before the broadcast: replays any not-yet-applied
    /// drift events onto each participant's shard and applies bandwidth
    /// throttling to participant links. A no-op when the scenario is
    /// empty.
    ///
    /// Drift is replayed one event at a time in timeline order from each
    /// client's own counter — f32 arithmetic is not associative, so late
    /// joiners and late-materialized devices must walk the same event
    /// sequence to converge on the same bytes as devices resident since
    /// cycle 0 (the lazy==eager parity contract).
    ///
    /// # Errors
    ///
    /// Propagates materialization, drift transform, and link errors.
    pub fn scenario_prepare_cohort(&mut self, cycle: usize, participants: &[usize]) -> Result<()> {
        let Some(rt) = &self.scenario_rt else {
            return Ok(());
        };
        let scenario = self.config.scenario.clone();
        if !scenario.drift.is_empty() {
            let due: Vec<(DriftKind, f64)> = rt
                .schedule
                .events()
                .iter()
                .filter(|e| e.cycle <= cycle)
                .filter_map(|e| match e.kind {
                    EventKind::Drift { kind, amount } => Some((kind, amount)),
                    _ => None,
                })
                .collect();
            for &p in participants {
                loop {
                    let c = self.client_mut(p)?;
                    let next = c.drift_applied();
                    if next >= due.len() {
                        break;
                    }
                    let (kind, amount) = due[next];
                    c.apply_drift(kind, amount)?;
                }
            }
        }
        // Bandwidth throttling scales the configured base link; an
        // outage window overrides everything and collapses the link to
        // a near-zero trickle (the link model rejects an exact zero).
        // Skipped when networking is disabled; throttling additionally
        // needs a finite base bandwidth (there is nothing to scale
        // down on an unlimited link), but an outage clamps even an
        // unlimited link.
        if self.transport.is_some()
            && !(scenario.throttle.is_empty() && scenario.outages.is_empty())
        {
            let base = self.config.net.link;
            for &p in participants {
                let outage = scenario
                    .outages
                    .iter()
                    .any(|o| o.contains(cycle) && o.applies_to(p));
                let mut link = base;
                if outage {
                    link.bandwidth_bps = Some(OUTAGE_TRICKLE_BPS);
                } else if let Some(bw) = base.bandwidth_bps {
                    let s = Self::combined_bandwidth_scale(&scenario, p, cycle);
                    link.bandwidth_bps = Some(bw * s);
                }
                // With outages on the timeline the link is re-asserted
                // every cycle: the first cycle after a window closes
                // must restore the scenario-scaled profile. Without
                // outages, only actually-scaled links are touched
                // (identical behavior to the pre-outage engine).
                if !scenario.outages.is_empty() || link.bandwidth_bps != base.bandwidth_bps {
                    self.set_link(p, link)?;
                }
            }
            for o in &scenario.outages {
                if o.contains(cycle) {
                    let device = o.device.map(|d| d as u64);
                    helios_obs::emit(|| helios_obs::TraceEvent::ScenarioEvent {
                        cycle: cycle as u64,
                        kind: "outage".into(),
                        device,
                        value: 0.0,
                    });
                }
            }
        }
        Ok(())
    }

    /// Grows the population by one device synthesized from the lazy
    /// spec's pure generators (the scenario-churn join path).
    fn scenario_join(&mut self) -> Result<usize> {
        let id = self.num_clients();
        let (profile, shard) = match &self.store {
            ClientStore::Lazy(l) => (l.spec.profiles.profile(id), l.spec.shards.shard(id)?),
            ClientStore::Eager(_) => {
                // Unreachable: `build_scenario_runtime` rejects join
                // events on eager fleets at construction.
                return Err(FlError::InvalidRunConfig {
                    what: "scenario join events require a lazy fleet".into(),
                });
            }
        };
        self.join_client(profile, shard)
    }

    /// The current global parameter vector.
    pub fn global(&self) -> &[f32] {
        &self.global
    }

    /// Replaces the global parameter vector.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::GlobalLengthMismatch`] if the length changes —
    /// the architecture is fixed per environment.
    pub fn set_global(&mut self, params: Vec<f32>) -> Result<()> {
        if params.len() != self.global.len() {
            return Err(FlError::GlobalLengthMismatch {
                expected: self.global.len(),
                actual: params.len(),
            });
        }
        self.global = params;
        Ok(())
    }

    /// Sends the current global model to every in-memory client, tagging
    /// it with the producing cycle for staleness accounting.
    ///
    /// On a lazy fleet only materialized clients receive the broadcast —
    /// which is equivalent to broadcasting to everyone, because
    /// [`Client::receive_global`] fully overwrites the replica (params,
    /// optimizer state, staleness tag) and cohort members are
    /// materialized by [`FlEnv::select_cohort`] *before* the broadcast
    /// phase; a device materialized in a later cycle is overwritten by
    /// that cycle's broadcast before it trains.
    ///
    /// # Errors
    ///
    /// Propagates parameter-length errors (impossible under normal use).
    pub fn broadcast_global(&mut self, cycle: usize) -> Result<()> {
        let global = self.global.clone();
        let mut devices = 0u64;
        for c in self.clients_mut() {
            c.receive_global(&global, cycle)?;
            devices += 1;
        }
        helios_obs::emit(|| helios_obs::TraceEvent::BroadcastSent {
            cycle: cycle as u64,
            devices,
        });
        Ok(())
    }

    /// Sends the current global model to one client.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::UnknownClient`] for an out-of-range index.
    pub fn send_global_to(&mut self, client: usize, cycle: usize) -> Result<()> {
        let global = self.global.clone();
        self.client_mut(client)?.receive_global(&global, cycle)
    }

    /// Runs one local training cycle on **every** client, fanning the
    /// independent per-client work out across worker threads, and
    /// returns the updates in client order.
    ///
    /// The fan-out width is capped by [`FlConfig::parallelism`]; surplus
    /// budget flows to the tensor kernels inside each worker. Because
    /// every kernel is bitwise deterministic at any thread width and the
    /// returned updates preserve client order, the result is identical
    /// to calling [`Client::train_local`] serially — strategies may
    /// aggregate it without any reordering concerns.
    ///
    /// # Errors
    ///
    /// Propagates the first (in client order) training error.
    pub fn train_all(&mut self) -> Result<Vec<LocalUpdate>> {
        let all: Vec<usize> = (0..self.num_clients()).collect();
        self.train_selected(&all)
    }

    /// Runs one local training cycle on the selected clients only,
    /// fanning the independent per-client work out across worker
    /// threads, and returns the updates **in `participants` order** (the
    /// aggregation order every policy relies on).
    ///
    /// Selecting every client is identical to [`FlEnv::train_all`] —
    /// same fan-out, same bitwise results.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::UnknownClient`] for an out-of-range id,
    /// [`FlError::InvalidStrategyConfig`] when an id repeats, or the
    /// first (in client order) training error.
    pub fn train_selected(&mut self, participants: &[usize]) -> Result<Vec<LocalUpdate>> {
        let n = self.num_clients();
        // Cohort-relative bookkeeping: O(participants) state, never
        // O(population) — a 500-device cohort over a 100k fleet must not
        // allocate per-enrolled-device vectors.
        let mut slot_of: HashMap<usize, usize> = HashMap::with_capacity(participants.len());
        for (slot, &i) in participants.iter().enumerate() {
            if i >= n {
                return Err(FlError::UnknownClient {
                    client: i,
                    num_clients: n,
                });
            }
            if slot_of.insert(i, slot).is_some() {
                return Err(FlError::InvalidStrategyConfig {
                    what: format!("client {i} selected twice in one cycle"),
                });
            }
        }
        for &i in participants {
            self.ensure_client(i)?;
        }
        let threads = self.config.parallelism.resolve();
        let mut selected: Vec<&mut Client> = match &mut self.store {
            ClientStore::Eager(v) => v
                .iter_mut()
                .enumerate()
                .filter_map(|(i, c)| slot_of.contains_key(&i).then_some(c))
                .collect(),
            ClientStore::Lazy(l) => l
                .cache
                .iter_mut()
                .filter_map(|(i, c)| slot_of.contains_key(i).then_some(c))
                .collect(),
        };
        // The fan-out returns results in client-id order; errors surface
        // in that order too, matching the historical serial loops.
        let mut by_slot: Vec<Option<LocalUpdate>> = (0..participants.len()).map(|_| None).collect();
        for r in map_items_mut(&mut selected, threads, |_, c| c.train_local()) {
            let u = r?;
            let Some(&slot) = slot_of.get(&u.client) else {
                return Err(FlError::InvalidStrategyConfig {
                    what: format!("unexpected update from client {}", u.client),
                });
            };
            by_slot[slot] = Some(u);
        }
        let mut out = Vec::with_capacity(participants.len());
        for (slot, &i) in participants.iter().enumerate() {
            match by_slot[slot].take() {
                Some(u) => out.push(u),
                None => {
                    return Err(FlError::InvalidStrategyConfig {
                        what: format!("client {i} produced no update"),
                    })
                }
            }
        }
        Ok(out)
    }

    /// The simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Advances the simulated clock.
    pub fn advance_clock(&mut self, span: SimTime) {
        self.clock.advance(span);
    }

    /// The simulated transport, when `config.net.enabled`.
    pub fn transport(&self) -> Option<&SimTransport> {
        self.transport.as_ref()
    }

    /// Overrides one client's link profile (requires networking to be
    /// enabled). Use this to give stragglers the paper's constrained
    /// uplinks while capable devices keep fast ones.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::UnknownClient`] for an out-of-range index or
    /// [`FlError::InvalidRunConfig`] when networking is disabled or the
    /// profile is invalid.
    pub fn set_link(&mut self, client: usize, link: LinkProfile) -> Result<()> {
        if client >= self.num_clients() {
            return Err(FlError::UnknownClient {
                client,
                num_clients: self.num_clients(),
            });
        }
        match &mut self.transport {
            Some(t) => Ok(t.set_link(client, link)?),
            None => Err(FlError::InvalidRunConfig {
                what: "cannot set a link profile while config.net is disabled".into(),
            }),
        }
    }

    /// Expected communication time for one cycle of client `i` under its
    /// link profile: downloading the full global model plus uploading
    /// the update at its current wire size (masked layout when a
    /// soft-training mask is installed). Deterministic — jitter and
    /// faults are excluded — so Helios can feed it into straggler
    /// identification and deadline fitting. Zero when networking is
    /// disabled or the link is ideal.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::UnknownClient`] for an out-of-range index.
    pub fn comm_overhead(&self, i: usize) -> Result<SimTime> {
        let client = self.client(i)?;
        let Some(t) = &self.transport else {
            return Ok(SimTime::ZERO);
        };
        let link = t.link(i)?;
        let down = link.expected_transfer(codec::WireSize::full(self.global.len()).total_bytes());
        let up_size = client.upload_wire_size_with(&self.config.net.compression);
        let up = link.expected_transfer(up_size.total_bytes());
        Ok(down + up)
    }

    /// Client `i`'s full cycle time as the server observes it:
    /// `compute + comm` (the paper's `T_e = W/C_cpu + M/V_mc + U/B_n`
    /// with the transfer term realised by the simulated link).
    ///
    /// # Errors
    ///
    /// Returns [`FlError::UnknownClient`] for an out-of-range index.
    pub fn combined_cycle_time(&self, i: usize) -> Result<SimTime> {
        Ok(self.client(i)?.cycle_time() + self.comm_overhead(i)?)
    }

    /// Routes one synchronous cycle's exchange through the simulated
    /// transport: the global broadcast goes down every participant's
    /// link, each update comes back up as a wire frame (masked layout
    /// for soft-trained clients, or the wire-v2 layout selected by
    /// `net.compression` — delta/top-k/quantized frames encoded against
    /// the broadcast global), and the round's simulated span is
    /// `max(compute + comm)` over participants.
    ///
    /// With networking disabled this is a transparent passthrough whose
    /// span is `max(compute)` — strategies call it unconditionally.
    /// Delivered frames are decoded against the current global vector
    /// (masked-out entries hold the pre-training broadcast values by
    /// the [`LocalUpdate::param_mask`] invariant), which reproduces each
    /// update's parameters bit-for-bit. Participants whose transfers
    /// exhaust their retries or overrun `net.round_timeout_s` are
    /// reported in [`RoutedCycle::missed`] and dropped from the
    /// aggregation set — a missed cycle, not an error.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidRunConfig`] when `compute_times` and
    /// `updates` disagree in length, or a [`FlError::Net`] codec error
    /// (impossible for updates produced by [`Client::train_local`]).
    pub fn route_updates(
        &mut self,
        cycle: usize,
        updates: Vec<LocalUpdate>,
        compute_times: &[SimTime],
    ) -> Result<RoutedCycle> {
        if updates.len() != compute_times.len() {
            return Err(FlError::InvalidRunConfig {
                what: format!(
                    "route_updates got {} updates but {} compute times",
                    updates.len(),
                    compute_times.len()
                ),
            });
        }
        let Some(transport) = &mut self.transport else {
            let cycle_time = compute_times
                .iter()
                .copied()
                .fold(SimTime::ZERO, SimTime::max);
            return Ok(RoutedCycle {
                updates,
                cycle_time,
                missed: Vec::new(),
            });
        };
        // Broadcasts are always v1 full frames: the broadcast *is* the
        // shared base every v2 upload decodes against (DESIGN.md §4k).
        let broadcast = codec::encode_full(codec::SERVER_SENDER, cycle as u32, &self.global)?;
        let compression = self.config.net.compression;
        let mut jobs = Vec::with_capacity(updates.len());
        for (u, &compute) in updates.iter().zip(compute_times) {
            let frame = compression.encode_update(
                u.client as u32,
                cycle as u32,
                &u.params,
                u.param_mask.as_deref(),
                &self.global,
            )?;
            jobs.push(RoundJob {
                device: u.client,
                compute,
                upload_frame: frame,
            });
        }
        let timeout = self.config.net.round_timeout_s.map(SimTime::from_secs);
        let outcome = simulate_round(transport, &broadcast, &jobs, timeout)?;
        let mut delivered = Vec::with_capacity(updates.len());
        let mut missed = Vec::new();
        for (mut u, slot) in updates.into_iter().zip(outcome.deliveries) {
            match slot {
                Some((_, bytes)) => {
                    let frame = codec::decode(&bytes)?;
                    u.params = frame.into_params(&self.global)?;
                    delivered.push(u);
                }
                None => missed.push(u.client),
            }
        }
        Ok(RoutedCycle {
            updates: delivered,
            cycle_time: outcome.span,
            missed,
        })
    }

    /// Evaluates the current global model on the held-out test set.
    ///
    /// # Errors
    ///
    /// Propagates model errors (impossible under normal use).
    pub fn evaluate_global(&mut self) -> Result<(f64, f64)> {
        // The run's parallelism budget also governs evaluation kernels.
        let _guard = self.config.parallelism.scoped();
        self.eval_net.set_param_vector(&self.global)?;
        self.eval_net.clear_masks();
        let loss_fn = CrossEntropyLoss::new();
        let mut correct = 0usize;
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for (x, y) in self.test_set.batches(self.config.eval_batch) {
            let logits = self.eval_net.forward(&x)?;
            loss_sum += loss_fn.forward(&logits, &y)? as f64;
            let pred = logits.argmax_rows().map_err(helios_nn::NnError::from)?;
            correct += pred.iter().zip(&y).filter(|(p, l)| p == l).count();
            batches += 1;
        }
        let n = self.test_set.len().max(1);
        Ok((loss_sum / batches.max(1) as f64, correct as f64 / n as f64))
    }

    /// The held-out test set.
    pub fn test_set(&self) -> &Dataset {
        &self.test_set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_data::{partition, SyntheticVision};
    use helios_device::presets;

    fn small_env_with(seed: u64, net: NetConfig) -> FlEnv {
        let mut rng = TensorRng::seed_from(9);
        let (train, test) = SyntheticVision::mnist_like()
            .generate(60, 40, &mut rng)
            .unwrap();
        let shards: Vec<Dataset> = partition::iid(train.len(), 2, &mut rng)
            .into_iter()
            .map(|idx| train.subset(&idx).unwrap())
            .collect();
        FlEnv::new(
            ModelKind::LeNet,
            presets::mixed_fleet(1, 1),
            shards,
            test,
            FlConfig {
                seed,
                net,
                ..FlConfig::default()
            },
        )
        .unwrap()
    }

    fn small_env(seed: u64) -> FlEnv {
        small_env_with(seed, NetConfig::default())
    }

    #[test]
    fn construction_validates_fleet() {
        let mut rng = TensorRng::seed_from(0);
        let (train, test) = SyntheticVision::mnist_like()
            .generate(20, 10, &mut rng)
            .unwrap();
        let err = FlEnv::new(
            ModelKind::LeNet,
            presets::mixed_fleet(1, 1),
            vec![train],
            test.clone(),
            FlConfig::default(),
        );
        assert!(matches!(err, Err(FlError::FleetMismatch { .. })));
        let err = FlEnv::new(ModelKind::LeNet, vec![], vec![], test, FlConfig::default());
        assert!(matches!(err, Err(FlError::InvalidStrategyConfig { .. })));
    }

    #[test]
    fn clients_start_from_identical_global() {
        let env = small_env(1);
        let g = env.global().to_vec();
        for c in env.clients() {
            assert_eq!(c.network().param_vector(), g);
        }
    }

    #[test]
    fn same_seed_envs_are_identical() {
        let a = small_env(5);
        let b = small_env(5);
        assert_eq!(a.global(), b.global());
        let c = small_env(6);
        assert_ne!(a.global(), c.global());
    }

    #[test]
    fn broadcast_and_evaluate() {
        let mut env = small_env(2);
        env.broadcast_global(3).unwrap();
        let (loss, acc) = env.evaluate_global().unwrap();
        assert!(loss > 0.0);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn join_client_receives_global() {
        let mut env = small_env(3);
        let mut rng = TensorRng::seed_from(77);
        let (extra, _) = SyntheticVision::mnist_like()
            .generate(20, 0, &mut rng)
            .unwrap();
        let id = env.join_client(presets::raspberry_pi(), extra).unwrap();
        assert_eq!(id, 2);
        assert_eq!(env.num_clients(), 3);
        assert_eq!(
            env.client(id).unwrap().network().param_vector(),
            env.global()
        );
    }

    #[test]
    fn unknown_client_errors() {
        let env = small_env(4);
        assert!(matches!(env.client(9), Err(FlError::UnknownClient { .. })));
    }

    #[test]
    fn set_global_rejects_length_change() {
        let mut env = small_env(4);
        let n = env.global().len();
        let err = env.set_global(vec![0.0; 3]);
        assert!(
            matches!(
                err,
                Err(FlError::GlobalLengthMismatch {
                    expected,
                    actual: 3,
                }) if expected == n
            ),
            "{err:?}"
        );
        // A correct-length replacement is accepted.
        env.set_global(vec![0.0; n]).unwrap();
        assert!(env.global().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn invalid_run_config_rejected() {
        let mut rng = TensorRng::seed_from(0);
        let (train, test) = SyntheticVision::mnist_like()
            .generate(20, 10, &mut rng)
            .unwrap();
        let bad = FlConfig {
            learning_rate: f32::NAN,
            ..FlConfig::default()
        };
        let err = FlEnv::new(
            ModelKind::LeNet,
            presets::mixed_fleet(1, 0),
            vec![train],
            test,
            bad,
        );
        assert!(
            matches!(err, Err(FlError::InvalidRunConfig { .. })),
            "{err:?}"
        );
        assert!(FlConfig {
            momentum: 1.0,
            ..FlConfig::default()
        }
        .validate()
        .is_err());
        assert!(FlConfig {
            batch_size: 0,
            ..FlConfig::default()
        }
        .validate()
        .is_err());
        FlConfig::default().validate().unwrap();
    }

    /// Configs serialized before the `net` section existed (and before
    /// `parallelism`) must keep deserializing, with networking disabled.
    #[test]
    fn pre_net_config_json_still_loads() {
        let legacy = r#"{
            "batch_size": 16,
            "local_epochs": 1,
            "learning_rate": 0.05,
            "momentum": 0.9,
            "eval_batch": 64,
            "seed": 42,
            "workload_scale": 2000.0
        }"#;
        let cfg: FlConfig = serde_json::from_str(legacy).unwrap();
        assert!(!cfg.net.enabled);
        assert_eq!(cfg.net, NetConfig::default());
        assert!(!cfg.sampling.enabled, "sampling defaults to disabled");
        assert!(cfg.scenario.is_empty(), "scenario defaults to empty");
        cfg.validate().unwrap();
        // And a round-trip of the current shape preserves the section.
        let enabled = FlConfig {
            net: NetConfig {
                enabled: true,
                ..NetConfig::default()
            },
            ..FlConfig::default()
        };
        let json = serde_json::to_string(&enabled).unwrap();
        let back: FlConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, enabled);
    }

    #[test]
    fn route_updates_passthrough_when_disabled() {
        let mut env = small_env(7);
        assert!(env.transport().is_none());
        env.broadcast_global(0).unwrap();
        let updates = env.train_all().unwrap();
        let times: Vec<SimTime> = env.clients().map(Client::cycle_time).collect();
        let expect_params: Vec<Vec<f32>> = updates.iter().map(|u| u.params.clone()).collect();
        let routed = env.route_updates(0, updates, &times).unwrap();
        assert!(routed.missed.is_empty());
        assert_eq!(
            routed.cycle_time,
            times.iter().copied().fold(SimTime::ZERO, SimTime::max)
        );
        let got: Vec<Vec<f32>> = routed.updates.iter().map(|u| u.params.clone()).collect();
        assert_eq!(got, expect_params);
        assert_eq!(env.comm_overhead(0).unwrap(), SimTime::ZERO);
        assert_eq!(
            env.combined_cycle_time(0).unwrap(),
            env.client(0).unwrap().cycle_time()
        );
        assert!(env.set_link(0, LinkProfile::ideal()).is_err());
    }

    #[test]
    fn ideal_transport_is_bitwise_transparent() {
        let mut direct = small_env(8);
        let mut routed_env = small_env_with(
            8,
            NetConfig {
                enabled: true,
                ..NetConfig::default()
            },
        );
        direct.broadcast_global(0).unwrap();
        routed_env.broadcast_global(0).unwrap();
        let du = direct.train_all().unwrap();
        let ru = routed_env.train_all().unwrap();
        let times: Vec<SimTime> = direct.clients().map(Client::cycle_time).collect();
        let d = direct.route_updates(0, du, &times).unwrap();
        let r = routed_env.route_updates(0, ru, &times).unwrap();
        assert!(r.missed.is_empty());
        assert_eq!(d.cycle_time, r.cycle_time, "ideal links add zero time");
        assert_eq!(d.updates.len(), r.updates.len());
        for (a, b) in d.updates.iter().zip(&r.updates) {
            let ab: Vec<u32> = a.params.iter().map(|p| p.to_bits()).collect();
            let bb: Vec<u32> = b.params.iter().map(|p| p.to_bits()).collect();
            assert_eq!(ab, bb, "wire roundtrip must be bit-exact");
        }
        let stats = routed_env.transport().unwrap().stats();
        assert!(stats.bytes_on_wire > 0);
        assert_eq!(stats.retries, 0);
    }

    fn net_with_mode(mode: helios_net::CompressionMode, topk_ratio: f64) -> NetConfig {
        NetConfig {
            enabled: true,
            compression: helios_net::CompressionConfig { mode, topk_ratio },
            ..NetConfig::default()
        }
    }

    /// Delta and full-ratio top-k frames reconstruct every update
    /// bit-for-bit, so routing through them is as transparent as v1.
    #[test]
    fn lossless_v2_compression_is_bitwise_transparent() {
        use helios_net::CompressionMode;
        for mode in [CompressionMode::Delta, CompressionMode::TopK] {
            let mut direct = small_env(8);
            let mut routed_env = small_env_with(8, net_with_mode(mode, 1.0));
            direct.broadcast_global(0).unwrap();
            routed_env.broadcast_global(0).unwrap();
            let du = direct.train_all().unwrap();
            let ru = routed_env.train_all().unwrap();
            let times: Vec<SimTime> = direct.clients().map(Client::cycle_time).collect();
            let d = direct.route_updates(0, du, &times).unwrap();
            let r = routed_env.route_updates(0, ru, &times).unwrap();
            assert!(r.missed.is_empty());
            for (a, b) in d.updates.iter().zip(&r.updates) {
                let ab: Vec<u32> = a.params.iter().map(|p| p.to_bits()).collect();
                let bb: Vec<u32> = b.params.iter().map(|p| p.to_bits()).collect();
                assert_eq!(ab, bb, "{mode:?} roundtrip must be bit-exact");
            }
            let up = routed_env.transport().unwrap().stats().bytes_on_wire;
            let v1 = d
                .updates
                .iter()
                .map(|u| codec::WireSize::full(u.params.len()).total_bytes())
                .sum::<usize>();
            assert!(up > 0 && v1 > 0);
        }
    }

    /// Quantized modes deliver approximate updates: close to the direct
    /// values, never missing, and cheaper on the wire than v1 full frames.
    #[test]
    fn quantized_v2_compression_stays_within_bounds() {
        use helios_net::CompressionMode;
        for (mode, tol) in [
            (CompressionMode::QuantF16, 1e-2f32),
            (CompressionMode::QuantInt8, 5e-2f32),
        ] {
            let mut direct = small_env(8);
            let mut routed_env = small_env_with(8, net_with_mode(mode, 0.1));
            direct.broadcast_global(0).unwrap();
            routed_env.broadcast_global(0).unwrap();
            let du = direct.train_all().unwrap();
            let ru = routed_env.train_all().unwrap();
            let times: Vec<SimTime> = direct.clients().map(Client::cycle_time).collect();
            let d = direct.route_updates(0, du, &times).unwrap();
            let r = routed_env.route_updates(0, ru, &times).unwrap();
            assert!(r.missed.is_empty());
            for (a, b) in d.updates.iter().zip(&r.updates) {
                for (x, y) in a.params.iter().zip(&b.params) {
                    assert!((x - y).abs() <= tol, "{mode:?}: {x} vs {y}");
                }
            }
        }
    }

    /// The analytic comm estimate follows the configured mode.
    #[test]
    fn comm_overhead_reflects_compression_mode() {
        use helios_net::CompressionMode;
        let slow = NetConfig {
            link: crate::LinkProfile::constrained(1e6, 0.0),
            ..net_with_mode(CompressionMode::None, 0.1)
        };
        let env_v1 = small_env_with(4, slow);
        let env_i8 = small_env_with(
            4,
            NetConfig {
                compression: helios_net::CompressionConfig {
                    mode: CompressionMode::QuantInt8,
                    topk_ratio: 0.1,
                },
                ..slow
            },
        );
        let t_v1 = env_v1.comm_overhead(0).unwrap();
        let t_i8 = env_i8.comm_overhead(0).unwrap();
        assert!(
            t_i8 < t_v1,
            "int8 uploads must plan cheaper than v1 ({t_i8:?} vs {t_v1:?})"
        );
    }

    fn lazy_spec(population: usize, seed: u64) -> FleetSpec {
        FleetSpec::new(
            population,
            helios_device::ProfileSynthesizer::new(seed, 0.3),
            helios_data::ShardSynthesizer::new(SyntheticVision::mnist_like(), 8, seed).unwrap(),
        )
    }

    #[test]
    fn lazy_env_matches_eager_twin_bitwise() {
        let spec = lazy_spec(3, 21);
        let test = spec.shards.test_set(40).unwrap();
        let config = FlConfig {
            seed: 21,
            ..FlConfig::default()
        };
        // The eager twin materializes the same generators by hand.
        let fleet: Vec<_> = (0..3).map(|i| spec.profiles.profile(i)).collect();
        let shards: Vec<_> = (0..3).map(|i| spec.shards.shard(i).unwrap()).collect();
        let mut eager = FlEnv::new(
            ModelKind::LeNet,
            fleet,
            shards,
            test.clone(),
            config.clone(),
        )
        .unwrap();
        let mut lazy = FlEnv::new_lazy(ModelKind::LeNet, spec, test, config).unwrap();
        assert!(lazy.is_lazy() && !eager.is_lazy());
        assert_eq!(lazy.materialized_clients(), 0);
        assert_eq!(eager.global(), lazy.global());
        // Sampling disabled: the cohort is the whole population, and
        // materialization reproduces the eager clients bit-for-bit.
        let cohort = lazy.select_cohort(0).unwrap();
        assert_eq!(cohort, vec![0, 1, 2]);
        assert_eq!(lazy.materialized_clients(), 3);
        for i in 0..3 {
            let a = eager.client(i).unwrap();
            let b = lazy.client(i).unwrap();
            assert_eq!(a.network().param_vector(), b.network().param_vector());
            assert_eq!(a.profile(), b.profile());
            assert_eq!(a.cycle_time(), b.cycle_time());
        }
        eager.broadcast_global(0).unwrap();
        lazy.broadcast_global(0).unwrap();
        let eu = eager.train_all().unwrap();
        let lu = lazy.train_all().unwrap();
        for (a, b) in eu.iter().zip(&lu) {
            assert_eq!(a.client, b.client);
            let ab: Vec<u32> = a.params.iter().map(|p| p.to_bits()).collect();
            let bb: Vec<u32> = b.params.iter().map(|p| p.to_bits()).collect();
            assert_eq!(ab, bb, "client {} diverged", a.client);
        }
    }

    #[test]
    fn lazy_cohorts_materialize_and_evict_on_demand() {
        let spec = lazy_spec(50, 13).evict_unsampled();
        let test = spec.shards.test_set(20).unwrap();
        let config = FlConfig {
            seed: 13,
            sampling: SamplerConfig::uniform(4),
            ..FlConfig::default()
        };
        let mut env = FlEnv::new_lazy(ModelKind::LeNet, spec, test, config.clone()).unwrap();
        assert_eq!(env.num_clients(), 50);
        let c0 = env.select_cohort(0).unwrap();
        assert_eq!(c0.len(), 4);
        assert_eq!(env.materialized_clients(), 4);
        // Unmaterialized enrolled devices are distinguishable from
        // out-of-range ids.
        let outside = (0..50).find(|i| !c0.contains(i)).unwrap();
        assert!(matches!(
            env.client(outside),
            Err(FlError::InvalidRunConfig { .. })
        ));
        assert!(matches!(env.client(99), Err(FlError::UnknownClient { .. })));
        // Eviction caps the cache at O(cohort) across cycles.
        let c1 = env.select_cohort(1).unwrap();
        assert_ne!(c0, c1);
        assert_eq!(env.materialized_clients(), 4);
        assert!(c1.iter().all(|&i| env.client(i).is_ok()));
        // Selection replays bitwise on a fresh twin.
        let spec = lazy_spec(50, 13).evict_unsampled();
        let test = spec.shards.test_set(20).unwrap();
        let mut twin = FlEnv::new_lazy(ModelKind::LeNet, spec, test, config).unwrap();
        assert_eq!(twin.select_cohort(0).unwrap(), c0);
        assert_eq!(twin.select_cohort(1).unwrap(), c1);
    }

    #[test]
    fn lazy_join_requires_retention() {
        let mut rng = TensorRng::seed_from(3);
        let (extra, _) = SyntheticVision::mnist_like()
            .generate(16, 0, &mut rng)
            .unwrap();
        let spec = lazy_spec(4, 5).evict_unsampled();
        let test = spec.shards.test_set(20).unwrap();
        let mut env = FlEnv::new_lazy(ModelKind::LeNet, spec, test, FlConfig::default()).unwrap();
        assert!(matches!(
            env.join_client(presets::raspberry_pi(), extra.clone()),
            Err(FlError::InvalidRunConfig { .. })
        ));
        // With retention the newcomer joins and starts from the global.
        let spec = lazy_spec(4, 5);
        let test = spec.shards.test_set(20).unwrap();
        let mut env = FlEnv::new_lazy(ModelKind::LeNet, spec, test, FlConfig::default()).unwrap();
        let id = env.join_client(presets::raspberry_pi(), extra).unwrap();
        assert_eq!(id, 4);
        assert_eq!(env.num_clients(), 5);
        assert_eq!(
            env.client(id).unwrap().network().param_vector(),
            env.global()
        );
    }

    #[test]
    fn constrained_link_adds_comm_overhead() {
        let mut env = small_env_with(
            11,
            NetConfig {
                enabled: true,
                ..NetConfig::default()
            },
        );
        env.set_link(0, LinkProfile::constrained(1_000_000.0, 0.01))
            .unwrap();
        let overhead = env.comm_overhead(0).unwrap();
        assert!(overhead > SimTime::ZERO);
        assert_eq!(
            env.combined_cycle_time(0).unwrap(),
            env.client(0).unwrap().cycle_time() + overhead
        );
        // Client 1 keeps the ideal default.
        assert_eq!(env.comm_overhead(1).unwrap(), SimTime::ZERO);
        assert!(matches!(
            env.set_link(9, LinkProfile::ideal()),
            Err(FlError::UnknownClient { .. })
        ));
    }
}
