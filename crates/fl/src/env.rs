//! The shared experimental environment a strategy runs against.

use crate::{Client, FlError, LocalUpdate, Result};
use helios_data::Dataset;
use helios_device::{ResourceProfile, SimClock, SimTime};
use helios_nn::models::ModelKind;
use helios_nn::{CrossEntropyLoss, Network};
use helios_tensor::{map_items_mut, ParallelismConfig, TensorRng};
use serde::{Deserialize, Serialize};

/// Hyper-parameters shared by every strategy run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlConfig {
    /// Mini-batch size for local training.
    pub batch_size: usize,
    /// Local epochs per aggregation cycle.
    pub local_epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Batch size used for test-set evaluation.
    pub eval_batch: usize,
    /// Master seed; model init, client shuffling, and strategy randomness
    /// all derive from it, making runs bit-reproducible.
    pub seed: u64,
    /// Maps the scaled experiment models' analytic FLOPs/memory to the
    /// magnitude of the paper's full-size models (32×32 inputs, full
    /// channel counts, full datasets), so `W/C_cpu` dominates the cost
    /// formula as in Table I. Affects only *simulated* time, never the
    /// learned parameters.
    pub workload_scale: f64,
    /// Thread budget for the parallel execution engine: caps the client
    /// fan-out of [`FlEnv::train_all`] and the kernel width during
    /// evaluation. Results are bitwise identical for every setting —
    /// parallelism trades wall-clock time only (see `helios_tensor`'s
    /// parallel module). Defaults to auto-detect.
    #[serde(default)]
    pub parallelism: ParallelismConfig,
}

impl Default for FlConfig {
    fn default() -> Self {
        FlConfig {
            batch_size: 16,
            local_epochs: 1,
            learning_rate: 0.05,
            momentum: 0.9,
            eval_batch: 64,
            seed: 42,
            workload_scale: 2000.0,
            parallelism: ParallelismConfig::auto(),
        }
    }
}

/// The full experimental setup: a fleet of [`Client`]s, the held-out test
/// set, the global parameter vector, and the simulated clock.
///
/// One `FlEnv` hosts one strategy run; construct a fresh environment (same
/// seed) per strategy to compare them from identical initial conditions.
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct FlEnv {
    clients: Vec<Client>,
    test_set: Dataset,
    eval_net: Network,
    global: Vec<f32>,
    clock: SimClock,
    config: FlConfig,
}

impl FlEnv {
    /// Builds an environment: one client per `(profile, shard)` pair, all
    /// starting from the same seeded model initialization.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::FleetMismatch`] when profile and shard counts
    /// differ, or [`FlError::InvalidStrategyConfig`] for an empty fleet.
    pub fn new(
        model: ModelKind,
        fleet: Vec<ResourceProfile>,
        shards: Vec<Dataset>,
        test_set: Dataset,
        config: FlConfig,
    ) -> Result<Self> {
        if fleet.len() != shards.len() {
            return Err(FlError::FleetMismatch {
                profiles: fleet.len(),
                shards: shards.len(),
            });
        }
        if fleet.is_empty() {
            return Err(FlError::InvalidStrategyConfig {
                what: "fleet must not be empty".into(),
            });
        }
        let num_classes = test_set.num_classes();
        let mut master_rng = TensorRng::seed_from(config.seed);
        let template = model.build(num_classes, &mut master_rng);
        let global = template.param_vector();
        let clients = fleet
            .into_iter()
            .zip(shards)
            .enumerate()
            .map(|(id, (profile, shard))| {
                Client::new(
                    id,
                    template.clone(),
                    shard,
                    profile,
                    config.learning_rate,
                    config.momentum,
                    config.batch_size,
                    config.local_epochs,
                    config.workload_scale,
                    master_rng.split(),
                )
            })
            .collect();
        Ok(FlEnv {
            clients,
            test_set,
            eval_net: template,
            global,
            clock: SimClock::new(),
            config,
        })
    }

    /// The run configuration.
    pub fn config(&self) -> &FlConfig {
        &self.config
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// Immutable client access.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::UnknownClient`] for an out-of-range index.
    pub fn client(&self, i: usize) -> Result<&Client> {
        self.clients.get(i).ok_or(FlError::UnknownClient {
            client: i,
            num_clients: self.clients.len(),
        })
    }

    /// Mutable client access.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::UnknownClient`] for an out-of-range index.
    pub fn client_mut(&mut self, i: usize) -> Result<&mut Client> {
        let n = self.clients.len();
        self.clients.get_mut(i).ok_or(FlError::UnknownClient {
            client: i,
            num_clients: n,
        })
    }

    /// Iterates the fleet.
    pub fn clients(&self) -> impl Iterator<Item = &Client> {
        self.clients.iter()
    }

    /// Iterates the fleet mutably.
    pub fn clients_mut(&mut self) -> impl Iterator<Item = &mut Client> {
        self.clients.iter_mut()
    }

    /// Adds a device mid-run (the paper's §VI.C dynamic-join scenario) and
    /// returns its client index. The newcomer starts from the current
    /// global model.
    ///
    /// # Errors
    ///
    /// Propagates parameter-length errors (impossible unless the dataset
    /// class count disagrees with the architecture).
    pub fn join_client(&mut self, profile: ResourceProfile, shard: Dataset) -> Result<usize> {
        let id = self.clients.len();
        let mut rng = TensorRng::seed_from(
            self.config.seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(id as u64 + 1)),
        );
        let mut client = Client::new(
            id,
            self.eval_net.clone(),
            shard,
            profile,
            self.config.learning_rate,
            self.config.momentum,
            self.config.batch_size,
            self.config.local_epochs,
            self.config.workload_scale,
            rng.split(),
        );
        client.receive_global(&self.global, 0)?;
        self.clients.push(client);
        Ok(id)
    }

    /// The current global parameter vector.
    pub fn global(&self) -> &[f32] {
        &self.global
    }

    /// Replaces the global parameter vector.
    ///
    /// # Panics
    ///
    /// Panics if the length changes — the architecture is fixed per
    /// environment.
    pub fn set_global(&mut self, params: Vec<f32>) {
        assert_eq!(
            params.len(),
            self.global.len(),
            "global parameter length must not change"
        );
        self.global = params;
    }

    /// Sends the current global model to every client, tagging it with the
    /// producing cycle for staleness accounting.
    ///
    /// # Errors
    ///
    /// Propagates parameter-length errors (impossible under normal use).
    pub fn broadcast_global(&mut self, cycle: usize) -> Result<()> {
        let global = self.global.clone();
        for c in &mut self.clients {
            c.receive_global(&global, cycle)?;
        }
        Ok(())
    }

    /// Sends the current global model to one client.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::UnknownClient`] for an out-of-range index.
    pub fn send_global_to(&mut self, client: usize, cycle: usize) -> Result<()> {
        let global = self.global.clone();
        self.client_mut(client)?.receive_global(&global, cycle)
    }

    /// Runs one local training cycle on **every** client, fanning the
    /// independent per-client work out across worker threads, and
    /// returns the updates in client order.
    ///
    /// The fan-out width is capped by [`FlConfig::parallelism`]; surplus
    /// budget flows to the tensor kernels inside each worker. Because
    /// every kernel is bitwise deterministic at any thread width and the
    /// returned updates preserve client order, the result is identical
    /// to calling [`Client::train_local`] serially — strategies may
    /// aggregate it without any reordering concerns.
    ///
    /// # Errors
    ///
    /// Propagates the first (in client order) training error.
    pub fn train_all(&mut self) -> Result<Vec<LocalUpdate>> {
        let threads = self.config.parallelism.resolve();
        map_items_mut(&mut self.clients, threads, |_, c| c.train_local())
            .into_iter()
            .collect()
    }

    /// The simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Advances the simulated clock.
    pub fn advance_clock(&mut self, span: SimTime) {
        self.clock.advance(span);
    }

    /// Evaluates the current global model on the held-out test set.
    ///
    /// # Errors
    ///
    /// Propagates model errors (impossible under normal use).
    pub fn evaluate_global(&mut self) -> Result<(f64, f64)> {
        // The run's parallelism budget also governs evaluation kernels.
        let _guard = self.config.parallelism.scoped();
        self.eval_net.set_param_vector(&self.global)?;
        self.eval_net.clear_masks();
        let loss_fn = CrossEntropyLoss::new();
        let mut correct = 0usize;
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for (x, y) in self.test_set.batches(self.config.eval_batch) {
            let logits = self.eval_net.forward(&x)?;
            loss_sum += loss_fn.forward(&logits, &y)? as f64;
            let pred = logits.argmax_rows().map_err(helios_nn::NnError::from)?;
            correct += pred.iter().zip(&y).filter(|(p, l)| p == l).count();
            batches += 1;
        }
        let n = self.test_set.len().max(1);
        Ok((loss_sum / batches.max(1) as f64, correct as f64 / n as f64))
    }

    /// The held-out test set.
    pub fn test_set(&self) -> &Dataset {
        &self.test_set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_data::{partition, SyntheticVision};
    use helios_device::presets;

    fn small_env(seed: u64) -> FlEnv {
        let mut rng = TensorRng::seed_from(9);
        let (train, test) = SyntheticVision::mnist_like()
            .generate(60, 40, &mut rng)
            .unwrap();
        let shards: Vec<Dataset> = partition::iid(train.len(), 2, &mut rng)
            .into_iter()
            .map(|idx| train.subset(&idx).unwrap())
            .collect();
        FlEnv::new(
            ModelKind::LeNet,
            presets::mixed_fleet(1, 1),
            shards,
            test,
            FlConfig {
                seed,
                ..FlConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_fleet() {
        let mut rng = TensorRng::seed_from(0);
        let (train, test) = SyntheticVision::mnist_like()
            .generate(20, 10, &mut rng)
            .unwrap();
        let err = FlEnv::new(
            ModelKind::LeNet,
            presets::mixed_fleet(1, 1),
            vec![train],
            test.clone(),
            FlConfig::default(),
        );
        assert!(matches!(err, Err(FlError::FleetMismatch { .. })));
        let err = FlEnv::new(ModelKind::LeNet, vec![], vec![], test, FlConfig::default());
        assert!(matches!(err, Err(FlError::InvalidStrategyConfig { .. })));
    }

    #[test]
    fn clients_start_from_identical_global() {
        let env = small_env(1);
        let g = env.global().to_vec();
        for c in env.clients() {
            assert_eq!(c.network().param_vector(), g);
        }
    }

    #[test]
    fn same_seed_envs_are_identical() {
        let a = small_env(5);
        let b = small_env(5);
        assert_eq!(a.global(), b.global());
        let c = small_env(6);
        assert_ne!(a.global(), c.global());
    }

    #[test]
    fn broadcast_and_evaluate() {
        let mut env = small_env(2);
        env.broadcast_global(3).unwrap();
        let (loss, acc) = env.evaluate_global().unwrap();
        assert!(loss > 0.0);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn join_client_receives_global() {
        let mut env = small_env(3);
        let mut rng = TensorRng::seed_from(77);
        let (extra, _) = SyntheticVision::mnist_like()
            .generate(20, 0, &mut rng)
            .unwrap();
        let id = env.join_client(presets::raspberry_pi(), extra).unwrap();
        assert_eq!(id, 2);
        assert_eq!(env.num_clients(), 3);
        assert_eq!(
            env.client(id).unwrap().network().param_vector(),
            env.global()
        );
    }

    #[test]
    fn unknown_client_errors() {
        let env = small_env(4);
        assert!(matches!(env.client(9), Err(FlError::UnknownClient { .. })));
    }

    #[test]
    #[should_panic(expected = "global parameter length")]
    fn set_global_rejects_length_change() {
        let mut env = small_env(4);
        env.set_global(vec![0.0; 3]);
    }
}
