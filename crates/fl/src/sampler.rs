//! Per-round client sampling for fleet-scale populations.
//!
//! Production FL samples a few hundred participants per round out of an
//! enrolled population many orders of magnitude larger. The
//! [`ClientSampler`] draws that cohort deterministically: each cycle
//! gets its own seed derived from `(base_seed, cycle)`, so runs replay
//! bitwise regardless of thread width, and sampling device `i` never
//! touches state of any other device.
//!
//! Two strategies are provided:
//!
//! - [`SamplingStrategy::Uniform`] — Floyd's algorithm, O(cohort) memory
//!   and time, every enrolled device equally likely;
//! - [`SamplingStrategy::WeightedByAvailability`] — an
//!   Efraimidis–Spirakis weighted reservoir over the availability
//!   weights, O(cohort) memory and one pass over the population;
//!   zero-availability devices are never selected.

use crate::fleet::AvailabilityModel;
use crate::{FlError, Result};
use helios_tensor::TensorRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::collections::BinaryHeap;

/// Golden-ratio multiplier used across the workspace for index mixing.
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;
/// Domain-separation tag for the sampler's per-cycle streams ("SAMP").
const SAMPLE_STREAM: u64 = 0x5341_4d50;

/// How the per-round cohort is drawn from the enrolled population.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplingStrategy {
    /// Every enrolled device is equally likely.
    #[default]
    Uniform,
    /// Selection probability proportional to the device's availability
    /// weight; devices with availability `0.0` are never selected.
    WeightedByAvailability,
}

/// Per-round sampling configuration, carried on
/// [`FlConfig`](crate::FlConfig) behind `#[serde(default)]` so pre-fleet
/// configuration files still load (sampling disabled).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplerConfig {
    /// When `false` (the default), every enrolled device participates in
    /// every round — the pre-fleet behavior.
    pub enabled: bool,
    /// Cohort size per round (clamped to the population).
    pub per_round: usize,
    /// Cohort draw rule.
    pub strategy: SamplingStrategy,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            enabled: false,
            per_round: 0,
            strategy: SamplingStrategy::Uniform,
        }
    }
}

impl SamplerConfig {
    /// Uniform sampling of `per_round` devices per cycle.
    #[must_use]
    pub fn uniform(per_round: usize) -> Self {
        SamplerConfig {
            enabled: true,
            per_round,
            strategy: SamplingStrategy::Uniform,
        }
    }

    /// Availability-weighted sampling of `per_round` devices per cycle.
    #[must_use]
    pub fn weighted(per_round: usize) -> Self {
        SamplerConfig {
            enabled: true,
            per_round,
            strategy: SamplingStrategy::WeightedByAvailability,
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidRunConfig`] when sampling is enabled
    /// with an empty cohort.
    pub fn validate(&self) -> Result<()> {
        if self.enabled && self.per_round == 0 {
            return Err(FlError::InvalidRunConfig {
                what: "sampling enabled with per_round == 0".into(),
            });
        }
        Ok(())
    }
}

/// Entry of the weighted-sampling reservoir: Efraimidis–Spirakis key
/// `ln(u)/w` with the device index as a total-order tie-break.
#[derive(Debug, Clone, Copy)]
struct ReservoirEntry {
    key: f64,
    device: usize,
}

impl PartialEq for ReservoirEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for ReservoirEntry {}
impl PartialOrd for ReservoirEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ReservoirEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap pops the *worst* kept entry first: order by key
        // descending inverted below via Reverse-free convention — we keep
        // the k largest keys, so the heap root must be the smallest.
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.device.cmp(&self.device))
    }
}

/// Deterministic per-round cohort sampler.
///
/// `cohort(population, cycle, availability)` is a pure function of
/// `(config, base_seed, population, cycle)` (plus the availability
/// model, itself pure), so two runs with the same configuration draw
/// identical cohort sequences — the replay contract the fleet test
/// suite pins.
#[derive(Debug, Clone, Copy)]
pub struct ClientSampler {
    config: SamplerConfig,
    base_seed: u64,
}

impl ClientSampler {
    /// Creates a sampler; `base_seed` is the run seed.
    #[must_use]
    pub fn new(config: SamplerConfig, base_seed: u64) -> Self {
        ClientSampler { config, base_seed }
    }

    /// The seed of cycle `cycle`'s draw stream.
    #[must_use]
    pub fn cycle_seed(&self, cycle: usize) -> u64 {
        self.base_seed ^ SAMPLE_STREAM ^ GOLDEN.wrapping_mul(cycle as u64 + 1)
    }

    /// Draws cycle `cycle`'s cohort from `0..population`, sorted
    /// ascending. With sampling disabled, returns the whole population.
    pub fn cohort(
        &self,
        population: usize,
        cycle: usize,
        availability: &AvailabilityModel,
    ) -> Vec<usize> {
        if !self.config.enabled {
            return (0..population).collect();
        }
        let k = self.config.per_round.min(population);
        let mut rng = TensorRng::seed_from(self.cycle_seed(cycle));
        match self.config.strategy {
            SamplingStrategy::Uniform => Self::uniform_cohort(population, k, &mut rng),
            SamplingStrategy::WeightedByAvailability => {
                Self::weighted_cohort(population, k, cycle, availability, &mut rng)
            }
        }
    }

    /// Floyd's algorithm: k distinct uniform draws in O(k) memory.
    fn uniform_cohort(population: usize, k: usize, rng: &mut TensorRng) -> Vec<usize> {
        let mut chosen = BTreeSet::new();
        for j in population - k..population {
            let t = rng.below(j + 1);
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        chosen.into_iter().collect()
    }

    /// Efraimidis–Spirakis weighted reservoir: keep the k largest
    /// `u^(1/w)` keys (equivalently `ln(u)/w`), one uniform draw per
    /// positive-weight device, O(k) reservoir memory. The weights are
    /// the availability model's *per-cycle* values, so a diurnal wave
    /// biases each cycle's draw toward the devices currently awake.
    fn weighted_cohort(
        population: usize,
        k: usize,
        cycle: usize,
        availability: &AvailabilityModel,
        rng: &mut TensorRng,
    ) -> Vec<usize> {
        let mut reservoir: BinaryHeap<ReservoirEntry> = BinaryHeap::with_capacity(k + 1);
        for device in 0..population {
            let w = availability.availability(device, cycle);
            if w <= 0.0 {
                // Offline this cycle: no draw, never selected.
                continue;
            }
            let u = rng.unit_f64();
            let key = if u > 0.0 {
                u.ln() / w
            } else {
                f64::NEG_INFINITY
            };
            reservoir.push(ReservoirEntry { key, device });
            if reservoir.len() > k {
                // Root is the smallest kept key (see `Ord`).
                reservoir.pop();
            }
        }
        let mut cohort: Vec<usize> = reservoir.into_iter().map(|e| e.device).collect();
        cohort.sort_unstable();
        cohort
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn distinct_sorted(v: &[usize]) -> bool {
        v.windows(2).all(|w| w[0] < w[1])
    }

    #[test]
    fn disabled_sampler_returns_everyone() {
        let s = ClientSampler::new(SamplerConfig::default(), 3);
        let all = s.cohort(5, 0, &AvailabilityModel::always_on());
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cohorts_replay_bitwise_per_seed_and_cycle() {
        for cfg in [SamplerConfig::uniform(50), SamplerConfig::weighted(50)] {
            let avail = AvailabilityModel::new(7, 0.2);
            let a = ClientSampler::new(cfg, 7);
            let b = ClientSampler::new(cfg, 7);
            for cycle in 0..5 {
                assert_eq!(
                    a.cohort(10_000, cycle, &avail),
                    b.cohort(10_000, cycle, &avail)
                );
            }
            // Different cycles draw different cohorts.
            assert_ne!(a.cohort(10_000, 0, &avail), a.cohort(10_000, 1, &avail));
            // Different seeds draw different cohorts.
            let c = ClientSampler::new(cfg, 8);
            assert_ne!(a.cohort(10_000, 0, &avail), c.cohort(10_000, 0, &avail));
        }
    }

    #[test]
    fn uniform_cohort_is_distinct_sorted_and_exact_size() {
        let s = ClientSampler::new(SamplerConfig::uniform(500), 11);
        for cycle in 0..10 {
            let cohort = s.cohort(10_000, cycle, &AvailabilityModel::always_on());
            assert_eq!(cohort.len(), 500);
            assert!(distinct_sorted(&cohort));
            assert!(*cohort.last().unwrap() < 10_000);
        }
    }

    #[test]
    fn oversized_cohort_clamps_to_population() {
        let s = ClientSampler::new(SamplerConfig::uniform(100), 1);
        let cohort = s.cohort(7, 0, &AvailabilityModel::always_on());
        assert_eq!(cohort, vec![0, 1, 2, 3, 4, 5, 6]);
        let w = ClientSampler::new(SamplerConfig::weighted(100), 1);
        let cohort = w.cohort(7, 0, &AvailabilityModel::always_on());
        assert_eq!(cohort, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn weighted_sampler_never_selects_offline_devices() {
        // A quarter of 2000 devices are permanently offline.
        let avail = AvailabilityModel::new(5, 0.25);
        let s = ClientSampler::new(SamplerConfig::weighted(200), 5);
        for cycle in 0..8 {
            let cohort = s.cohort(2000, cycle, &avail);
            assert_eq!(cohort.len(), 200);
            assert!(distinct_sorted(&cohort));
            assert!(
                cohort.iter().all(|&d| avail.availability(d, cycle) > 0.0),
                "cycle {cycle} selected an offline device"
            );
        }
    }

    #[test]
    fn weighted_sampler_returns_all_available_when_short() {
        // Roughly half of 80 devices are offline; asking for more than
        // the available count returns exactly the available set.
        let avail = AvailabilityModel::new(2, 0.5);
        let available: Vec<usize> = (0..80)
            .filter(|&d| avail.availability(d, 0) > 0.0)
            .collect();
        assert!(available.len() < 70, "fixture needs a short population");
        let s = ClientSampler::new(SamplerConfig::weighted(70), 2);
        let cohort = s.cohort(80, 0, &avail);
        assert_eq!(cohort, available);
    }

    #[test]
    fn validate_rejects_enabled_empty_cohort() {
        assert!(SamplerConfig::uniform(0).validate().is_err());
        assert!(SamplerConfig::default().validate().is_ok());
        assert!(SamplerConfig::weighted(10).validate().is_ok());
    }
}
