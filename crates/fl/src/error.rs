//! Error type for federated orchestration.

use helios_data::DataError;
use helios_nn::NnError;
use std::error::Error;
use std::fmt;

/// Error returned by fallible federated-learning operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum FlError {
    /// A model operation failed on some client or the server.
    Nn(NnError),
    /// A dataset operation failed.
    Data(DataError),
    /// Client/shard/fleet counts are inconsistent.
    FleetMismatch {
        /// Number of device profiles supplied.
        profiles: usize,
        /// Number of data shards supplied.
        shards: usize,
    },
    /// A client index was out of range.
    UnknownClient {
        /// The offending index.
        client: usize,
        /// Number of clients in the environment.
        num_clients: usize,
    },
    /// A strategy was configured inconsistently.
    InvalidStrategyConfig {
        /// Description of the problem.
        what: String,
    },
    /// A run configuration ([`crate::FlConfig`]) holds an invalid value.
    InvalidRunConfig {
        /// Description of the problem.
        what: String,
    },
    /// An aggregated global vector tried to change the parameter count —
    /// the architecture is fixed per environment.
    GlobalLengthMismatch {
        /// The environment's parameter count.
        expected: usize,
        /// The offered vector's length.
        actual: usize,
    },
    /// A wire-codec or simulated-transport operation failed.
    Net(helios_net::NetError),
}

impl fmt::Display for FlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlError::Nn(e) => write!(f, "model operation failed: {e}"),
            FlError::Data(e) => write!(f, "dataset operation failed: {e}"),
            FlError::FleetMismatch { profiles, shards } => {
                write!(f, "{profiles} device profiles but {shards} data shards")
            }
            FlError::UnknownClient {
                client,
                num_clients,
            } => write!(f, "client {client} out of range for {num_clients} clients"),
            FlError::InvalidStrategyConfig { what } => {
                write!(f, "invalid strategy configuration: {what}")
            }
            FlError::InvalidRunConfig { what } => {
                write!(f, "invalid run configuration: {what}")
            }
            FlError::GlobalLengthMismatch { expected, actual } => write!(
                f,
                "global parameter length must not change: expected {expected}, got {actual}"
            ),
            FlError::Net(e) => write!(f, "network operation failed: {e}"),
        }
    }
}

impl Error for FlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlError::Nn(e) => Some(e),
            FlError::Data(e) => Some(e),
            FlError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for FlError {
    fn from(e: NnError) -> Self {
        FlError::Nn(e)
    }
}

impl From<DataError> for FlError {
    fn from(e: DataError) -> Self {
        FlError::Data(e)
    }
}

impl From<helios_net::NetError> for FlError {
    fn from(e: helios_net::NetError) -> Self {
        FlError::Net(e)
    }
}

impl From<helios_tensor::TensorError> for FlError {
    fn from(e: helios_tensor::TensorError) -> Self {
        FlError::Nn(NnError::from(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = FlError::FleetMismatch {
            profiles: 2,
            shards: 3,
        };
        assert!(e.to_string().contains("2 device profiles"));
        assert!(e.source().is_none());
        let e = FlError::from(NnError::ParamLengthMismatch {
            expected: 1,
            actual: 2,
        });
        assert!(e.source().is_some());
    }
}
