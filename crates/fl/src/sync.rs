//! Synchronized FedAvg — the paper's "Syn. FL" baseline.

use crate::{aggregate, FlEnv, MaskedUpdate, Result, RoundRecord, RunMetrics, Strategy};

/// Fully synchronous FedAvg: every cycle, every device (stragglers
/// included) trains the complete model and the server waits for the
/// slowest one, so the cycle time is `max_i Te_i`.
///
/// Best accuracy per cycle, worst simulated time per cycle — the
/// "shortest board in barrel" behaviour of the paper's Fig 1.
///
/// # Example
///
/// See the crate-level example, which runs `SyncFedAvg` end-to-end.
#[derive(Debug, Clone, Default)]
pub struct SyncFedAvg {
    _private: (),
}

impl SyncFedAvg {
    /// Creates the strategy.
    pub fn new() -> Self {
        SyncFedAvg::default()
    }
}

impl Strategy for SyncFedAvg {
    fn name(&self) -> &str {
        "sync_fedavg"
    }

    fn run(&mut self, env: &mut FlEnv, cycles: usize) -> Result<RunMetrics> {
        let mut metrics = RunMetrics::new(self.name());
        for cycle in 0..cycles {
            env.broadcast_global(cycle)?;
            // Serial prologue: masks and timing bookkeeping. Local
            // training itself is independent per client, so it fans out
            // across worker threads; the updates come back in client
            // order and aggregation below stays serial, keeping runs
            // bitwise identical to single-threaded execution.
            let mut compute_times = Vec::with_capacity(env.num_clients());
            for i in 0..env.num_clients() {
                let client = env.client_mut(i)?;
                client.set_masks(None)?;
                compute_times.push(client.cycle_time());
            }
            let updates = env.train_all()?;
            // The exchange rides the simulated transport (a transparent
            // passthrough when networking is disabled): the round's span
            // becomes max(compute + comm) and clients whose transfers
            // miss the deadline drop out of this cycle's aggregate.
            let comm_bytes = crate::cycle_comm_bytes(&updates);
            let routed = env.route_updates(cycle, updates, &compute_times)?;
            let mut global = env.global().to_vec();
            let masked: Vec<MaskedUpdate<'_>> = routed
                .updates
                .iter()
                .map(|u| MaskedUpdate {
                    params: &u.params,
                    param_mask: u.param_mask.as_deref(),
                    weight: u.num_samples as f64,
                })
                .collect();
            aggregate(&mut global, &masked);
            env.set_global(global)?;
            env.advance_clock(routed.cycle_time);
            let (test_loss, test_accuracy) = env.evaluate_global()?;
            metrics.push(RoundRecord {
                cycle,
                sim_time: env.clock().now(),
                test_accuracy,
                test_loss,
                participants: routed.updates.len(),
                comm_bytes,
            });
        }
        Ok(metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlConfig;
    use helios_data::{partition, Dataset, SyntheticVision};
    use helios_device::presets;
    use helios_nn::models::ModelKind;
    use helios_tensor::TensorRng;

    fn env(capable: usize, stragglers: usize, seed: u64) -> FlEnv {
        let mut rng = TensorRng::seed_from(seed);
        let clients = capable + stragglers;
        let (train, test) = SyntheticVision::mnist_like()
            .generate(60 * clients, 60, &mut rng)
            .unwrap();
        let shards: Vec<Dataset> = partition::iid(train.len(), clients, &mut rng)
            .into_iter()
            .map(|idx| train.subset(&idx).unwrap())
            .collect();
        FlEnv::new(
            ModelKind::LeNet,
            presets::mixed_fleet(capable, stragglers),
            shards,
            test,
            FlConfig {
                seed,
                ..FlConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn sync_fedavg_improves_accuracy() {
        let mut e = env(2, 0, 11);
        let metrics = SyncFedAvg::new().run(&mut e, 8).unwrap();
        assert_eq!(metrics.records().len(), 8);
        assert!(
            metrics.best_accuracy() > 0.5,
            "accuracy {} too low",
            metrics.best_accuracy()
        );
        // Accuracy trend is upward: tail beats head.
        let head = metrics.records()[0].test_accuracy;
        assert!(metrics.tail_accuracy(3) > head);
    }

    #[test]
    fn cycle_time_is_dominated_by_straggler() {
        let mut fast = env(2, 0, 12);
        let mut slow = env(1, 1, 12);
        let mf = SyncFedAvg::new().run(&mut fast, 2).unwrap();
        let ms = SyncFedAvg::new().run(&mut slow, 2).unwrap();
        assert!(
            ms.total_time().as_secs_f64() > 2.0 * mf.total_time().as_secs_f64(),
            "straggler fleet must be much slower: {} vs {}",
            ms.total_time(),
            mf.total_time()
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let mut a = env(1, 1, 13);
        let mut b = env(1, 1, 13);
        let ma = SyncFedAvg::new().run(&mut a, 3).unwrap();
        let mb = SyncFedAvg::new().run(&mut b, 3).unwrap();
        assert_eq!(ma.records(), mb.records());
        assert_eq!(a.global(), b.global());
    }

    #[test]
    fn all_clients_participate_every_cycle() {
        let mut e = env(2, 2, 14);
        let m = SyncFedAvg::new().run(&mut e, 2).unwrap();
        for r in m.records() {
            assert_eq!(r.participants, 4);
        }
    }
}
