//! Synchronized FedAvg — the paper's "Syn. FL" baseline.

use crate::{fedavg_into_global, FlEnv, Result, RoundPolicy, RoutedCycle};

/// Fully synchronous FedAvg: every cycle, every device (stragglers
/// included) trains the complete model and the server waits for the
/// slowest one, so the cycle time is `max_i Te_i`.
///
/// Best accuracy per cycle, worst simulated time per cycle — the
/// "shortest board in barrel" behaviour of the paper's Fig 1.
///
/// Expressed as a [`RoundPolicy`]: the [`crate::RoundDriver`] defaults
/// (select everyone, broadcast to everyone, clear masks, advance by the
/// routed round span) *are* synchronous FedAvg, so only the aggregation
/// hook is filled in.
///
/// # Example
///
/// See the crate-level example, which runs `SyncFedAvg` end-to-end.
#[derive(Debug, Clone, Default)]
pub struct SyncFedAvg {
    _private: (),
}

impl SyncFedAvg {
    /// Creates the strategy.
    pub fn new() -> Self {
        SyncFedAvg::default()
    }
}

impl RoundPolicy for SyncFedAvg {
    fn name(&self) -> &str {
        "sync_fedavg"
    }

    fn aggregate(&mut self, env: &mut FlEnv, _cycle: usize, routed: &RoutedCycle) -> Result<()> {
        fedavg_into_global(env, &routed.updates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlConfig, Strategy};
    use helios_data::{partition, Dataset, SyntheticVision};
    use helios_device::presets;
    use helios_nn::models::ModelKind;
    use helios_tensor::TensorRng;

    fn env(capable: usize, stragglers: usize, seed: u64) -> FlEnv {
        let mut rng = TensorRng::seed_from(seed);
        let clients = capable + stragglers;
        let (train, test) = SyntheticVision::mnist_like()
            .generate(60 * clients, 60, &mut rng)
            .unwrap();
        let shards: Vec<Dataset> = partition::iid(train.len(), clients, &mut rng)
            .into_iter()
            .map(|idx| train.subset(&idx).unwrap())
            .collect();
        FlEnv::new(
            ModelKind::LeNet,
            presets::mixed_fleet(capable, stragglers),
            shards,
            test,
            FlConfig {
                seed,
                ..FlConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn sync_fedavg_improves_accuracy() {
        let mut e = env(2, 0, 11);
        let metrics = SyncFedAvg::new().run(&mut e, 8).unwrap();
        assert_eq!(metrics.records().len(), 8);
        assert!(
            metrics.best_accuracy() > 0.5,
            "accuracy {} too low",
            metrics.best_accuracy()
        );
        // Accuracy trend is upward: tail beats head.
        let head = metrics.records()[0].test_accuracy;
        assert!(metrics.tail_accuracy(3) > head);
    }

    #[test]
    fn cycle_time_is_dominated_by_straggler() {
        let mut fast = env(2, 0, 12);
        let mut slow = env(1, 1, 12);
        let mf = SyncFedAvg::new().run(&mut fast, 2).unwrap();
        let ms = SyncFedAvg::new().run(&mut slow, 2).unwrap();
        assert!(
            ms.total_time().as_secs_f64() > 2.0 * mf.total_time().as_secs_f64(),
            "straggler fleet must be much slower: {} vs {}",
            ms.total_time(),
            mf.total_time()
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let mut a = env(1, 1, 13);
        let mut b = env(1, 1, 13);
        let ma = SyncFedAvg::new().run(&mut a, 3).unwrap();
        let mb = SyncFedAvg::new().run(&mut b, 3).unwrap();
        assert_eq!(ma.records(), mb.records());
        assert_eq!(a.global(), b.global());
    }

    #[test]
    fn all_clients_participate_every_cycle() {
        let mut e = env(2, 2, 14);
        let m = SyncFedAvg::new().run(&mut e, 2).unwrap();
        for r in m.records() {
            assert_eq!(r.participants, 4);
        }
    }
}
