//! A simulated federated client: model replica, local shard, optimizer,
//! and device resource profile.

use crate::Result;
use helios_data::Dataset;
use helios_device::{CostModel, ResourceProfile, SimTime, TrainingWorkload};
use helios_net::{CompressionConfig, WireSize};
use helios_nn::{CrossEntropyLoss, ModelMask, Network, NetworkCost, Sgd};
use helios_scenario::DriftKind;
use helios_tensor::TensorRng;

/// Global gradient-norm clip applied by every client's optimizer —
/// protection against divergence on hard (heavily Non-IID) shards; large
/// enough to be inactive in ordinary training.
pub const GRAD_CLIP_NORM: f32 = 5.0;

/// Default factor mapping a scaled experiment model's memory footprint to
/// the full-size model's footprint (16×16 → 32×32 inputs, reduced channel
/// counts). Chosen so the full models land in the 50–250 MB band of the
/// paper's Table I memory budgets.
pub const DEFAULT_MEMORY_SCALE: f64 = 60.0;

/// The result of one local training cycle, ready for aggregation.
#[derive(Debug, Clone)]
pub struct LocalUpdate {
    /// Index of the producing client.
    pub client: usize,
    /// The client's full flat parameter vector after local training.
    pub params: Vec<f32>,
    /// Parameter-level activity mask (`None` = every parameter trained).
    /// Masked-out entries still hold the pre-training global values and
    /// must not be averaged in.
    pub param_mask: Option<Vec<bool>>,
    /// Mean training loss over the cycle's batches.
    pub train_loss: f32,
    /// Number of local samples (FedAvg weighting).
    pub num_samples: usize,
    /// Fraction of maskable neurons that trained — the paper's `r_n`.
    pub keep_ratio: f64,
    /// Global cycle index whose parameters this update was computed from
    /// (staleness accounting for asynchronous strategies).
    pub based_on_cycle: usize,
}

/// A simulated edge device participating in federated learning.
///
/// Owns a full model replica (even when soft-training masks part of it —
/// the paper's point is that *no structure is permanently lost*), a local
/// data shard, an SGD optimizer, and the device's resource profile from
/// which cycle times are derived.
#[derive(Debug, Clone)]
pub struct Client {
    id: usize,
    net: Network,
    dataset: Dataset,
    profile: ResourceProfile,
    optimizer: Sgd,
    batch_size: usize,
    local_epochs: usize,
    workload_scale: f64,
    memory_scale: f64,
    rng: TensorRng,
    current_mask: Option<ModelMask>,
    last_based_on: usize,
    /// Scenario-engine battery/thermal scale applied to the profile's
    /// compute bandwidth when deriving cycle times; `1.0` (the default)
    /// leaves the pristine profile untouched.
    compute_scale: f64,
    /// How many scenario drift events have been replayed onto the local
    /// shard — late-materialized clients catch up by replaying the
    /// timeline from this counter, keeping lazy and eager fleets
    /// bit-identical.
    drift_applied: usize,
}

impl Client {
    /// Creates a client.
    ///
    /// `net` must already hold the initial global parameters; `rng` drives
    /// this client's batch shuffling (seed it per-client for reproducible
    /// but decorrelated shuffles). `workload_scale` maps the scaled-down
    /// experiment model's analytic FLOPs/memory back to the magnitude of
    /// the paper's full-size models (see `FlConfig::workload_scale`), so
    /// the compute term dominates the cost formula exactly as in Table I.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: usize,
        net: Network,
        dataset: Dataset,
        profile: ResourceProfile,
        learning_rate: f32,
        momentum: f32,
        batch_size: usize,
        local_epochs: usize,
        workload_scale: f64,
        rng: TensorRng,
    ) -> Self {
        // Invariant backstop: `FlConfig::validate` rejects bad scales
        // before any client is built; a direct caller bypassing the
        // config path still gets a loud failure here.
        assert!(
            workload_scale.is_finite() && workload_scale > 0.0,
            "workload scale must be positive and finite, got {workload_scale}"
        );
        Client {
            id,
            net,
            dataset,
            profile,
            optimizer: Sgd::with_momentum(learning_rate, momentum).with_grad_clip(GRAD_CLIP_NORM),
            batch_size,
            local_epochs,
            workload_scale,
            memory_scale: DEFAULT_MEMORY_SCALE,
            rng,
            current_mask: None,
            last_based_on: 0,
            compute_scale: 1.0,
            drift_applied: 0,
        }
    }

    /// Overrides the memory scale factor (see [`Client::scaled_resident_bytes`]).
    ///
    /// # Panics
    ///
    /// Panics if `memory_scale` is not positive and finite.
    pub fn with_memory_scale(mut self, memory_scale: f64) -> Self {
        assert!(
            memory_scale.is_finite() && memory_scale > 0.0,
            "memory scale must be positive and finite, got {memory_scale}"
        );
        self.memory_scale = memory_scale;
        self
    }

    /// Client index within the fleet.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The device's resource profile.
    pub fn profile(&self) -> &ResourceProfile {
        &self.profile
    }

    /// The local dataset shard.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Number of local samples.
    pub fn num_samples(&self) -> usize {
        self.dataset.len()
    }

    /// The model replica (e.g. for inspecting architecture).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Mutable model access (used by the Helios scheduler for layout
    /// queries).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Installs the unit masks for the next training cycle (`None`
    /// restores full-model training).
    ///
    /// # Errors
    ///
    /// Returns an error when a mask length does not match a layer.
    pub fn set_masks(&mut self, mask: Option<ModelMask>) -> Result<()> {
        match &mask {
            Some(m) => self.net.set_masks(m)?,
            None => self.net.clear_masks(),
        }
        self.current_mask = mask;
        Ok(())
    }

    /// The currently installed mask, if any.
    pub fn current_mask(&self) -> Option<&ModelMask> {
        self.current_mask.as_ref()
    }

    /// Number of parameters active under the current mask (all of them
    /// when no mask is installed).
    pub fn active_param_count(&self) -> usize {
        match &self.current_mask {
            Some(m) => self
                .net
                .layout()
                .param_mask(m)
                .iter()
                .filter(|&&b| b)
                .count(),
            None => self.net.param_len(),
        }
    }

    /// Wire size of this client's next upload: the masked layout when a
    /// soft-training mask is installed (bitset + active parameters
    /// only), the full layout otherwise. This is how a straggler's
    /// upload genuinely shrinks on the wire.
    pub fn upload_wire_size(&self) -> WireSize {
        let n = self.net.param_len();
        match &self.current_mask {
            Some(_) => WireSize::masked(n, self.active_param_count()),
            None => WireSize::full(n),
        }
    }

    /// Wire size of this client's next upload under a wire-v2
    /// [`CompressionConfig`]: the planning estimate the server uses for
    /// straggler identification and deadline fitting. With compression
    /// off this is exactly [`Client::upload_wire_size`]; the v2 modes
    /// shrink it further (worst-case estimates for the data-dependent
    /// delta/top-k layouts — see `CompressionConfig::upload_wire_size`).
    pub fn upload_wire_size_with(&self, compression: &CompressionConfig) -> WireSize {
        let n = self.net.param_len();
        let active = self
            .current_mask
            .as_ref()
            .map(|_| self.active_param_count());
        compression.upload_wire_size(n, active)
    }

    /// Fraction of maskable neurons active under the current mask.
    pub fn keep_ratio(&mut self) -> f64 {
        let units = self.net.maskable_units();
        match &self.current_mask {
            Some(m) => m.keep_ratio(&units),
            None => 1.0,
        }
    }

    /// Replaces the local model parameters with a new global vector and
    /// clears stale optimizer momentum.
    ///
    /// # Errors
    ///
    /// Returns an error when the vector length is wrong.
    pub fn receive_global(&mut self, params: &[f32], cycle: usize) -> Result<()> {
        self.net.set_param_vector(params)?;
        self.optimizer.reset_state();
        self.last_based_on = cycle;
        Ok(())
    }

    /// Runs one local training cycle (`local_epochs` passes over the
    /// shard) and returns the resulting update.
    ///
    /// # Errors
    ///
    /// Propagates model/tensor errors; the client state is unspecified
    /// after an error.
    pub fn train_local(&mut self) -> Result<LocalUpdate> {
        let loss_fn = CrossEntropyLoss::new();
        let mut total_loss = 0.0f32;
        let mut batches = 0usize;
        for _ in 0..self.local_epochs {
            let mut shuffle_rng = self.rng.split();
            for (x, y) in self
                .dataset
                .shuffled_batches(self.batch_size, &mut shuffle_rng)
            {
                self.net.zero_grad();
                let logits = self.net.forward(&x)?;
                let (l, grad) = loss_fn.forward_backward(&logits, &y)?;
                self.net.backward(&grad)?;
                self.optimizer.step(&mut self.net)?;
                total_loss += l;
                batches += 1;
            }
        }
        let params = self.net.param_vector();
        let param_mask = self
            .current_mask
            .as_ref()
            .map(|m| self.net.layout().param_mask(m));
        let keep_ratio = self.keep_ratio();
        Ok(LocalUpdate {
            client: self.id,
            params,
            param_mask,
            train_loss: if batches > 0 {
                total_loss / batches as f32
            } else {
                0.0
            },
            num_samples: self.dataset.len(),
            keep_ratio,
            based_on_cycle: self.last_based_on,
        })
    }

    /// The analytic workload of one local training cycle under the current
    /// mask: training FLOPs, memory traffic, and the parameter exchange.
    pub fn cycle_workload(&self) -> TrainingWorkload {
        let per_batch = NetworkCost::of(&self.net, self.batch_size);
        let batches_per_epoch = self.dataset.len().div_ceil(self.batch_size).max(1);
        let steps = (batches_per_epoch * self.local_epochs) as f64;
        // Upload + download of the active parameters (not scaled: the
        // exchanged model is the scaled one in both worlds).
        let net_bytes = 2.0 * per_batch.param_bytes();
        TrainingWorkload::new(
            per_batch.flops_training() * steps * self.workload_scale,
            per_batch.memory_bytes() * steps * self.workload_scale,
            net_bytes,
        )
    }

    /// Simulated duration of one local training cycle on this device,
    /// under the current scenario compute scale (throttled devices take
    /// proportionally longer).
    pub fn cycle_time(&self) -> SimTime {
        if self.compute_scale == 1.0 {
            return CostModel::time_for(&self.profile, &self.cycle_workload());
        }
        CostModel::time_for(
            &self.profile.compute_scaled(self.compute_scale),
            &self.cycle_workload(),
        )
    }

    /// The current scenario compute scale (see
    /// [`Client::set_compute_scale`]).
    pub fn compute_scale(&self) -> f64 {
        self.compute_scale
    }

    /// Sets the scenario engine's battery/thermal compute scale. The
    /// pristine profile is kept and rescaled on every query, so the
    /// scale can be recomputed from the timeline each cycle without
    /// compounding.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive and finite.
    pub fn set_compute_scale(&mut self, scale: f64) {
        assert!(
            scale.is_finite() && scale > 0.0,
            "compute scale must be positive and finite, got {scale}"
        );
        self.compute_scale = scale;
    }

    /// Number of scenario drift events already applied to the local
    /// shard (see [`Client::apply_drift`]).
    pub fn drift_applied(&self) -> usize {
        self.drift_applied
    }

    /// Applies one scenario drift event to the local shard and advances
    /// the replay counter. Events must be applied one at a time in
    /// timeline order — f32 addition is not associative, so composing
    /// shifts would break the lazy==eager bitwise-parity contract.
    ///
    /// # Errors
    ///
    /// Propagates tensor construction errors (impossible for finite
    /// amounts).
    pub fn apply_drift(&mut self, kind: DriftKind, amount: f64) -> Result<()> {
        self.dataset = match kind {
            DriftKind::LabelRotate => self.dataset.rotate_labels(amount.max(0.0).round() as usize),
            DriftKind::InputShift => self.dataset.shift_inputs(amount as f32)?,
        };
        self.drift_applied += 1;
        Ok(())
    }

    /// The workload scale factor (see [`Client::new`]).
    pub fn workload_scale(&self) -> f64 {
        self.workload_scale
    }

    /// Peak training memory footprint under the current mask, in bytes
    /// (of the scaled experiment model itself).
    pub fn resident_bytes(&self) -> f64 {
        NetworkCost::of(&self.net, self.batch_size).memory_bytes()
    }

    /// Training footprint mapped to full-model magnitude for comparison
    /// against a device's Table I memory budget. Memory scales far less
    /// than FLOPs between the scaled and full models (footprint grows
    /// with parameters and activations, not with dataset passes), hence a
    /// separate, smaller factor than `workload_scale`.
    pub fn scaled_resident_bytes(&self) -> f64 {
        self.resident_bytes() * self.memory_scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_data::SyntheticVision;
    use helios_device::presets;
    use helios_nn::models;
    use helios_tensor::TensorRng;

    fn make_client(profile: ResourceProfile) -> Client {
        let mut rng = TensorRng::seed_from(3);
        let net = models::lenet(10, &mut rng);
        let (train, _) = SyntheticVision::mnist_like()
            .generate(40, 0, &mut rng)
            .unwrap();
        Client::new(0, net, train, profile, 0.05, 0.9, 16, 1, 2000.0, rng)
    }

    #[test]
    fn local_training_reduces_loss_over_cycles() {
        let mut c = make_client(presets::jetson_nano());
        let u1 = c.train_local().unwrap();
        let mut last = u1.train_loss;
        for _ in 0..4 {
            let u = c.train_local().unwrap();
            last = u.train_loss;
        }
        assert!(last < u1.train_loss, "{} → {last}", u1.train_loss);
        assert_eq!(u1.num_samples, 40);
        assert!(u1.param_mask.is_none());
        assert_eq!(u1.keep_ratio, 1.0);
    }

    #[test]
    fn receive_global_overwrites_params_and_tracks_cycle() {
        let mut c = make_client(presets::jetson_nano());
        let zeros = vec![0.0f32; c.network().param_len()];
        c.receive_global(&zeros, 7).unwrap();
        assert!(c.network().param_vector().iter().all(|&x| x == 0.0));
        let u = c.train_local().unwrap();
        assert_eq!(u.based_on_cycle, 7);
        assert!(c.receive_global(&zeros[1..], 8).is_err());
    }

    #[test]
    fn mask_shrinks_cycle_time_and_update_mask() {
        let mut c = make_client(presets::deeplens_cpu());
        let full_time = c.cycle_time();
        let units = c.network_mut().maskable_units();
        let mut mask = ModelMask::all_active(&units);
        for (i, &n) in units.0.iter().enumerate() {
            mask.set_layer(i, Some((0..n).map(|j| j < n / 2).collect()));
        }
        c.set_masks(Some(mask)).unwrap();
        let masked_time = c.cycle_time();
        assert!(
            masked_time.as_secs_f64() < 0.7 * full_time.as_secs_f64(),
            "mask should accelerate: {full_time} vs {masked_time}"
        );
        assert!((c.keep_ratio() - 0.5).abs() < 0.1);
        let u = c.train_local().unwrap();
        let pm = u.param_mask.expect("masked training reports a mask");
        assert!(pm.iter().any(|&b| !b));
        // Clearing masks restores the full cost.
        c.set_masks(None).unwrap();
        assert_eq!(c.cycle_time(), full_time);
    }

    #[test]
    fn straggler_is_slower_than_capable_on_same_model() {
        let capable = make_client(presets::jetson_nano());
        let straggler = make_client(presets::deeplens_cpu());
        assert!(straggler.cycle_time() > capable.cycle_time());
    }

    #[test]
    fn same_seed_clients_train_identically() {
        let a = make_client(presets::jetson_nano());
        let mut b = a.clone();
        let mut a = a;
        let ua = a.train_local().unwrap();
        let ub = b.train_local().unwrap();
        assert_eq!(ua.params, ub.params);
        assert_eq!(ua.train_loss, ub.train_loss);
    }
}
