//! Fleet-scale population description for lazily instantiated devices.
//!
//! A [`FleetSpec`] describes an enrolled population without storing any
//! of it: profiles, shards, and availability are all pure functions of
//! `(base_seed, device_index)`, so a 100k-device fleet costs a few
//! hundred bytes until devices are actually sampled. [`crate::FlEnv`]
//! consumes a spec via `FlEnv::new_lazy` and materializes clients on
//! demand.

use helios_data::ShardSynthesizer;
use helios_device::fleet::{mix64, unit_from_bits, ProfileSynthesizer};
use serde::{Deserialize, Serialize};

/// Golden-ratio multiplier used across the workspace for index mixing.
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;
/// Domain-separation tag for the availability stream ("AVLB").
const AVAIL_STREAM: u64 = 0x4156_4c42;

/// Per-device participation propensity, pure in `(base_seed, index)`.
///
/// A fixed fraction of the population is permanently offline
/// (availability exactly `0.0` — the weighted sampler must never select
/// them); the rest get an individual availability in `(0, 1)`. The
/// always-on model (`offline_fraction == 0`) reports `1.0` for every
/// device and is the default for eager environments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityModel {
    base_seed: u64,
    offline_fraction: f64,
}

impl AvailabilityModel {
    /// Every device is always available (availability `1.0`).
    #[must_use]
    pub fn always_on() -> Self {
        AvailabilityModel {
            base_seed: 0,
            offline_fraction: 0.0,
        }
    }

    /// A population where `offline_fraction` of devices never
    /// participate.
    ///
    /// # Panics
    ///
    /// Panics if `offline_fraction` is not in `[0, 1]`.
    #[must_use]
    pub fn new(base_seed: u64, offline_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&offline_fraction),
            "offline fraction must be in [0, 1], got {offline_fraction}"
        );
        AvailabilityModel {
            base_seed,
            offline_fraction,
        }
    }

    /// Availability weight of `device` in `[0, 1]`; exactly `0.0` for
    /// permanently offline devices. Pure in `(base_seed, device)`.
    #[must_use]
    pub fn availability(&self, device: usize) -> f64 {
        if self.offline_fraction == 0.0 {
            return 1.0;
        }
        let h = mix64(self.base_seed ^ AVAIL_STREAM ^ GOLDEN.wrapping_mul(device as u64 + 1));
        let u = unit_from_bits(h);
        if u < self.offline_fraction {
            0.0
        } else {
            // Rescale the surviving mass to (0, 1].
            (u - self.offline_fraction) / (1.0 - self.offline_fraction)
        }
    }
}

/// An enrolled device population, described but not materialized.
///
/// Bundles the three per-device pure generators — compute profile, data
/// shard, availability — plus the population size and the cache policy
/// the lazy environment applies to instantiated clients.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Number of enrolled devices.
    pub population: usize,
    /// On-demand compute/memory/network profile generator.
    pub profiles: ProfileSynthesizer,
    /// On-demand data shard generator.
    pub shards: ShardSynthesizer,
    /// Per-device participation propensity for weighted sampling.
    pub availability: AvailabilityModel,
    /// When `false`, clients outside the current cohort are evicted at
    /// each selection, capping live state at O(cohort) — the fleet
    /// bench's memory contract. When `true` (the default), instantiated
    /// clients persist for the whole run, which the lazy-vs-eager
    /// bitwise-equivalence guarantee requires for strategies that revisit
    /// devices across cycles.
    pub retain_clients: bool,
}

impl FleetSpec {
    /// A spec with every device always available and client retention on.
    #[must_use]
    pub fn new(population: usize, profiles: ProfileSynthesizer, shards: ShardSynthesizer) -> Self {
        FleetSpec {
            population,
            profiles,
            shards,
            availability: AvailabilityModel::always_on(),
            retain_clients: true,
        }
    }

    /// Replaces the availability model.
    #[must_use]
    pub fn with_availability(mut self, availability: AvailabilityModel) -> Self {
        self.availability = availability;
        self
    }

    /// Evict clients outside the current cohort at each selection,
    /// keeping live state O(cohort) instead of O(devices ever sampled).
    #[must_use]
    pub fn evict_unsampled(mut self) -> Self {
        self.retain_clients = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_data::SyntheticVision;

    #[test]
    fn always_on_reports_unit_availability() {
        let m = AvailabilityModel::always_on();
        assert!((0..1000).all(|i| m.availability(i) == 1.0));
    }

    #[test]
    fn availability_is_pure_and_offline_fraction_holds() {
        let m = AvailabilityModel::new(9, 0.25);
        let n = 4000;
        let offline = (0..n).filter(|&i| m.availability(i) == 0.0).count();
        let rate = offline as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.03, "offline rate {rate}");
        for i in [0usize, 17, 3999] {
            assert_eq!(m.availability(i).to_bits(), m.availability(i).to_bits());
            assert!((0.0..=1.0).contains(&m.availability(i)));
        }
    }

    #[test]
    fn fully_offline_population_has_no_available_devices() {
        let m = AvailabilityModel::new(1, 1.0);
        assert!((0..256).all(|i| m.availability(i) == 0.0));
    }

    #[test]
    fn spec_builders_compose() {
        let spec = FleetSpec::new(
            100_000,
            ProfileSynthesizer::new(3, 0.3),
            ShardSynthesizer::new(SyntheticVision::mnist_like(), 8, 3).unwrap(),
        )
        .with_availability(AvailabilityModel::new(3, 0.2))
        .evict_unsampled();
        assert_eq!(spec.population, 100_000);
        assert!(!spec.retain_clients);
        assert!(spec.availability.availability(0) <= 1.0);
    }

    #[test]
    #[should_panic(expected = "offline fraction")]
    fn rejects_bad_offline_fraction() {
        let _ = AvailabilityModel::new(0, -0.1);
    }
}
