//! Fleet-scale population description for lazily instantiated devices.
//!
//! A [`FleetSpec`] describes an enrolled population without storing any
//! of it: profiles, shards, and availability are all pure functions of
//! `(base_seed, device_index)`, so a 100k-device fleet costs a few
//! hundred bytes until devices are actually sampled. [`crate::FlEnv`]
//! consumes a spec via `FlEnv::new_lazy` and materializes clients on
//! demand.

use helios_data::ShardSynthesizer;
use helios_device::fleet::{mix64, unit_from_bits, ProfileSynthesizer};
use helios_scenario::DiurnalWave;
use serde::{Deserialize, Serialize};

/// Golden-ratio multiplier used across the workspace for index mixing.
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;
/// Domain-separation tag for the availability stream ("AVLB").
const AVAIL_STREAM: u64 = 0x4156_4c42;
/// Domain-separation tag for the diurnal wave phase stream ("WAVE").
const WAVE_STREAM: u64 = 0x5741_5645;

/// Per-device participation propensity, pure in
/// `(base_seed, device, cycle)`.
///
/// A fixed fraction of the population is permanently offline
/// (availability exactly `0.0` — the weighted sampler must never select
/// them); the rest get an individual base availability in `(0, 1]`. An
/// optional [`DiurnalWave`] modulates the base weight over simulated
/// time with a per-device phase shift, so a fleet's participation
/// ebbs and flows like a day/night cycle while staying a pure function
/// of `(base_seed, device, cycle)` — the lazy==eager bitwise-parity
/// contract. The always-on model (`offline_fraction == 0`, no wave)
/// reports `1.0` for every device at every cycle and is the default for
/// eager environments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityModel {
    base_seed: u64,
    offline_fraction: f64,
    /// Optional time-of-day modulation (absent in configs written
    /// before the scenario engine existed).
    #[serde(default)]
    wave: Option<DiurnalWave>,
}

impl AvailabilityModel {
    /// Every device is always available (availability `1.0`).
    #[must_use]
    pub fn always_on() -> Self {
        AvailabilityModel {
            base_seed: 0,
            offline_fraction: 0.0,
            wave: None,
        }
    }

    /// A population where `offline_fraction` of devices never
    /// participate.
    ///
    /// # Panics
    ///
    /// Panics if `offline_fraction` is not in `[0, 1]`.
    #[must_use]
    pub fn new(base_seed: u64, offline_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&offline_fraction),
            "offline fraction must be in [0, 1], got {offline_fraction}"
        );
        AvailabilityModel {
            base_seed,
            offline_fraction,
            wave: None,
        }
    }

    /// Adds a diurnal wave: each device's weight is multiplied by a
    /// phase-shifted sinusoid of the cycle index.
    #[must_use]
    pub fn with_wave(mut self, wave: DiurnalWave) -> Self {
        self.wave = Some(wave);
        self
    }

    /// The installed diurnal wave, if any.
    #[must_use]
    pub fn wave(&self) -> Option<&DiurnalWave> {
        self.wave.as_ref()
    }

    /// Base availability ignoring any diurnal wave: `0.0` for
    /// permanently offline devices, in `(0, 1]` otherwise. Pure in
    /// `(base_seed, device)`.
    #[must_use]
    fn base_availability(&self, device: usize) -> f64 {
        if self.offline_fraction == 0.0 {
            return 1.0;
        }
        let h = mix64(self.base_seed ^ AVAIL_STREAM ^ GOLDEN.wrapping_mul(device as u64 + 1));
        let u = unit_from_bits(h);
        if u < self.offline_fraction {
            0.0
        } else {
            // Rescale the surviving mass to (0, 1].
            (u - self.offline_fraction) / (1.0 - self.offline_fraction)
        }
    }

    /// Availability weight of `device` at `cycle`, in `[0, 1]`; exactly
    /// `0.0` for permanently offline devices regardless of the wave.
    /// Pure in `(base_seed, device, cycle)` — without a wave the cycle
    /// is ignored and the historical static weights are returned
    /// bit-for-bit.
    #[must_use]
    pub fn availability(&self, device: usize, cycle: usize) -> f64 {
        let base = self.base_availability(device);
        match &self.wave {
            None => base,
            Some(w) => {
                if base == 0.0 {
                    return 0.0;
                }
                let h =
                    mix64(self.base_seed ^ WAVE_STREAM ^ GOLDEN.wrapping_mul(device as u64 + 1));
                base * w.scale(unit_from_bits(h), cycle)
            }
        }
    }
}

/// An enrolled device population, described but not materialized.
///
/// Bundles the three per-device pure generators — compute profile, data
/// shard, availability — plus the population size and the cache policy
/// the lazy environment applies to instantiated clients.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Number of enrolled devices.
    pub population: usize,
    /// On-demand compute/memory/network profile generator.
    pub profiles: ProfileSynthesizer,
    /// On-demand data shard generator.
    pub shards: ShardSynthesizer,
    /// Per-device participation propensity for weighted sampling.
    pub availability: AvailabilityModel,
    /// When `false`, clients outside the current cohort are evicted at
    /// each selection, capping live state at O(cohort) — the fleet
    /// bench's memory contract. When `true` (the default), instantiated
    /// clients persist for the whole run, which the lazy-vs-eager
    /// bitwise-equivalence guarantee requires for strategies that revisit
    /// devices across cycles.
    pub retain_clients: bool,
}

impl FleetSpec {
    /// A spec with every device always available and client retention on.
    #[must_use]
    pub fn new(population: usize, profiles: ProfileSynthesizer, shards: ShardSynthesizer) -> Self {
        FleetSpec {
            population,
            profiles,
            shards,
            availability: AvailabilityModel::always_on(),
            retain_clients: true,
        }
    }

    /// Replaces the availability model.
    #[must_use]
    pub fn with_availability(mut self, availability: AvailabilityModel) -> Self {
        self.availability = availability;
        self
    }

    /// Evict clients outside the current cohort at each selection,
    /// keeping live state O(cohort) instead of O(devices ever sampled).
    #[must_use]
    pub fn evict_unsampled(mut self) -> Self {
        self.retain_clients = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_data::SyntheticVision;

    #[test]
    fn always_on_reports_unit_availability() {
        let m = AvailabilityModel::always_on();
        assert!((0..1000).all(|i| m.availability(i, 0) == 1.0));
        // Without a wave the cycle is ignored.
        assert!((0..100).all(|c| m.availability(3, c) == 1.0));
    }

    #[test]
    fn availability_is_pure_and_offline_fraction_holds() {
        let m = AvailabilityModel::new(9, 0.25);
        let n = 4000;
        let offline = (0..n).filter(|&i| m.availability(i, 0) == 0.0).count();
        let rate = offline as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.03, "offline rate {rate}");
        for i in [0usize, 17, 3999] {
            assert_eq!(
                m.availability(i, 0).to_bits(),
                m.availability(i, 0).to_bits()
            );
            assert!((0.0..=1.0).contains(&m.availability(i, 0)));
            // Static weights are cycle-independent.
            assert_eq!(
                m.availability(i, 0).to_bits(),
                m.availability(i, 99).to_bits()
            );
        }
    }

    #[test]
    fn fully_offline_population_has_no_available_devices() {
        let m = AvailabilityModel::new(1, 1.0);
        assert!((0..256).all(|i| m.availability(i, 0) == 0.0));
    }

    #[test]
    fn diurnal_wave_modulates_over_cycles_but_stays_pure() {
        let wave = DiurnalWave {
            period_cycles: 8,
            min_scale: 0.1,
            phase_spread: 1.0,
        };
        let m = AvailabilityModel::new(9, 0.25).with_wave(wave);
        assert!(m.wave().is_some());
        // Pure in (device, cycle) and bounded by the static weight.
        let static_m = AvailabilityModel::new(9, 0.25);
        for device in 0..64 {
            let base = static_m.availability(device, 0);
            for cycle in 0..16 {
                let a = m.availability(device, cycle);
                assert_eq!(a.to_bits(), m.availability(device, cycle).to_bits());
                assert!(a <= base, "wave must only shrink the weight");
                if base == 0.0 {
                    assert_eq!(a, 0.0, "offline devices stay offline at every hour");
                }
            }
            // Exactly periodic.
            assert_eq!(
                m.availability(device, 3).to_bits(),
                m.availability(device, 3 + 8).to_bits()
            );
        }
        // The wave actually varies over the day for online devices.
        let online = (0..64)
            .find(|&d| static_m.availability(d, 0) > 0.0)
            .unwrap();
        let weights: Vec<u64> = (0..8)
            .map(|c| m.availability(online, c).to_bits())
            .collect();
        assert!(weights.windows(2).any(|w| w[0] != w[1]));
        // And devices are phase-shifted relative to each other.
        let online2 = (online + 1..64)
            .find(|&d| static_m.availability(d, 0) > 0.0)
            .unwrap();
        let ratio1 = m.availability(online, 0) / static_m.availability(online, 0);
        let ratio2 = m.availability(online2, 0) / static_m.availability(online2, 0);
        assert_ne!(ratio1.to_bits(), ratio2.to_bits(), "phases differ");
    }

    #[test]
    fn spec_builders_compose() {
        let spec = FleetSpec::new(
            100_000,
            ProfileSynthesizer::new(3, 0.3),
            ShardSynthesizer::new(SyntheticVision::mnist_like(), 8, 3).unwrap(),
        )
        .with_availability(AvailabilityModel::new(3, 0.2))
        .evict_unsampled();
        assert_eq!(spec.population, 100_000);
        assert!(!spec.retain_clients);
        assert!(spec.availability.availability(0, 0) <= 1.0);
    }

    #[test]
    #[should_panic(expected = "offline fraction")]
    fn rejects_bad_offline_fraction() {
        let _ = AvailabilityModel::new(0, -0.1);
    }
}
