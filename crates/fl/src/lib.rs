//! Federated-learning orchestration engine and baseline strategies for
//! the Helios reproduction.
//!
//! This crate provides the simulation substrate every experiment runs on:
//!
//! - [`Client`] — a simulated edge device owning a model replica, a local
//!   data shard, an optimizer, and a [`ResourceProfile`]; its training
//!   cycle time comes from the paper's analytic cost model, honouring any
//!   neuron masks currently installed (a masked sub-model is cheaper and
//!   therefore faster);
//! - [`FlEnv`] — the shared experimental setup (clients, test set, global
//!   parameter vector, simulated clock);
//! - [`aggregate`] — masked weighted parameter averaging, the primitive
//!   under every aggregation rule in the paper;
//! - [`RoundDriver`] — the unified round-lifecycle engine: one canonical
//!   phase sequence (selection → broadcast → local training → transport
//!   routing → aggregation → evaluation → metrics recording) shared by
//!   every strategy, with per-phase instrumentation recorded into each
//!   cycle's [`PhaseBreakdown`];
//! - the four baseline strategies of §VII.A, each a slim [`RoundPolicy`]
//!   over the driver: [`SyncFedAvg`] (Syn. FL), [`AsyncFl`] (Asyn. FL),
//!   [`Afo`] (asynchronous federated optimization with staleness-decayed
//!   mixing), and [`RandomPartial`] (random sub-model selection per
//!   Caldas et al.);
//! - [`RunMetrics`] — accuracy-vs-cycle and accuracy-vs-simulated-time
//!   curves plus the derived quantities the paper reports (cycles to
//!   target accuracy, wall-clock speedup), now with a per-phase,
//!   per-cycle breakdown and a host-side [`RunProfile`].
//!
//! The Helios strategy itself lives in the `helios-core` crate and plugs
//! into the same [`RoundPolicy`]/[`Strategy`] interface.
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! use helios_data::{partition, SyntheticVision};
//! use helios_device::presets;
//! use helios_fl::{FlConfig, FlEnv, Strategy, SyncFedAvg};
//! use helios_nn::models::ModelKind;
//! use helios_tensor::TensorRng;
//!
//! # fn main() -> Result<(), Box<dyn Error>> {
//! let mut rng = TensorRng::seed_from(0);
//! let (train, test) = SyntheticVision::mnist_like().generate(80, 40, &mut rng)?;
//! let shards = partition::iid(train.len(), 2, &mut rng)
//!     .into_iter()
//!     .map(|idx| train.subset(&idx))
//!     .collect::<Result<Vec<_>, _>>()?;
//! let env = FlEnv::new(
//!     ModelKind::LeNet,
//!     presets::mixed_fleet(1, 1),
//!     shards,
//!     test,
//!     FlConfig::default(),
//! )?;
//! let mut env = env;
//! let metrics = SyncFedAvg::new().run(&mut env, 2)?;
//! assert_eq!(metrics.records().len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The PR 3 typed-error migration removed every panicking shortcut from
// non-test code; this keeps them out. Tests may still unwrap freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod asynchronous;
mod client;
mod driver;
mod env;
mod error;
pub mod fleet;
mod metrics;
mod random_partial;
pub mod sampler;
mod server;
mod strategy;
mod sync;

pub use asynchronous::{Afo, AsyncFl};
pub use client::{Client, LocalUpdate, DEFAULT_MEMORY_SCALE, GRAD_CLIP_NORM};
pub use driver::{fedavg_into_global, RoundDriver, RoundPolicy};
pub use env::{FlConfig, FlEnv, RoutedCycle};
pub use error::FlError;
pub use fleet::{AvailabilityModel, FleetSpec};
pub use metrics::{PhaseBreakdown, RoundRecord, RunMetrics, RunProfile};
pub use random_partial::{random_mask, RandomPartial};
pub use sampler::{ClientSampler, SamplerConfig, SamplingStrategy};
pub use server::{
    aggregate, cycle_comm_bytes, cycle_comm_bytes_with, MaskedUpdate, OnlineAggregator,
};
pub use strategy::Strategy;
pub use sync::SyncFedAvg;

#[doc(no_inline)]
pub use helios_device::ResourceProfile;
#[doc(no_inline)]
pub use helios_net::{
    CompressionConfig, CompressionMode, FaultConfig, LinkProfile, NetConfig, WireSize,
};
#[doc(no_inline)]
pub use helios_scenario::{
    ChurnAction, ChurnEvent, DiurnalWave, DriftEvent, DriftKind, ScenarioConfig, ThrottleRule,
};
#[doc(no_inline)]
pub use helios_tensor::ParallelismConfig;

/// Crate-wide result alias carrying an [`FlError`].
pub type Result<T> = std::result::Result<T, FlError>;

/// Bridges the workspace's host-only accumulators (tensor kernel
/// counters, `nn::profiler` wall timers) into the `helios_obs` metrics
/// registry as polled gauges.
///
/// These quantities measure the *host* (FLOPs executed, wall seconds in
/// forward/backward/step), never simulated outcomes, so they stay out
/// of traces and appear only in [`helios_obs::registry::snapshot`].
/// Idempotent — re-registering replaces the closures.
pub fn register_host_gauges() {
    use helios_obs::registry::register_poll;
    register_poll("host.tensor.kernel_flops", || {
        helios_tensor::kernel_counters().flops as f64
    });
    register_poll("host.tensor.kernel_elements", || {
        helios_tensor::kernel_counters().elements as f64
    });
    register_poll("host.nn.forward_s", || helios_nn::nn_timings().forward_s);
    register_poll("host.nn.backward_s", || helios_nn::nn_timings().backward_s);
    register_poll("host.nn.step_s", || helios_nn::nn_timings().step_s);
}
