//! Random partial-model training — the paper's "Random" baseline
//! (federated dropout, Caldas et al. [12]).

use crate::{aggregate, FlEnv, FlError, MaskedUpdate, Result, RoundRecord, RunMetrics, Strategy};
use helios_nn::{MaskableUnits, ModelMask};
use helios_tensor::TensorRng;

/// Samples a uniform random mask keeping `ceil(keep · n_i)` units of every
/// maskable layer.
///
/// Shared by the Random baseline and by Helios's initial cycle; public so
/// the `helios-core` crate can reuse it.
pub fn random_mask(units: &MaskableUnits, keep: f64, rng: &mut TensorRng) -> ModelMask {
    let mut mask = ModelMask::all_active(units);
    for (i, &n) in units.0.iter().enumerate() {
        let k = ((keep * n as f64).ceil() as usize).clamp(1, n);
        let chosen = rng.sample_indices(n, k);
        let mut layer = vec![false; n];
        for c in chosen {
            layer[c] = true;
        }
        mask.set_layer(i, Some(layer));
    }
    mask
}

/// Synchronous FL where each straggler trains a *uniformly random*
/// sub-model of its expected volume every cycle.
///
/// Stragglers keep pace (the mask shrinks their cycle time), and no
/// structure is permanently lost — but the random selection ignores
/// neuron contribution, which is exactly the gap Helios's soft-training
/// closes (§V.A's "primary converge guarantee" neurons).
///
/// # Example
///
/// ```no_run
/// use helios_fl::RandomPartial;
///
/// // Client 1 trains 40% of its neurons each cycle; client 0 is full.
/// let strategy = RandomPartial::new(vec![None, Some(0.4)]);
/// # let _ = strategy;
/// ```
#[derive(Debug, Clone)]
pub struct RandomPartial {
    keep_ratios: Vec<Option<f64>>,
}

impl RandomPartial {
    /// Creates the strategy; `keep_ratios[i]` is client `i`'s sub-model
    /// volume (`None` = full model).
    pub fn new(keep_ratios: Vec<Option<f64>>) -> Self {
        RandomPartial { keep_ratios }
    }

    fn validate(&self, env: &FlEnv) -> Result<()> {
        if self.keep_ratios.len() != env.num_clients() {
            return Err(FlError::InvalidStrategyConfig {
                what: format!(
                    "{} keep ratios for {} clients",
                    self.keep_ratios.len(),
                    env.num_clients()
                ),
            });
        }
        for (i, r) in self.keep_ratios.iter().enumerate() {
            if let Some(r) = r {
                if !(*r > 0.0 && *r <= 1.0) {
                    return Err(FlError::InvalidStrategyConfig {
                        what: format!("client {i} keep ratio {r} outside (0, 1]"),
                    });
                }
            }
        }
        Ok(())
    }
}

impl Strategy for RandomPartial {
    fn name(&self) -> &str {
        "random_partial"
    }

    fn run(&mut self, env: &mut FlEnv, cycles: usize) -> Result<RunMetrics> {
        self.validate(env)?;
        let mut metrics = RunMetrics::new(self.name());
        let mut rng = TensorRng::seed_from(env.config().seed ^ 0x52414e44); // "RAND"
        for cycle in 0..cycles {
            env.broadcast_global(cycle)?;
            // Serial prologue: mask drawing consumes the strategy RNG,
            // so it must stay in client order for reproducibility. The
            // training itself is independent per client and fans out.
            let mut compute_times = Vec::with_capacity(env.num_clients());
            for i in 0..env.num_clients() {
                let keep = self.keep_ratios[i];
                let client = env.client_mut(i)?;
                match keep {
                    Some(r) => {
                        let units = client.network_mut().maskable_units();
                        let mask = random_mask(&units, r, &mut rng);
                        client.set_masks(Some(mask))?;
                    }
                    None => client.set_masks(None)?,
                }
                compute_times.push(client.cycle_time());
            }
            let updates = env.train_all()?;
            // Exchange rides the simulated transport (passthrough when
            // networking is disabled); masked uploads use the compact
            // wire layout, so stragglers genuinely send fewer bytes.
            let comm_bytes = crate::cycle_comm_bytes(&updates);
            let routed = env.route_updates(cycle, updates, &compute_times)?;
            let mut global = env.global().to_vec();
            let masked: Vec<MaskedUpdate<'_>> = routed
                .updates
                .iter()
                .map(|u| MaskedUpdate {
                    params: &u.params,
                    param_mask: u.param_mask.as_deref(),
                    weight: u.num_samples as f64,
                })
                .collect();
            aggregate(&mut global, &masked);
            env.set_global(global)?;
            env.advance_clock(routed.cycle_time);
            let (test_loss, test_accuracy) = env.evaluate_global()?;
            metrics.push(RoundRecord {
                cycle,
                sim_time: env.clock().now(),
                test_accuracy,
                test_loss,
                participants: routed.updates.len(),
                comm_bytes,
            });
        }
        Ok(metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlConfig, SyncFedAvg};
    use helios_data::{partition, Dataset, SyntheticVision};
    use helios_device::presets;
    use helios_nn::models::ModelKind;
    use helios_tensor::TensorRng;

    fn env(capable: usize, stragglers: usize, seed: u64) -> FlEnv {
        let mut rng = TensorRng::seed_from(seed);
        let clients = capable + stragglers;
        let (train, test) = SyntheticVision::mnist_like()
            .generate(60 * clients, 60, &mut rng)
            .unwrap();
        let shards: Vec<Dataset> = partition::iid(train.len(), clients, &mut rng)
            .into_iter()
            .map(|idx| train.subset(&idx).unwrap())
            .collect();
        FlEnv::new(
            ModelKind::LeNet,
            presets::mixed_fleet(capable, stragglers),
            shards,
            test,
            FlConfig {
                seed,
                ..FlConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn random_mask_keeps_requested_fraction() {
        let units = MaskableUnits(vec![10, 20]);
        let mut rng = TensorRng::seed_from(0);
        let mask = random_mask(&units, 0.4, &mut rng);
        assert_eq!(mask.active_counts(&units), vec![4, 8]);
        // Extreme ratios clamp sensibly.
        let tiny = random_mask(&units, 0.001, &mut rng);
        assert_eq!(tiny.active_counts(&units), vec![1, 1]);
        let full = random_mask(&units, 1.0, &mut rng);
        assert_eq!(full.active_counts(&units), vec![10, 20]);
    }

    #[test]
    fn random_masks_differ_between_cycles() {
        let units = MaskableUnits(vec![32]);
        let mut rng = TensorRng::seed_from(1);
        let a = random_mask(&units, 0.5, &mut rng);
        let b = random_mask(&units, 0.5, &mut rng);
        assert_ne!(a, b, "successive draws should differ");
    }

    #[test]
    fn random_partial_accelerates_straggler_fleet() {
        let mut full = env(1, 1, 31);
        let mut partial = env(1, 1, 31);
        let mf = SyncFedAvg::new().run(&mut full, 3).unwrap();
        let mp = RandomPartial::new(vec![None, Some(0.3)])
            .run(&mut partial, 3)
            .unwrap();
        assert!(
            mp.total_time().as_secs_f64() < 0.7 * mf.total_time().as_secs_f64(),
            "partial training must shrink cycle time: {} vs {}",
            mp.total_time(),
            mf.total_time()
        );
    }

    #[test]
    fn random_partial_still_learns() {
        let mut e = env(1, 1, 32);
        let m = RandomPartial::new(vec![None, Some(0.4)])
            .run(&mut e, 8)
            .unwrap();
        assert!(m.best_accuracy() > 0.4, "accuracy {}", m.best_accuracy());
    }

    #[test]
    fn validates_configuration() {
        let mut e = env(1, 1, 33);
        assert!(RandomPartial::new(vec![None]).run(&mut e, 1).is_err());
        assert!(RandomPartial::new(vec![None, Some(0.0)])
            .run(&mut e, 1)
            .is_err());
        assert!(RandomPartial::new(vec![None, Some(1.5)])
            .run(&mut e, 1)
            .is_err());
    }
}
