//! Random partial-model training — the paper's "Random" baseline
//! (federated dropout, Caldas et al. [12]).

use crate::{FlEnv, FlError, Result, RoundPolicy, RoutedCycle};
use helios_nn::{MaskableUnits, ModelMask};
use helios_tensor::TensorRng;

/// Samples a uniform random mask keeping `ceil(keep · n_i)` units of every
/// maskable layer.
///
/// Shared by the Random baseline and by Helios's initial cycle; public so
/// the `helios-core` crate can reuse it.
pub fn random_mask(units: &MaskableUnits, keep: f64, rng: &mut TensorRng) -> ModelMask {
    let mut mask = ModelMask::all_active(units);
    for (i, &n) in units.0.iter().enumerate() {
        let k = ((keep * n as f64).ceil() as usize).clamp(1, n);
        let chosen = rng.sample_indices(n, k);
        let mut layer = vec![false; n];
        for c in chosen {
            layer[c] = true;
        }
        mask.set_layer(i, Some(layer));
    }
    mask
}

/// Synchronous FL where each straggler trains a *uniformly random*
/// sub-model of its expected volume every cycle.
///
/// Stragglers keep pace (the mask shrinks their cycle time), and no
/// structure is permanently lost — but the random selection ignores
/// neuron contribution, which is exactly the gap Helios's soft-training
/// closes (§V.A's "primary converge guarantee" neurons).
///
/// # Example
///
/// ```no_run
/// use helios_fl::RandomPartial;
///
/// // Client 1 trains 40% of its neurons each cycle; client 0 is full.
/// let strategy = RandomPartial::new(vec![None, Some(0.4)]);
/// # let _ = strategy;
/// ```
#[derive(Debug, Clone)]
pub struct RandomPartial {
    keep_ratios: Vec<Option<f64>>,
    /// Mask-selection stream, reseeded by every `begin_run` so repeated
    /// runs of one value draw identical mask sequences.
    rng: Option<TensorRng>,
}

impl RandomPartial {
    /// Creates the strategy; `keep_ratios[i]` is client `i`'s sub-model
    /// volume (`None` = full model).
    pub fn new(keep_ratios: Vec<Option<f64>>) -> Self {
        RandomPartial {
            keep_ratios,
            rng: None,
        }
    }

    fn validate(&self, env: &FlEnv) -> Result<()> {
        if self.keep_ratios.len() != env.num_clients() {
            return Err(FlError::InvalidStrategyConfig {
                what: format!(
                    "{} keep ratios for {} clients",
                    self.keep_ratios.len(),
                    env.num_clients()
                ),
            });
        }
        for (i, r) in self.keep_ratios.iter().enumerate() {
            if let Some(r) = r {
                if !(*r > 0.0 && *r <= 1.0) {
                    return Err(FlError::InvalidStrategyConfig {
                        what: format!("client {i} keep ratio {r} outside (0, 1]"),
                    });
                }
            }
        }
        Ok(())
    }
}

impl RoundPolicy for RandomPartial {
    fn name(&self) -> &str {
        "random_partial"
    }

    fn begin_run(&mut self, env: &mut FlEnv) -> Result<()> {
        self.validate(env)?;
        self.rng = Some(TensorRng::seed_from(env.config().seed ^ 0x52414e44)); // "RAND"
        Ok(())
    }

    /// Mask drawing consumes the strategy RNG, so the driver's serial
    /// client-order configuration pass is what keeps runs reproducible.
    fn configure_client(&mut self, env: &mut FlEnv, _cycle: usize, client: usize) -> Result<()> {
        let keep = self.keep_ratios[client];
        let Some(rng) = self.rng.as_mut() else {
            return Err(FlError::InvalidStrategyConfig {
                what: "RandomPartial mask RNG missing (begin_run not called)".into(),
            });
        };
        let c = env.client_mut(client)?;
        match keep {
            Some(r) => {
                let units = c.network_mut().maskable_units();
                let mask = random_mask(&units, r, rng);
                c.set_masks(Some(mask))
            }
            None => c.set_masks(None),
        }
    }

    fn aggregate(&mut self, env: &mut FlEnv, _cycle: usize, routed: &RoutedCycle) -> Result<()> {
        crate::fedavg_into_global(env, &routed.updates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlConfig, Strategy, SyncFedAvg};
    use helios_data::{partition, Dataset, SyntheticVision};
    use helios_device::presets;
    use helios_nn::models::ModelKind;
    use helios_tensor::TensorRng;

    fn env(capable: usize, stragglers: usize, seed: u64) -> FlEnv {
        let mut rng = TensorRng::seed_from(seed);
        let clients = capable + stragglers;
        let (train, test) = SyntheticVision::mnist_like()
            .generate(60 * clients, 60, &mut rng)
            .unwrap();
        let shards: Vec<Dataset> = partition::iid(train.len(), clients, &mut rng)
            .into_iter()
            .map(|idx| train.subset(&idx).unwrap())
            .collect();
        FlEnv::new(
            ModelKind::LeNet,
            presets::mixed_fleet(capable, stragglers),
            shards,
            test,
            FlConfig {
                seed,
                ..FlConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn random_mask_keeps_requested_fraction() {
        let units = MaskableUnits(vec![10, 20]);
        let mut rng = TensorRng::seed_from(0);
        let mask = random_mask(&units, 0.4, &mut rng);
        assert_eq!(mask.active_counts(&units), vec![4, 8]);
        // Extreme ratios clamp sensibly.
        let tiny = random_mask(&units, 0.001, &mut rng);
        assert_eq!(tiny.active_counts(&units), vec![1, 1]);
        let full = random_mask(&units, 1.0, &mut rng);
        assert_eq!(full.active_counts(&units), vec![10, 20]);
    }

    #[test]
    fn random_masks_differ_between_cycles() {
        let units = MaskableUnits(vec![32]);
        let mut rng = TensorRng::seed_from(1);
        let a = random_mask(&units, 0.5, &mut rng);
        let b = random_mask(&units, 0.5, &mut rng);
        assert_ne!(a, b, "successive draws should differ");
    }

    #[test]
    fn random_partial_accelerates_straggler_fleet() {
        let mut full = env(1, 1, 31);
        let mut partial = env(1, 1, 31);
        let mf = SyncFedAvg::new().run(&mut full, 3).unwrap();
        let mp = RandomPartial::new(vec![None, Some(0.3)])
            .run(&mut partial, 3)
            .unwrap();
        assert!(
            mp.total_time().as_secs_f64() < 0.7 * mf.total_time().as_secs_f64(),
            "partial training must shrink cycle time: {} vs {}",
            mp.total_time(),
            mf.total_time()
        );
    }

    #[test]
    fn random_partial_still_learns() {
        let mut e = env(1, 1, 32);
        let m = RandomPartial::new(vec![None, Some(0.4)])
            .run(&mut e, 8)
            .unwrap();
        assert!(m.best_accuracy() > 0.4, "accuracy {}", m.best_accuracy());
    }

    #[test]
    fn validates_configuration() {
        let mut e = env(1, 1, 33);
        assert!(RandomPartial::new(vec![None]).run(&mut e, 1).is_err());
        assert!(RandomPartial::new(vec![None, Some(0.0)])
            .run(&mut e, 1)
            .is_err());
        assert!(RandomPartial::new(vec![None, Some(1.5)])
            .run(&mut e, 1)
            .is_err());
    }
}
