//! Asynchronous baselines: plain async FL and AFO (staleness-aware
//! asynchronous federated optimization).

use crate::{
    aggregate, fedavg_into_global, FlEnv, FlError, MaskedUpdate, Result, RoundPolicy, RoutedCycle,
};
use helios_device::SimTime;

/// Computes each straggler's update period: how many capable-device
/// aggregation cycles fit into one straggler cycle. Both sides of the
/// ratio use the *combined* cycle time (compute + expected link
/// transfer), so a straggler behind a slow uplink is aggregated as
/// rarely as it actually reports in.
fn natural_periods(
    env: &FlEnv,
    straggler_ids: &[usize],
    cycle_duration: SimTime,
) -> Result<Vec<usize>> {
    straggler_ids
        .iter()
        .map(|&i| {
            let t = env.combined_cycle_time(i)?.as_secs_f64();
            let d = cycle_duration.as_secs_f64();
            Ok(if d <= 0.0 {
                1
            } else {
                (t / d).ceil().max(1.0) as usize
            })
        })
        .collect()
}

/// The asynchronous aggregation cadence: the slowest capable device's
/// full cycle, communication latency included (identical to its pure
/// compute time when networking is disabled).
fn capable_cycle_duration(env: &FlEnv, straggler_ids: &[usize]) -> Result<SimTime> {
    let mut d = SimTime::ZERO;
    for i in 0..env.num_clients() {
        if straggler_ids.contains(&i) {
            continue;
        }
        d = d.max(env.combined_cycle_time(i)?);
    }
    Ok(d)
}

fn validate_stragglers(env: &FlEnv, straggler_ids: &[usize]) -> Result<()> {
    for &i in straggler_ids {
        if i >= env.num_clients() {
            return Err(FlError::UnknownClient {
                client: i,
                num_clients: env.num_clients(),
            });
        }
    }
    if straggler_ids.len() >= env.num_clients() {
        return Err(FlError::InvalidStrategyConfig {
            what: "at least one capable device is required".into(),
        });
    }
    Ok(())
}

/// Shared `begin_run` body of the asynchronous policies: validates the
/// straggler set, clears every mask (async methods do not shrink
/// models), and hands the stragglers their initial global download.
/// Returns `(cycle_duration, natural periods)`.
fn async_begin_run(env: &mut FlEnv, straggler_ids: &[usize]) -> Result<(SimTime, Vec<usize>)> {
    validate_stragglers(env, straggler_ids)?;
    for i in 0..env.num_clients() {
        env.client_mut(i)?.set_masks(None)?;
    }
    let cycle_duration = capable_cycle_duration(env, straggler_ids)?;
    let periods = natural_periods(env, straggler_ids, cycle_duration)?;
    for &i in straggler_ids {
        env.send_global_to(i, 0)?;
    }
    Ok((cycle_duration, periods))
}

/// Shared selection: every capable device (id order), then the straggler
/// arrivals whose period divides this cycle (straggler order).
fn async_select(
    env: &FlEnv,
    straggler_ids: &[usize],
    periods: &[usize],
    cycle: usize,
) -> Vec<usize> {
    let mut participants: Vec<usize> = (0..env.num_clients())
        .filter(|i| !straggler_ids.contains(i))
        .collect();
    for (s, &i) in straggler_ids.iter().enumerate() {
        if (cycle + 1).is_multiple_of(periods[s]) {
            participants.push(i);
        }
    }
    participants
}

/// Shared broadcast: a fresh global to capable devices only — stragglers
/// keep training on the stale download they already hold.
fn broadcast_to_capables(env: &mut FlEnv, straggler_ids: &[usize], cycle: usize) -> Result<()> {
    for i in 0..env.num_clients() {
        if !straggler_ids.contains(&i) {
            env.send_global_to(i, cycle)?;
        }
    }
    Ok(())
}

/// Plain asynchronous FL — the paper's "Asyn. FL" baseline.
///
/// Capable devices aggregate every cycle; each straggler's update arrives
/// only every `k` cycles (its training time divided by the capable cycle
/// time) and is computed from the *stale* global model it downloaded `k`
/// cycles earlier. Stale parameters are averaged in directly, which is
/// precisely the information-degradation failure mode the paper's Fig 2
/// demonstrates.
#[derive(Debug, Clone)]
pub struct AsyncFl {
    straggler_ids: Vec<usize>,
    fixed_period: Option<usize>,
    cycle_duration: SimTime,
    periods: Vec<usize>,
}

impl AsyncFl {
    /// Async FL whose straggler periods derive from the cost model.
    pub fn new(straggler_ids: Vec<usize>) -> Self {
        AsyncFl {
            straggler_ids,
            fixed_period: None,
            cycle_duration: SimTime::ZERO,
            periods: Vec::new(),
        }
    }

    /// Async FL with a forced straggler period — the paper's Fig 2
    /// settings aggregate the straggler every 2 or every 3 epochs.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn with_fixed_period(straggler_ids: Vec<usize>, period: usize) -> Self {
        assert!(period > 0, "period must be nonzero");
        AsyncFl {
            straggler_ids,
            fixed_period: Some(period),
            cycle_duration: SimTime::ZERO,
            periods: Vec::new(),
        }
    }
}

impl RoundPolicy for AsyncFl {
    fn name(&self) -> &str {
        "async_fl"
    }

    fn begin_run(&mut self, env: &mut FlEnv) -> Result<()> {
        let (duration, periods) = async_begin_run(env, &self.straggler_ids)?;
        self.cycle_duration = duration;
        self.periods = match self.fixed_period {
            Some(p) => vec![p; self.straggler_ids.len()],
            None => periods,
        };
        Ok(())
    }

    fn select(&mut self, env: &mut FlEnv, cycle: usize) -> Result<Vec<usize>> {
        Ok(async_select(env, &self.straggler_ids, &self.periods, cycle))
    }

    fn broadcast(&mut self, env: &mut FlEnv, cycle: usize, _participants: &[usize]) -> Result<()> {
        broadcast_to_capables(env, &self.straggler_ids, cycle)
    }

    /// Masks were cleared once in `begin_run`; reconfiguring every cycle
    /// would be redundant.
    fn configure_client(&mut self, _env: &mut FlEnv, _cycle: usize, _client: usize) -> Result<()> {
        Ok(())
    }

    fn aggregate(&mut self, env: &mut FlEnv, cycle: usize, routed: &RoutedCycle) -> Result<()> {
        fedavg_into_global(env, &routed.updates)?;
        // Delivered straggler arrivals re-download the fresh global.
        for u in &routed.updates {
            if self.straggler_ids.contains(&u.client) {
                env.send_global_to(u.client, cycle + 1)?;
            }
        }
        Ok(())
    }

    /// The clock ticks at the capable cadence regardless of the routed
    /// span — stragglers keep computing across cycle boundaries.
    fn cycle_span(
        &mut self,
        _env: &FlEnv,
        _cycle: usize,
        _routed: &RoutedCycle,
    ) -> Result<SimTime> {
        Ok(self.cycle_duration)
    }
}

/// AFO — asynchronous federated optimization with staleness-decayed
/// server-side mixing (Xie et al., the paper's strongest asynchronous
/// baseline \[6\]).
///
/// Capable updates are FedAvg-combined and mixed into the global model
/// with rate `alpha`; each straggler arrival is mixed individually with
/// `alpha · (1 + staleness)^(−decay)`, so stale updates move the global
/// model less — reducing, but not eliminating, the staleness damage.
#[derive(Debug, Clone)]
pub struct Afo {
    straggler_ids: Vec<usize>,
    alpha: f64,
    decay: f64,
    cycle_duration: SimTime,
    periods: Vec<usize>,
}

impl Afo {
    /// AFO with the customary mixing rate 0.6 and polynomial staleness
    /// exponent 0.5.
    pub fn new(straggler_ids: Vec<usize>) -> Self {
        Afo {
            straggler_ids,
            alpha: 0.6,
            decay: 0.5,
            cycle_duration: SimTime::ZERO,
            periods: Vec::new(),
        }
    }

    /// Overrides the mixing hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]` or `decay` is negative.
    pub fn with_mixing(straggler_ids: Vec<usize>, alpha: f64, decay: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!(decay >= 0.0, "decay must be non-negative");
        Afo {
            straggler_ids,
            alpha,
            decay,
            cycle_duration: SimTime::ZERO,
            periods: Vec::new(),
        }
    }

    fn mix(global: &mut [f32], update: &[f32], rate: f64) {
        for (g, &u) in global.iter_mut().zip(update) {
            *g = ((1.0 - rate) * *g as f64 + rate * u as f64) as f32;
        }
    }
}

impl RoundPolicy for Afo {
    fn name(&self) -> &str {
        "afo"
    }

    fn begin_run(&mut self, env: &mut FlEnv) -> Result<()> {
        let (duration, periods) = async_begin_run(env, &self.straggler_ids)?;
        self.cycle_duration = duration;
        self.periods = periods;
        Ok(())
    }

    fn select(&mut self, env: &mut FlEnv, cycle: usize) -> Result<Vec<usize>> {
        Ok(async_select(env, &self.straggler_ids, &self.periods, cycle))
    }

    fn broadcast(&mut self, env: &mut FlEnv, cycle: usize, _participants: &[usize]) -> Result<()> {
        broadcast_to_capables(env, &self.straggler_ids, cycle)
    }

    /// Masks were cleared once in `begin_run`.
    fn configure_client(&mut self, _env: &mut FlEnv, _cycle: usize, _client: usize) -> Result<()> {
        Ok(())
    }

    fn aggregate(&mut self, env: &mut FlEnv, cycle: usize, routed: &RoutedCycle) -> Result<()> {
        // Fresh capable updates, FedAvg-combined then mixed at alpha.
        let mut combined = env.global().to_vec();
        let masked: Vec<MaskedUpdate<'_>> = routed
            .updates
            .iter()
            .filter(|u| !self.straggler_ids.contains(&u.client))
            .map(|u| MaskedUpdate {
                params: &u.params,
                param_mask: None,
                weight: u.num_samples as f64,
            })
            .collect();
        aggregate(&mut combined, &masked);
        let mut global = env.global().to_vec();
        Self::mix(&mut global, &combined, self.alpha);
        // Straggler arrivals mixed individually with decayed rate.
        for u in routed
            .updates
            .iter()
            .filter(|u| self.straggler_ids.contains(&u.client))
        {
            let staleness = cycle.saturating_sub(u.based_on_cycle) as f64;
            let rate = self.alpha * (1.0 + staleness).powf(-self.decay);
            Self::mix(&mut global, &u.params, rate);
            env.set_global(global.clone())?;
            env.send_global_to(u.client, cycle + 1)?;
            global = env.global().to_vec();
        }
        env.set_global(global)
    }

    /// The clock ticks at the capable cadence (see [`AsyncFl`]).
    fn cycle_span(
        &mut self,
        _env: &FlEnv,
        _cycle: usize,
        _routed: &RoutedCycle,
    ) -> Result<SimTime> {
        Ok(self.cycle_duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlConfig, Strategy, SyncFedAvg};
    use helios_data::{partition, Dataset, SyntheticVision};
    use helios_device::presets;
    use helios_nn::models::ModelKind;
    use helios_tensor::TensorRng;

    fn env(capable: usize, stragglers: usize, seed: u64) -> FlEnv {
        let mut rng = TensorRng::seed_from(seed);
        let clients = capable + stragglers;
        let (train, test) = SyntheticVision::mnist_like()
            .generate(60 * clients, 60, &mut rng)
            .unwrap();
        let shards: Vec<Dataset> = partition::iid(train.len(), clients, &mut rng)
            .into_iter()
            .map(|idx| train.subset(&idx).unwrap())
            .collect();
        FlEnv::new(
            ModelKind::LeNet,
            presets::mixed_fleet(capable, stragglers),
            shards,
            test,
            FlConfig {
                seed,
                ..FlConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn async_is_faster_per_cycle_than_sync() {
        let mut sync_env = env(1, 1, 21);
        let mut async_env = env(1, 1, 21);
        let ms = SyncFedAvg::new().run(&mut sync_env, 4).unwrap();
        let ma = AsyncFl::new(vec![1]).run(&mut async_env, 4).unwrap();
        assert!(
            ma.total_time().as_secs_f64() < 0.5 * ms.total_time().as_secs_f64(),
            "async cycles shouldn't wait for stragglers: {} vs {}",
            ma.total_time(),
            ms.total_time()
        );
    }

    #[test]
    fn straggler_participates_only_at_period_boundaries() {
        let mut e = env(1, 1, 22);
        let m = AsyncFl::with_fixed_period(vec![1], 3)
            .run(&mut e, 6)
            .unwrap();
        let parts: Vec<usize> = m.records().iter().map(|r| r.participants).collect();
        assert_eq!(parts, vec![1, 1, 2, 1, 1, 2]);
    }

    #[test]
    fn async_validates_straggler_ids() {
        let mut e = env(1, 1, 23);
        assert!(AsyncFl::new(vec![5]).run(&mut e, 1).is_err());
        assert!(AsyncFl::new(vec![0, 1]).run(&mut e, 1).is_err());
    }

    #[test]
    fn afo_converges_and_is_deterministic() {
        let mut a = env(1, 1, 24);
        let mut b = env(1, 1, 24);
        let ma = Afo::new(vec![1]).run(&mut a, 6).unwrap();
        let mb = Afo::new(vec![1]).run(&mut b, 6).unwrap();
        assert_eq!(ma.records(), mb.records());
        assert!(ma.best_accuracy() > 0.3);
    }

    #[test]
    fn afo_mix_is_convex_combination() {
        let mut g = vec![0.0f32, 2.0];
        Afo::mix(&mut g, &[1.0, 0.0], 0.5);
        assert_eq!(g, vec![0.5, 1.0]);
        Afo::mix(&mut g, &[0.5, 1.0], 1.0);
        assert_eq!(g, vec![0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn afo_rejects_bad_alpha() {
        let _ = Afo::with_mixing(vec![1], 0.0, 0.5);
    }

    #[test]
    fn longer_fixed_period_hurts_accuracy() {
        // Fig 2's qualitative claim: aggregating the straggler less often
        // (period 3 vs 2) degrades converged accuracy. Averaged over two
        // seeds for robustness.
        let acc = |period: usize| -> f64 {
            let mut total = 0.0;
            for seed in [25u64, 26] {
                let mut e = env(1, 1, seed);
                let m = AsyncFl::with_fixed_period(vec![1], period)
                    .run(&mut e, 12)
                    .unwrap();
                total += m.tail_accuracy(3);
            }
            total / 2.0
        };
        let p2 = acc(2);
        let p3 = acc(3);
        assert!(
            p2 >= p3 - 0.02,
            "period 2 ({p2:.3}) should not lose clearly to period 3 ({p3:.3})"
        );
    }

    /// The bugfix pin: with networking enabled and a constrained capable
    /// link, the asynchronous cadence must include the communication
    /// latency, so each cycle's clock advance strictly exceeds the pure
    /// compute time.
    #[test]
    fn async_round_time_includes_comm_latency() {
        use helios_net::{LinkProfile, NetConfig};
        fn net_env(seed: u64, enabled: bool) -> FlEnv {
            let mut rng = TensorRng::seed_from(seed);
            let (train, test) = SyntheticVision::mnist_like()
                .generate(120, 60, &mut rng)
                .unwrap();
            let shards: Vec<Dataset> = partition::iid(train.len(), 2, &mut rng)
                .into_iter()
                .map(|idx| train.subset(&idx).unwrap())
                .collect();
            FlEnv::new(
                ModelKind::LeNet,
                presets::mixed_fleet(1, 1),
                shards,
                test,
                FlConfig {
                    seed,
                    net: NetConfig {
                        enabled,
                        ..NetConfig::default()
                    },
                    ..FlConfig::default()
                },
            )
            .unwrap()
        }
        let mut slow_link = net_env(27, true);
        slow_link
            .set_link(0, LinkProfile::constrained(200_000.0, 0.05))
            .unwrap();
        let compute = slow_link.client(0).unwrap().cycle_time();
        let combined = slow_link.combined_cycle_time(0).unwrap();
        assert!(combined > compute, "constrained link must add latency");
        let m = AsyncFl::new(vec![1]).run(&mut slow_link, 2).unwrap();
        let per_cycle = m.total_time().as_secs_f64() / 2.0;
        assert!(
            per_cycle >= combined.as_secs_f64() - 1e-9,
            "cadence {per_cycle} must cover compute + comm {combined}"
        );
        // And with networking disabled the cadence equals pure compute.
        let mut plain = net_env(27, false);
        let compute = plain.client(0).unwrap().cycle_time();
        let m = AsyncFl::new(vec![1]).run(&mut plain, 2).unwrap();
        assert!((m.total_time().as_secs_f64() / 2.0 - compute.as_secs_f64()).abs() < 1e-9);
    }
}
