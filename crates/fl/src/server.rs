//! Masked weighted parameter aggregation — the primitive under FedAvg,
//! partial-model averaging, and Helios's heterogeneity-weighted rule.

use crate::LocalUpdate;

/// Bytes exchanged with the server for a set of updates in one cycle:
/// each participant uploads 4 bytes per *trained* parameter (soft-trained
/// stragglers upload only their selected neurons) and downloads the full
/// model.
pub fn cycle_comm_bytes(updates: &[LocalUpdate]) -> f64 {
    updates
        .iter()
        .map(|u| {
            let uploaded = match &u.param_mask {
                Some(m) => m.iter().filter(|&&b| b).count(),
                None => u.params.len(),
            };
            ((uploaded + u.params.len()) * 4) as f64
        })
        .sum()
}

/// One client contribution to an aggregation step.
#[derive(Debug, Clone)]
pub struct MaskedUpdate<'a> {
    /// The client's full parameter vector after local training.
    pub params: &'a [f32],
    /// Which entries actually trained (`None` = all).
    pub param_mask: Option<&'a [bool]>,
    /// Aggregation weight (need not be normalized; normalization happens
    /// per-parameter over the contributors that cover it).
    pub weight: f64,
}

/// Weighted per-parameter averaging with partial coverage.
///
/// For every parameter index, the new global value is the weighted mean of
/// the contributions whose mask covers that index. Indices no client
/// trained keep their previous global value — exactly the paper's rule
/// that skipped neurons "maintain their contribution" in the global model
/// rather than being dragged toward stale replicas.
///
/// # Panics
///
/// Panics if any update's `params` (or mask) length differs from
/// `global.len()`, or a weight is negative/non-finite — both indicate
/// programming errors in the calling strategy.
///
/// # Example
///
/// ```
/// use helios_fl::{aggregate, MaskedUpdate};
///
/// let mut global = vec![0.0f32, 10.0];
/// let a = [2.0f32, 2.0];
/// let mask = [true, false];
/// aggregate(
///     &mut global,
///     &[MaskedUpdate { params: &a, param_mask: Some(&mask), weight: 1.0 }],
/// );
/// assert_eq!(global, vec![2.0, 10.0]); // index 1 untouched
/// ```
pub fn aggregate(global: &mut [f32], updates: &[MaskedUpdate<'_>]) {
    for u in updates {
        assert_eq!(
            u.params.len(),
            global.len(),
            "update length {} vs global {}",
            u.params.len(),
            global.len()
        );
        if let Some(m) = u.param_mask {
            assert_eq!(m.len(), global.len(), "mask length mismatch");
        }
        assert!(
            u.weight.is_finite() && u.weight >= 0.0,
            "weight must be non-negative and finite, got {}",
            u.weight
        );
    }
    let n = global.len();
    let mut acc = vec![0.0f64; n];
    let mut wsum = vec![0.0f64; n];
    for u in updates {
        match u.param_mask {
            None => {
                for i in 0..n {
                    acc[i] += u.weight * u.params[i] as f64;
                    wsum[i] += u.weight;
                }
            }
            Some(mask) => {
                for i in 0..n {
                    if mask[i] {
                        acc[i] += u.weight * u.params[i] as f64;
                        wsum[i] += u.weight;
                    }
                }
            }
        }
    }
    for i in 0..n {
        if wsum[i] > 0.0 {
            global[i] = (acc[i] / wsum[i]) as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn update(params: Vec<f32>, mask: Option<Vec<bool>>) -> LocalUpdate {
        LocalUpdate {
            client: 0,
            params,
            param_mask: mask,
            train_loss: 0.0,
            num_samples: 1,
            keep_ratio: 1.0,
            based_on_cycle: 0,
        }
    }

    #[test]
    fn comm_bytes_counts_uploads_and_downloads() {
        // Full update of 10 params: upload 40 B + download 40 B.
        let full = update(vec![0.0; 10], None);
        assert_eq!(cycle_comm_bytes(std::slice::from_ref(&full)), 80.0);
        // Half-masked update: upload 20 B + download 40 B.
        let half = update(vec![0.0; 10], Some((0..10).map(|i| i % 2 == 0).collect()));
        assert_eq!(cycle_comm_bytes(std::slice::from_ref(&half)), 60.0);
        // Sums over participants.
        assert_eq!(cycle_comm_bytes(&[full, half]), 140.0);
        assert_eq!(cycle_comm_bytes(&[]), 0.0);
    }

    #[test]
    fn unmasked_average_is_plain_weighted_mean() {
        let mut global = vec![0.0f32; 3];
        let a = [1.0f32, 1.0, 1.0];
        let b = [4.0f32, 4.0, 4.0];
        aggregate(
            &mut global,
            &[
                MaskedUpdate {
                    params: &a,
                    param_mask: None,
                    weight: 1.0,
                },
                MaskedUpdate {
                    params: &b,
                    param_mask: None,
                    weight: 2.0,
                },
            ],
        );
        for &g in &global {
            assert!((g - 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn uncovered_indices_keep_global_value() {
        let mut global = vec![7.0f32, 7.0];
        let a = [1.0f32, 99.0];
        let mask = [true, false];
        aggregate(
            &mut global,
            &[MaskedUpdate {
                params: &a,
                param_mask: Some(&mask),
                weight: 5.0,
            }],
        );
        assert_eq!(global, vec![1.0, 7.0]);
    }

    #[test]
    fn partial_overlap_normalizes_per_index() {
        let mut global = vec![0.0f32, 0.0];
        let a = [2.0f32, 2.0];
        let b = [6.0f32, 6.0];
        let mask_b = [false, true];
        aggregate(
            &mut global,
            &[
                MaskedUpdate {
                    params: &a,
                    param_mask: None,
                    weight: 1.0,
                },
                MaskedUpdate {
                    params: &b,
                    param_mask: Some(&mask_b),
                    weight: 1.0,
                },
            ],
        );
        assert_eq!(global[0], 2.0, "only a covers index 0");
        assert_eq!(global[1], 4.0, "a and b average at index 1");
    }

    #[test]
    fn zero_weight_update_is_ignored() {
        let mut global = vec![1.0f32];
        let a = [100.0f32];
        aggregate(
            &mut global,
            &[MaskedUpdate {
                params: &a,
                param_mask: None,
                weight: 0.0,
            }],
        );
        assert_eq!(global, vec![1.0]);
    }

    #[test]
    fn empty_update_set_is_identity() {
        let mut global = vec![3.0f32, 4.0];
        aggregate(&mut global, &[]);
        assert_eq!(global, vec![3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "update length")]
    fn length_mismatch_panics() {
        let mut global = vec![0.0f32; 2];
        let a = [1.0f32];
        aggregate(
            &mut global,
            &[MaskedUpdate {
                params: &a,
                param_mask: None,
                weight: 1.0,
            }],
        );
    }

    #[test]
    #[should_panic(expected = "weight must be non-negative")]
    fn bad_weight_panics() {
        let mut global = vec![0.0f32];
        let a = [1.0f32];
        aggregate(
            &mut global,
            &[MaskedUpdate {
                params: &a,
                param_mask: None,
                weight: f64::NAN,
            }],
        );
    }
}
