//! Masked weighted parameter aggregation — the primitive under FedAvg,
//! partial-model averaging, and Helios's heterogeneity-weighted rule.

use crate::LocalUpdate;

/// Bytes exchanged with the server for a set of updates in one cycle:
/// each participant uploads 4 bytes per *trained* parameter (soft-trained
/// stragglers upload only their selected neurons) and downloads the full
/// model.
pub fn cycle_comm_bytes(updates: &[LocalUpdate]) -> f64 {
    updates
        .iter()
        .map(|u| {
            let uploaded = match &u.param_mask {
                Some(m) => m.iter().filter(|&&b| b).count(),
                None => u.params.len(),
            };
            ((uploaded + u.params.len()) * 4) as f64
        })
        .sum()
}

/// [`cycle_comm_bytes`] under a wire-v2
/// [`CompressionConfig`](helios_net::CompressionConfig): uploads
/// use the configured mode's planning estimate (full-frame payload bytes,
/// not wire framing — same accounting basis as the v1 function), while
/// downloads stay 4 bytes per parameter because broadcasts are never
/// compressed. With `CompressionMode::None` this reproduces
/// [`cycle_comm_bytes`] exactly.
pub fn cycle_comm_bytes_with(
    updates: &[LocalUpdate],
    compression: &helios_net::CompressionConfig,
) -> f64 {
    use helios_net::CompressionMode;
    if compression.mode == CompressionMode::None {
        return cycle_comm_bytes(updates);
    }
    updates
        .iter()
        .map(|u| {
            let n = u.params.len();
            let active = u
                .param_mask
                .as_ref()
                .map(|m| m.iter().filter(|&&b| b).count());
            let size = compression.upload_wire_size(n, active);
            let up = size.mask_bytes + size.index_bytes + size.scale_bytes + size.payload_bytes;
            (up + n * 4) as f64
        })
        .sum()
}

/// One client contribution to an aggregation step.
#[derive(Debug, Clone)]
pub struct MaskedUpdate<'a> {
    /// The client's full parameter vector after local training.
    pub params: &'a [f32],
    /// Which entries actually trained (`None` = all).
    pub param_mask: Option<&'a [bool]>,
    /// Aggregation weight (need not be normalized; normalization happens
    /// per-parameter over the contributors that cover it).
    pub weight: f64,
}

/// Weighted per-parameter averaging with partial coverage.
///
/// For every parameter index, the new global value is the weighted mean of
/// the contributions whose mask covers that index. Indices no client
/// trained keep their previous global value — exactly the paper's rule
/// that skipped neurons "maintain their contribution" in the global model
/// rather than being dragged toward stale replicas.
///
/// # Panics
///
/// Panics if any update's `params` (or mask) length differs from
/// `global.len()`, or a weight is negative/non-finite — both indicate
/// programming errors in the calling strategy.
///
/// # Example
///
/// ```
/// use helios_fl::{aggregate, MaskedUpdate};
///
/// let mut global = vec![0.0f32, 10.0];
/// let a = [2.0f32, 2.0];
/// let mask = [true, false];
/// aggregate(
///     &mut global,
///     &[MaskedUpdate { params: &a, param_mask: Some(&mask), weight: 1.0 }],
/// );
/// assert_eq!(global, vec![2.0, 10.0]); // index 1 untouched
/// ```
pub fn aggregate(global: &mut [f32], updates: &[MaskedUpdate<'_>]) {
    let mut acc = OnlineAggregator::new(global.len());
    for u in updates {
        acc.push(u);
    }
    acc.finish_into(global);
}

/// Streaming weighted aggregation: consumes one [`MaskedUpdate`] at a
/// time and holds only the running accumulator — O(model) server memory
/// regardless of cohort size, where collect-then-average holds
/// O(participants · model).
///
/// Pushing updates in order and then finishing is **bitwise identical**
/// to [`aggregate`] over the same sequence: both perform the same
/// per-update `f64` fold in the same order, and [`aggregate`] is in fact
/// implemented on top of this type.
///
/// # Example
///
/// ```
/// use helios_fl::{aggregate, MaskedUpdate, OnlineAggregator};
///
/// let updates = [
///     MaskedUpdate { params: &[2.0, 2.0], param_mask: None, weight: 1.0 },
///     MaskedUpdate { params: &[6.0, 6.0], param_mask: None, weight: 3.0 },
/// ];
/// let mut batch = vec![0.0f32, 10.0];
/// aggregate(&mut batch, &updates);
///
/// let mut acc = OnlineAggregator::new(2);
/// for u in &updates {
///     acc.push(u); // one update at a time — nothing else retained
/// }
/// let mut streamed = vec![0.0f32, 10.0];
/// acc.finish_into(&mut streamed);
/// assert_eq!(streamed, batch);
/// ```
#[derive(Debug, Clone)]
pub struct OnlineAggregator {
    acc: Vec<f64>,
    wsum: Vec<f64>,
    updates: usize,
}

impl OnlineAggregator {
    /// Creates an accumulator for a model of `model_len` parameters.
    #[must_use]
    pub fn new(model_len: usize) -> Self {
        OnlineAggregator {
            acc: vec![0.0f64; model_len],
            wsum: vec![0.0f64; model_len],
            updates: 0,
        }
    }

    /// Number of updates folded in so far.
    #[must_use]
    pub fn updates(&self) -> usize {
        self.updates
    }

    /// Folds one contribution into the running accumulator.
    ///
    /// # Panics
    ///
    /// Panics if the update's `params` (or mask) length differs from the
    /// model length, or its weight is negative/non-finite — both indicate
    /// programming errors in the calling strategy.
    pub fn push(&mut self, u: &MaskedUpdate<'_>) {
        let n = self.acc.len();
        assert_eq!(
            u.params.len(),
            n,
            "update length {} vs global {}",
            u.params.len(),
            n
        );
        if let Some(m) = u.param_mask {
            assert_eq!(m.len(), n, "mask length mismatch");
        }
        assert!(
            u.weight.is_finite() && u.weight >= 0.0,
            "weight must be non-negative and finite, got {}",
            u.weight
        );
        match u.param_mask {
            None => {
                for i in 0..n {
                    self.acc[i] += u.weight * u.params[i] as f64;
                    self.wsum[i] += u.weight;
                }
            }
            Some(mask) => {
                for (i, &covered) in mask.iter().enumerate() {
                    if covered {
                        self.acc[i] += u.weight * u.params[i] as f64;
                        self.wsum[i] += u.weight;
                    }
                }
            }
        }
        self.updates += 1;
    }

    /// Writes the weighted means into `global`; indices no pushed update
    /// covered keep their previous global value.
    ///
    /// # Panics
    ///
    /// Panics if `global.len()` differs from the accumulator's model
    /// length.
    pub fn finish_into(self, global: &mut [f32]) {
        let n = self.acc.len();
        assert_eq!(global.len(), n, "global length {} vs {}", global.len(), n);
        for (i, g) in global.iter_mut().enumerate() {
            if self.wsum[i] > 0.0 {
                *g = (self.acc[i] / self.wsum[i]) as f32;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn update(params: Vec<f32>, mask: Option<Vec<bool>>) -> LocalUpdate {
        LocalUpdate {
            client: 0,
            params,
            param_mask: mask,
            train_loss: 0.0,
            num_samples: 1,
            keep_ratio: 1.0,
            based_on_cycle: 0,
        }
    }

    #[test]
    fn comm_bytes_counts_uploads_and_downloads() {
        // Full update of 10 params: upload 40 B + download 40 B.
        let full = update(vec![0.0; 10], None);
        assert_eq!(cycle_comm_bytes(std::slice::from_ref(&full)), 80.0);
        // Half-masked update: upload 20 B + download 40 B.
        let half = update(vec![0.0; 10], Some((0..10).map(|i| i % 2 == 0).collect()));
        assert_eq!(cycle_comm_bytes(std::slice::from_ref(&half)), 60.0);
        // Sums over participants.
        assert_eq!(cycle_comm_bytes(&[full, half]), 140.0);
        assert_eq!(cycle_comm_bytes(&[]), 0.0);
    }

    #[test]
    fn comm_bytes_with_compression_matches_v1_when_off() {
        use helios_net::{CompressionConfig, CompressionMode};
        let updates = [
            update(vec![0.0; 10], None),
            update(vec![0.0; 10], Some((0..10).map(|i| i % 2 == 0).collect())),
        ];
        let off = CompressionConfig::default();
        assert_eq!(
            cycle_comm_bytes_with(&updates, &off),
            cycle_comm_bytes(&updates)
        );
        // Quantized uploads bill fewer bytes than v1; downloads (4 B per
        // param per participant) are unchanged.
        for mode in [CompressionMode::QuantF16, CompressionMode::QuantInt8] {
            let cfg = CompressionConfig {
                mode,
                ..CompressionConfig::default()
            };
            let with = cycle_comm_bytes_with(&updates, &cfg);
            assert!(with < cycle_comm_bytes(&updates), "{mode:?}: {with}");
            assert!(with > 80.0, "downloads still billed");
        }
    }

    #[test]
    fn unmasked_average_is_plain_weighted_mean() {
        let mut global = vec![0.0f32; 3];
        let a = [1.0f32, 1.0, 1.0];
        let b = [4.0f32, 4.0, 4.0];
        aggregate(
            &mut global,
            &[
                MaskedUpdate {
                    params: &a,
                    param_mask: None,
                    weight: 1.0,
                },
                MaskedUpdate {
                    params: &b,
                    param_mask: None,
                    weight: 2.0,
                },
            ],
        );
        for &g in &global {
            assert!((g - 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn uncovered_indices_keep_global_value() {
        let mut global = vec![7.0f32, 7.0];
        let a = [1.0f32, 99.0];
        let mask = [true, false];
        aggregate(
            &mut global,
            &[MaskedUpdate {
                params: &a,
                param_mask: Some(&mask),
                weight: 5.0,
            }],
        );
        assert_eq!(global, vec![1.0, 7.0]);
    }

    #[test]
    fn partial_overlap_normalizes_per_index() {
        let mut global = vec![0.0f32, 0.0];
        let a = [2.0f32, 2.0];
        let b = [6.0f32, 6.0];
        let mask_b = [false, true];
        aggregate(
            &mut global,
            &[
                MaskedUpdate {
                    params: &a,
                    param_mask: None,
                    weight: 1.0,
                },
                MaskedUpdate {
                    params: &b,
                    param_mask: Some(&mask_b),
                    weight: 1.0,
                },
            ],
        );
        assert_eq!(global[0], 2.0, "only a covers index 0");
        assert_eq!(global[1], 4.0, "a and b average at index 1");
    }

    #[test]
    fn zero_weight_update_is_ignored() {
        let mut global = vec![1.0f32];
        let a = [100.0f32];
        aggregate(
            &mut global,
            &[MaskedUpdate {
                params: &a,
                param_mask: None,
                weight: 0.0,
            }],
        );
        assert_eq!(global, vec![1.0]);
    }

    #[test]
    fn empty_update_set_is_identity() {
        let mut global = vec![3.0f32, 4.0];
        aggregate(&mut global, &[]);
        assert_eq!(global, vec![3.0, 4.0]);
    }

    #[test]
    fn streaming_matches_collect_then_average_bitwise() {
        // Random masked/weighted update sets, including "dropped" subsets:
        // pushing one update at a time must reproduce the batch fold
        // bit-for-bit.
        use helios_tensor::TensorRng;
        let mut rng = TensorRng::seed_from(0x5354_5245);
        for case in 0..200 {
            let n = 1 + rng.below(40);
            let mut global: Vec<f32> = (0..n).map(|_| rng.uniform(-2.0, 2.0)).collect();
            let num_updates = rng.below(6);
            let storage: Vec<(Vec<f32>, Option<Vec<bool>>, f64)> = (0..num_updates)
                .map(|_| {
                    let params: Vec<f32> = (0..n).map(|_| rng.uniform(-3.0, 3.0)).collect();
                    let mask = if rng.unit_f64() < 0.5 {
                        Some((0..n).map(|_| rng.unit_f64() < 0.6).collect())
                    } else {
                        None
                    };
                    // Simulate a dropped update now and then via weight 0.
                    let weight = if rng.unit_f64() < 0.2 {
                        0.0
                    } else {
                        rng.unit_f64() * 10.0
                    };
                    (params, mask, weight)
                })
                .collect();
            let updates: Vec<MaskedUpdate<'_>> = storage
                .iter()
                .map(|(p, m, w)| MaskedUpdate {
                    params: p,
                    param_mask: m.as_deref(),
                    weight: *w,
                })
                .collect();
            let mut batch = global.clone();
            aggregate(&mut batch, &updates);
            let mut acc = OnlineAggregator::new(n);
            for u in &updates {
                acc.push(u);
            }
            assert_eq!(acc.updates(), updates.len());
            acc.finish_into(&mut global);
            let batch_bits: Vec<u32> = batch.iter().map(|x| x.to_bits()).collect();
            let stream_bits: Vec<u32> = global.iter().map(|x| x.to_bits()).collect();
            assert_eq!(batch_bits, stream_bits, "case {case} diverged");
        }
    }

    #[test]
    #[should_panic(expected = "global length")]
    fn finish_into_rejects_wrong_length() {
        let acc = OnlineAggregator::new(3);
        let mut global = vec![0.0f32; 2];
        acc.finish_into(&mut global);
    }

    #[test]
    #[should_panic(expected = "update length")]
    fn length_mismatch_panics() {
        let mut global = vec![0.0f32; 2];
        let a = [1.0f32];
        aggregate(
            &mut global,
            &[MaskedUpdate {
                params: &a,
                param_mask: None,
                weight: 1.0,
            }],
        );
    }

    #[test]
    #[should_panic(expected = "weight must be non-negative")]
    fn bad_weight_panics() {
        let mut global = vec![0.0f32];
        let a = [1.0f32];
        aggregate(
            &mut global,
            &[MaskedUpdate {
                params: &a,
                param_mask: None,
                weight: f64::NAN,
            }],
        );
    }
}
