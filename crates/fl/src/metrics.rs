//! Run metrics: the curves and summary statistics the paper reports.

use helios_device::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// State of the collaboration after one aggregation cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Aggregation cycle index (of the *capable* devices, matching the
    /// X-axis of the paper's Fig 5).
    pub cycle: usize,
    /// Simulated time at the end of the cycle.
    pub sim_time: SimTime,
    /// Global-model accuracy on the held-out test set.
    pub test_accuracy: f64,
    /// Global-model loss on the held-out test set.
    pub test_loss: f64,
    /// Number of client updates aggregated this cycle.
    pub participants: usize,
    /// Bytes exchanged with the server this cycle (uploads of trained
    /// parameters plus full-model downloads).
    pub comm_bytes: f64,
}

/// Full metrics of one strategy run.
///
/// # Example
///
/// ```
/// use helios_device::SimTime;
/// use helios_fl::{RoundRecord, RunMetrics};
///
/// let mut m = RunMetrics::new("probe");
/// m.push(RoundRecord {
///     cycle: 0,
///     sim_time: SimTime::from_secs(10.0),
///     test_accuracy: 0.5,
///     test_loss: 1.0,
///     participants: 4,
///     comm_bytes: 1024.0,
/// });
/// assert_eq!(m.best_accuracy(), 0.5);
/// assert!(m.cycles_to_reach(0.4).is_some());
/// assert!(m.cycles_to_reach(0.9).is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    strategy: String,
    records: Vec<RoundRecord>,
}

impl RunMetrics {
    /// Creates an empty metrics collection for a named strategy.
    pub fn new(strategy: impl Into<String>) -> Self {
        RunMetrics {
            strategy: strategy.into(),
            records: Vec::new(),
        }
    }

    /// Strategy name.
    pub fn strategy(&self) -> &str {
        &self.strategy
    }

    /// Appends one cycle record.
    pub fn push(&mut self, record: RoundRecord) {
        self.records.push(record);
    }

    /// All records in cycle order.
    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// Accuracy after the final cycle (0 when empty).
    pub fn final_accuracy(&self) -> f64 {
        self.records.last().map_or(0.0, |r| r.test_accuracy)
    }

    /// Best accuracy over the run (0 when empty).
    pub fn best_accuracy(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.test_accuracy)
            .fold(0.0, f64::max)
    }

    /// Mean accuracy over the last `k` cycles — the "converged accuracy"
    /// the paper compares, robust to single-cycle fluctuation.
    pub fn tail_accuracy(&self, k: usize) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let start = self.records.len().saturating_sub(k.max(1));
        let tail = &self.records[start..];
        tail.iter().map(|r| r.test_accuracy).sum::<f64>() / tail.len() as f64
    }

    /// Standard deviation of accuracy over the last `k` cycles (the
    /// fluctuation Fig 6 contrasts between Helios and S.T.-only).
    pub fn tail_accuracy_std(&self, k: usize) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let start = self.records.len().saturating_sub(k.max(1));
        let tail = &self.records[start..];
        let mean = tail.iter().map(|r| r.test_accuracy).sum::<f64>() / tail.len() as f64;
        let var = tail
            .iter()
            .map(|r| (r.test_accuracy - mean).powi(2))
            .sum::<f64>()
            / tail.len() as f64;
        var.sqrt()
    }

    /// First cycle whose accuracy reaches `target`, if any.
    pub fn cycles_to_reach(&self, target: f64) -> Option<usize> {
        self.records
            .iter()
            .find(|r| r.test_accuracy >= target)
            .map(|r| r.cycle)
    }

    /// Simulated time at which accuracy first reaches `target`, if ever.
    pub fn time_to_reach(&self, target: f64) -> Option<SimTime> {
        self.records
            .iter()
            .find(|r| r.test_accuracy >= target)
            .map(|r| r.sim_time)
    }

    /// Total simulated time of the run.
    pub fn total_time(&self) -> SimTime {
        self.records.last().map_or(SimTime::ZERO, |r| r.sim_time)
    }

    /// Speedup of this run over `other` in reaching `target` accuracy
    /// (simulated-time ratio `other / self`). `None` when either run never
    /// reaches the target.
    pub fn speedup_over(&self, other: &RunMetrics, target: f64) -> Option<f64> {
        let mine = self.time_to_reach(target)?.as_secs_f64();
        let theirs = other.time_to_reach(target)?.as_secs_f64();
        if mine <= 0.0 {
            return None;
        }
        Some(theirs / mine)
    }

    /// Total bytes exchanged with the server over the run.
    pub fn total_comm_bytes(&self) -> f64 {
        self.records.iter().map(|r| r.comm_bytes).sum()
    }

    /// Renders the run as CSV
    /// (`cycle,sim_time_s,accuracy,loss,participants,comm_bytes`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("cycle,sim_time_s,accuracy,loss,participants,comm_bytes\n");
        for r in &self.records {
            let _ = writeln!(
                out,
                "{},{:.3},{:.4},{:.4},{},{:.0}",
                r.cycle,
                r.sim_time.as_secs_f64(),
                r.test_accuracy,
                r.test_loss,
                r.participants,
                r.comm_bytes
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(cycle: usize, secs: f64, acc: f64) -> RoundRecord {
        RoundRecord {
            cycle,
            sim_time: SimTime::from_secs(secs),
            test_accuracy: acc,
            test_loss: 1.0 - acc,
            participants: 2,
            comm_bytes: 100.0,
        }
    }

    fn sample_run() -> RunMetrics {
        let mut m = RunMetrics::new("s");
        m.push(record(0, 10.0, 0.3));
        m.push(record(1, 20.0, 0.6));
        m.push(record(2, 30.0, 0.5));
        m.push(record(3, 40.0, 0.7));
        m
    }

    #[test]
    fn summary_statistics() {
        let m = sample_run();
        assert_eq!(m.final_accuracy(), 0.7);
        assert_eq!(m.best_accuracy(), 0.7);
        assert!((m.tail_accuracy(2) - 0.6).abs() < 1e-12);
        assert!(m.tail_accuracy_std(2) > 0.0);
        assert_eq!(m.total_time().as_secs_f64(), 40.0);
    }

    #[test]
    fn target_search() {
        let m = sample_run();
        assert_eq!(m.cycles_to_reach(0.55), Some(1));
        assert_eq!(m.time_to_reach(0.55).unwrap().as_secs_f64(), 20.0);
        assert_eq!(m.cycles_to_reach(0.95), None);
    }

    #[test]
    fn speedup_is_a_time_ratio() {
        let fast = sample_run();
        let mut slow = RunMetrics::new("slow");
        slow.push(record(0, 100.0, 0.7));
        assert!((fast.speedup_over(&slow, 0.55).unwrap() - 5.0).abs() < 1e-12);
        assert!(fast.speedup_over(&slow, 0.99).is_none());
    }

    #[test]
    fn empty_metrics_are_safe() {
        let m = RunMetrics::new("empty");
        assert_eq!(m.final_accuracy(), 0.0);
        assert_eq!(m.best_accuracy(), 0.0);
        assert_eq!(m.tail_accuracy(5), 0.0);
        assert_eq!(m.total_time(), SimTime::ZERO);
        assert!(m.cycles_to_reach(0.1).is_none());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample_run().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("cycle,"));
        assert!(lines[0].ends_with("comm_bytes"));
        assert!(lines[1].starts_with("0,10.000,0.3000"));
    }
}
