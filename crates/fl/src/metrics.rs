//! Run metrics: the curves and summary statistics the paper reports.

use helios_device::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Per-phase breakdown of one aggregation cycle, populated by the round
/// driver identically for every strategy.
///
/// The simulated fields (`train_s`, `comm_s`) partition the cycle's
/// simulated span: `train_s + comm_s` equals the clock advance the cycle
/// produced. The wire fields come from the simulated transport and are
/// zero when networking is disabled. The flop counters are snapshot
/// deltas of the process-wide kernel counters. Equality compares only
/// the simulated outcome (timing partition and participation) — see
/// [`PhaseBreakdown::eq`] for why the observability counters (wire
/// bytes, retries, flops) are excluded.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Simulated local-training time: the slowest participant's compute
    /// span, clipped to the cycle span (async schemes advance by the
    /// capable pace even while a straggler keeps computing).
    pub train_s: f64,
    /// Simulated communication/waiting time: the cycle span minus
    /// `train_s` — transport latency, retries, and deadline waiting.
    pub comm_s: f64,
    /// Bytes actually put on the simulated wire this cycle, counting
    /// every retry attempt (0 when networking is disabled).
    pub wire_bytes: u64,
    /// Transport re-transmissions this cycle.
    pub retries: u64,
    /// Participants that missed the cycle (retry exhaustion or
    /// deadline).
    pub missed: usize,
    /// Client updates folded into the global model this cycle.
    pub aggregated_updates: usize,
    /// Kernel floating-point operations counted during the local
    /// training phase (not compared — see the struct docs).
    pub train_flops: u64,
    /// Kernel floating-point operations counted during global-model
    /// evaluation (not compared — see the struct docs).
    pub eval_flops: u64,
}

impl PartialEq for PhaseBreakdown {
    /// Compares the *simulated collaboration outcome* — the timing
    /// partition and the participation counts. The observability
    /// counters are excluded: the flop counters are process-global and
    /// interleave with concurrent runs, and the wire/retry counters
    /// describe how the transport carried the exchange, which differs
    /// between a routed and a direct run even when the learning outcome
    /// is bitwise identical (the transparency invariant the parity
    /// suites assert).
    fn eq(&self, other: &Self) -> bool {
        self.train_s == other.train_s
            && self.comm_s == other.comm_s
            && self.missed == other.missed
            && self.aggregated_updates == other.aggregated_updates
    }
}

/// State of the collaboration after one aggregation cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Aggregation cycle index (of the *capable* devices, matching the
    /// X-axis of the paper's Fig 5).
    pub cycle: usize,
    /// Simulated time at the end of the cycle.
    pub sim_time: SimTime,
    /// Global-model accuracy on the held-out test set.
    pub test_accuracy: f64,
    /// Global-model loss on the held-out test set.
    pub test_loss: f64,
    /// Number of client updates aggregated this cycle.
    pub participants: usize,
    /// Bytes exchanged with the server this cycle (uploads of trained
    /// parameters plus full-model downloads).
    pub comm_bytes: f64,
    /// Per-phase breakdown of the cycle. Defaults to zeros when
    /// deserializing result files written before this field existed.
    #[serde(default)]
    pub phases: PhaseBreakdown,
}

/// Host-side profile of one strategy run, filled in by the round driver.
///
/// All fields are *wall-clock* observations of this process (seconds of
/// real time, summed across worker threads for the fan-out phases) —
/// they describe how long the simulation took to execute, never the
/// simulated timeline, and are excluded from [`RunMetrics`] equality.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunProfile {
    /// Wall time spent in client selection and per-client configuration.
    pub setup_s: f64,
    /// Wall time spent broadcasting the global model.
    pub broadcast_s: f64,
    /// Wall time spent in local training (the client fan-out).
    pub train_s: f64,
    /// Wall time spent routing updates through the simulated transport.
    pub route_s: f64,
    /// Wall time spent in the aggregation hook.
    pub aggregate_s: f64,
    /// Wall time spent evaluating the global model.
    pub eval_s: f64,
    /// CPU time inside `Network::forward` across all threads.
    pub nn_forward_s: f64,
    /// CPU time inside `Network::backward` across all threads.
    pub nn_backward_s: f64,
    /// CPU time inside `Sgd::step` across all threads.
    pub nn_step_s: f64,
    /// Total kernel flops counted over the run (training + evaluation).
    pub kernel_flops: u64,
    /// Total kernel output elements counted over the run.
    pub kernel_elements: u64,
}

/// Full metrics of one strategy run.
///
/// # Example
///
/// ```
/// use helios_device::SimTime;
/// use helios_fl::{RoundRecord, RunMetrics};
///
/// let mut m = RunMetrics::new("probe");
/// m.push(RoundRecord {
///     cycle: 0,
///     sim_time: SimTime::from_secs(10.0),
///     test_accuracy: 0.5,
///     test_loss: 1.0,
///     participants: 4,
///     comm_bytes: 1024.0,
///     phases: Default::default(),
/// });
/// assert_eq!(m.best_accuracy(), 0.5);
/// assert!(m.cycles_to_reach(0.4).is_some());
/// assert!(m.cycles_to_reach(0.9).is_none());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunMetrics {
    strategy: String,
    records: Vec<RoundRecord>,
    /// Host-side execution profile (absent in files written before it
    /// existed).
    #[serde(default)]
    profile: RunProfile,
}

impl PartialEq for RunMetrics {
    /// Compares the simulated outcome (strategy name and records); the
    /// host-side [`RunProfile`] is wall-clock noise and is excluded.
    fn eq(&self, other: &Self) -> bool {
        self.strategy == other.strategy && self.records == other.records
    }
}

impl RunMetrics {
    /// Creates an empty metrics collection for a named strategy.
    pub fn new(strategy: impl Into<String>) -> Self {
        RunMetrics {
            strategy: strategy.into(),
            records: Vec::new(),
            profile: RunProfile::default(),
        }
    }

    /// Strategy name.
    pub fn strategy(&self) -> &str {
        &self.strategy
    }

    /// The host-side execution profile recorded by the round driver.
    pub fn profile(&self) -> &RunProfile {
        &self.profile
    }

    /// Installs the host-side execution profile.
    pub fn set_profile(&mut self, profile: RunProfile) {
        self.profile = profile;
    }

    /// Appends one cycle record.
    pub fn push(&mut self, record: RoundRecord) {
        self.records.push(record);
    }

    /// All records in cycle order.
    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// Accuracy after the final cycle (0 when empty).
    pub fn final_accuracy(&self) -> f64 {
        self.records.last().map_or(0.0, |r| r.test_accuracy)
    }

    /// Best accuracy over the run (0 when empty).
    pub fn best_accuracy(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.test_accuracy)
            .fold(0.0, f64::max)
    }

    /// Mean accuracy over the last `k` cycles — the "converged accuracy"
    /// the paper compares, robust to single-cycle fluctuation.
    pub fn tail_accuracy(&self, k: usize) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let start = self.records.len().saturating_sub(k.max(1));
        let tail = &self.records[start..];
        tail.iter().map(|r| r.test_accuracy).sum::<f64>() / tail.len() as f64
    }

    /// Standard deviation of accuracy over the last `k` cycles (the
    /// fluctuation Fig 6 contrasts between Helios and S.T.-only).
    pub fn tail_accuracy_std(&self, k: usize) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let start = self.records.len().saturating_sub(k.max(1));
        let tail = &self.records[start..];
        let mean = tail.iter().map(|r| r.test_accuracy).sum::<f64>() / tail.len() as f64;
        let var = tail
            .iter()
            .map(|r| (r.test_accuracy - mean).powi(2))
            .sum::<f64>()
            / tail.len() as f64;
        var.sqrt()
    }

    /// First cycle whose accuracy reaches `target`, if any.
    pub fn cycles_to_reach(&self, target: f64) -> Option<usize> {
        self.records
            .iter()
            .find(|r| r.test_accuracy >= target)
            .map(|r| r.cycle)
    }

    /// Simulated time at which accuracy first reaches `target`, if ever.
    pub fn time_to_reach(&self, target: f64) -> Option<SimTime> {
        self.records
            .iter()
            .find(|r| r.test_accuracy >= target)
            .map(|r| r.sim_time)
    }

    /// Total simulated time of the run.
    pub fn total_time(&self) -> SimTime {
        self.records.last().map_or(SimTime::ZERO, |r| r.sim_time)
    }

    /// Speedup of this run over `other` in reaching `target` accuracy
    /// (simulated-time ratio `other / self`). `None` when either run never
    /// reaches the target.
    pub fn speedup_over(&self, other: &RunMetrics, target: f64) -> Option<f64> {
        let mine = self.time_to_reach(target)?.as_secs_f64();
        let theirs = other.time_to_reach(target)?.as_secs_f64();
        if mine <= 0.0 {
            return None;
        }
        Some(theirs / mine)
    }

    /// Total bytes exchanged with the server over the run.
    pub fn total_comm_bytes(&self) -> f64 {
        self.records.iter().map(|r| r.comm_bytes).sum()
    }

    /// Renders the run as CSV, one row per cycle with the full per-phase
    /// breakdown appended
    /// (`cycle,sim_time_s,accuracy,loss,participants,comm_bytes,train_s,comm_s,wire_bytes,retries,missed,aggregated,train_flops,eval_flops`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "cycle,sim_time_s,accuracy,loss,participants,comm_bytes,train_s,comm_s,wire_bytes,retries,missed,aggregated,train_flops,eval_flops\n",
        );
        for r in &self.records {
            let _ = writeln!(
                out,
                "{},{:.3},{:.4},{:.4},{},{:.0},{:.3},{:.3},{},{},{},{},{},{}",
                r.cycle,
                r.sim_time.as_secs_f64(),
                r.test_accuracy,
                r.test_loss,
                r.participants,
                r.comm_bytes,
                r.phases.train_s,
                r.phases.comm_s,
                r.phases.wire_bytes,
                r.phases.retries,
                r.phases.missed,
                r.phases.aggregated_updates,
                r.phases.train_flops,
                r.phases.eval_flops
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(cycle: usize, secs: f64, acc: f64) -> RoundRecord {
        RoundRecord {
            cycle,
            sim_time: SimTime::from_secs(secs),
            test_accuracy: acc,
            test_loss: 1.0 - acc,
            participants: 2,
            comm_bytes: 100.0,
            phases: PhaseBreakdown {
                train_s: secs * 0.8,
                comm_s: secs * 0.2,
                aggregated_updates: 2,
                ..PhaseBreakdown::default()
            },
        }
    }

    fn sample_run() -> RunMetrics {
        let mut m = RunMetrics::new("s");
        m.push(record(0, 10.0, 0.3));
        m.push(record(1, 20.0, 0.6));
        m.push(record(2, 30.0, 0.5));
        m.push(record(3, 40.0, 0.7));
        m
    }

    #[test]
    fn summary_statistics() {
        let m = sample_run();
        assert_eq!(m.final_accuracy(), 0.7);
        assert_eq!(m.best_accuracy(), 0.7);
        assert!((m.tail_accuracy(2) - 0.6).abs() < 1e-12);
        assert!(m.tail_accuracy_std(2) > 0.0);
        assert_eq!(m.total_time().as_secs_f64(), 40.0);
    }

    #[test]
    fn target_search() {
        let m = sample_run();
        assert_eq!(m.cycles_to_reach(0.55), Some(1));
        assert_eq!(m.time_to_reach(0.55).unwrap().as_secs_f64(), 20.0);
        assert_eq!(m.cycles_to_reach(0.95), None);
    }

    #[test]
    fn speedup_is_a_time_ratio() {
        let fast = sample_run();
        let mut slow = RunMetrics::new("slow");
        slow.push(record(0, 100.0, 0.7));
        assert!((fast.speedup_over(&slow, 0.55).unwrap() - 5.0).abs() < 1e-12);
        assert!(fast.speedup_over(&slow, 0.99).is_none());
    }

    #[test]
    fn empty_metrics_are_safe() {
        let m = RunMetrics::new("empty");
        assert_eq!(m.final_accuracy(), 0.0);
        assert_eq!(m.best_accuracy(), 0.0);
        assert_eq!(m.tail_accuracy(5), 0.0);
        assert_eq!(m.total_time(), SimTime::ZERO);
        assert!(m.cycles_to_reach(0.1).is_none());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample_run().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("cycle,"));
        assert!(lines[0].ends_with(
            "train_s,comm_s,wire_bytes,retries,missed,aggregated,train_flops,eval_flops"
        ));
        assert!(lines[1].starts_with("0,10.000,0.3000"));
        assert!(lines[1].ends_with(",8.000,2.000,0,0,0,2,0,0"));
    }

    #[test]
    fn observability_counters_do_not_break_equality() {
        // The kernel counters are process-global and interleave with
        // concurrent runs, and the wire counters differ between routed
        // and direct runs with identical learning outcomes — neither may
        // participate in equality.
        let a = PhaseBreakdown {
            train_s: 1.0,
            train_flops: 10,
            ..PhaseBreakdown::default()
        };
        let b = PhaseBreakdown {
            train_s: 1.0,
            train_flops: 99,
            eval_flops: 7,
            wire_bytes: 4096,
            retries: 3,
            ..PhaseBreakdown::default()
        };
        assert_eq!(a, b);
        let c = PhaseBreakdown { train_s: 2.0, ..a };
        assert_ne!(a, c);
        let d = PhaseBreakdown { missed: 1, ..a };
        assert_ne!(a, d);
    }

    #[test]
    fn run_profile_is_excluded_from_equality_but_round_trips() {
        let mut a = sample_run();
        let b = sample_run();
        a.set_profile(RunProfile {
            train_s: 123.0,
            kernel_flops: 42,
            ..RunProfile::default()
        });
        assert_eq!(a, b, "host profile is wall-clock noise");
        let json = serde_json::to_string(&a).unwrap();
        let back: RunMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back.profile().kernel_flops, 42);
        // Files written before the profile/phases fields existed load.
        let legacy = r#"{"strategy":"old","records":[{"cycle":0,"sim_time":1.5,
            "test_accuracy":0.5,"test_loss":1.0,"participants":2,"comm_bytes":8.0}]}"#;
        let old: RunMetrics = serde_json::from_str(legacy).unwrap();
        assert_eq!(old.records()[0].phases, PhaseBreakdown::default());
    }
}
