//! The unified round-lifecycle engine: one canonical aggregation-cycle
//! loop shared by every strategy.
//!
//! A federated round always walks the same phases — client selection,
//! global broadcast, per-client configuration, local training, transport
//! routing, aggregation, evaluation, metrics recording. Historically each
//! strategy re-implemented that loop; now [`RoundDriver`] owns it and a
//! strategy only fills in the policy decisions through the slim
//! [`RoundPolicy`] hook trait. Every `RoundPolicy` automatically
//! implements [`Strategy`] (a blanket impl), so policies keep plugging
//! into `Vec<Box<dyn Strategy>>` harnesses unchanged.
//!
//! # Phase sequence
//!
//! For each cycle `c` in `0..cycles` the driver executes, in order:
//!
//! 1. **select** — the policy names this cycle's participants (training
//!    *and* aggregation order).
//! 2. **broadcast** — the global model goes out (default: to everyone).
//! 3. **configure** — [`RoundPolicy::configure_client`] runs serially in
//!    participant order (mask installation, RNG draws).
//! 4. **train** — [`FlEnv::train_selected`] fans the participants out
//!    across worker threads; updates come back in participant order.
//! 5. **route** — the exchange rides [`FlEnv::route_updates`] (a
//!    transparent passthrough when networking is disabled); participants
//!    that miss the deadline drop out of the aggregation set.
//! 6. **aggregate** — the policy folds the delivered updates into the
//!    global model.
//! 7. **clock** — the simulated clock advances by
//!    [`RoundPolicy::cycle_span`] (default: the routed round span), then
//!    [`RoundPolicy::post_cycle`] runs (e.g. Helios volume adjustment).
//! 8. **evaluate & record** — global-model evaluation, then a
//!    [`RoundRecord`] with a per-phase [`PhaseBreakdown`] is appended.
//!
//! The driver is bitwise-transparent: a policy whose hooks perform the
//! same operations in the same order as a hand-written loop produces
//! bit-identical metrics and global parameters, at any thread count.

use crate::metrics::{PhaseBreakdown, RunProfile};
use crate::{
    FlEnv, LocalUpdate, MaskedUpdate, OnlineAggregator, Result, RoundRecord, RoutedCycle,
    RunMetrics, Strategy,
};
use helios_device::SimTime;
use helios_obs::{PhaseGuard, TraceEvent};
use std::time::Instant;

/// The policy hooks a collaboration scheme plugs into the
/// [`RoundDriver`]'s canonical cycle loop.
///
/// Only [`RoundPolicy::aggregate`] is mandatory; every other hook has a
/// default that matches plain synchronous FedAvg (select everyone,
/// broadcast to everyone, train full models, advance the clock by the
/// routed round span). The driver calls the hooks in the order documented
/// on [`RoundDriver::run`].
pub trait RoundPolicy {
    /// Short machine-friendly name (used in metrics and CSV output).
    fn name(&self) -> &str;

    /// One-time setup before the first cycle of a `run` call:
    /// validation, straggler identification, seeding strategy RNGs.
    ///
    /// Called once per [`Strategy::run`] invocation, so state derived
    /// from the environment (periods, deadlines) is recomputed when the
    /// same policy value is run again.
    ///
    /// # Errors
    ///
    /// Returns configuration-validation or identification errors.
    fn begin_run(&mut self, env: &mut FlEnv) -> Result<()> {
        let _ = env;
        Ok(())
    }

    /// Names this cycle's participants. The returned order is the
    /// training *and* aggregation order; duplicates are rejected by the
    /// driver. Defaults to [`FlEnv::select_cohort`]: with sampling
    /// disabled that is every client in id order (the historical
    /// behavior), with sampling enabled it is the cycle's deterministic
    /// cohort draw, materialized and ready to train.
    ///
    /// # Errors
    ///
    /// Returns selection errors (e.g. an unknown client id).
    fn select(&mut self, env: &mut FlEnv, cycle: usize) -> Result<Vec<usize>> {
        env.select_cohort(cycle)
    }

    /// Distributes the global model at the top of the cycle. Defaults to
    /// [`FlEnv::broadcast_global`]; asynchronous schemes narrow this to
    /// the capable devices so stragglers keep their stale download.
    ///
    /// # Errors
    ///
    /// Propagates parameter-length errors.
    fn broadcast(&mut self, env: &mut FlEnv, cycle: usize, participants: &[usize]) -> Result<()> {
        let _ = participants;
        env.broadcast_global(cycle)
    }

    /// Prepares one participant for training — mask installation, RNG
    /// draws. Runs serially in participant order so stateful policies
    /// (e.g. a shared mask RNG) stay reproducible. Defaults to clearing
    /// any installed mask (full-model training).
    ///
    /// # Errors
    ///
    /// Returns mask-installation errors.
    fn configure_client(&mut self, env: &mut FlEnv, cycle: usize, client: usize) -> Result<()> {
        let _ = cycle;
        env.client_mut(client)?.set_masks(None)
    }

    /// Folds the delivered updates into the global model. The updates
    /// arrive in participant order with deadline-missing clients already
    /// removed (see [`RoutedCycle`]).
    ///
    /// # Errors
    ///
    /// Returns aggregation errors (e.g. a global length change).
    fn aggregate(&mut self, env: &mut FlEnv, cycle: usize, routed: &RoutedCycle) -> Result<()>;

    /// The simulated span the clock advances by after aggregation.
    /// Defaults to the routed round span (`max(compute + comm)` over
    /// participants); asynchronous schemes return the capable-device
    /// cadence instead.
    ///
    /// # Errors
    ///
    /// Returns policy-state errors.
    fn cycle_span(&mut self, env: &FlEnv, cycle: usize, routed: &RoutedCycle) -> Result<SimTime> {
        let _ = (env, cycle);
        Ok(routed.cycle_time)
    }

    /// Runs after the clock advance and before evaluation — e.g. the
    /// Helios dynamic-volume adjustment. Defaults to a no-op.
    ///
    /// # Errors
    ///
    /// Returns policy-state errors.
    fn post_cycle(&mut self, env: &mut FlEnv, cycle: usize) -> Result<()> {
        let _ = (env, cycle);
        Ok(())
    }
}

/// Every [`RoundPolicy`] is a [`Strategy`]: running it drives the policy
/// through the canonical cycle loop.
impl<P: RoundPolicy> Strategy for P {
    fn name(&self) -> &str {
        RoundPolicy::name(self)
    }

    fn run(&mut self, env: &mut FlEnv, cycles: usize) -> Result<RunMetrics> {
        RoundDriver::run(self, env, cycles)
    }
}

/// FedAvg aggregation into the environment's global model: each update's
/// trained entries enter a sample-count-weighted masked average. The
/// shared aggregation path of the synchronous, random-partial, and plain
/// asynchronous policies.
///
/// # Errors
///
/// Propagates [`FlEnv::set_global`] length errors (impossible for updates
/// produced by this environment's clients).
pub fn fedavg_into_global(env: &mut FlEnv, updates: &[LocalUpdate]) -> Result<()> {
    let mut global = env.global().to_vec();
    // Stream one update at a time through the online accumulator —
    // bitwise identical to collect-then-[`aggregate`] (which is itself
    // built on the same fold) while holding O(model) server state.
    let mut acc = OnlineAggregator::new(global.len());
    for u in updates {
        acc.push(&MaskedUpdate {
            params: &u.params,
            param_mask: u.param_mask.as_deref(),
            weight: u.num_samples as f64,
        });
    }
    acc.finish_into(&mut global);
    env.set_global(global)
}

/// The engine that owns the canonical round lifecycle (see
/// [`RoundDriver::run`] for the phase sequence).
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundDriver;

impl RoundDriver {
    /// Drives `policy` through `cycles` aggregation cycles against `env`,
    /// recording one [`RoundRecord`] (with per-phase breakdown) per cycle
    /// and a host-side [`RunProfile`] for the whole run.
    ///
    /// # Phase sequence
    ///
    /// For each cycle `c` in `0..cycles`, in order:
    ///
    /// 1. **select** — the policy names this cycle's participants
    ///    (training *and* aggregation order).
    /// 2. **broadcast** — the global model goes out (default: everyone).
    /// 3. **configure** — [`RoundPolicy::configure_client`] runs serially
    ///    in participant order (mask installation, RNG draws).
    /// 4. **train** — [`FlEnv::train_selected`] fans the participants out
    ///    across worker threads; updates return in participant order.
    /// 5. **route** — the exchange rides [`FlEnv::route_updates`] (a
    ///    transparent passthrough when networking is disabled);
    ///    participants missing the deadline drop out of the aggregation.
    /// 6. **aggregate** — the policy folds the delivered updates into the
    ///    global model.
    /// 7. **clock** — the clock advances by [`RoundPolicy::cycle_span`]
    ///    (default: the routed round span), then
    ///    [`RoundPolicy::post_cycle`] runs (e.g. Helios volume
    ///    adjustment).
    /// 8. **evaluate & record** — global-model evaluation, then a
    ///    [`RoundRecord`] with a per-phase [`PhaseBreakdown`] is
    ///    appended.
    ///
    /// # Errors
    ///
    /// Propagates the first policy or environment error; the environment
    /// state is unspecified afterwards.
    pub fn run<P: RoundPolicy + ?Sized>(
        policy: &mut P,
        env: &mut FlEnv,
        cycles: usize,
    ) -> Result<RunMetrics> {
        let mut metrics = RunMetrics::new(RoundPolicy::name(policy));
        let mut profile = RunProfile::default();
        let run_kernels = helios_tensor::kernel_counters();
        let run_nn = helios_nn::nn_timings();

        let t = Instant::now();
        policy.begin_run(env)?;
        profile.setup_s += t.elapsed().as_secs_f64();

        for cycle in 0..cycles {
            // Events carry the simulated clock; the driver publishes it
            // at the cycle boundaries (here and after the advance).
            helios_obs::set_sim_time(env.clock().now());
            helios_obs::emit(|| TraceEvent::RoundStart {
                cycle: cycle as u64,
                population: env.num_clients() as u64,
            });

            // 0a. Scenario timeline: apply due churn/drift events and
            // recompute throttle scales before the cohort is drawn (a
            // no-op without a scenario).
            env.scenario_begin_cycle(cycle)?;

            // 1. Selection + 3. per-client configuration (serial, in
            // participant order — stateful policies rely on it).
            let t = Instant::now();
            let participants = {
                let _span = PhaseGuard::new(cycle as u64, "select");
                policy.select(env, cycle)?
            };
            profile.setup_s += t.elapsed().as_secs_f64();
            for &i in &participants {
                helios_obs::emit(|| TraceEvent::DeviceSelected {
                    cycle: cycle as u64,
                    device: i as u64,
                    cohort: participants.len() as u64,
                });
            }

            // 0b. Scenario cohort preparation: replay pending drift onto
            // participant shards and throttle participant links (a no-op
            // without a scenario).
            env.scenario_prepare_cohort(cycle, &participants)?;

            // 2. Broadcast.
            let t = Instant::now();
            {
                let _span = PhaseGuard::new(cycle as u64, "broadcast");
                policy.broadcast(env, cycle, &participants)?;
            }
            profile.broadcast_s += t.elapsed().as_secs_f64();

            let t = Instant::now();
            let compute_times = {
                let _span = PhaseGuard::new(cycle as u64, "configure");
                for &i in &participants {
                    policy.configure_client(env, cycle, i)?;
                }
                // Masked compute times, read after configuration so a
                // shrunken sub-model is billed at its reduced cost.
                let mut compute_times = Vec::with_capacity(participants.len());
                for &i in &participants {
                    compute_times.push(env.client(i)?.cycle_time());
                }
                compute_times
            };
            let max_compute = compute_times
                .iter()
                .copied()
                .fold(SimTime::ZERO, SimTime::max);
            profile.setup_s += t.elapsed().as_secs_f64();

            // 4. Local training (parallel fan-out, bitwise equal to
            // serial execution at any thread count).
            let kernels_before = helios_tensor::kernel_counters();
            let t = Instant::now();
            let updates = {
                let _span = PhaseGuard::new(cycle as u64, "train");
                env.train_selected(&participants)?
            };
            profile.train_s += t.elapsed().as_secs_f64();
            let train_flops = helios_tensor::kernel_counters()
                .since(&kernels_before)
                .flops;
            for (&i, compute) in participants.iter().zip(&compute_times) {
                helios_obs::emit(|| TraceEvent::TrainDone {
                    device: i as u64,
                    compute_s: compute.as_secs_f64(),
                });
            }

            // 5. Transport routing. Bytes are billed at the trained wire
            // size (uploads + full-model downloads) even when networking
            // is disabled; the wire/retry counters come from the
            // transport's monotone statistics.
            let comm_bytes = crate::cycle_comm_bytes_with(&updates, &env.config().net.compression);
            let net_before = env.transport().map(|t| *t.stats());
            let t = Instant::now();
            let routed = {
                let _span = PhaseGuard::new(cycle as u64, "route");
                env.route_updates(cycle, updates, &compute_times)?
            };
            profile.route_s += t.elapsed().as_secs_f64();
            let wire = match (env.transport(), net_before) {
                (Some(t), Some(before)) => t.stats().since(&before),
                _ => Default::default(),
            };

            // 6. Aggregation.
            let t = Instant::now();
            {
                let _span = PhaseGuard::new(cycle as u64, "aggregate");
                policy.aggregate(env, cycle, &routed)?;
            }
            profile.aggregate_s += t.elapsed().as_secs_f64();
            for u in &routed.updates {
                helios_obs::emit(|| TraceEvent::UpdateAggregated {
                    cycle: cycle as u64,
                    device: u.client as u64,
                });
            }

            // 7. Clock advance + post-cycle adjustment.
            let span = policy.cycle_span(env, cycle, &routed)?;
            env.advance_clock(span);
            helios_obs::set_sim_time(env.clock().now());
            let t = Instant::now();
            policy.post_cycle(env, cycle)?;
            profile.setup_s += t.elapsed().as_secs_f64();

            // 8. Evaluation and recording. The simulated span partitions
            // into the training share (slowest participant's compute,
            // clipped to the span) and the communication/waiting share.
            let kernels_before = helios_tensor::kernel_counters();
            let t = Instant::now();
            let (test_loss, test_accuracy) = {
                let _span = PhaseGuard::new(cycle as u64, "evaluate");
                env.evaluate_global()?
            };
            profile.eval_s += t.elapsed().as_secs_f64();
            let eval_flops = helios_tensor::kernel_counters()
                .since(&kernels_before)
                .flops;
            helios_obs::emit(|| TraceEvent::EvalDone {
                cycle: cycle as u64,
                loss: test_loss,
                accuracy: test_accuracy,
            });

            let span_s = span.as_secs_f64();
            let sim_train_s = span_s.min(max_compute.as_secs_f64());
            let sim_comm_s = (span_s - sim_train_s).max(0.0);
            metrics.push(RoundRecord {
                cycle,
                sim_time: env.clock().now(),
                test_accuracy,
                test_loss,
                participants: routed.updates.len(),
                comm_bytes,
                phases: PhaseBreakdown {
                    train_s: sim_train_s,
                    comm_s: sim_comm_s,
                    wire_bytes: wire.bytes_on_wire,
                    retries: wire.retries,
                    missed: routed.missed.len(),
                    aggregated_updates: routed.updates.len(),
                    train_flops,
                    eval_flops,
                },
            });
            helios_obs::emit(|| TraceEvent::RoundEnd {
                cycle: cycle as u64,
                span_s,
                train_s: sim_train_s,
                comm_s: sim_comm_s,
                aggregated: routed.updates.len() as u64,
                missed: routed.missed.len() as u64,
            });
        }

        let kernels = helios_tensor::kernel_counters().since(&run_kernels);
        profile.kernel_flops = kernels.flops;
        profile.kernel_elements = kernels.elements;
        let nn = helios_nn::nn_timings().since(&run_nn);
        profile.nn_forward_s = nn.forward_s;
        profile.nn_backward_s = nn.backward_s;
        profile.nn_step_s = nn.step_s;
        metrics.set_profile(profile);
        Ok(metrics)
    }
}
