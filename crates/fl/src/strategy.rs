//! The [`Strategy`] interface every collaboration scheme implements.

use crate::{FlEnv, Result, RunMetrics};

/// A federated collaboration scheme: given a fresh environment, runs a
/// number of aggregation cycles and reports the resulting metrics.
///
/// Implemented by the four baselines in this crate ([`crate::SyncFedAvg`],
/// [`crate::AsyncFl`], [`crate::Afo`], [`crate::RandomPartial`]) and by
/// `helios_core::HeliosStrategy`.
///
/// The trait is object-safe so experiment harnesses can sweep over
/// `Vec<Box<dyn Strategy>>`.
pub trait Strategy {
    /// Short machine-friendly name (used in metrics and CSV output).
    fn name(&self) -> &str;

    /// Runs `cycles` aggregation cycles of the capable devices against
    /// `env`, which the strategy mutates freely (clients, global model,
    /// clock).
    ///
    /// # Errors
    ///
    /// Returns an error when a model or dataset operation fails; the
    /// environment state is unspecified afterwards.
    fn run(&mut self, env: &mut FlEnv, cycles: usize) -> Result<RunMetrics>;
}
