//! Process-wide wall-clock profiling of the three training hot paths:
//! [`Network::forward`](crate::Network::forward),
//! [`Network::backward`](crate::Network::backward), and
//! [`Sgd::step`](crate::Sgd::step).
//!
//! The accumulators are global atomics holding nanoseconds, so the
//! numbers are *host* observability data: they sum CPU time across every
//! thread currently training (a fan-out of eight clients contributes
//! eight forward passes' worth per batch) and vary run to run. They
//! never feed simulated time or any bitwise-compared metric — the
//! federated engine snapshots deltas around each phase and reports them
//! in its run profile only.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static FORWARD_NS: AtomicU64 = AtomicU64::new(0);
static BACKWARD_NS: AtomicU64 = AtomicU64::new(0);
static STEP_NS: AtomicU64 = AtomicU64::new(0);

/// Which hot path a timed section belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Hotpath {
    Forward,
    Backward,
    Step,
}

/// Times `f` and charges the elapsed wall time to `path`.
pub(crate) fn timed<T>(path: Hotpath, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let slot = match path {
        Hotpath::Forward => &FORWARD_NS,
        Hotpath::Backward => &BACKWARD_NS,
        Hotpath::Step => &STEP_NS,
    };
    slot.fetch_add(ns, Ordering::Relaxed);
    out
}

/// A snapshot of the accumulated hot-path wall times, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NnTimings {
    /// Total wall time spent in forward passes.
    pub forward_s: f64,
    /// Total wall time spent in backward passes.
    pub backward_s: f64,
    /// Total wall time spent in optimizer steps.
    pub step_s: f64,
}

impl NnTimings {
    /// The time accumulated since an `earlier` snapshot (clamped at zero).
    pub fn since(&self, earlier: &NnTimings) -> NnTimings {
        NnTimings {
            forward_s: (self.forward_s - earlier.forward_s).max(0.0),
            backward_s: (self.backward_s - earlier.backward_s).max(0.0),
            step_s: (self.step_s - earlier.step_s).max(0.0),
        }
    }
}

/// Reads the current process-wide hot-path totals.
pub fn nn_timings() -> NnTimings {
    let secs = |a: &AtomicU64| a.load(Ordering::Relaxed) as f64 / 1e9;
    NnTimings {
        forward_s: secs(&FORWARD_NS),
        backward_s: secs(&BACKWARD_NS),
        step_s: secs(&STEP_NS),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_sections_accumulate() {
        let before = nn_timings();
        let out = timed(Hotpath::Forward, || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            7
        });
        assert_eq!(out, 7);
        let spent = nn_timings().since(&before);
        assert!(spent.forward_s > 0.0);
        assert_eq!(spent.step_s, 0.0);
        // Swapped snapshots clamp to zero.
        let none = before.since(&nn_timings());
        assert_eq!(none.forward_s, 0.0);
    }
}
