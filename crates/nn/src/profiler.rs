//! Process-wide wall-clock profiling of the three training hot paths:
//! [`Network::forward`](crate::Network::forward),
//! [`Network::backward`](crate::Network::backward), and
//! [`Sgd::step`](crate::Sgd::step).
//!
//! The accumulators are global atomics holding nanoseconds, so the
//! numbers are *host* observability data: they sum CPU time across every
//! thread currently training (a fan-out of eight clients contributes
//! eight forward passes' worth per batch) and vary run to run. They
//! never feed simulated time or any bitwise-compared metric — the
//! federated engine snapshots deltas around each phase and reports them
//! in its run profile only.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static FORWARD_NS: AtomicU64 = AtomicU64::new(0);
static BACKWARD_NS: AtomicU64 = AtomicU64::new(0);
static STEP_NS: AtomicU64 = AtomicU64::new(0);

/// Which hot path a timed section belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Hotpath {
    Forward,
    Backward,
    Step,
}

/// Times `f` and charges the elapsed wall time to `path`.
pub(crate) fn timed<T>(path: Hotpath, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let slot = match path {
        Hotpath::Forward => &FORWARD_NS,
        Hotpath::Backward => &BACKWARD_NS,
        Hotpath::Step => &STEP_NS,
    };
    slot.fetch_add(ns, Ordering::Relaxed);
    out
}

/// A snapshot of the accumulated hot-path wall times, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NnTimings {
    /// Total wall time spent in forward passes.
    pub forward_s: f64,
    /// Total wall time spent in backward passes.
    pub backward_s: f64,
    /// Total wall time spent in optimizer steps.
    pub step_s: f64,
}

impl NnTimings {
    /// The time accumulated since an `earlier` snapshot (clamped at zero).
    pub fn since(&self, earlier: &NnTimings) -> NnTimings {
        NnTimings {
            forward_s: (self.forward_s - earlier.forward_s).max(0.0),
            backward_s: (self.backward_s - earlier.backward_s).max(0.0),
            step_s: (self.step_s - earlier.step_s).max(0.0),
        }
    }
}

/// Reads the current process-wide hot-path totals.
pub fn nn_timings() -> NnTimings {
    let secs = |a: &AtomicU64| a.load(Ordering::Relaxed) as f64 / 1e9;
    NnTimings {
        forward_s: secs(&FORWARD_NS),
        backward_s: secs(&BACKWARD_NS),
        step_s: secs(&STEP_NS),
    }
}

/// Zeroes the process-wide hot-path timers.
///
/// See [`HostMetricsScope`] for the safe way to use this from a bench
/// or demo bin; concurrent counter consumers (tests sharing a binary)
/// must stick to snapshot deltas instead.
pub fn reset_nn_timings() {
    FORWARD_NS.store(0, Ordering::Relaxed);
    BACKWARD_NS.store(0, Ordering::Relaxed);
    STEP_NS.store(0, Ordering::Relaxed);
}

/// Scoped reset of every process-global host accumulator: the
/// `nn::profiler` wall timers and the tensor kernel counters.
///
/// Consecutive runs in one process — a bench bin sweeping strategies,
/// a demo looping configurations — otherwise bleed totals into each
/// other. Entering a scope zeroes both families, so `nn_timings()` /
/// `kernel_counters()` read per-scope totals; dropping it zeroes them
/// again, leaving a clean slate for whatever runs next.
///
/// Single-process use only: the accumulators are global, so a scope
/// constructed while *concurrent* threads consume the counters (tests
/// in one binary) destroys their deltas. The `bench_*` bins are serial
/// and wrap each measured section in a scope.
///
/// ```
/// let scope = helios_nn::profiler::HostMetricsScope::enter();
/// // ... run a workload ...
/// let t = helios_nn::nn_timings(); // totals attributed to this scope
/// drop(scope);
/// ```
#[derive(Debug)]
#[must_use = "dropping the scope immediately clears the accumulators"]
pub struct HostMetricsScope(());

impl HostMetricsScope {
    /// Zeroes the host accumulators and returns the scope guard.
    pub fn enter() -> Self {
        helios_tensor::reset_kernel_counters();
        reset_nn_timings();
        HostMetricsScope(())
    }
}

impl Drop for HostMetricsScope {
    fn drop(&mut self) {
        helios_tensor::reset_kernel_counters();
        reset_nn_timings();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, PoisonError};

    /// The timers are process-global and the scope test resets them,
    /// so tests touching the accumulators serialize here.
    static TIMER_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn timed_sections_accumulate() {
        let _serial = TIMER_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let before = nn_timings();
        let out = timed(Hotpath::Forward, || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            7
        });
        assert_eq!(out, 7);
        let spent = nn_timings().since(&before);
        assert!(spent.forward_s > 0.0);
        assert_eq!(spent.step_s, 0.0);
        // Swapped snapshots clamp to zero.
        let none = before.since(&nn_timings());
        assert_eq!(none.forward_s, 0.0);
    }

    #[test]
    fn host_metrics_scope_resets_on_entry_and_exit() {
        let _serial = TIMER_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        timed(Hotpath::Step, || {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        {
            let _scope = HostMetricsScope::enter();
            assert_eq!(nn_timings(), NnTimings::default(), "entry clears");
            timed(Hotpath::Backward, || {
                std::thread::sleep(std::time::Duration::from_millis(1));
            });
            assert!(nn_timings().backward_s > 0.0, "scope-local totals");
        }
        assert_eq!(nn_timings(), NnTimings::default(), "exit clears");
    }
}
