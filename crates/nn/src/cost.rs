//! Analytic per-layer training cost: FLOPs and memory.
//!
//! The Helios paper sizes straggler sub-models with an analytic resource
//! model (`Te = W/C_cpu + M/V_mc + M/B_n`, §IV.B) rather than measuring
//! real hardware. This module produces the `W` (computation workload) and
//! `M` (memory usage) inputs to that formula, honouring any unit masks
//! currently installed on the network: a masked-out neuron contributes
//! neither FLOPs nor activation traffic, which is exactly how soft-training
//! accelerates a straggler.

use crate::layer::Layer;
use crate::layers::UnitMaskable;
use crate::Network;
use serde::Serialize;

/// Cost contribution of a single layer.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LayerCost {
    /// Layer kind label (`"dense"`, `"conv2d"`, …).
    pub name: &'static str,
    /// Forward-pass floating point operations for the whole batch.
    pub flops_forward: f64,
    /// Bytes of parameters that participate in training.
    pub param_bytes: f64,
    /// Bytes of output activations for the whole batch.
    pub activation_bytes: f64,
}

/// Aggregate cost profile of a network under its current masks.
///
/// # Example
///
/// ```
/// use helios_nn::models;
/// use helios_tensor::TensorRng;
///
/// let mut net = models::lenet(10, &mut TensorRng::seed_from(0));
/// let cost = helios_nn::NetworkCost::of(&net, 32);
/// assert!(cost.flops_training() > cost.flops_forward());
/// assert!(cost.memory_bytes() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct NetworkCost {
    /// Per-layer breakdown in forward order.
    pub layers: Vec<LayerCost>,
    batch_size: usize,
}

const BYTES_PER_PARAM: f64 = 4.0;

/// Standard estimate: backward costs about twice the forward pass, so a
/// full training step is 3× forward FLOPs.
const TRAIN_FLOPS_FACTOR: f64 = 3.0;

impl NetworkCost {
    /// Computes the cost profile of `net` for one mini-batch of
    /// `batch_size` samples, honouring currently installed unit masks.
    pub fn of(net: &Network, batch_size: usize) -> Self {
        let mut layers = Vec::new();
        let mut shape = net.input_dims().to_vec();
        let mut in_keep = 1.0f64;
        for layer in net.layers() {
            walk(layer, &mut shape, &mut in_keep, batch_size, &mut layers);
        }
        NetworkCost { layers, batch_size }
    }

    /// Batch size the profile was computed for.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Total forward FLOPs per batch.
    pub fn flops_forward(&self) -> f64 {
        self.layers.iter().map(|l| l.flops_forward).sum()
    }

    /// Total training (forward + backward) FLOPs per batch.
    pub fn flops_training(&self) -> f64 {
        self.flops_forward() * TRAIN_FLOPS_FACTOR
    }

    /// Active parameter bytes.
    pub fn param_bytes(&self) -> f64 {
        self.layers.iter().map(|l| l.param_bytes).sum()
    }

    /// Activation bytes for the whole batch.
    pub fn activation_bytes(&self) -> f64 {
        self.layers.iter().map(|l| l.activation_bytes).sum()
    }

    /// Training memory footprint: parameters + gradients + activations.
    pub fn memory_bytes(&self) -> f64 {
        2.0 * self.param_bytes() + self.activation_bytes()
    }
}

fn keep_of(mask: Option<&[bool]>, units: usize) -> f64 {
    match mask {
        Some(m) => m.iter().filter(|&&b| b).count() as f64 / units.max(1) as f64,
        None => 1.0,
    }
}

fn walk(
    layer: &Layer,
    shape: &mut Vec<usize>,
    in_keep: &mut f64,
    batch: usize,
    out: &mut Vec<LayerCost>,
) {
    let b = batch as f64;
    match layer {
        Layer::Dense(d) => {
            let (inf, outf) = (d.in_features() as f64, d.out_features() as f64);
            let out_keep = keep_of(d.unit_mask(), d.out_features());
            out.push(LayerCost {
                name: "dense",
                flops_forward: 2.0 * inf * outf * *in_keep * out_keep * b,
                param_bytes: (inf * outf * *in_keep * out_keep + outf * out_keep) * BYTES_PER_PARAM,
                activation_bytes: outf * out_keep * b * BYTES_PER_PARAM,
            });
            *shape = vec![d.out_features()];
            *in_keep = out_keep;
        }
        Layer::Conv2d(c) => {
            let spec = c.spec();
            let (h, w) = (shape[1], shape[2]);
            let (oh, ow) = spec.output_hw(h, w);
            let patch = (spec.in_channels * spec.kernel * spec.kernel) as f64;
            let o = spec.out_channels as f64;
            let out_keep = keep_of(c.unit_mask(), spec.out_channels);
            out.push(LayerCost {
                name: "conv2d",
                flops_forward: 2.0 * patch * o * (oh * ow) as f64 * *in_keep * out_keep * b,
                param_bytes: (patch * o * *in_keep * out_keep + o * out_keep) * BYTES_PER_PARAM,
                activation_bytes: o * out_keep * (oh * ow) as f64 * b * BYTES_PER_PARAM,
            });
            *shape = vec![spec.out_channels, oh, ow];
            *in_keep = out_keep;
        }
        Layer::Relu(_) => {
            let elems: f64 = shape.iter().product::<usize>() as f64 * *in_keep * b;
            out.push(LayerCost {
                name: "relu",
                flops_forward: elems,
                param_bytes: 0.0,
                activation_bytes: elems * BYTES_PER_PARAM,
            });
        }
        Layer::MaxPool2d(p) => {
            let spec = p.spec();
            let (c, h, w) = (shape[0], shape[1], shape[2]);
            let (oh, ow) = spec.output_hw(h, w);
            let window = (spec.kernel * spec.kernel) as f64;
            let outputs = (c * oh * ow) as f64 * *in_keep * b;
            out.push(LayerCost {
                name: "max_pool2d",
                flops_forward: outputs * window,
                param_bytes: 0.0,
                activation_bytes: outputs * BYTES_PER_PARAM,
            });
            *shape = vec![c, oh, ow];
        }
        Layer::AvgPool2d(p) => {
            let spec = p.spec();
            let (c, h, w) = (shape[0], shape[1], shape[2]);
            let (oh, ow) = spec.output_hw(h, w);
            let window = (spec.kernel * spec.kernel) as f64;
            let outputs = (c * oh * ow) as f64 * *in_keep * b;
            out.push(LayerCost {
                name: "avg_pool2d",
                flops_forward: outputs * window,
                param_bytes: 0.0,
                activation_bytes: outputs * BYTES_PER_PARAM,
            });
            *shape = vec![c, oh, ow];
        }
        Layer::Flatten(_) => {
            let n: usize = shape.iter().product();
            out.push(LayerCost {
                name: "flatten",
                flops_forward: 0.0,
                param_bytes: 0.0,
                activation_bytes: 0.0,
            });
            *shape = vec![n];
        }
        Layer::Residual(r) => {
            let entry_shape = shape.clone();
            let entry_keep = *in_keep;
            for inner in r.body() {
                walk(inner, shape, in_keep, batch, out);
            }
            if let Some(proj) = r.shortcut() {
                // Cost the projection with the block's entry state.
                let spec = proj.spec();
                let (h, w) = (entry_shape[1], entry_shape[2]);
                let (oh, ow) = spec.output_hw(h, w);
                let patch = (spec.in_channels * spec.kernel * spec.kernel) as f64;
                let o = spec.out_channels as f64;
                out.push(LayerCost {
                    name: "residual_projection",
                    flops_forward: 2.0 * patch * o * (oh * ow) as f64 * entry_keep * b,
                    param_bytes: (patch * o * entry_keep + o) * BYTES_PER_PARAM,
                    activation_bytes: o * (oh * ow) as f64 * b * BYTES_PER_PARAM,
                });
            }
            // The elementwise sum + ReLU of the block output.
            let elems: f64 = shape.iter().product::<usize>() as f64 * b;
            out.push(LayerCost {
                name: "residual_join",
                flops_forward: 2.0 * elems,
                param_bytes: 0.0,
                activation_bytes: elems * BYTES_PER_PARAM,
            });
            // The shortcut restores masked channels at the join, so the
            // keep ratio leaving the block reflects only the body mask
            // (conservative: downstream still sees body keep).
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use crate::network::ModelMask;
    use helios_tensor::TensorRng;

    #[test]
    fn full_model_cost_is_positive_and_ordered() {
        let mut rng = TensorRng::seed_from(0);
        let lenet = models::lenet(10, &mut rng);
        let alex = models::alexnet(10, &mut rng);
        let c_lenet = NetworkCost::of(&lenet, 32);
        let c_alex = NetworkCost::of(&alex, 32);
        assert!(c_lenet.flops_forward() > 0.0);
        assert!(
            c_alex.flops_forward() > c_lenet.flops_forward(),
            "alexnet should cost more than lenet"
        );
    }

    #[test]
    fn masking_reduces_cost_monotonically() {
        let mut rng = TensorRng::seed_from(0);
        let mut net = models::lenet(10, &mut rng);
        let full = NetworkCost::of(&net, 16);
        let units = net.maskable_units();
        // Keep only half the units of every maskable layer.
        let mut mask = ModelMask::all_active(&units);
        for (i, &n) in units.0.iter().enumerate() {
            let m: Vec<bool> = (0..n).map(|j| j < n / 2).collect();
            mask.set_layer(i, Some(m));
        }
        net.set_masks(&mask).unwrap();
        let half = NetworkCost::of(&net, 16);
        assert!(half.flops_forward() < full.flops_forward() * 0.6);
        assert!(half.memory_bytes() < full.memory_bytes());
        // Clearing masks restores the full cost.
        net.clear_masks();
        let again = NetworkCost::of(&net, 16);
        assert_eq!(again.flops_forward(), full.flops_forward());
    }

    #[test]
    fn training_flops_are_three_times_forward() {
        let mut rng = TensorRng::seed_from(0);
        let net = models::lenet(10, &mut rng);
        let c = NetworkCost::of(&net, 8);
        assert!((c.flops_training() - 3.0 * c.flops_forward()).abs() < 1e-6);
    }

    #[test]
    fn cost_scales_linearly_with_batch() {
        let mut rng = TensorRng::seed_from(0);
        let net = models::alexnet(10, &mut rng);
        let c1 = NetworkCost::of(&net, 1);
        let c8 = NetworkCost::of(&net, 8);
        let ratio = c8.flops_forward() / c1.flops_forward();
        assert!((ratio - 8.0).abs() < 1e-9);
        // Param bytes do not scale with batch.
        assert!((c8.param_bytes() - c1.param_bytes()).abs() < 1e-9);
    }

    #[test]
    fn resnet_cost_includes_projection_and_join() {
        let mut rng = TensorRng::seed_from(0);
        let net = models::resnet18(100, &mut rng);
        let c = NetworkCost::of(&net, 4);
        assert!(c.layers.iter().any(|l| l.name == "residual_projection"));
        assert!(c.layers.iter().any(|l| l.name == "residual_join"));
    }
}
