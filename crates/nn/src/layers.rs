//! Concrete layer implementations.
//!
//! Every layer owns its parameters, its accumulated gradients, and whatever
//! forward-pass state its backward pass needs. Parameterized layers
//! ([`Dense`], [`Conv2d`]) additionally carry an optional **unit mask**:
//! the Helios soft-training mechanism that excludes individual output
//! neurons / channels from a training cycle. A masked-out unit produces
//! zero activation and receives zero gradient, exactly the sub-model
//! semantics of the paper's partial training (§V.A).

use crate::{NnError, Result};
use helios_tensor::{
    avg_pool2d, avg_pool2d_backward, conv2d, conv2d_backward, conv2d_backward_packed,
    gather_channels, gather_elems, gather_rows_cols, he_normal, max_pool2d, max_pool2d_backward,
    scatter_add_elems, scatter_add_rows_cols, scatter_channels, scatter_cols, xavier_uniform,
    ConvSpec, PoolIndices, PoolSpec, Tensor, TensorRng,
};

/// Common interface of layers whose output units can be masked.
///
/// Implemented by [`Dense`] (units are neurons) and [`Conv2d`] (units are
/// output channels). The Helios scheduler manipulates layers exclusively
/// through this trait.
pub trait UnitMaskable {
    /// Number of output units.
    fn units(&self) -> usize;

    /// Installs (or clears, with `None`) the unit mask.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MaskLengthMismatch`] when the mask length differs
    /// from [`UnitMaskable::units`].
    fn set_unit_mask(&mut self, mask: Option<Vec<bool>>) -> Result<()>;

    /// The current mask, if any.
    fn unit_mask(&self) -> Option<&[bool]>;
}

fn validate_mask(units: usize, mask: &Option<Vec<bool>>) -> Result<()> {
    if let Some(m) = mask {
        if m.len() != units {
            return Err(NnError::MaskLengthMismatch {
                units,
                mask_len: m.len(),
            });
        }
    }
    Ok(())
}

/// Active indices of `mask`, or `None` when every unit is active — an
/// all-true mask is equivalent to no mask, so packing it would only
/// copy data without saving work.
fn active_indices(mask: Option<&[bool]>) -> Option<Vec<usize>> {
    let m = mask?;
    if m.iter().all(|&b| b) {
        return None;
    }
    Some(
        m.iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect(),
    )
}

/// A packed-execution dispatch: `(active output units, active input
/// positions)`, each `None` when that axis is unmasked and stays
/// full-width. The plan itself is `None` when the legacy zeroing path
/// must run instead.
type PackedPlan = Option<(Option<Vec<usize>>, Option<Vec<usize>>)>;

/// Whether the packed fast path applies to this `(output, input)` index
/// pair: at least one axis is genuinely masked, and neither axis is
/// masked down to nothing. Fully-masked layers keep the legacy zeroing
/// path, which is trivially correct for degenerate shapes.
fn packable(out_idx: &Option<Vec<usize>>, in_idx: &Option<Vec<usize>>) -> bool {
    (out_idx.is_some() || in_idx.is_some())
        && out_idx.as_ref().is_none_or(|v| !v.is_empty())
        && in_idx.as_ref().is_none_or(|v| !v.is_empty())
}

// ---------------------------------------------------------------------------
// Dense
// ---------------------------------------------------------------------------

/// Fully connected layer: `y = x · W + b` with `W: [in, out]`.
///
/// Output unit `j` (a *neuron* in the paper's vocabulary) owns weight
/// column `j` and bias element `j`.
///
/// Alongside its own unit `mask`, the layer carries an optional
/// `input_mask`: a per-input-feature guarantee, installed by
/// [`Network::set_masks`](crate::Network::set_masks) from the *upstream*
/// layer's unit mask, that the marked input positions are exactly zero.
/// With either mask installed, the layer runs **packed execution**:
/// active rows/columns are gathered into compact tensors, the GEMMs run
/// on the packed shapes, and the results are scattered back — bitwise
/// identical to full-width execution (the matmul kernel already skips
/// zero operands term-by-term) but proportionally cheaper.
#[derive(Debug, Clone)]
pub struct Dense {
    in_features: usize,
    out_features: usize,
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    mask: Option<Vec<bool>>,
    input_mask: Option<Vec<bool>>,
    maskable: bool,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Xavier-uniform weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut TensorRng) -> Self {
        Dense {
            in_features,
            out_features,
            weight: xavier_uniform(&[in_features, out_features], in_features, out_features, rng),
            bias: Tensor::zeros(&[out_features]),
            grad_weight: Tensor::zeros(&[in_features, out_features]),
            grad_bias: Tensor::zeros(&[out_features]),
            mask: None,
            input_mask: None,
            maskable: true,
            cached_input: None,
        }
    }

    /// Marks the layer as exempt from masking (used for classifier heads,
    /// whose class outputs must never be dropped).
    pub fn non_maskable(mut self) -> Self {
        self.maskable = false;
        self
    }

    /// Whether the soft-training scheduler may mask this layer.
    pub fn is_maskable(&self) -> bool {
        self.maskable
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Installs the upstream-derived input-feature mask (`true` = the
    /// feature may be nonzero, `false` = guaranteed exactly zero). An
    /// input mask is an optimization hint, never a requirement, so a
    /// length mismatch conservatively clears it.
    pub(crate) fn set_input_mask(&mut self, mask: Option<Vec<bool>>) {
        self.input_mask = mask.filter(|m| m.len() == self.in_features);
    }

    /// The packed-execution index sets, when the fast path applies.
    fn packed_plan(&self) -> PackedPlan {
        if !crate::packed_execution_enabled() {
            return None;
        }
        let out_idx = active_indices(self.mask.as_deref());
        let in_idx = active_indices(self.input_mask.as_deref());
        packable(&out_idx, &in_idx).then_some((out_idx, in_idx))
    }

    pub(crate) fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        let y = match self.packed_plan() {
            Some((out_idx, in_idx)) => {
                self.forward_packed(x, out_idx.as_deref(), in_idx.as_deref())?
            }
            None => {
                let mut y = x.matmul(&self.weight)?.add_row_broadcast(&self.bias)?;
                if let Some(mask) = &self.mask {
                    let (n, out) = (y.dims()[0], y.dims()[1]);
                    let data = y.as_mut_slice();
                    for i in 0..n {
                        for (j, &keep) in mask.iter().enumerate() {
                            if !keep {
                                data[i * out + j] = 0.0;
                            }
                        }
                    }
                }
                y
            }
        };
        self.cached_input = Some(x.clone());
        Ok(y)
    }

    /// Packed forward: gather the active input columns of `x` and the
    /// active `[in × out]` sub-grid of the weight, run the GEMM on the
    /// packed shapes, scatter into a full-width output (exact `+0.0` in
    /// masked columns). The masked input columns of `x` hold exact
    /// zeros, which the matmul kernel would have skipped term-by-term,
    /// so dropping them preserves every accumulation order.
    fn forward_packed(
        &self,
        x: &Tensor,
        out_idx: Option<&[usize]>,
        in_idx: Option<&[usize]>,
    ) -> Result<Tensor> {
        let xp_store;
        let x_p = match in_idx {
            Some(idx) => {
                xp_store = gather_rows_cols(x, None, Some(idx))?;
                &xp_store
            }
            None => x,
        };
        let w_p = gather_rows_cols(&self.weight, in_idx, out_idx)?;
        let bp_store;
        let b_p = match out_idx {
            Some(idx) => {
                bp_store = gather_elems(&self.bias, idx)?;
                &bp_store
            }
            None => &self.bias,
        };
        let y_p = x_p.matmul(&w_p)?.add_row_broadcast(b_p)?;
        match out_idx {
            Some(idx) => Ok(scatter_cols(&y_p, idx, self.out_features)?),
            None => Ok(y_p),
        }
    }

    pub(crate) fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        if let Some((out_idx, in_idx)) = self.packed_plan() {
            return self.backward_packed(grad_out, out_idx.as_deref(), in_idx.as_deref());
        }
        let x = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "Dense" })?;
        let g = match &self.mask {
            Some(mask) => {
                let mut g = grad_out.clone();
                let (n, out) = (g.dims()[0], g.dims()[1]);
                let data = g.as_mut_slice();
                for i in 0..n {
                    for (j, &keep) in mask.iter().enumerate() {
                        if !keep {
                            data[i * out + j] = 0.0;
                        }
                    }
                }
                g
            }
            None => grad_out.clone(),
        };
        // dW = xᵀ·g and dX = g·Wᵀ via the transposed-operand GEMM entry
        // points: the kernel reads `x` and `weight` where they lie, no
        // materialized `transpose()` copies on the training path.
        self.grad_weight.axpy(1.0, &x.matmul_tn(&g)?)?;
        self.grad_bias.axpy(1.0, &g.sum_rows()?)?;
        Ok(g.matmul_nt(&self.weight)?)
    }

    /// Packed backward: masked output gradients are definitionally
    /// zeroed, so gather only the active columns and scatter-add the
    /// packed weight/bias gradients into the active sub-grid (masked
    /// entries accumulate exactly nothing either way). The input axis
    /// of the returned gradient stays **full-width**: `grad_input` must
    /// be bitwise identical everywhere, including masked input
    /// positions, whose values come out of the same GEMM terms the
    /// full-width kernel would have used.
    fn backward_packed(
        &mut self,
        grad_out: &Tensor,
        out_idx: Option<&[usize]>,
        in_idx: Option<&[usize]>,
    ) -> Result<Tensor> {
        let x = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "Dense" })?;
        let gp_store;
        let g_p = match out_idx {
            Some(idx) => {
                gp_store = gather_rows_cols(grad_out, None, Some(idx))?;
                &gp_store
            }
            None => grad_out,
        };
        let xp_store;
        let x_p = match in_idx {
            Some(idx) => {
                xp_store = gather_rows_cols(x, None, Some(idx))?;
                &xp_store
            }
            None => x,
        };
        let gw_p = x_p.matmul_tn(g_p)?;
        scatter_add_rows_cols(&mut self.grad_weight, &gw_p, in_idx, out_idx)?;
        let gb_p = g_p.sum_rows()?;
        match out_idx {
            Some(idx) => scatter_add_elems(&mut self.grad_bias, &gb_p, idx)?,
            None => self.grad_bias.axpy(1.0, &gb_p)?,
        }
        let wr_store;
        let w_rows = match out_idx {
            Some(idx) => {
                wr_store = gather_rows_cols(&self.weight, None, Some(idx))?;
                &wr_store
            }
            None => &self.weight,
        };
        Ok(g_p.matmul_nt(w_rows)?)
    }

    pub(crate) fn zero_grad(&mut self) {
        self.grad_weight.fill_zero();
        self.grad_bias.fill_zero();
    }

    pub(crate) fn for_each_param(&self, f: &mut dyn FnMut(&Tensor)) {
        f(&self.weight);
        f(&self.bias);
    }

    pub(crate) fn for_each_param_mut(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    pub(crate) fn for_each_param_grad_mut(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.weight, &mut self.grad_weight);
        f(&mut self.bias, &mut self.grad_bias);
    }
}

impl UnitMaskable for Dense {
    fn units(&self) -> usize {
        self.out_features
    }

    fn set_unit_mask(&mut self, mask: Option<Vec<bool>>) -> Result<()> {
        validate_mask(self.out_features, &mask)?;
        self.mask = mask;
        Ok(())
    }

    fn unit_mask(&self) -> Option<&[bool]> {
        self.mask.as_deref()
    }
}

// ---------------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------------

/// 2-D convolution layer over `[N, C, H, W]` tensors.
///
/// Output unit `o` (a *channel*) owns weight row `o` of the
/// `[O, C·K·K]` weight matrix and bias element `o`.
/// Like [`Dense`], the layer carries an optional `input_mask` of
/// guaranteed-zero input channels (derived from the upstream layer's
/// unit mask by [`Network::set_masks`](crate::Network::set_masks)) and
/// runs packed execution over the active output channels × active input
/// channels whenever either mask is installed.
#[derive(Debug, Clone)]
pub struct Conv2d {
    spec: ConvSpec,
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    mask: Option<Vec<bool>>,
    input_mask: Option<Vec<bool>>,
    maskable: bool,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer with He-normal weights and zero bias.
    pub fn new(spec: ConvSpec, rng: &mut TensorRng) -> Self {
        let wd = spec.weight_dims();
        let fan_in = wd[1];
        Conv2d {
            spec,
            weight: he_normal(&wd, fan_in, rng),
            bias: Tensor::zeros(&[spec.out_channels]),
            grad_weight: Tensor::zeros(&wd),
            grad_bias: Tensor::zeros(&[spec.out_channels]),
            mask: None,
            input_mask: None,
            maskable: true,
            cached_input: None,
        }
    }

    /// Marks the layer as exempt from masking.
    pub fn non_maskable(mut self) -> Self {
        self.maskable = false;
        self
    }

    /// Whether the soft-training scheduler may mask this layer.
    pub fn is_maskable(&self) -> bool {
        self.maskable
    }

    /// The convolution geometry.
    pub fn spec(&self) -> &ConvSpec {
        &self.spec
    }

    fn mask_channels(&self, t: &mut Tensor) {
        if let Some(mask) = &self.mask {
            let d = t.dims().to_vec();
            let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
            let data = t.as_mut_slice();
            for ni in 0..n {
                for (ci, &keep) in mask.iter().enumerate().take(c) {
                    if !keep {
                        let start = ((ni * c) + ci) * h * w;
                        for v in &mut data[start..start + h * w] {
                            *v = 0.0;
                        }
                    }
                }
            }
        }
    }

    /// Installs the upstream-derived input-channel mask (`true` = the
    /// channel may be nonzero, `false` = guaranteed exactly zero). An
    /// input mask is an optimization hint, never a requirement, so a
    /// length mismatch conservatively clears it.
    pub(crate) fn set_input_mask(&mut self, mask: Option<Vec<bool>>) {
        self.input_mask = mask.filter(|m| m.len() == self.spec.in_channels);
    }

    /// The packed-execution index sets, when the fast path applies.
    fn packed_plan(&self) -> PackedPlan {
        if !crate::packed_execution_enabled() {
            return None;
        }
        let out_idx = active_indices(self.mask.as_deref());
        let in_idx = active_indices(self.input_mask.as_deref());
        packable(&out_idx, &in_idx).then_some((out_idx, in_idx))
    }

    /// Weight-matrix column indices covered by the given active input
    /// channels: the `[O, C·K·K]` layout is input-channel-major, so each
    /// channel owns one contiguous `K·K` column block.
    fn weight_col_blocks(&self, in_idx: &[usize]) -> Vec<usize> {
        let kk = self.spec.kernel * self.spec.kernel;
        in_idx
            .iter()
            .flat_map(|&ci| ci * kk..(ci + 1) * kk)
            .collect()
    }

    /// The convolution geometry restricted to the active channels.
    fn packed_spec(&self, out_idx: Option<&[usize]>, in_idx: Option<&[usize]>) -> ConvSpec {
        ConvSpec::new(
            in_idx.map_or(self.spec.in_channels, <[usize]>::len),
            out_idx.map_or(self.spec.out_channels, <[usize]>::len),
            self.spec.kernel,
            self.spec.stride,
            self.spec.padding,
        )
    }

    pub(crate) fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        let y = match self.packed_plan() {
            Some((out_idx, in_idx)) => {
                self.forward_packed(x, out_idx.as_deref(), in_idx.as_deref())?
            }
            None => {
                let mut y = conv2d(x, &self.weight, &self.bias, &self.spec)?;
                self.mask_channels(&mut y);
                y
            }
        };
        self.cached_input = Some(x.clone());
        Ok(y)
    }

    /// Packed forward: gather the active input-channel planes, the
    /// active weight sub-grid (rows = active output channels, columns =
    /// the active channels' `K·K` blocks), run the convolution on the
    /// packed geometry, and scatter the output planes back (exact
    /// `+0.0` in masked channels). Masked input planes hold exact
    /// zeros, so dropping their patch columns removes only terms the
    /// GEMM kernel would have skipped anyway.
    fn forward_packed(
        &self,
        x: &Tensor,
        out_idx: Option<&[usize]>,
        in_idx: Option<&[usize]>,
    ) -> Result<Tensor> {
        let xp_store;
        let x_p = match in_idx {
            Some(idx) => {
                xp_store = gather_channels(x, idx)?;
                &xp_store
            }
            None => x,
        };
        let col_idx = in_idx.map(|idx| self.weight_col_blocks(idx));
        let w_p = gather_rows_cols(&self.weight, out_idx, col_idx.as_deref())?;
        let bp_store;
        let b_p = match out_idx {
            Some(idx) => {
                bp_store = gather_elems(&self.bias, idx)?;
                &bp_store
            }
            None => &self.bias,
        };
        let y_p = conv2d(x_p, &w_p, b_p, &self.packed_spec(out_idx, in_idx))?;
        match out_idx {
            Some(idx) => Ok(scatter_channels(&y_p, idx, self.spec.out_channels)?),
            None => Ok(y_p),
        }
    }

    pub(crate) fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        if let Some((out_idx, in_idx)) = self.packed_plan() {
            return self.backward_packed(grad_out, out_idx.as_deref(), in_idx.as_deref());
        }
        let x = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "Conv2d" })?;
        let mut g = grad_out.clone();
        self.mask_channels(&mut g);
        let grads = conv2d_backward(x, &self.weight, &g, &self.spec)?;
        self.grad_weight.axpy(1.0, &grads.grad_weight)?;
        self.grad_bias.axpy(1.0, &grads.grad_bias)?;
        Ok(grads.grad_input)
    }

    /// Packed backward: masked output-channel gradients are
    /// definitionally zeroed, so only the active planes are gathered;
    /// the packed weight/bias gradients scatter-add into the active
    /// sub-grid (masked entries accumulate exactly nothing either way).
    /// [`conv2d_backward_packed`] keeps the weight's input-column axis
    /// whole so `grad_input` comes back full-shape and bit-exact.
    fn backward_packed(
        &mut self,
        grad_out: &Tensor,
        out_idx: Option<&[usize]>,
        in_idx: Option<&[usize]>,
    ) -> Result<Tensor> {
        let x = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "Conv2d" })?;
        let gp_store;
        let g_p = match out_idx {
            Some(idx) => {
                gp_store = gather_channels(grad_out, idx)?;
                &gp_store
            }
            None => grad_out,
        };
        let xp_store;
        let x_p = match in_idx {
            Some(idx) => {
                xp_store = gather_channels(x, idx)?;
                &xp_store
            }
            None => x,
        };
        let wr_store;
        let w_rows = match out_idx {
            Some(idx) => {
                wr_store = gather_rows_cols(&self.weight, Some(idx), None)?;
                &wr_store
            }
            None => &self.weight,
        };
        let grads = conv2d_backward_packed(x_p, w_rows, g_p, &self.spec)?;
        let col_idx = in_idx.map(|idx| self.weight_col_blocks(idx));
        scatter_add_rows_cols(
            &mut self.grad_weight,
            &grads.grad_weight,
            out_idx,
            col_idx.as_deref(),
        )?;
        match out_idx {
            Some(idx) => scatter_add_elems(&mut self.grad_bias, &grads.grad_bias, idx)?,
            None => self.grad_bias.axpy(1.0, &grads.grad_bias)?,
        }
        Ok(grads.grad_input)
    }

    pub(crate) fn zero_grad(&mut self) {
        self.grad_weight.fill_zero();
        self.grad_bias.fill_zero();
    }

    pub(crate) fn for_each_param(&self, f: &mut dyn FnMut(&Tensor)) {
        f(&self.weight);
        f(&self.bias);
    }

    pub(crate) fn for_each_param_mut(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    pub(crate) fn for_each_param_grad_mut(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.weight, &mut self.grad_weight);
        f(&mut self.bias, &mut self.grad_bias);
    }
}

impl UnitMaskable for Conv2d {
    fn units(&self) -> usize {
        self.spec.out_channels
    }

    fn set_unit_mask(&mut self, mask: Option<Vec<bool>>) -> Result<()> {
        validate_mask(self.spec.out_channels, &mask)?;
        self.mask = mask;
        Ok(())
    }

    fn unit_mask(&self) -> Option<&[bool]> {
        self.mask.as_deref()
    }
}

// ---------------------------------------------------------------------------
// Relu
// ---------------------------------------------------------------------------

/// Rectified linear activation, `max(0, x)`, applied elementwise.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    cached_positive: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU activation.
    pub fn new() -> Self {
        Relu::default()
    }

    pub(crate) fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        self.cached_positive = Some(x.as_slice().iter().map(|&v| v > 0.0).collect());
        Ok(x.map(|v| v.max(0.0)))
    }

    pub(crate) fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let pos = self
            .cached_positive
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "Relu" })?;
        let mut g = grad_out.clone();
        for (v, &p) in g.as_mut_slice().iter_mut().zip(pos) {
            if !p {
                *v = 0.0;
            }
        }
        Ok(g)
    }
}

// ---------------------------------------------------------------------------
// Pooling
// ---------------------------------------------------------------------------

/// Max pooling over `[N, C, H, W]` tensors.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    spec: PoolSpec,
    cached_indices: Option<PoolIndices>,
}

impl MaxPool2d {
    /// Creates a max-pooling layer with the given window and stride.
    pub fn new(kernel: usize, stride: usize) -> Self {
        MaxPool2d {
            spec: PoolSpec::new(kernel, stride),
            cached_indices: None,
        }
    }

    /// The pooling geometry.
    pub fn spec(&self) -> &PoolSpec {
        &self.spec
    }

    pub(crate) fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        let (y, idx) = max_pool2d(x, &self.spec)?;
        self.cached_indices = Some(idx);
        Ok(y)
    }

    pub(crate) fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let idx = self
            .cached_indices
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "MaxPool2d" })?;
        Ok(max_pool2d_backward(grad_out, idx)?)
    }
}

/// Average pooling over `[N, C, H, W]` tensors.
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    spec: PoolSpec,
    cached_input_dims: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates an average-pooling layer with the given window and stride.
    pub fn new(kernel: usize, stride: usize) -> Self {
        AvgPool2d {
            spec: PoolSpec::new(kernel, stride),
            cached_input_dims: None,
        }
    }

    /// The pooling geometry.
    pub fn spec(&self) -> &PoolSpec {
        &self.spec
    }

    pub(crate) fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        self.cached_input_dims = Some(x.dims().to_vec());
        Ok(avg_pool2d(x, &self.spec)?)
    }

    pub(crate) fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let dims = self
            .cached_input_dims
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "AvgPool2d" })?;
        Ok(avg_pool2d_backward(grad_out, &self.spec, dims)?)
    }
}

// ---------------------------------------------------------------------------
// Flatten
// ---------------------------------------------------------------------------

/// Collapses `[N, …]` into `[N, prod(…)]` for the transition from
/// convolutional to dense layers.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cached_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }

    pub(crate) fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        let dims = x.dims().to_vec();
        let n = dims[0];
        let rest: usize = dims[1..].iter().product();
        self.cached_dims = Some(dims);
        Ok(x.reshape(&[n, rest])?)
    }

    pub(crate) fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let dims = self
            .cached_dims
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "Flatten" })?;
        Ok(grad_out.reshape(dims)?)
    }
}

// ---------------------------------------------------------------------------
// Residual
// ---------------------------------------------------------------------------

/// Residual block: `y = relu(body(x) + shortcut(x))`.
///
/// `body` is an arbitrary stack of layers; `shortcut` is an optional 1×1
/// projection used when the body changes channel count or stride (as in
/// ResNet downsampling stages). Without a projection the identity shortcut
/// is used.
#[derive(Debug, Clone)]
pub struct Residual {
    body: Vec<crate::Layer>,
    shortcut: Option<Box<Conv2d>>,
    cached_sum_positive: Option<Vec<bool>>,
}

impl Residual {
    /// Creates a residual block with an identity shortcut.
    pub fn new(body: Vec<crate::Layer>) -> Self {
        Residual {
            body,
            shortcut: None,
            cached_sum_positive: None,
        }
    }

    /// Creates a residual block with a 1×1 convolution projection shortcut.
    pub fn with_projection(body: Vec<crate::Layer>, projection: Conv2d) -> Self {
        Residual {
            body,
            shortcut: Some(Box::new(projection)),
            cached_sum_positive: None,
        }
    }

    /// The layers of the residual body.
    pub fn body(&self) -> &[crate::Layer] {
        &self.body
    }

    /// Mutable access to the body layers (used by the mask visitor).
    pub(crate) fn body_mut(&mut self) -> &mut [crate::Layer] {
        &mut self.body
    }

    /// The projection shortcut, if present.
    pub fn shortcut(&self) -> Option<&Conv2d> {
        self.shortcut.as_deref()
    }

    pub(crate) fn shortcut_mut(&mut self) -> Option<&mut Conv2d> {
        self.shortcut.as_deref_mut()
    }

    pub(crate) fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        let mut h = x.clone();
        for layer in &mut self.body {
            h = layer.forward(&h)?;
        }
        let s = match &mut self.shortcut {
            Some(conv) => conv.forward(x)?,
            None => x.clone(),
        };
        let sum = h.add(&s)?;
        self.cached_sum_positive = Some(sum.as_slice().iter().map(|&v| v > 0.0).collect());
        Ok(sum.map(|v| v.max(0.0)))
    }

    pub(crate) fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let pos = self
            .cached_sum_positive
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "Residual" })?;
        let mut g = grad_out.clone();
        for (v, &p) in g.as_mut_slice().iter_mut().zip(pos) {
            if !p {
                *v = 0.0;
            }
        }
        let mut gb = g.clone();
        for layer in self.body.iter_mut().rev() {
            gb = layer.backward(&gb)?;
        }
        let gs = match &mut self.shortcut {
            Some(conv) => conv.backward(&g)?,
            None => g,
        };
        Ok(gb.add(&gs)?)
    }

    pub(crate) fn zero_grad(&mut self) {
        for layer in &mut self.body {
            layer.zero_grad();
        }
        if let Some(conv) = &mut self.shortcut {
            conv.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Layer;

    fn rng() -> TensorRng {
        TensorRng::seed_from(11)
    }

    #[test]
    fn dense_forward_known_values() {
        let mut d = Dense::new(2, 2, &mut rng());
        d.weight = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        d.bias = Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap();
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        let y = d.forward(&x).unwrap();
        // [1*1+1*3+0.5, 1*2+1*4-0.5] = [4.5, 5.5]
        assert_eq!(y.as_slice(), &[4.5, 5.5]);
    }

    #[test]
    fn dense_mask_zeroes_output_and_freezes_unit() {
        let mut d = Dense::new(3, 4, &mut rng());
        d.set_unit_mask(Some(vec![true, false, true, false]))
            .unwrap();
        let x = Tensor::ones(&[2, 3]);
        let y = d.forward(&x).unwrap();
        for i in 0..2 {
            assert_eq!(y.get(&[i, 1]).unwrap(), 0.0);
            assert_eq!(y.get(&[i, 3]).unwrap(), 0.0);
        }
        // Backward: masked units accumulate zero gradient.
        d.backward(&Tensor::ones(&[2, 4])).unwrap();
        for k in 0..3 {
            assert_eq!(d.grad_weight.get(&[k, 1]).unwrap(), 0.0);
            assert_ne!(d.grad_weight.get(&[k, 0]).unwrap(), 0.0);
        }
        assert_eq!(d.grad_bias.get(&[1]).unwrap(), 0.0);
        assert_eq!(d.grad_bias.get(&[0]).unwrap(), 2.0);
    }

    #[test]
    fn dense_mask_validation() {
        let mut d = Dense::new(3, 4, &mut rng());
        assert!(d.set_unit_mask(Some(vec![true; 3])).is_err());
        assert!(d.set_unit_mask(Some(vec![true; 4])).is_ok());
        assert!(d.set_unit_mask(None).is_ok());
        assert!(d.unit_mask().is_none());
    }

    #[test]
    fn dense_backward_before_forward_errors() {
        let mut d = Dense::new(2, 2, &mut rng());
        assert!(matches!(
            d.backward(&Tensor::ones(&[1, 2])),
            Err(NnError::BackwardBeforeForward { .. })
        ));
    }

    #[test]
    fn dense_gradient_matches_finite_difference() {
        let mut d = Dense::new(3, 2, &mut rng());
        let x = helios_tensor::uniform_init(&[4, 3], -1.0, 1.0, &mut rng());
        // Loss = sum of outputs.
        let _ = d.forward(&x).unwrap();
        let gin = d.backward(&Tensor::ones(&[4, 2])).unwrap();
        let eps = 1e-3f32;
        // Weight gradient check.
        for &i in &[0usize, 3, 5] {
            let mut dp = d.clone();
            dp.weight.as_mut_slice()[i] += eps;
            let mut dm = d.clone();
            dm.weight.as_mut_slice()[i] -= eps;
            let num = (dp.forward(&x).unwrap().sum() - dm.forward(&x).unwrap().sum()) / (2.0 * eps);
            let ana = d.grad_weight.as_slice()[i];
            assert!((num - ana).abs() < 1e-2, "weight {i}: {num} vs {ana}");
        }
        // Input gradient check via directional derivative.
        let dir = helios_tensor::uniform_init(&[4, 3], -1.0, 1.0, &mut rng());
        let analytic: f32 = gin
            .as_slice()
            .iter()
            .zip(dir.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let mut xp = x.clone();
        xp.axpy(eps, &dir).unwrap();
        let mut xm = x.clone();
        xm.axpy(-eps, &dir).unwrap();
        let num = (d.clone().forward(&xp).unwrap().sum() - d.clone().forward(&xm).unwrap().sum())
            / (2.0 * eps);
        assert!((num - analytic).abs() < 1e-2);
    }

    #[test]
    fn conv_mask_zeroes_channels() {
        let spec = ConvSpec::new(1, 3, 3, 1, 1);
        let mut c = Conv2d::new(spec, &mut rng());
        c.set_unit_mask(Some(vec![true, false, true])).unwrap();
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let y = c.forward(&x).unwrap();
        for h in 0..4 {
            for w in 0..4 {
                assert_eq!(y.get(&[0, 1, h, w]).unwrap(), 0.0);
            }
        }
        c.backward(&Tensor::ones(&[1, 3, 4, 4])).unwrap();
        // Channel 1's weight row stays untrained.
        for k in 0..9 {
            assert_eq!(c.grad_weight.get(&[1, k]).unwrap(), 0.0);
        }
        assert_eq!(c.grad_bias.get(&[1]).unwrap(), 0.0);
        assert_ne!(c.grad_bias.get(&[0]).unwrap(), 0.0);
    }

    #[test]
    fn relu_masks_negative_gradient() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0, 0.0, 3.0], &[1, 4]).unwrap();
        let y = r.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 3.0]);
        let g = r.backward(&Tensor::ones(&[1, 4])).unwrap();
        assert_eq!(g.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn flatten_round_trips_shape() {
        let mut f = Flatten::new();
        let x = Tensor::ones(&[2, 3, 4, 4]);
        let y = f.forward(&x).unwrap();
        assert_eq!(y.dims(), &[2, 48]);
        let g = f.backward(&y).unwrap();
        assert_eq!(g.dims(), &[2, 3, 4, 4]);
    }

    #[test]
    fn residual_identity_shortcut_doubles_positive_signal() {
        // Body = identity 1x1 conv with weight 1 → y = relu(x + x) = 2x for x > 0.
        let spec = ConvSpec::new(1, 1, 1, 1, 0);
        let mut conv = Conv2d::new(spec, &mut rng());
        conv.weight = Tensor::ones(&[1, 1]);
        conv.bias = Tensor::zeros(&[1]);
        let mut block = Residual::new(vec![Layer::Conv2d(conv)]);
        let x = Tensor::full(&[1, 1, 2, 2], 1.5);
        let y = block.forward(&x).unwrap();
        assert!(y.as_slice().iter().all(|&v| (v - 3.0).abs() < 1e-6));
        // Backward: gradient flows through both paths, so dx = 2·g.
        let g = block.backward(&Tensor::ones(&[1, 1, 2, 2])).unwrap();
        assert!(g.as_slice().iter().all(|&v| (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn residual_projection_changes_channels() {
        let body_spec = ConvSpec::new(2, 4, 3, 1, 1);
        let proj_spec = ConvSpec::new(2, 4, 1, 1, 0);
        let mut r = rng();
        let block = Residual::with_projection(
            vec![Layer::Conv2d(Conv2d::new(body_spec, &mut r))],
            Conv2d::new(proj_spec, &mut r),
        );
        let mut block = block;
        let x = Tensor::ones(&[1, 2, 4, 4]);
        let y = block.forward(&x).unwrap();
        assert_eq!(y.dims(), &[1, 4, 4, 4]);
        let g = block.backward(&Tensor::ones(&[1, 4, 4, 4])).unwrap();
        assert_eq!(g.dims(), &[1, 2, 4, 4]);
    }

    #[test]
    fn maskable_flag_defaults_and_builder() {
        let d = Dense::new(2, 2, &mut rng());
        assert!(d.is_maskable());
        let d = d.non_maskable();
        assert!(!d.is_maskable());
        let c = Conv2d::new(ConvSpec::new(1, 1, 1, 1, 0), &mut rng()).non_maskable();
        assert!(!c.is_maskable());
    }
}
