//! The [`Layer`] enum: closed set of layer kinds with static dispatch.

use crate::layers::{AvgPool2d, Conv2d, Dense, Flatten, MaxPool2d, Relu, Residual, UnitMaskable};
use crate::Result;
use helios_tensor::Tensor;

/// A single network layer.
///
/// A closed enum rather than a trait object: the Helios scheduler needs to
/// walk networks structurally (to enumerate neurons, install masks, and
/// compute cost profiles), which is far simpler over a known set of
/// variants. All heavy state lives inside the variant structs.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Layer {
    /// Fully connected layer.
    Dense(Dense),
    /// 2-D convolution layer.
    Conv2d(Conv2d),
    /// ReLU activation.
    Relu(Relu),
    /// Max pooling.
    MaxPool2d(MaxPool2d),
    /// Average pooling.
    AvgPool2d(AvgPool2d),
    /// Flatten to `[N, features]`.
    Flatten(Flatten),
    /// Residual block with optional projection shortcut.
    Residual(Residual),
}

impl Layer {
    /// Runs the forward pass, caching whatever backward needs.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying tensor operations.
    pub fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        match self {
            Layer::Dense(l) => l.forward(x),
            Layer::Conv2d(l) => l.forward(x),
            Layer::Relu(l) => l.forward(x),
            Layer::MaxPool2d(l) => l.forward(x),
            Layer::AvgPool2d(l) => l.forward(x),
            Layer::Flatten(l) => l.forward(x),
            Layer::Residual(l) => l.forward(x),
        }
    }

    /// Runs the backward pass, accumulating parameter gradients and
    /// returning the gradient with respect to the layer input.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::BackwardBeforeForward`] when no forward
    /// state is cached, and propagates tensor shape errors.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        match self {
            Layer::Dense(l) => l.backward(grad_out),
            Layer::Conv2d(l) => l.backward(grad_out),
            Layer::Relu(l) => l.backward(grad_out),
            Layer::MaxPool2d(l) => l.backward(grad_out),
            Layer::AvgPool2d(l) => l.backward(grad_out),
            Layer::Flatten(l) => l.backward(grad_out),
            Layer::Residual(l) => l.backward(grad_out),
        }
    }

    /// Resets accumulated parameter gradients to zero.
    pub fn zero_grad(&mut self) {
        match self {
            Layer::Dense(l) => l.zero_grad(),
            Layer::Conv2d(l) => l.zero_grad(),
            Layer::Residual(l) => l.zero_grad(),
            _ => {}
        }
    }

    /// Visits every parameter tensor in canonical order (body before
    /// shortcut inside residual blocks).
    pub fn for_each_param(&self, f: &mut dyn FnMut(&Tensor)) {
        match self {
            Layer::Dense(l) => l.for_each_param(f),
            Layer::Conv2d(l) => l.for_each_param(f),
            Layer::Residual(l) => {
                for inner in l.body() {
                    inner.for_each_param(f);
                }
                if let Some(s) = l.shortcut() {
                    s.for_each_param(f);
                }
            }
            _ => {}
        }
    }

    /// Visits every parameter tensor mutably, same order as
    /// [`Layer::for_each_param`].
    pub fn for_each_param_mut(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        match self {
            Layer::Dense(l) => l.for_each_param_mut(f),
            Layer::Conv2d(l) => l.for_each_param_mut(f),
            Layer::Residual(l) => {
                for inner in l.body_mut() {
                    inner.for_each_param_mut(f);
                }
                if let Some(s) = l.shortcut_mut() {
                    s.for_each_param_mut(f);
                }
            }
            _ => {}
        }
    }

    /// Visits `(parameter, gradient)` pairs mutably, same order as
    /// [`Layer::for_each_param`]. This is the optimizer's entry point.
    pub fn for_each_param_grad_mut(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        match self {
            Layer::Dense(l) => l.for_each_param_grad_mut(f),
            Layer::Conv2d(l) => l.for_each_param_grad_mut(f),
            Layer::Residual(l) => {
                for inner in l.body_mut() {
                    inner.for_each_param_grad_mut(f);
                }
                if let Some(s) = l.shortcut_mut() {
                    s.for_each_param_grad_mut(f);
                }
            }
            _ => {}
        }
    }

    /// Threads the upstream guaranteed-zero mask through this layer,
    /// installing input masks on parameterized layers (which enables
    /// their packed execution) and returning the zero-guarantee of this
    /// layer's own output.
    ///
    /// `prev` marks positions of this layer's *input* that are exactly
    /// zero (`false` = guaranteed zero), derived from the producing
    /// layer's unit mask; `None` means no guarantee. The return value
    /// plays the same role for this layer's output:
    ///
    /// - [`Dense`]/[`Conv2d`] consume `prev` as their input mask and
    ///   emit their own unit mask (a masked unit's output is exactly
    ///   zero; unmasked layers emit `None` because bias terms make
    ///   every output potentially nonzero). A dense layer following a
    ///   flatten sees `C·H·W` features for a `C`-channel mask, so each
    ///   channel bit expands over its contiguous `H·W` block (the
    ///   flatten of a row-major `[N, C, H, W]` tensor is
    ///   channel-major).
    /// - ReLU, pooling, and flatten propagate `prev` unchanged: they
    ///   map exact-zero planes to exact-zero planes.
    /// - Residual blocks thread `prev` through the body and into the
    ///   projection shortcut, but emit `None`: the shortcut is never
    ///   masked, so no output channel is guaranteed zero.
    pub(crate) fn thread_input_mask(&mut self, prev: Option<&[bool]>) -> Option<Vec<bool>> {
        match self {
            Layer::Dense(l) => {
                let expanded = prev.and_then(|p| {
                    if p.is_empty() || l.in_features() % p.len() != 0 {
                        return None;
                    }
                    let f = l.in_features() / p.len();
                    Some(
                        p.iter()
                            .flat_map(|&b| std::iter::repeat_n(b, f))
                            .collect::<Vec<bool>>(),
                    )
                });
                l.set_input_mask(expanded);
                l.unit_mask().map(<[bool]>::to_vec)
            }
            Layer::Conv2d(l) => {
                let channels = prev.filter(|p| p.len() == l.spec().in_channels);
                l.set_input_mask(channels.map(<[bool]>::to_vec));
                l.unit_mask().map(<[bool]>::to_vec)
            }
            Layer::Relu(_) | Layer::MaxPool2d(_) | Layer::AvgPool2d(_) | Layer::Flatten(_) => {
                prev.map(<[bool]>::to_vec)
            }
            Layer::Residual(l) => {
                let mut cur = prev.map(<[bool]>::to_vec);
                for inner in l.body_mut() {
                    cur = inner.thread_input_mask(cur.as_deref());
                }
                if let Some(s) = l.shortcut_mut() {
                    let channels = prev.filter(|p| p.len() == s.spec().in_channels);
                    s.set_input_mask(channels.map(<[bool]>::to_vec));
                }
                None
            }
        }
    }

    /// Visits every maskable parameterized layer in canonical order.
    ///
    /// Layers constructed with `non_maskable()` (classifier heads,
    /// projection shortcuts) are skipped.
    pub fn visit_maskable(&mut self, f: &mut dyn FnMut(&mut dyn UnitMaskable)) {
        match self {
            Layer::Dense(l) if l.is_maskable() => {
                f(l);
            }
            Layer::Conv2d(l) if l.is_maskable() => {
                f(l);
            }
            Layer::Residual(l) => {
                for inner in l.body_mut() {
                    inner.visit_maskable(f);
                }
                // Projection shortcuts are never masked: they must keep the
                // residual sum shape-compatible.
            }
            _ => {}
        }
    }
}

impl From<Dense> for Layer {
    fn from(l: Dense) -> Self {
        Layer::Dense(l)
    }
}

impl From<Conv2d> for Layer {
    fn from(l: Conv2d) -> Self {
        Layer::Conv2d(l)
    }
}

impl From<Relu> for Layer {
    fn from(l: Relu) -> Self {
        Layer::Relu(l)
    }
}

impl From<MaxPool2d> for Layer {
    fn from(l: MaxPool2d) -> Self {
        Layer::MaxPool2d(l)
    }
}

impl From<AvgPool2d> for Layer {
    fn from(l: AvgPool2d) -> Self {
        Layer::AvgPool2d(l)
    }
}

impl From<Flatten> for Layer {
    fn from(l: Flatten) -> Self {
        Layer::Flatten(l)
    }
}

impl From<Residual> for Layer {
    fn from(l: Residual) -> Self {
        Layer::Residual(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_tensor::{ConvSpec, TensorRng};

    #[test]
    fn param_visit_order_is_stable() {
        let mut rng = TensorRng::seed_from(0);
        let mut layer = Layer::Residual(Residual::with_projection(
            vec![
                Layer::Conv2d(Conv2d::new(ConvSpec::new(1, 2, 1, 1, 0), &mut rng)),
                Layer::Relu(Relu::new()),
            ],
            Conv2d::new(ConvSpec::new(1, 2, 1, 1, 0), &mut rng),
        ));
        let mut count = 0;
        layer.for_each_param(&mut |_| count += 1);
        // body conv (w, b) + shortcut conv (w, b)
        assert_eq!(count, 4);
        let mut count_mut = 0;
        layer.for_each_param_mut(&mut |_| count_mut += 1);
        assert_eq!(count_mut, 4);
        let mut pairs = 0;
        layer.for_each_param_grad_mut(&mut |_, _| pairs += 1);
        assert_eq!(pairs, 4);
    }

    #[test]
    fn maskable_visit_skips_non_maskable_and_shortcuts() {
        let mut rng = TensorRng::seed_from(0);
        let mut layer = Layer::Residual(Residual::with_projection(
            vec![Layer::Conv2d(Conv2d::new(
                ConvSpec::new(1, 2, 1, 1, 0),
                &mut rng,
            ))],
            Conv2d::new(ConvSpec::new(1, 2, 1, 1, 0), &mut rng),
        ));
        let mut visited = 0;
        layer.visit_maskable(&mut |_| visited += 1);
        assert_eq!(visited, 1, "only the body conv is maskable");

        let mut head = Layer::Dense(Dense::new(4, 2, &mut rng).non_maskable());
        let mut visited = 0;
        head.visit_maskable(&mut |_| visited += 1);
        assert_eq!(visited, 0);
    }
}
