//! Stochastic gradient descent with optional momentum.

use crate::{Network, Result};
use helios_tensor::Tensor;

/// SGD optimizer: `v ← µ·v + g`, `θ ← θ − η·v`.
///
/// Velocity buffers are allocated lazily on the first [`Sgd::step`] and
/// keyed by parameter position, so one optimizer instance must stay paired
/// with one network architecture.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// use helios_nn::{models, Sgd};
/// use helios_tensor::{Tensor, TensorRng};
///
/// # fn main() -> Result<(), Box<dyn Error>> {
/// let mut net = models::lenet(10, &mut TensorRng::seed_from(0));
/// let mut opt = Sgd::with_momentum(0.05, 0.9);
/// // … forward/backward …
/// opt.step(&mut net)?; // applies −lr·velocity to every parameter
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    learning_rate: f32,
    momentum: f32,
    max_grad_norm: Option<f32>,
    velocities: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD with the given learning rate and no momentum.
    pub fn new(learning_rate: f32) -> Self {
        Sgd {
            learning_rate,
            momentum: 0.0,
            max_grad_norm: None,
            velocities: Vec::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(learning_rate: f32, momentum: f32) -> Self {
        Sgd {
            learning_rate,
            momentum,
            max_grad_norm: None,
            velocities: Vec::new(),
        }
    }

    /// Enables global gradient-norm clipping: before each step, if the
    /// L2 norm of all gradients exceeds `max_norm`, they are rescaled to
    /// it. Standard protection against divergence on hard (e.g. heavily
    /// Non-IID) shards.
    ///
    /// # Panics
    ///
    /// Panics if `max_norm` is not positive and finite.
    pub fn with_grad_clip(mut self, max_norm: f32) -> Self {
        assert!(
            max_norm.is_finite() && max_norm > 0.0,
            "clip norm must be positive and finite, got {max_norm}"
        );
        self.max_grad_norm = Some(max_norm);
        self
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    /// Replaces the learning rate (e.g. for decay schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.learning_rate = lr;
    }

    /// Clears momentum state (used when a client receives a fresh global
    /// model and stale velocity would be misleading).
    pub fn reset_state(&mut self) {
        self.velocities.clear();
    }

    /// Applies one update step from the gradients accumulated in `net`.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors (only possible if the network
    /// architecture changed between steps).
    pub fn step(&mut self, net: &mut Network) -> Result<()> {
        crate::profiler::timed(crate::profiler::Hotpath::Step, || self.step_inner(net))
    }

    fn step_inner(&mut self, net: &mut Network) -> Result<()> {
        let grad_scale = match self.max_grad_norm {
            Some(max_norm) => {
                let mut sq = 0.0f64;
                for layer in net.layers_mut() {
                    layer.for_each_param_grad_mut(&mut |_, grad| {
                        sq += grad
                            .as_slice()
                            .iter()
                            .map(|&g| (g as f64).powi(2))
                            .sum::<f64>();
                    });
                }
                let norm = sq.sqrt() as f32;
                if norm.is_finite() && norm > max_norm {
                    max_norm / norm
                } else {
                    1.0
                }
            }
            None => 1.0,
        };
        let lr = self.learning_rate;
        let momentum = self.momentum;
        let velocities = &mut self.velocities;
        let mut idx = 0usize;
        let mut failure = None;
        for layer in net.layers_mut() {
            layer.for_each_param_grad_mut(&mut |param, grad| {
                if failure.is_some() {
                    return;
                }
                if velocities.len() <= idx {
                    velocities.push(Tensor::zeros(grad.dims()));
                }
                let v = &mut velocities[idx];
                if v.dims() != grad.dims() {
                    *v = Tensor::zeros(grad.dims());
                }
                v.scale_inplace(momentum);
                if let Err(e) = v.axpy(grad_scale, grad) {
                    failure = Some(e);
                    return;
                }
                if let Err(e) = param.axpy(-lr, v) {
                    failure = Some(e);
                }
                idx += 1;
            });
        }
        match failure {
            Some(e) => Err(e.into()),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Dense;
    use crate::Layer;
    use helios_tensor::TensorRng;

    fn one_layer_net() -> Network {
        let mut rng = TensorRng::seed_from(0);
        Network::new(
            "probe",
            vec![Layer::Dense(Dense::new(2, 2, &mut rng))],
            &[2],
            2,
        )
    }

    #[test]
    fn step_moves_params_against_gradient() {
        let mut net = one_layer_net();
        let x = Tensor::ones(&[1, 2]);
        let _ = net.forward(&x).unwrap();
        net.backward(&Tensor::ones(&[1, 2])).unwrap();
        let before = net.param_vector();
        let mut opt = Sgd::new(0.1);
        opt.step(&mut net).unwrap();
        let after = net.param_vector();
        // dW = xᵀg = all ones, db = ones → every param decreases by 0.1.
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a - 0.1).abs() < 1e-6, "{b} → {a}");
        }
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut net = one_layer_net();
        let mut opt = Sgd::with_momentum(0.1, 0.5);
        let x = Tensor::ones(&[1, 2]);
        // Two identical steps: second update is lr*(1 + 0.5) = 0.15.
        let _ = net.forward(&x).unwrap();
        net.backward(&Tensor::ones(&[1, 2])).unwrap();
        let p0 = net.param_vector();
        opt.step(&mut net).unwrap();
        let p1 = net.param_vector();
        net.zero_grad();
        let _ = net.forward(&x).unwrap();
        net.backward(&Tensor::ones(&[1, 2])).unwrap();
        opt.step(&mut net).unwrap();
        let p2 = net.param_vector();
        let d1 = p0[0] - p1[0];
        let d2 = p1[0] - p2[0];
        assert!((d1 - 0.1).abs() < 1e-6);
        assert!((d2 - 0.15).abs() < 1e-6);
        // reset_state clears the velocity.
        opt.reset_state();
        net.zero_grad();
        let _ = net.forward(&x).unwrap();
        net.backward(&Tensor::ones(&[1, 2])).unwrap();
        opt.step(&mut net).unwrap();
        let p3 = net.param_vector();
        assert!((p2[0] - p3[0] - 0.1).abs() < 1e-6);
    }

    #[test]
    fn zero_grad_prevents_update() {
        let mut net = one_layer_net();
        let x = Tensor::ones(&[1, 2]);
        let _ = net.forward(&x).unwrap();
        net.backward(&Tensor::ones(&[1, 2])).unwrap();
        net.zero_grad();
        let before = net.param_vector();
        Sgd::new(0.1).step(&mut net).unwrap();
        assert_eq!(before, net.param_vector());
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Sgd::new(0.3);
        assert_eq!(opt.learning_rate(), 0.3);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }
}
