//! Error type for network construction and training.

use helios_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Error returned by fallible network operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NnError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// `backward` was called before `forward` cached its inputs.
    BackwardBeforeForward {
        /// Layer that was asked to run backward.
        layer: &'static str,
    },
    /// A mask's length does not match the layer's unit count.
    MaskLengthMismatch {
        /// Units in the layer.
        units: usize,
        /// Length of the supplied mask.
        mask_len: usize,
    },
    /// A flat parameter vector has the wrong length for the network.
    ParamLengthMismatch {
        /// Parameters in the network.
        expected: usize,
        /// Length of the supplied vector.
        actual: usize,
    },
    /// Label index exceeds the number of classes.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Number of classes the logits cover.
        classes: usize,
    },
    /// Batch sizes of logits and labels disagree.
    BatchMismatch {
        /// Rows of the logit matrix.
        logits: usize,
        /// Number of labels.
        labels: usize,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor operation failed: {e}"),
            NnError::BackwardBeforeForward { layer } => {
                write!(f, "backward called before forward on {layer}")
            }
            NnError::MaskLengthMismatch { units, mask_len } => {
                write!(f, "mask length {mask_len} does not match {units} units")
            }
            NnError::ParamLengthMismatch { expected, actual } => {
                write!(
                    f,
                    "parameter vector length {actual}, network has {expected}"
                )
            }
            NnError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            NnError::BatchMismatch { logits, labels } => {
                write!(f, "{logits} logit rows vs {labels} labels")
            }
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = NnError::from(TensorError::SizeMismatch {
            elements: 1,
            expected: 2,
        });
        assert!(e.to_string().contains("tensor operation failed"));
        assert!(e.source().is_some());
        let e2 = NnError::MaskLengthMismatch {
            units: 4,
            mask_len: 3,
        };
        assert!(e2.source().is_none());
        assert!(!e2.to_string().is_empty());
    }
}
