//! The model zoo: scaled-down but structurally faithful versions of the
//! three CNN families the Helios paper evaluates (§VII.A).
//!
//! | Paper model | Here | Input | Notes |
//! |---|---|---|---|
//! | LeNet on MNIST | [`lenet`] | `[1, 16, 16]` | 2 conv + 2 fc |
//! | AlexNet on CIFAR-10 | [`alexnet`] | `[3, 16, 16]` | 3 conv + 2 fc |
//! | ResNet-18 on CIFAR-100 | [`resnet18`] | `[3, 16, 16]` | stem + 4 residual blocks |
//!
//! The scaling preserves what the experiments depend on: the *family*
//! differences (shallow vs deep vs residual), distinct per-layer neuron
//! counts for the volume planner, and enough capacity to separate the
//! synthetic datasets. Absolute parameter counts are reduced so a full
//! figure sweep runs on one machine.

use crate::layer::Layer;
use crate::layers::{AvgPool2d, Conv2d, Dense, Flatten, MaxPool2d, Relu, Residual};
use crate::Network;
use helios_tensor::{ConvSpec, TensorRng};
use serde::{Deserialize, Serialize};

/// Selector for the three experiment architectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// LeNet-style: 2 conv + 2 fc on `[1, 16, 16]` inputs.
    LeNet,
    /// AlexNet-style: 3 conv + 2 fc on `[3, 16, 16]` inputs.
    AlexNet,
    /// ResNet-18-style: residual stages on `[3, 16, 16]` inputs.
    ResNet18,
}

impl ModelKind {
    /// Builds the selected architecture.
    pub fn build(self, num_classes: usize, rng: &mut TensorRng) -> Network {
        match self {
            ModelKind::LeNet => lenet(num_classes, rng),
            ModelKind::AlexNet => alexnet(num_classes, rng),
            ModelKind::ResNet18 => resnet18(num_classes, rng),
        }
    }

    /// Per-sample input dimensions of the architecture.
    pub fn input_dims(self) -> [usize; 3] {
        match self {
            ModelKind::LeNet => [1, 16, 16],
            ModelKind::AlexNet | ModelKind::ResNet18 => [3, 16, 16],
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ModelKind::LeNet => "lenet",
            ModelKind::AlexNet => "alexnet",
            ModelKind::ResNet18 => "resnet18",
        };
        f.write_str(s)
    }
}

/// LeNet-style network: `conv(1→8) → pool → conv(8→16) → pool →
/// fc(256→64) → fc(64→classes)`.
///
/// # Example
///
/// ```
/// use helios_nn::models;
/// use helios_tensor::TensorRng;
///
/// let net = models::lenet(10, &mut TensorRng::seed_from(0));
/// assert_eq!(net.num_classes(), 10);
/// assert_eq!(net.input_dims(), &[1, 16, 16]);
/// ```
pub fn lenet(num_classes: usize, rng: &mut TensorRng) -> Network {
    Network::new(
        "lenet",
        vec![
            Layer::Conv2d(Conv2d::new(ConvSpec::new(1, 8, 3, 1, 1), rng)),
            Layer::Relu(Relu::new()),
            Layer::MaxPool2d(MaxPool2d::new(2, 2)),
            Layer::Conv2d(Conv2d::new(ConvSpec::new(8, 16, 3, 1, 1), rng)),
            Layer::Relu(Relu::new()),
            Layer::MaxPool2d(MaxPool2d::new(2, 2)),
            Layer::Flatten(Flatten::new()),
            Layer::Dense(Dense::new(16 * 4 * 4, 64, rng)),
            Layer::Relu(Relu::new()),
            Layer::Dense(Dense::new(64, num_classes, rng).non_maskable()),
        ],
        &[1, 16, 16],
        num_classes,
    )
}

/// AlexNet-style network: three conv stages and a wide classifier,
/// mirroring AlexNet's deeper-conv/denser-head profile at reduced scale.
pub fn alexnet(num_classes: usize, rng: &mut TensorRng) -> Network {
    Network::new(
        "alexnet",
        vec![
            Layer::Conv2d(Conv2d::new(ConvSpec::new(3, 16, 3, 1, 1), rng)),
            Layer::Relu(Relu::new()),
            Layer::MaxPool2d(MaxPool2d::new(2, 2)),
            Layer::Conv2d(Conv2d::new(ConvSpec::new(16, 32, 3, 1, 1), rng)),
            Layer::Relu(Relu::new()),
            Layer::Conv2d(Conv2d::new(ConvSpec::new(32, 32, 3, 1, 1), rng)),
            Layer::Relu(Relu::new()),
            Layer::MaxPool2d(MaxPool2d::new(2, 2)),
            Layer::Flatten(Flatten::new()),
            Layer::Dense(Dense::new(32 * 4 * 4, 128, rng)),
            Layer::Relu(Relu::new()),
            Layer::Dense(Dense::new(128, num_classes, rng).non_maskable()),
        ],
        &[3, 16, 16],
        num_classes,
    )
}

fn basic_block(channels: usize, rng: &mut TensorRng) -> Residual {
    Residual::new(vec![
        Layer::Conv2d(Conv2d::new(ConvSpec::new(channels, channels, 3, 1, 1), rng)),
        Layer::Relu(Relu::new()),
        Layer::Conv2d(Conv2d::new(ConvSpec::new(channels, channels, 3, 1, 1), rng)),
    ])
}

fn downsample_block(in_ch: usize, out_ch: usize, rng: &mut TensorRng) -> Residual {
    Residual::with_projection(
        vec![
            Layer::Conv2d(Conv2d::new(ConvSpec::new(in_ch, out_ch, 3, 2, 1), rng)),
            Layer::Relu(Relu::new()),
            Layer::Conv2d(Conv2d::new(ConvSpec::new(out_ch, out_ch, 3, 1, 1), rng)),
        ],
        Conv2d::new(ConvSpec::new(in_ch, out_ch, 1, 2, 0), rng).non_maskable(),
    )
}

/// ResNet-18-style network: stem convolution, two identity blocks at 16
/// channels, a stride-2 downsampling block to 32 channels, one identity
/// block at 32 channels, global average pooling, and a linear head.
pub fn resnet18(num_classes: usize, rng: &mut TensorRng) -> Network {
    Network::new(
        "resnet18",
        vec![
            Layer::Conv2d(Conv2d::new(ConvSpec::new(3, 16, 3, 1, 1), rng)),
            Layer::Relu(Relu::new()),
            Layer::Residual(basic_block(16, rng)),
            Layer::Residual(basic_block(16, rng)),
            Layer::Residual(downsample_block(16, 32, rng)),
            Layer::Residual(basic_block(32, rng)),
            Layer::AvgPool2d(AvgPool2d::new(8, 8)),
            Layer::Flatten(Flatten::new()),
            Layer::Dense(Dense::new(32, num_classes, rng).non_maskable()),
        ],
        &[3, 16, 16],
        num_classes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_tensor::Tensor;

    fn rng() -> TensorRng {
        TensorRng::seed_from(42)
    }

    #[test]
    fn lenet_shapes() {
        let mut net = lenet(10, &mut rng());
        let y = net.forward(&Tensor::ones(&[2, 1, 16, 16])).unwrap();
        assert_eq!(y.dims(), &[2, 10]);
        let units = net.maskable_units();
        assert_eq!(units.0, vec![8, 16, 64]);
    }

    #[test]
    fn alexnet_shapes() {
        let mut net = alexnet(10, &mut rng());
        let y = net.forward(&Tensor::ones(&[2, 3, 16, 16])).unwrap();
        assert_eq!(y.dims(), &[2, 10]);
        let units = net.maskable_units();
        assert_eq!(units.0, vec![16, 32, 32, 128]);
    }

    #[test]
    fn resnet18_shapes_and_backward() {
        let mut net = resnet18(100, &mut rng());
        let y = net.forward(&Tensor::ones(&[2, 3, 16, 16])).unwrap();
        assert_eq!(y.dims(), &[2, 100]);
        // Backward must flow through residual blocks without error.
        net.backward(&Tensor::ones(&[2, 100])).unwrap();
        // 1 stem + 2*4 body convs are maskable; projection + head are not.
        let units = net.maskable_units();
        assert_eq!(units.0, vec![16, 16, 16, 16, 16, 32, 32, 32, 32]);
    }

    #[test]
    fn model_kind_builds_matching_network() {
        for kind in [ModelKind::LeNet, ModelKind::AlexNet, ModelKind::ResNet18] {
            let net = kind.build(10, &mut rng());
            assert_eq!(net.name(), kind.to_string());
            let dims = kind.input_dims();
            assert_eq!(net.input_dims(), &dims);
        }
    }

    #[test]
    fn architectures_have_distinct_sizes() {
        let l = lenet(10, &mut rng()).param_len();
        let a = alexnet(10, &mut rng()).param_len();
        let r = resnet18(100, &mut rng()).param_len();
        assert!(l < a, "lenet {l} should be smaller than alexnet {a}");
        assert!(r > 10_000, "resnet should be a substantial model, got {r}");
    }

    #[test]
    fn masked_lenet_still_trains_end_to_end() {
        use crate::{CrossEntropyLoss, ModelMask, Sgd};
        let mut net = lenet(4, &mut rng());
        let units = net.maskable_units();
        let mut mask = ModelMask::all_active(&units);
        // Drop half of each hidden layer.
        for (i, &n) in units.0.iter().enumerate() {
            mask.set_layer(i, Some((0..n).map(|j| j % 2 == 0).collect()));
        }
        net.set_masks(&mask).unwrap();
        let x = helios_tensor::uniform_init(&[8, 1, 16, 16], 0.0, 1.0, &mut rng());
        let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
        let loss = CrossEntropyLoss::new();
        let mut opt = Sgd::new(0.1);
        let logits = net.forward(&x).unwrap();
        let (l0, grad) = loss.forward_backward(&logits, &labels).unwrap();
        net.backward(&grad).unwrap();
        opt.step(&mut net).unwrap();
        net.zero_grad();
        let logits = net.forward(&x).unwrap();
        let (l1, _) = loss.forward_backward(&logits, &labels).unwrap();
        assert!(l1 < l0, "masked training should reduce loss: {l0} → {l1}");
    }
}
