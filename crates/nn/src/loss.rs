//! Softmax cross-entropy loss.

use crate::{NnError, Result};
use helios_tensor::Tensor;

/// Softmax cross-entropy over integer class labels.
///
/// The combined forward/backward entry point returns both the mean loss
/// and the gradient with respect to the logits, because the softmax
/// probabilities are shared between the two computations.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// use helios_nn::CrossEntropyLoss;
/// use helios_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn Error>> {
/// let loss = CrossEntropyLoss::new();
/// // Perfectly confident, correct logits → near-zero loss.
/// let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0, 10.0], &[2, 2])?;
/// let (value, grad) = loss.forward_backward(&logits, &[0, 1])?;
/// assert!(value < 1e-3);
/// assert_eq!(grad.dims(), &[2, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrossEntropyLoss;

impl CrossEntropyLoss {
    /// Creates the loss function.
    pub fn new() -> Self {
        CrossEntropyLoss
    }

    /// Computes the mean cross-entropy and its gradient w.r.t. the logits.
    ///
    /// `logits` is `[N, classes]`; `labels` holds `N` class indices. The
    /// gradient is `(softmax − one_hot) / N`, ready to feed to
    /// [`crate::Network::backward`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BatchMismatch`] when row and label counts differ
    /// and [`NnError::LabelOutOfRange`] for an invalid class index.
    pub fn forward_backward(&self, logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor)> {
        let n = logits.dims()[0];
        let classes = logits.dims()[1];
        if labels.len() != n {
            return Err(NnError::BatchMismatch {
                logits: n,
                labels: labels.len(),
            });
        }
        let probs = logits.softmax_rows()?;
        let mut grad = probs.clone();
        let g = grad.as_mut_slice();
        let p = probs.as_slice();
        let mut total = 0.0f32;
        for (i, &label) in labels.iter().enumerate() {
            if label >= classes {
                return Err(NnError::LabelOutOfRange { label, classes });
            }
            let pi = p[i * classes + label].max(1e-12);
            total -= pi.ln();
            g[i * classes + label] -= 1.0;
        }
        let scale = 1.0 / n.max(1) as f32;
        for v in g.iter_mut() {
            *v *= scale;
        }
        Ok((total * scale, grad))
    }

    /// Mean cross-entropy only (no gradient), for evaluation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CrossEntropyLoss::forward_backward`].
    pub fn forward(&self, logits: &Tensor, labels: &[usize]) -> Result<f32> {
        self.forward_backward(logits, labels).map(|(l, _)| l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_classes() {
        let loss = CrossEntropyLoss::new();
        let logits = Tensor::zeros(&[3, 4]);
        let (v, _) = loss.forward_backward(&logits, &[0, 1, 2]).unwrap();
        assert!((v - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let loss = CrossEntropyLoss::new();
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let (_, grad) = loss.forward_backward(&logits, &[2, 0]).unwrap();
        for i in 0..2 {
            let row_sum: f32 = (0..3).map(|j| grad.get(&[i, j]).unwrap()).sum();
            assert!(row_sum.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let loss = CrossEntropyLoss::new();
        let logits = Tensor::from_vec(vec![0.5, -0.3, 0.8, 0.1, 0.9, -0.7], &[2, 3]).unwrap();
        let labels = [1usize, 2];
        let (_, grad) = loss.forward_backward(&logits, &labels).unwrap();
        let eps = 1e-3f32;
        for i in 0..6 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= eps;
            let num = (loss.forward(&lp, &labels).unwrap() - loss.forward(&lm, &labels).unwrap())
                / (2.0 * eps);
            let ana = grad.as_slice()[i];
            assert!((num - ana).abs() < 1e-3, "logit {i}: {num} vs {ana}");
        }
    }

    #[test]
    fn rejects_bad_labels_and_batch() {
        let loss = CrossEntropyLoss::new();
        let logits = Tensor::zeros(&[2, 3]);
        assert!(matches!(
            loss.forward(&logits, &[0]),
            Err(NnError::BatchMismatch { .. })
        ));
        assert!(matches!(
            loss.forward(&logits, &[0, 3]),
            Err(NnError::LabelOutOfRange { .. })
        ));
    }

    #[test]
    fn loss_decreases_with_confidence_in_true_class() {
        let loss = CrossEntropyLoss::new();
        let weak = Tensor::from_vec(vec![0.1, 0.0], &[1, 2]).unwrap();
        let strong = Tensor::from_vec(vec![5.0, 0.0], &[1, 2]).unwrap();
        assert!(loss.forward(&strong, &[0]).unwrap() < loss.forward(&weak, &[0]).unwrap());
    }
}
