//! Process-wide switch between packed and zeroing mask execution.
//!
//! Masked [`Dense`](crate::Dense) / [`Conv2d`](crate::Conv2d) layers have
//! two bitwise-identical execution strategies: the legacy *zeroing* path
//! (run full-width kernels, zero the masked outputs/gradients) and the
//! *packed* path (gather active units into compact tensors, run the
//! kernels on the packed shapes, scatter back). Packed execution is the
//! default — it is what makes a keep-ratio sub-model proportionally
//! cheaper — but tests and benchmarks flip this switch to prove the two
//! paths agree bit for bit and to measure the flop gap between them.
//!
//! The flag is a global atomic rather than a thread-local because the
//! tensor kernels fan work out to scoped worker threads and FL clients
//! may train on worker threads of their own; every thread must see one
//! consistent setting. A global toggle cannot change any numeric result
//! (both paths produce identical bits) — it only changes how much work
//! the kernel flop counters observe — so the usual race concerns do not
//! apply. Tests that assert on flop counts still serialize themselves
//! around the flag with a lock.

use std::sync::atomic::{AtomicBool, Ordering};

static PACKED_EXECUTION: AtomicBool = AtomicBool::new(true);

/// Enables or disables packed execution of masked layers process-wide.
///
/// Disabling falls back to the legacy zeroing path. Results are bitwise
/// identical either way; only the executed (and counted) kernel work
/// changes.
pub fn set_packed_execution(enabled: bool) {
    PACKED_EXECUTION.store(enabled, Ordering::SeqCst);
}

/// Whether masked layers currently use the packed execution path.
pub fn packed_execution_enabled() -> bool {
    PACKED_EXECUTION.load(Ordering::SeqCst)
}
