//! Neural-network layers, explicit backpropagation, and neuron-level
//! masking for the Helios federated-learning reproduction.
//!
//! The crate provides everything a simulated edge device needs to train a
//! CNN locally:
//!
//! - a layer zoo ([`Dense`], [`Conv2d`], [`Relu`], [`MaxPool2d`],
//!   [`AvgPool2d`], [`Flatten`], [`Residual`]) composed into a [`Network`];
//! - explicit forward/backward passes (no autodiff tape — each layer caches
//!   what its backward pass needs);
//! - **neuron masking**: every parameterized layer treats its output units
//!   (dense neurons / conv channels) as the paper's "minimum model parameter
//!   structure" (§V.A) and can exclude any subset from a training cycle,
//!   which is the mechanism behind Helios soft-training;
//! - a flat parameter-vector view with a per-neuron index
//!   ([`NeuronLayout`]) so federated aggregation can operate at neuron
//!   granularity;
//! - an analytic per-layer cost profile ([`LayerCost`], [`NetworkCost`])
//!   feeding the `helios-device` time model;
//! - the scaled model zoo used by every experiment:
//!   [`models::lenet`], [`models::alexnet`], [`models::resnet18`].
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! use helios_nn::{models, CrossEntropyLoss, Sgd};
//! use helios_tensor::{Tensor, TensorRng};
//!
//! # fn main() -> Result<(), Box<dyn Error>> {
//! let mut rng = TensorRng::seed_from(0);
//! let mut net = models::lenet(10, &mut rng);
//! let x = Tensor::zeros(&[4, 1, 16, 16]); // batch of 4 blank images
//! let logits = net.forward(&x)?;
//! assert_eq!(logits.dims(), &[4, 10]);
//! let loss = CrossEntropyLoss::new();
//! let (value, grad) = loss.forward_backward(&logits, &[0, 1, 2, 3])?;
//! net.backward(&grad)?;
//! Sgd::new(0.1).step(&mut net)?;
//! assert!(value.is_finite());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
mod cost;
mod error;
mod exec;
mod layer;
mod layers;
mod loss;
pub mod models;
mod network;
mod optim;
pub mod profiler;

pub use cost::{LayerCost, NetworkCost};
pub use error::NnError;
pub use exec::{packed_execution_enabled, set_packed_execution};
pub use layer::Layer;
pub use layers::{AvgPool2d, Conv2d, Dense, Flatten, MaxPool2d, Relu, Residual, UnitMaskable};
pub use loss::CrossEntropyLoss;
pub use network::{MaskableUnits, ModelMask, Network, NeuronId, NeuronLayout, ParamGroup};
pub use optim::Sgd;
pub use profiler::{nn_timings, HostMetricsScope, NnTimings};

#[doc(no_inline)]
pub use helios_tensor::{ParallelismConfig, ParallelismGuard};

/// Crate-wide result alias carrying an [`NnError`].
pub type Result<T> = std::result::Result<T, NnError>;
