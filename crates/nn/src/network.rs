//! The [`Network`] container, flat parameter views, and the neuron index
//! ([`NeuronLayout`]) used by federated aggregation.

use crate::layer::Layer;
use crate::{NnError, Result};
use helios_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Number of output units of each maskable layer of a network, in
/// canonical walk order.
///
/// This is the paper's per-layer `n_i` (§IV.C): the quantity the volume
/// planner multiplies by the keep ratio `P_i` to size a straggler's
/// sub-model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaskableUnits(pub Vec<usize>);

impl MaskableUnits {
    /// Number of maskable layers.
    pub fn num_layers(&self) -> usize {
        self.0.len()
    }

    /// Total maskable units across all layers (the paper's `m` restricted
    /// to maskable structure).
    pub fn total(&self) -> usize {
        self.0.iter().sum()
    }
}

/// Per-layer unit masks describing which neurons participate in a training
/// cycle.
///
/// Index `i` addresses the `i`-th maskable layer in canonical walk order;
/// `None` means "all units active". This is the object the Helios
/// soft-training scheduler produces each cycle and the aggregation layer
/// consumes to know which parameters a device actually trained.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelMask {
    masks: Vec<Option<Vec<bool>>>,
}

impl ModelMask {
    /// A mask with every unit of every layer active.
    pub fn all_active(units: &MaskableUnits) -> Self {
        ModelMask {
            masks: vec![None; units.num_layers()],
        }
    }

    /// Builds a mask from explicit per-layer activity vectors.
    pub fn from_layers(masks: Vec<Option<Vec<bool>>>) -> Self {
        ModelMask { masks }
    }

    /// Number of layers this mask covers.
    pub fn num_layers(&self) -> usize {
        self.masks.len()
    }

    /// The mask of layer `i` (`None` = all active).
    pub fn layer(&self, i: usize) -> Option<&[bool]> {
        self.masks.get(i).and_then(|m| m.as_deref())
    }

    /// Replaces the mask of layer `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_layer(&mut self, i: usize, mask: Option<Vec<bool>>) {
        self.masks[i] = mask;
    }

    /// Whether unit `unit` of maskable layer `layer` is active.
    pub fn is_active(&self, layer: usize, unit: usize) -> bool {
        match self.layer(layer) {
            Some(m) => m.get(unit).copied().unwrap_or(false),
            None => true,
        }
    }

    /// Number of active units per layer.
    pub fn active_counts(&self, units: &MaskableUnits) -> Vec<usize> {
        units
            .0
            .iter()
            .enumerate()
            .map(|(i, &n)| match self.layer(i) {
                Some(m) => m.iter().filter(|&&b| b).count(),
                None => n,
            })
            .collect()
    }

    /// Overall fraction of active units: the paper's `r_n`, used for the
    /// heterogeneous aggregation weight `α_n = r_n / Σ r_n` (Eq 10).
    pub fn keep_ratio(&self, units: &MaskableUnits) -> f64 {
        let total = units.total();
        if total == 0 {
            return 1.0;
        }
        let active: usize = self.active_counts(units).iter().sum();
        active as f64 / total as f64
    }
}

/// Identifies one neuron: unit `unit` of parameter group `group`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NeuronId {
    /// Index into [`NeuronLayout`] groups (parameterized layers in
    /// canonical order).
    pub group: usize,
    /// Output unit within the group.
    pub unit: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum GroupKind {
    Dense {
        in_features: usize,
        out_features: usize,
    },
    Conv {
        out_channels: usize,
        patch_len: usize,
    },
}

/// Metadata of one parameterized layer inside the flat parameter vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamGroup {
    kind: GroupKind,
    /// Position among *maskable* layers, when the layer is maskable.
    maskable_id: Option<usize>,
    weight_offset: usize,
    bias_offset: usize,
}

impl ParamGroup {
    /// Number of output units (neurons / channels).
    pub fn units(&self) -> usize {
        match self.kind {
            GroupKind::Dense { out_features, .. } => out_features,
            GroupKind::Conv { out_channels, .. } => out_channels,
        }
    }

    /// Index among maskable layers, or `None` for head/projection layers.
    pub fn maskable_id(&self) -> Option<usize> {
        self.maskable_id
    }

    /// Number of parameters owned by each unit (weights + bias).
    pub fn params_per_unit(&self) -> usize {
        match self.kind {
            GroupKind::Dense { in_features, .. } => in_features + 1,
            GroupKind::Conv { patch_len, .. } => patch_len + 1,
        }
    }
}

/// Index from neurons to their positions in the flat parameter vector.
///
/// Built once per architecture by [`Network::layout`]; the federated
/// server uses it to compute per-neuron contribution values (Eq 1), build
/// parameter-level upload masks, and run the skip-cycle regulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeuronLayout {
    groups: Vec<ParamGroup>,
    total_params: usize,
}

impl NeuronLayout {
    /// The parameter groups in canonical order.
    pub fn groups(&self) -> &[ParamGroup] {
        &self.groups
    }

    /// Total length of the flat parameter vector.
    pub fn total_params(&self) -> usize {
        self.total_params
    }

    /// Total neurons across all parameter groups (the paper's `m`).
    pub fn total_neurons(&self) -> usize {
        self.groups.iter().map(|g| g.units()).sum()
    }

    /// Iterates all neuron identifiers in canonical order.
    pub fn neuron_ids(&self) -> impl Iterator<Item = NeuronId> + '_ {
        self.groups
            .iter()
            .enumerate()
            .flat_map(|(gi, g)| (0..g.units()).map(move |u| NeuronId { group: gi, unit: u }))
    }

    /// Flat parameter indices owned by one neuron (its weight fan-in plus
    /// its bias element).
    ///
    /// # Panics
    ///
    /// Panics if the neuron id is out of range.
    pub fn neuron_param_indices(&self, id: NeuronId) -> Vec<usize> {
        let g = &self.groups[id.group];
        assert!(id.unit < g.units(), "unit {} out of range", id.unit);
        match g.kind {
            GroupKind::Dense {
                in_features,
                out_features,
            } => {
                let mut v = Vec::with_capacity(in_features + 1);
                for k in 0..in_features {
                    v.push(g.weight_offset + k * out_features + id.unit);
                }
                v.push(g.bias_offset + id.unit);
                v
            }
            GroupKind::Conv { patch_len, .. } => {
                let start = g.weight_offset + id.unit * patch_len;
                let mut v: Vec<usize> = (start..start + patch_len).collect();
                v.push(g.bias_offset + id.unit);
                v
            }
        }
    }

    /// L1 norm of the parameter change of one neuron between two flat
    /// parameter vectors — the paper's contribution metric `U^{ij}` (Eq 1).
    ///
    /// # Panics
    ///
    /// Panics if either slice is shorter than [`NeuronLayout::total_params`].
    pub fn neuron_delta_l1(&self, id: NeuronId, prev: &[f32], curr: &[f32]) -> f32 {
        self.neuron_param_indices(id)
            .into_iter()
            .map(|i| (curr[i] - prev[i]).abs())
            .sum()
    }

    /// Expands a per-layer [`ModelMask`] into a parameter-level activity
    /// mask over the flat vector.
    ///
    /// Parameters of non-maskable groups are always active; parameters of a
    /// masked-out unit are inactive.
    pub fn param_mask(&self, mask: &ModelMask) -> Vec<bool> {
        let mut out = vec![true; self.total_params];
        for (gi, g) in self.groups.iter().enumerate() {
            let Some(mid) = g.maskable_id else { continue };
            let Some(layer_mask) = mask.layer(mid) else {
                continue;
            };
            for (unit, &keep) in layer_mask.iter().enumerate() {
                if !keep {
                    for idx in self.neuron_param_indices(NeuronId { group: gi, unit }) {
                        out[idx] = false;
                    }
                }
            }
        }
        out
    }
}

/// A feed-forward network: an ordered stack of [`Layer`]s plus the
/// geometry metadata the rest of the workspace needs.
///
/// See the crate-level example for an end-to-end training step.
#[derive(Debug, Clone)]
pub struct Network {
    layers: Vec<Layer>,
    input_dims: Vec<usize>,
    num_classes: usize,
    name: String,
}

impl Network {
    /// Assembles a network.
    ///
    /// `input_dims` are per-sample dimensions (e.g. `[1, 16, 16]` for a
    /// one-channel 16×16 image); `num_classes` is the classifier width.
    pub fn new(
        name: impl Into<String>,
        layers: Vec<Layer>,
        input_dims: &[usize],
        num_classes: usize,
    ) -> Self {
        Network {
            layers,
            input_dims: input_dims.to_vec(),
            num_classes,
            name: name.into(),
        }
    }

    /// Human-readable architecture name (e.g. `"lenet"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Per-sample input dimensions.
    pub fn input_dims(&self) -> &[usize] {
        &self.input_dims
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The layer stack.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layer stack (used by the cost walker).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Forward pass over a batch whose first dimension is the batch size.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        crate::profiler::timed(crate::profiler::Hotpath::Forward, || {
            let mut h = x.clone();
            for layer in &mut self.layers {
                h = layer.forward(&h)?;
            }
            Ok(h)
        })
    }

    /// Backward pass from the loss gradient at the logits.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BackwardBeforeForward`] when called without a
    /// preceding [`Network::forward`].
    pub fn backward(&mut self, grad_logits: &Tensor) -> Result<()> {
        crate::profiler::timed(crate::profiler::Hotpath::Backward, || {
            let mut g = grad_logits.clone();
            for layer in self.layers.iter_mut().rev() {
                g = layer.backward(&g)?;
            }
            Ok(())
        })
    }

    /// Resets all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Total number of parameters.
    pub fn param_len(&self) -> usize {
        let mut n = 0;
        for layer in &self.layers {
            layer.for_each_param(&mut |t| n += t.len());
        }
        n
    }

    /// Copies all parameters into one flat vector (canonical order).
    pub fn param_vector(&self) -> Vec<f32> {
        let mut v = Vec::with_capacity(self.param_len());
        for layer in &self.layers {
            layer.for_each_param(&mut |t| v.extend_from_slice(t.as_slice()));
        }
        v
    }

    /// Overwrites all parameters from a flat vector.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ParamLengthMismatch`] when the vector length is
    /// wrong.
    pub fn set_param_vector(&mut self, params: &[f32]) -> Result<()> {
        if params.len() != self.param_len() {
            return Err(NnError::ParamLengthMismatch {
                expected: self.param_len(),
                actual: params.len(),
            });
        }
        let mut offset = 0;
        for layer in &mut self.layers {
            layer.for_each_param_mut(&mut |t| {
                let n = t.len();
                t.as_mut_slice()
                    .copy_from_slice(&params[offset..offset + n]);
                offset += n;
            });
        }
        Ok(())
    }

    /// Builds the neuron index for this architecture.
    pub fn layout(&self) -> NeuronLayout {
        let mut groups = Vec::new();
        let mut offset = 0usize;
        let mut maskable_counter = 0usize;
        for layer in &self.layers {
            collect_groups(layer, &mut offset, &mut maskable_counter, &mut groups);
        }
        NeuronLayout {
            groups,
            total_params: offset,
        }
    }

    /// Output unit counts of the maskable layers, in canonical order.
    pub fn maskable_units(&mut self) -> MaskableUnits {
        let mut units = Vec::new();
        for layer in &mut self.layers {
            layer.visit_maskable(&mut |m| units.push(m.units()));
        }
        MaskableUnits(units)
    }

    /// Installs per-layer unit masks.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MaskLengthMismatch`] when any layer mask has the
    /// wrong length. Extra mask entries beyond the network's maskable
    /// layers are ignored; missing entries leave layers unmasked.
    pub fn set_masks(&mut self, mask: &ModelMask) -> Result<()> {
        let mut idx = 0usize;
        let mut result = Ok(());
        for layer in &mut self.layers {
            layer.visit_maskable(&mut |m| {
                if result.is_err() {
                    return;
                }
                let layer_mask = mask.layer(idx).map(|s| s.to_vec());
                if let Err(e) = m.set_unit_mask(layer_mask) {
                    result = Err(e);
                }
                idx += 1;
            });
        }
        self.refresh_input_masks();
        result
    }

    /// Removes all unit masks (every neuron active).
    pub fn clear_masks(&mut self) {
        for layer in &mut self.layers {
            layer.visit_maskable(&mut |m| {
                let _ = m.set_unit_mask(None);
            });
        }
        self.refresh_input_masks();
    }

    /// Re-derives every layer's input mask from the unit masks of the
    /// layers upstream of it. A unit mask guarantees the masked units'
    /// outputs are exactly zero; threading that guarantee forward tells
    /// each consuming layer which of its *inputs* are zero, which is
    /// what lets packed execution drop the corresponding input
    /// rows/channels without changing a single output bit. The network
    /// input itself carries no guarantee.
    fn refresh_input_masks(&mut self) {
        let mut prev: Option<Vec<bool>> = None;
        for layer in &mut self.layers {
            prev = layer.thread_input_mask(prev.as_deref());
        }
    }

    /// Classification accuracy on a labelled batch.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BatchMismatch`] when `labels.len()` differs from
    /// the batch size, and propagates forward-pass errors.
    pub fn accuracy(&mut self, x: &Tensor, labels: &[usize]) -> Result<f64> {
        let logits = self.forward(x)?;
        if logits.dims()[0] != labels.len() {
            return Err(NnError::BatchMismatch {
                logits: logits.dims()[0],
                labels: labels.len(),
            });
        }
        let pred = logits.argmax_rows()?;
        let correct = pred.iter().zip(labels).filter(|(p, l)| p == l).count();
        Ok(correct as f64 / labels.len().max(1) as f64)
    }
}

fn collect_groups(
    layer: &Layer,
    offset: &mut usize,
    maskable_counter: &mut usize,
    out: &mut Vec<ParamGroup>,
) {
    match layer {
        Layer::Dense(d) => {
            let weight_offset = *offset;
            *offset += d.in_features() * d.out_features();
            let bias_offset = *offset;
            *offset += d.out_features();
            let maskable_id = if d.is_maskable() {
                let id = *maskable_counter;
                *maskable_counter += 1;
                Some(id)
            } else {
                None
            };
            out.push(ParamGroup {
                kind: GroupKind::Dense {
                    in_features: d.in_features(),
                    out_features: d.out_features(),
                },
                maskable_id,
                weight_offset,
                bias_offset,
            });
        }
        Layer::Conv2d(c) => {
            let spec = *c.spec();
            let wd = spec.weight_dims();
            let weight_offset = *offset;
            *offset += wd[0] * wd[1];
            let bias_offset = *offset;
            *offset += spec.out_channels;
            let maskable_id = if c.is_maskable() {
                let id = *maskable_counter;
                *maskable_counter += 1;
                Some(id)
            } else {
                None
            };
            out.push(ParamGroup {
                kind: GroupKind::Conv {
                    out_channels: spec.out_channels,
                    patch_len: wd[1],
                },
                maskable_id,
                weight_offset,
                bias_offset,
            });
        }
        Layer::Residual(r) => {
            for inner in r.body() {
                collect_groups(inner, offset, maskable_counter, out);
            }
            if let Some(s) = r.shortcut() {
                // Projection shortcuts contribute parameters but are never
                // maskable, mirroring `visit_maskable`.
                let spec = *s.spec();
                let wd = spec.weight_dims();
                let weight_offset = *offset;
                *offset += wd[0] * wd[1];
                let bias_offset = *offset;
                *offset += spec.out_channels;
                out.push(ParamGroup {
                    kind: GroupKind::Conv {
                        out_channels: spec.out_channels,
                        patch_len: wd[1],
                    },
                    maskable_id: None,
                    weight_offset,
                    bias_offset,
                });
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Dense, Flatten, Relu, UnitMaskable};
    use helios_tensor::{ConvSpec, TensorRng};

    fn tiny_net() -> Network {
        let mut rng = TensorRng::seed_from(1);
        Network::new(
            "tiny",
            vec![
                Layer::Conv2d(Conv2d::new(ConvSpec::new(1, 2, 3, 1, 1), &mut rng)),
                Layer::Relu(Relu::new()),
                Layer::Flatten(Flatten::new()),
                Layer::Dense(Dense::new(2 * 4 * 4, 8, &mut rng)),
                Layer::Relu(Relu::new()),
                Layer::Dense(Dense::new(8, 3, &mut rng).non_maskable()),
            ],
            &[1, 4, 4],
            3,
        )
    }

    #[test]
    fn forward_produces_logits() {
        let mut net = tiny_net();
        let x = Tensor::ones(&[5, 1, 4, 4]);
        let y = net.forward(&x).unwrap();
        assert_eq!(y.dims(), &[5, 3]);
    }

    #[test]
    fn param_vector_round_trip() {
        let mut net = tiny_net();
        let v = net.param_vector();
        assert_eq!(v.len(), net.param_len());
        let mut v2 = v.clone();
        for x in &mut v2 {
            *x += 1.0;
        }
        net.set_param_vector(&v2).unwrap();
        assert_eq!(net.param_vector(), v2);
        assert!(net.set_param_vector(&v2[1..]).is_err());
    }

    #[test]
    fn layout_matches_param_len_and_masks() {
        let mut net = tiny_net();
        let layout = net.layout();
        assert_eq!(layout.total_params(), net.param_len());
        // Groups: conv(2 units), dense(8 units), head dense(3 units).
        assert_eq!(layout.groups().len(), 3);
        assert_eq!(layout.total_neurons(), 13);
        assert_eq!(layout.groups()[0].maskable_id(), Some(0));
        assert_eq!(layout.groups()[1].maskable_id(), Some(1));
        assert_eq!(layout.groups()[2].maskable_id(), None);
        let units = net.maskable_units();
        assert_eq!(units.0, vec![2, 8]);
        assert_eq!(units.total(), 10);
    }

    #[test]
    fn neuron_param_indices_partition_group_params() {
        let net = tiny_net();
        let layout = net.layout();
        // Dense group 1: every flat index of the group appears in exactly
        // one neuron's index list.
        let mut seen = std::collections::HashSet::new();
        for unit in 0..8 {
            for idx in layout.neuron_param_indices(NeuronId { group: 1, unit }) {
                assert!(seen.insert(idx), "index {idx} claimed twice");
            }
        }
        // in_features+1 params per unit.
        assert_eq!(seen.len(), 8 * (2 * 4 * 4 + 1));
    }

    #[test]
    fn neuron_delta_l1_detects_changes() {
        let net = tiny_net();
        let layout = net.layout();
        let prev = vec![0.0f32; layout.total_params()];
        let mut curr = prev.clone();
        let id = NeuronId { group: 0, unit: 1 };
        let indices = layout.neuron_param_indices(id);
        curr[indices[0]] = 0.5;
        curr[indices[1]] = -0.25;
        assert!((layout.neuron_delta_l1(id, &prev, &curr) - 0.75).abs() < 1e-6);
        // A different neuron saw no change.
        let other = NeuronId { group: 0, unit: 0 };
        assert_eq!(layout.neuron_delta_l1(other, &prev, &curr), 0.0);
    }

    #[test]
    fn param_mask_marks_masked_units_inactive() {
        let mut net = tiny_net();
        let layout = net.layout();
        let units = net.maskable_units();
        let mut mask = ModelMask::all_active(&units);
        mask.set_layer(0, Some(vec![true, false]));
        let pm = layout.param_mask(&mask);
        assert_eq!(pm.len(), layout.total_params());
        let inactive: Vec<usize> = layout.neuron_param_indices(NeuronId { group: 0, unit: 1 });
        for i in inactive {
            assert!(!pm[i]);
        }
        // Unmasked group params stay active.
        let active = layout.neuron_param_indices(NeuronId { group: 1, unit: 0 });
        for i in active {
            assert!(pm[i]);
        }
        // Head params always active.
        let head = layout.neuron_param_indices(NeuronId { group: 2, unit: 0 });
        for i in head {
            assert!(pm[i]);
        }
    }

    #[test]
    fn set_masks_applies_and_clears() {
        let mut net = tiny_net();
        let units = net.maskable_units();
        let mut mask = ModelMask::all_active(&units);
        mask.set_layer(0, Some(vec![true, false]));
        net.set_masks(&mask).unwrap();
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let _ = net.forward(&x).unwrap();
        // Masked channel produces zero activations: verify via conv layer.
        if let Layer::Conv2d(c) = &net.layers()[0] {
            assert_eq!(c.unit_mask().unwrap(), &[true, false]);
        } else {
            panic!("layer 0 should be conv");
        }
        net.clear_masks();
        if let Layer::Conv2d(c) = &net.layers()[0] {
            assert!(c.unit_mask().is_none());
        }
    }

    #[test]
    fn set_masks_rejects_bad_length() {
        let mut net = tiny_net();
        let mask = ModelMask::from_layers(vec![Some(vec![true; 5]), None]);
        assert!(net.set_masks(&mask).is_err());
    }

    #[test]
    fn keep_ratio_reflects_active_fraction() {
        let units = MaskableUnits(vec![2, 8]);
        let full = ModelMask::all_active(&units);
        assert_eq!(full.keep_ratio(&units), 1.0);
        let mut half = ModelMask::all_active(&units);
        half.set_layer(
            1,
            Some(vec![true, true, true, true, false, false, false, false]),
        );
        assert!((half.keep_ratio(&units) - 0.6).abs() < 1e-9);
        assert_eq!(half.active_counts(&units), vec![2, 4]);
        assert!(half.is_active(0, 0));
        assert!(half.is_active(1, 3));
        assert!(!half.is_active(1, 4));
    }

    #[test]
    fn accuracy_counts_correct_predictions() {
        let mut net = tiny_net();
        let x = Tensor::ones(&[4, 1, 4, 4]);
        let logits = net.forward(&x).unwrap();
        let pred = logits.argmax_rows().unwrap();
        let acc = net.accuracy(&x, &pred).unwrap();
        assert_eq!(acc, 1.0);
        assert!(net.accuracy(&x, &[0, 1]).is_err());
    }
}
