//! Model checkpointing: versioned binary serialization of a network's
//! parameter vector.
//!
//! Federated deployments persist the global model between aggregation
//! rounds and ship it across processes; this module provides the minimal
//! stable wire format for that: a magic header, a format version, the
//! architecture name (so a LeNet checkpoint is never restored into an
//! AlexNet), and the little-endian `f32` parameter payload.
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! use helios_nn::{checkpoint, models};
//! use helios_tensor::TensorRng;
//!
//! # fn main() -> Result<(), Box<dyn Error>> {
//! let mut net = models::lenet(10, &mut TensorRng::seed_from(0));
//! let mut buf = Vec::new();
//! checkpoint::save(&net, &mut buf)?;
//! let restored = checkpoint::load(&mut buf.as_slice())?;
//! assert_eq!(restored.architecture, "lenet");
//! net.set_param_vector(&restored.params)?;
//! # Ok(())
//! # }
//! ```

use crate::Network;
use std::io::{self, Read, Write};

/// Magic bytes opening every checkpoint.
const MAGIC: &[u8; 8] = b"HELIOSCK";

/// Current format version.
const VERSION: u32 = 1;

/// A checkpoint restored by [`load`].
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Architecture name recorded at save time (e.g. `"lenet"`).
    pub architecture: String,
    /// The flat parameter vector in canonical order.
    pub params: Vec<f32>,
}

/// Errors produced by checkpoint I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum CheckpointError {
    /// An underlying I/O operation failed.
    Io(io::Error),
    /// The stream does not start with the checkpoint magic.
    BadMagic,
    /// The format version is not supported by this build.
    UnsupportedVersion(u32),
    /// A length field is implausible (corrupt stream).
    CorruptLength(u64),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o failed: {e}"),
            CheckpointError::BadMagic => write!(f, "not a helios checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::CorruptLength(n) => {
                write!(f, "implausible length field {n} (corrupt checkpoint)")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Upper bound on plausible name/parameter lengths, guarding allocation
/// against corrupt headers.
const MAX_NAME: u64 = 4096;
const MAX_PARAMS: u64 = 1 << 32;

/// Serializes `net`'s parameters to `writer`.
///
/// A `&mut` reference can be passed for `writer` (e.g. `&mut Vec<u8>` or
/// `&mut File`).
///
/// # Errors
///
/// Returns I/O errors from the writer.
pub fn save<W: Write>(net: &Network, mut writer: W) -> Result<(), CheckpointError> {
    writer.write_all(MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    let name = net.name().as_bytes();
    writer.write_all(&(name.len() as u64).to_le_bytes())?;
    writer.write_all(name)?;
    let params = net.param_vector();
    writer.write_all(&(params.len() as u64).to_le_bytes())?;
    for p in params {
        writer.write_all(&p.to_le_bytes())?;
    }
    Ok(())
}

/// Deserializes a checkpoint from `reader`.
///
/// A `&mut` reference can be passed for `reader` (e.g. `&mut &[u8]` or
/// `&mut File`).
///
/// # Errors
///
/// Returns [`CheckpointError::BadMagic`] /
/// [`CheckpointError::UnsupportedVersion`] /
/// [`CheckpointError::CorruptLength`] for malformed streams and I/O
/// errors from the reader.
pub fn load<R: Read>(mut reader: R) -> Result<Checkpoint, CheckpointError> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let mut v = [0u8; 4];
    reader.read_exact(&mut v)?;
    let version = u32::from_le_bytes(v);
    if version != VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let mut len8 = [0u8; 8];
    reader.read_exact(&mut len8)?;
    let name_len = u64::from_le_bytes(len8);
    if name_len > MAX_NAME {
        return Err(CheckpointError::CorruptLength(name_len));
    }
    let mut name = vec![0u8; name_len as usize];
    reader.read_exact(&mut name)?;
    let architecture = String::from_utf8_lossy(&name).into_owned();
    reader.read_exact(&mut len8)?;
    let param_len = u64::from_le_bytes(len8);
    if param_len > MAX_PARAMS {
        return Err(CheckpointError::CorruptLength(param_len));
    }
    let mut params = Vec::with_capacity(param_len as usize);
    let mut f = [0u8; 4];
    for _ in 0..param_len {
        reader.read_exact(&mut f)?;
        params.push(f32::from_le_bytes(f));
    }
    Ok(Checkpoint {
        architecture,
        params,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use helios_tensor::TensorRng;

    #[test]
    fn round_trip_preserves_every_parameter() {
        let mut rng = TensorRng::seed_from(1);
        for net in [
            models::lenet(10, &mut rng),
            models::alexnet(10, &mut rng),
            models::resnet18(100, &mut rng),
        ] {
            let mut buf = Vec::new();
            save(&net, &mut buf).expect("save");
            let ckpt = load(&mut buf.as_slice()).expect("load");
            assert_eq!(ckpt.architecture, net.name());
            assert_eq!(ckpt.params, net.param_vector());
        }
    }

    #[test]
    fn restored_params_install_into_fresh_network() {
        let mut rng = TensorRng::seed_from(2);
        let net = models::lenet(10, &mut rng);
        let mut buf = Vec::new();
        save(&net, &mut buf).expect("save");
        let ckpt = load(&mut buf.as_slice()).expect("load");
        let mut fresh = models::lenet(10, &mut TensorRng::seed_from(99));
        assert_ne!(fresh.param_vector(), ckpt.params);
        fresh.set_param_vector(&ckpt.params).expect("install");
        assert_eq!(fresh.param_vector(), net.param_vector());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let buf = b"NOTACKPT00000000".to_vec();
        assert!(matches!(
            load(&mut buf.as_slice()),
            Err(CheckpointError::BadMagic)
        ));
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut rng = TensorRng::seed_from(3);
        let net = models::lenet(2, &mut rng);
        let mut buf = Vec::new();
        save(&net, &mut buf).expect("save");
        buf[8] = 99; // bump the version field
        assert!(matches!(
            load(&mut buf.as_slice()),
            Err(CheckpointError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn truncated_stream_is_an_io_error() {
        let mut rng = TensorRng::seed_from(4);
        let net = models::lenet(2, &mut rng);
        let mut buf = Vec::new();
        save(&net, &mut buf).expect("save");
        buf.truncate(buf.len() / 2);
        assert!(matches!(
            load(&mut buf.as_slice()),
            Err(CheckpointError::Io(_))
        ));
    }

    #[test]
    fn corrupt_length_is_rejected_without_huge_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // absurd name length
        assert!(matches!(
            load(&mut buf.as_slice()),
            Err(CheckpointError::CorruptLength(_))
        ));
    }

    #[test]
    fn display_messages_are_informative() {
        assert!(CheckpointError::BadMagic.to_string().contains("magic"));
        assert!(CheckpointError::UnsupportedVersion(7)
            .to_string()
            .contains('7'));
        assert!(CheckpointError::CorruptLength(12)
            .to_string()
            .contains("12"));
    }
}
