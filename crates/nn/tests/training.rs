//! End-to-end training tests: the layer zoo must actually learn.

use helios_nn::{models, CrossEntropyLoss, ModelMask, Network, Sgd};
use helios_tensor::{Tensor, TensorRng};

/// Builds a trivially separable 2-class image problem: class 0 images are
/// bright in the left half, class 1 in the right half, plus noise.
fn separable_images(
    n: usize,
    channels: usize,
    side: usize,
    rng: &mut TensorRng,
) -> (Tensor, Vec<usize>) {
    let mut data = vec![0.0f32; n * channels * side * side];
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % 2;
        labels.push(class);
        for c in 0..channels {
            for y in 0..side {
                for x in 0..side {
                    let bright = if class == 0 {
                        x < side / 2
                    } else {
                        x >= side / 2
                    };
                    let base = if bright { 1.0 } else { 0.0 };
                    data[((i * channels + c) * side + y) * side + x] =
                        base + rng.uniform(-0.2, 0.2);
                }
            }
        }
    }
    (
        Tensor::from_vec(data, &[n, channels, side, side]).expect("sized correctly"),
        labels,
    )
}

fn train(net: &mut Network, x: &Tensor, labels: &[usize], epochs: usize, lr: f32) -> (f32, f32) {
    let loss = CrossEntropyLoss::new();
    let mut opt = Sgd::with_momentum(lr, 0.9);
    let mut first = None;
    let mut last = 0.0;
    for _ in 0..epochs {
        net.zero_grad();
        let logits = net.forward(x).expect("forward");
        let (l, grad) = loss.forward_backward(&logits, labels).expect("loss");
        net.backward(&grad).expect("backward");
        opt.step(net).expect("step");
        first.get_or_insert(l);
        last = l;
    }
    (first.unwrap_or(last), last)
}

#[test]
fn lenet_learns_separable_problem() {
    let mut rng = TensorRng::seed_from(100);
    let mut net = models::lenet(2, &mut rng);
    let (x, labels) = separable_images(32, 1, 16, &mut rng);
    let (first, last) = train(&mut net, &x, &labels, 30, 0.05);
    assert!(last < 0.5 * first, "loss should halve: {first} → {last}");
    let acc = net.accuracy(&x, &labels).expect("accuracy");
    assert!(acc > 0.9, "train accuracy {acc} too low");
}

#[test]
fn alexnet_learns_separable_problem() {
    let mut rng = TensorRng::seed_from(101);
    let mut net = models::alexnet(2, &mut rng);
    let (x, labels) = separable_images(32, 3, 16, &mut rng);
    // lr 0.02: with momentum 0.9, 0.05 is unstable for some init draws
    // (the vendored ChaCha stream differs from upstream rand_chacha).
    let (first, last) = train(&mut net, &x, &labels, 30, 0.02);
    assert!(last < 0.5 * first, "loss should halve: {first} → {last}");
}

#[test]
fn resnet_learns_separable_problem() {
    let mut rng = TensorRng::seed_from(102);
    let mut net = models::resnet18(2, &mut rng);
    let (x, labels) = separable_images(32, 3, 16, &mut rng);
    let (first, last) = train(&mut net, &x, &labels, 40, 0.02);
    assert!(last < 0.7 * first, "loss should drop: {first} → {last}");
}

#[test]
fn half_masked_lenet_still_learns() {
    let mut rng = TensorRng::seed_from(103);
    let mut net = models::lenet(2, &mut rng);
    let units = net.maskable_units();
    let mut mask = ModelMask::all_active(&units);
    for (i, &n) in units.0.iter().enumerate() {
        mask.set_layer(i, Some((0..n).map(|j| j % 2 == 0).collect()));
    }
    net.set_masks(&mask).expect("mask fits");
    let (x, labels) = separable_images(32, 1, 16, &mut rng);
    let (first, last) = train(&mut net, &x, &labels, 30, 0.05);
    assert!(
        last < 0.6 * first,
        "masked net should still learn: {first} → {last}"
    );
}

#[test]
fn masked_training_leaves_masked_params_untouched() {
    let mut rng = TensorRng::seed_from(104);
    let mut net = models::lenet(2, &mut rng);
    let units = net.maskable_units();
    let layout = net.layout();
    let mut mask = ModelMask::all_active(&units);
    // Mask out the second half of dense layer 2 (maskable id 2).
    let dense_units = units.0[2];
    mask.set_layer(
        2,
        Some((0..dense_units).map(|j| j < dense_units / 2).collect()),
    );
    net.set_masks(&mask).expect("mask fits");
    let before = net.param_vector();
    let (x, labels) = separable_images(16, 1, 16, &mut rng);
    let _ = train(&mut net, &x, &labels, 5, 0.1);
    let after = net.param_vector();
    let pm = layout.param_mask(&mask);
    let mut frozen_checked = 0;
    let mut trained_moved = 0;
    for i in 0..before.len() {
        if !pm[i] {
            assert_eq!(before[i], after[i], "masked param {i} moved");
            frozen_checked += 1;
        } else if before[i] != after[i] {
            trained_moved += 1;
        }
    }
    assert!(frozen_checked > 0, "test must cover frozen params");
    assert!(trained_moved > 0, "active params must move");
}

#[test]
fn cloned_network_trains_independently() {
    let mut rng = TensorRng::seed_from(105);
    let base = models::lenet(2, &mut rng);
    let mut a = base.clone();
    let mut b = base.clone();
    let (xa, la) = separable_images(16, 1, 16, &mut rng);
    let _ = train(&mut a, &xa, &la, 3, 0.1);
    // b untouched: still identical to base.
    assert_eq!(b.param_vector(), base.param_vector());
    let _ = train(&mut b, &xa, &la, 3, 0.1);
    // Same data and seed-free deterministic training → same result.
    assert_eq!(a.param_vector(), b.param_vector());
}
