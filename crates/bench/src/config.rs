//! JSON-configurable experiments: run any fleet/workload/strategy
//! combination without recompiling.
//!
//! The `custom` binary consumes these configs:
//!
//! ```text
//! cargo run -p helios-bench --release --bin custom -- experiment.json
//! ```
//!
//! ```json
//! {
//!   "workload": "cifar10",
//!   "capable": 2,
//!   "stragglers": 2,
//!   "per_client": 120,
//!   "test_samples": 300,
//!   "non_iid": true,
//!   "seed": 42,
//!   "cycles": 25,
//!   "strategies": ["sync", "async", "afo", "random", "helios", "st_only"]
//! }
//! ```

use crate::{ExperimentSpec, Workload};
use helios_core::{HeliosConfig, HeliosStrategy};
use helios_fl::{Afo, AsyncFl, RandomPartial, RunMetrics, Strategy, SyncFedAvg};
use serde::{Deserialize, Serialize};

/// A complete experiment description, deserializable from JSON.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Workload name: `mnist`, `cifar10`, or `cifar100`.
    pub workload: String,
    /// Number of capable devices.
    pub capable: usize,
    /// Number of straggler devices.
    pub stragglers: usize,
    /// Training samples per client.
    #[serde(default = "default_per_client")]
    pub per_client: usize,
    /// Held-out test samples.
    #[serde(default = "default_test_samples")]
    pub test_samples: usize,
    /// Label-shard Non-IID split.
    #[serde(default)]
    pub non_iid: bool,
    /// Master seed.
    #[serde(default = "default_seed")]
    pub seed: u64,
    /// Aggregation cycles to run.
    pub cycles: usize,
    /// Strategy names: `sync`, `async`, `afo`, `random`, `helios`,
    /// `st_only`.
    pub strategies: Vec<String>,
}

fn default_per_client() -> usize {
    120
}

fn default_test_samples() -> usize {
    300
}

fn default_seed() -> u64 {
    42
}

/// Errors from parsing or executing an [`ExperimentConfig`].
#[derive(Debug)]
#[non_exhaustive]
pub enum ConfigError {
    /// The JSON was malformed.
    Parse(serde_json::Error),
    /// A field value is not usable.
    Invalid(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Parse(e) => write!(f, "config parse failed: {e}"),
            ConfigError::Invalid(what) => write!(f, "invalid config: {what}"),
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl ExperimentConfig {
    /// Parses a config from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Parse`] for malformed JSON and
    /// [`ConfigError::Invalid`] for out-of-range fields.
    pub fn from_json(text: &str) -> Result<Self, ConfigError> {
        let config: ExperimentConfig = serde_json::from_str(text).map_err(ConfigError::Parse)?;
        config.validate()?;
        Ok(config)
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if Workload::parse(&self.workload).is_none() {
            return Err(ConfigError::Invalid(format!(
                "unknown workload {:?} (use mnist|cifar10|cifar100)",
                self.workload
            )));
        }
        if self.capable == 0 {
            return Err(ConfigError::Invalid(
                "at least one capable device is required".into(),
            ));
        }
        if self.cycles == 0 {
            return Err(ConfigError::Invalid("cycles must be nonzero".into()));
        }
        if self.strategies.is_empty() {
            return Err(ConfigError::Invalid("no strategies listed".into()));
        }
        for s in &self.strategies {
            if !matches!(
                s.as_str(),
                "sync" | "async" | "afo" | "random" | "helios" | "st_only"
            ) {
                return Err(ConfigError::Invalid(format!(
                    "unknown strategy {s:?} (use sync|async|afo|random|helios|st_only)"
                )));
            }
        }
        Ok(())
    }

    /// The equivalent [`ExperimentSpec`].
    ///
    /// # Panics
    ///
    /// Panics if called on an unvalidated config with a bad workload name
    /// (construct via [`ExperimentConfig::from_json`] to avoid this).
    pub fn spec(&self) -> ExperimentSpec {
        ExperimentSpec {
            workload: Workload::parse(&self.workload).expect("validated workload"),
            capable: self.capable,
            stragglers: self.stragglers,
            per_client: self.per_client,
            test_samples: self.test_samples,
            non_iid: self.non_iid,
            seed: self.seed,
        }
    }

    /// Runs every listed strategy against identically-seeded fresh
    /// environments.
    ///
    /// # Panics
    ///
    /// Panics when a strategy run fails (impossible for validated
    /// configs).
    pub fn run(&self) -> Vec<RunMetrics> {
        let spec = self.spec();
        let straggler_ids = spec.straggler_ids();
        let mut out = Vec::new();
        for name in &self.strategies {
            let mut strategy: Box<dyn Strategy> = match name.as_str() {
                "sync" => Box::new(SyncFedAvg::new()),
                "async" => Box::new(AsyncFl::new(straggler_ids.clone())),
                "afo" => Box::new(Afo::new(straggler_ids.clone())),
                "random" => Box::new(RandomPartial::new(spec.helios_volumes())),
                "helios" => Box::new(HeliosStrategy::new(HeliosConfig::default())),
                "st_only" => Box::new(HeliosStrategy::new(HeliosConfig::soft_training_only())),
                other => unreachable!("validated strategy {other}"),
            };
            let mut env = spec.build_env();
            out.push(
                strategy
                    .run(&mut env, self.cycles)
                    .expect("validated config runs"),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{
        "workload": "mnist",
        "capable": 1,
        "stragglers": 1,
        "per_client": 30,
        "test_samples": 30,
        "cycles": 2,
        "strategies": ["sync", "helios"]
    }"#;

    #[test]
    fn parses_and_runs_a_minimal_config() {
        let config = ExperimentConfig::from_json(GOOD).expect("valid config");
        assert_eq!(config.seed, 42, "default seed applies");
        assert!(!config.non_iid, "default split is IID");
        let metrics = config.run();
        assert_eq!(metrics.len(), 2);
        assert_eq!(metrics[0].strategy(), "sync_fedavg");
        assert_eq!(metrics[1].strategy(), "helios");
        assert_eq!(metrics[0].records().len(), 2);
    }

    #[test]
    fn rejects_malformed_and_invalid_configs() {
        assert!(matches!(
            ExperimentConfig::from_json("{not json"),
            Err(ConfigError::Parse(_))
        ));
        let bad_workload = GOOD.replace("mnist", "imagenet");
        assert!(matches!(
            ExperimentConfig::from_json(&bad_workload),
            Err(ConfigError::Invalid(_))
        ));
        let bad_strategy = GOOD.replace("helios", "sgd");
        assert!(ExperimentConfig::from_json(&bad_strategy).is_err());
        let no_capable = GOOD.replace("\"capable\": 1", "\"capable\": 0");
        assert!(ExperimentConfig::from_json(&no_capable).is_err());
        let zero_cycles = GOOD.replace("\"cycles\": 2", "\"cycles\": 0");
        assert!(ExperimentConfig::from_json(&zero_cycles).is_err());
    }

    #[test]
    fn config_round_trips_through_json() {
        let config = ExperimentConfig::from_json(GOOD).expect("valid");
        let text = serde_json::to_string(&config).expect("serializes");
        let back = ExperimentConfig::from_json(&text).expect("round trip");
        assert_eq!(back.workload, config.workload);
        assert_eq!(back.strategies, config.strategies);
    }
}
